"""Full-size layer shape tables of the CNNs evaluated in the paper.

The accelerator experiments (Figs. 14-20, Tables 7/9) depend only on layer
*shapes* — channel counts, kernel sizes and feature-map sizes at ImageNet
resolution — not on trained weights, so we keep the original full-size
networks here even though the algorithm experiments train scaled-down
models.  Linear (fully connected) layers are included as 1x1 convolutions
over a 1x1 feature map.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List


@dataclass(frozen=True)
class LayerShape:
    """Shape of one convolution layer as seen by the accelerator."""

    name: str
    in_channels: int
    out_channels: int
    kernel_size: int
    input_size: int           # spatial size of the input feature map (H = W)
    stride: int = 1
    padding: int = 0
    depthwise: bool = False

    @property
    def output_size(self) -> int:
        return (self.input_size + 2 * self.padding - self.kernel_size) // self.stride + 1

    @property
    def num_weights(self) -> int:
        if self.depthwise:
            return self.out_channels * self.kernel_size**2
        return self.out_channels * self.in_channels * self.kernel_size**2

    @property
    def macs(self) -> int:
        per_output = self.kernel_size**2 * (1 if self.depthwise else self.in_channels)
        return per_output * self.out_channels * self.output_size**2

    @property
    def flops(self) -> int:
        return 2 * self.macs

    @property
    def input_elements(self) -> int:
        return self.in_channels * self.input_size**2

    @property
    def output_elements(self) -> int:
        return self.out_channels * self.output_size**2


def _conv(name, cin, cout, k, size, stride=1, pad=None, depthwise=False) -> LayerShape:
    if pad is None:
        pad = k // 2
    return LayerShape(name, cin, cout, k, size, stride, pad, depthwise)


def _fc(name, cin, cout) -> LayerShape:
    return LayerShape(name, cin, cout, 1, 1, 1, 0, False)


def resnet18_layers() -> List[LayerShape]:
    """ResNet-18 at 224x224 ImageNet resolution."""
    layers = [_conv("conv1", 3, 64, 7, 224, stride=2, pad=3)]
    stage_spec = [(64, 64, 56, 2), (64, 128, 28, 2), (128, 256, 14, 2), (256, 512, 7, 2)]
    for stage_idx, (cin, cout, out_size, blocks) in enumerate(stage_spec):
        in_size = out_size if stage_idx == 0 else out_size * 2
        for b in range(blocks):
            stride = 2 if (stage_idx > 0 and b == 0) else 1
            block_in = cin if b == 0 else cout
            size = in_size if b == 0 else out_size
            layers.append(_conv(f"layer{stage_idx+1}.{b}.conv1", block_in, cout, 3, size, stride=stride))
            layers.append(_conv(f"layer{stage_idx+1}.{b}.conv2", cout, cout, 3, out_size))
            if stride != 1 or block_in != cout:
                layers.append(_conv(f"layer{stage_idx+1}.{b}.downsample", block_in, cout, 1, size,
                                    stride=stride, pad=0))
    layers.append(_fc("fc", 512, 1000))
    return layers


def resnet50_layers() -> List[LayerShape]:
    """ResNet-50 at 224x224 (bottleneck blocks, expansion 4)."""
    layers = [_conv("conv1", 3, 64, 7, 224, stride=2, pad=3)]
    stage_spec = [(64, 64, 56, 3), (256, 128, 28, 4), (512, 256, 14, 6), (1024, 512, 7, 3)]
    for stage_idx, (cin, planes, out_size, blocks) in enumerate(stage_spec):
        expansion = 4
        in_size = out_size if stage_idx == 0 else out_size * 2
        for b in range(blocks):
            stride = 2 if (stage_idx > 0 and b == 0) else 1
            block_in = cin if b == 0 else planes * expansion
            size = in_size if b == 0 else out_size
            prefix = f"layer{stage_idx+1}.{b}"
            layers.append(_conv(f"{prefix}.conv1", block_in, planes, 1, size, pad=0))
            layers.append(_conv(f"{prefix}.conv2", planes, planes, 3, size, stride=stride))
            layers.append(_conv(f"{prefix}.conv3", planes, planes * expansion, 1, out_size, pad=0))
            if stride != 1 or block_in != planes * expansion:
                layers.append(_conv(f"{prefix}.downsample", block_in, planes * expansion, 1, size,
                                    stride=stride, pad=0))
    layers.append(_fc("fc", 2048, 1000))
    return layers


def vgg16_layers() -> List[LayerShape]:
    """VGG-16 at 224x224."""
    config = [
        (3, 64, 224), (64, 64, 224),
        (64, 128, 112), (128, 128, 112),
        (128, 256, 56), (256, 256, 56), (256, 256, 56),
        (256, 512, 28), (512, 512, 28), (512, 512, 28),
        (512, 512, 14), (512, 512, 14), (512, 512, 14),
    ]
    layers = [_conv(f"conv{i+1}", cin, cout, 3, size) for i, (cin, cout, size) in enumerate(config)]
    layers.append(_fc("fc1", 512 * 7 * 7, 4096))
    layers.append(_fc("fc2", 4096, 4096))
    layers.append(_fc("fc3", 4096, 1000))
    return layers


def alexnet_layers() -> List[LayerShape]:
    """AlexNet at 224x224 (torchvision variant)."""
    layers = [
        _conv("conv1", 3, 64, 11, 224, stride=4, pad=2),
        _conv("conv2", 64, 192, 5, 27, pad=2),
        _conv("conv3", 192, 384, 3, 13),
        _conv("conv4", 384, 256, 3, 13),
        _conv("conv5", 256, 256, 3, 13),
        _fc("fc1", 256 * 6 * 6, 4096),
        _fc("fc2", 4096, 4096),
        _fc("fc3", 4096, 1000),
    ]
    return layers


def mobilenet_v1_layers() -> List[LayerShape]:
    """MobileNet-V1 (1.0x) at 224x224: depthwise + pointwise pairs."""
    layers = [_conv("conv1", 3, 32, 3, 224, stride=2)]
    # (in_ch, out_ch, stride, input_size) of each depthwise-separable block
    blocks = [
        (32, 64, 1, 112), (64, 128, 2, 112), (128, 128, 1, 56), (128, 256, 2, 56),
        (256, 256, 1, 28), (256, 512, 2, 28),
        (512, 512, 1, 14), (512, 512, 1, 14), (512, 512, 1, 14),
        (512, 512, 1, 14), (512, 512, 1, 14),
        (512, 1024, 2, 14), (1024, 1024, 1, 7),
    ]
    for i, (cin, cout, stride, size) in enumerate(blocks):
        layers.append(_conv(f"block{i}.dw", cin, cin, 3, size, stride=stride, depthwise=True))
        out_size = (size + 2 - 3) // stride + 1
        layers.append(_conv(f"block{i}.pw", cin, cout, 1, out_size, pad=0))
    layers.append(_fc("fc", 1024, 1000))
    return layers


def mobilenet_v2_layers() -> List[LayerShape]:
    """MobileNet-V2 at 224x224 (inverted residual blocks)."""
    layers = [_conv("conv1", 3, 32, 3, 224, stride=2)]
    # (expansion, out_ch, repeats, stride) as in the MobileNet-V2 paper
    spec = [(1, 16, 1, 1), (6, 24, 2, 2), (6, 32, 3, 2), (6, 64, 4, 2),
            (6, 96, 3, 1), (6, 160, 3, 2), (6, 320, 1, 1)]
    cin = 32
    size = 112
    idx = 0
    for expansion, cout, repeats, first_stride in spec:
        for r in range(repeats):
            stride = first_stride if r == 0 else 1
            hidden = cin * expansion
            if expansion != 1:
                layers.append(_conv(f"block{idx}.expand", cin, hidden, 1, size, pad=0))
            layers.append(_conv(f"block{idx}.dw", hidden, hidden, 3, size, stride=stride, depthwise=True))
            out_size = (size + 2 - 3) // stride + 1
            layers.append(_conv(f"block{idx}.project", hidden, cout, 1, out_size, pad=0))
            cin = cout
            size = out_size
            idx += 1
    layers.append(_conv("conv_last", 320, 1280, 1, 7, pad=0))
    layers.append(_fc("fc", 1280, 1000))
    return layers


WORKLOADS: Dict[str, Callable[[], List[LayerShape]]] = {
    "resnet18": resnet18_layers,
    "resnet50": resnet50_layers,
    "vgg16": vgg16_layers,
    "alexnet": alexnet_layers,
    "mobilenet_v1": mobilenet_v1_layers,
    "mobilenet_v2": mobilenet_v2_layers,
}


def get_workload(name: str) -> Callable[[], List[LayerShape]]:
    """Workload layer-table factory by name — deprecation shim over the
    unified registry (the pipeline's ``accel_eval`` stage resolves scenario
    workloads through this).

    New code should use :func:`repro.workloads.shape_factory`, which also
    resolves schema-backed tables (``transformer_block``,
    ``simple_detector``, ``deeplab_lite``, registered JSON specs).  The
    names in :data:`WORKLOADS` return the *same* factory objects as before,
    so outputs are bit-identical.
    """
    from repro.workloads.registry import shape_factory

    return shape_factory(name)


def network_macs(layers: List[LayerShape]) -> int:
    return sum(layer.macs for layer in layers)


def network_weights(layers: List[LayerShape]) -> int:
    return sum(layer.num_weights for layer in layers)
