"""Accelerator simulator for the MVQ hardware architecture (Section 5 / 7).

The paper evaluates six hardware settings (WS, WS-CMS, EWS, EWS-C, EWS-CM,
EWS-CMS) on three systolic-array sizes (16x16, 32x32, 64x64) running five
CNNs.  This package provides:

* :mod:`repro.accelerator.workloads`    — full-size layer shape tables of the
  evaluated CNNs (these, not the mini training models, drive all hardware
  numbers, exactly as in the paper).
* :mod:`repro.accelerator.config`       — hardware settings / array configs.
* :mod:`repro.accelerator.dataflow`     — WS and EWS loop-nest models producing
  per-level memory access counts and compute cycles per layer.
* :mod:`repro.accelerator.weight_loader`— assignment-aware weight loading
  (codebook RF, mask LUT decode, AND-gate reconstruction) and its bit traffic.
* :mod:`repro.accelerator.systolic`     — functional model of the sparse tile
  (LZC mask encoder, MRF/WRF, zero-gated PEs) used for correctness tests.
* :mod:`repro.accelerator.energy`       — Table 8 access-energy model, power
  breakdown and energy efficiency.
* :mod:`repro.accelerator.area`         — Table 7 component area model.
* :mod:`repro.accelerator.performance`  — cycle counts and speedups.
* :mod:`repro.accelerator.roofline`     — operational-intensity roofline.
* :mod:`repro.accelerator.comparison`   — process-normalised comparison against
  SparTen / CGNet / SPOTS / S2TA (Table 9).
"""

from repro.accelerator.config import (
    AcceleratorConfig,
    CompressionMode,
    Dataflow,
    HardwareSetting,
    standard_setting,
)
from repro.accelerator.workloads import (
    LayerShape,
    WORKLOADS,
    alexnet_layers,
    mobilenet_v1_layers,
    resnet18_layers,
    resnet50_layers,
    vgg16_layers,
)
from repro.accelerator.dataflow import AccessCounts, LayerAnalysis, analyze_layer, analyze_network
from repro.accelerator.energy import ENERGY_COSTS, EnergyModel, EnergyBreakdown
from repro.accelerator.area import AreaModel, AreaBreakdown
from repro.accelerator.performance import PerformanceModel, NetworkPerformance
from repro.accelerator.roofline import RooflineModel, RooflinePoint
from repro.accelerator.weight_loader import AssignmentAwareWeightLoader, WeightLoadTraffic
from repro.accelerator.systolic import (
    SparseTile,
    DenseTile,
    StreamStats,
    lzc_encode_mask,
    sparse_stream_matches_dense,
    stream_gating_stats,
    ZeroGatedPE,
)
from repro.accelerator.comparison import SOTA_ACCELERATORS, normalize_efficiency, comparison_table

__all__ = [
    "AcceleratorConfig",
    "CompressionMode",
    "Dataflow",
    "HardwareSetting",
    "standard_setting",
    "LayerShape",
    "WORKLOADS",
    "resnet18_layers",
    "resnet50_layers",
    "vgg16_layers",
    "alexnet_layers",
    "mobilenet_v1_layers",
    "AccessCounts",
    "LayerAnalysis",
    "analyze_layer",
    "analyze_network",
    "ENERGY_COSTS",
    "EnergyModel",
    "EnergyBreakdown",
    "AreaModel",
    "AreaBreakdown",
    "PerformanceModel",
    "NetworkPerformance",
    "RooflineModel",
    "RooflinePoint",
    "AssignmentAwareWeightLoader",
    "WeightLoadTraffic",
    "SparseTile",
    "DenseTile",
    "lzc_encode_mask",
    "StreamStats",
    "sparse_stream_matches_dense",
    "stream_gating_stats",
    "ZeroGatedPE",
    "SOTA_ACCELERATORS",
    "normalize_efficiency",
    "comparison_table",
]
