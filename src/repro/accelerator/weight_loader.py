"""Assignment-aware weight loading (Section 5.2).

The weight loader reads assignments (codebook index + LUT-encoded mask) from
L2, expands the mask through the look-up table, reads the codeword from the
codebook register file (CRF) and reconstructs the sparse weight vector with
AND gates.  This module provides a *functional* model of that path — it
produces bit-exact reconstructed weight vectors — plus traffic accounting
used by the performance model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.accelerator.config import AcceleratorConfig
from repro.core.codebook import Codebook
from repro.core.storage import MaskLUT


@dataclass
class WeightLoadTraffic:
    """Bits moved to deliver one layer's weights to the systolic array."""

    assignment_bits: int
    mask_bits: int
    codebook_init_bits: int

    @property
    def total_bits(self) -> int:
        return self.assignment_bits + self.mask_bits + self.codebook_init_bits

    def load_cycles(self, dma_width_bits: int) -> float:
        return self.total_bits / dma_width_bits


class CodebookRegisterFile:
    """The CRF: holds the quantized codebook, one read port per d-wide group."""

    def __init__(self, codebook: Codebook, read_ports: int = 1):
        if read_ports < 1:
            raise ValueError("the CRF needs at least one read port")
        self.codewords = codebook.effective_codewords()
        self.read_ports = read_ports
        self.reads = 0

    def read(self, indices: np.ndarray) -> np.ndarray:
        """Parallel read of up to ``read_ports`` codewords."""
        indices = np.atleast_1d(np.asarray(indices, dtype=np.int64))
        if indices.size > self.read_ports:
            raise ValueError(
                f"requested {indices.size} simultaneous reads but the CRF has "
                f"{self.read_ports} ports"
            )
        self.reads += indices.size
        return self.codewords[indices]

    @property
    def storage_bits(self) -> int:
        return int(self.codewords.size * 8)


class AssignmentAwareWeightLoader:
    """Reconstructs weight rows for the array and accounts for L2 traffic."""

    def __init__(self, config: AcceleratorConfig, codebook: Codebook,
                 lut: Optional[MaskLUT] = None):
        self.config = config
        self.lut = lut if lut is not None else (
            MaskLUT(config.n_keep, config.m_block) if config.uses_mask else None
        )
        self.crf = CodebookRegisterFile(codebook, read_ports=config.crf_read_ports)

    # -- functional path -----------------------------------------------------------
    def reconstruct_row(self, indices: np.ndarray,
                        mask_codes: Optional[np.ndarray] = None) -> np.ndarray:
        """Reconstruct the weights for one array row (L outputs = L/d subvectors).

        ``indices`` holds L/d codebook indices; ``mask_codes`` holds the
        LUT-encoded mask indices, shape (L/d, d/M).  Returns the L
        reconstructed weights.
        """
        codewords = self.crf.read(indices)
        if self.lut is None or mask_codes is None:
            return codewords.reshape(-1)
        mask_codes = np.asarray(mask_codes, dtype=np.int64)
        masks = self.lut.decode_mask(mask_codes, self.config.subvector_length)
        return (codewords * masks).reshape(-1)

    def reconstruct_layer(self, assignments: np.ndarray, mask: Optional[np.ndarray]) -> np.ndarray:
        """Reconstruct every subvector of a layer (grouped layout)."""
        assignments = np.asarray(assignments, dtype=np.int64)
        decoded = self.crf.codewords[assignments]
        self.crf.reads += assignments.size
        if mask is not None and self.lut is not None:
            decoded = decoded * np.asarray(mask, dtype=bool)
        return decoded

    # -- traffic accounting ----------------------------------------------------------
    def traffic(self, num_weights: int) -> WeightLoadTraffic:
        """L2 traffic to deliver ``num_weights`` dense-equivalent weights."""
        cfg = self.config
        num_subvectors = num_weights // cfg.subvector_length
        assignment_bits = num_subvectors * cfg.assignment_bits_per_subvector
        mask_bits = num_subvectors * cfg.mask_bits_per_subvector
        codebook_bits = cfg.codebook_size * cfg.subvector_length * cfg.codebook_bits
        return WeightLoadTraffic(assignment_bits, mask_bits, codebook_bits)
