"""Hardware configuration: dataflows, compression modes and the six settings.

The paper's Section 7.1 defines six hardware settings.  A setting is a
(dataflow, compression mode) pair; compression modes layer on top of each
other:

* ``NONE``  — 8-bit dense weights (the WS / EWS baselines);
* ``C``     — common vector quantization (k = 1024, d = 8), weights loaded as
  codebook indices (EWS-C);
* ``CM``    — masked vector quantization (k = 512, d = 16, N:M sparsity),
  indices + LUT-encoded masks loaded (EWS-CM / WS-CMS share this loading);
* ``CMS``   — CM plus the sparsity-aware systolic array (sparse tiles with
  Q = N/M * d PEs per d output channels) (EWS-CMS, WS-CMS).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field, replace
from typing import Dict, Optional


class Dataflow(enum.Enum):
    WS = "ws"
    EWS = "ews"


class CompressionMode(enum.Enum):
    NONE = "none"     # dense 8-bit weights
    C = "c"           # common VQ (indices, no mask, dense array)
    CM = "cm"         # masked VQ (indices + masks, dense array)
    CMS = "cms"       # masked VQ + sparse systolic array


@dataclass(frozen=True)
class AcceleratorConfig:
    """One concrete accelerator instance."""

    array_size: int = 64                   # H = L (square array)
    dataflow: Dataflow = Dataflow.EWS
    compression: CompressionMode = CompressionMode.CMS
    # -- vector quantization parameters (compression ratio ~22x defaults) ------
    codebook_size: int = 512               # k
    subvector_length: int = 16             # d
    n_keep: int = 4                        # N of N:M
    m_block: int = 16                      # M of N:M
    codebook_bits: int = 8                 # q_c
    # -- numeric formats --------------------------------------------------------
    weight_bits: int = 8                   # on-chip weight precision (baseline loads)
    activation_bits: int = 8
    psum_bits: int = 24
    # -- EWS extension factors (A, B, D of Fig. 7) ------------------------------
    ews_a: int = 4
    ews_b: int = 4
    ews_d: int = 2
    # -- memory system -----------------------------------------------------------
    l1_kib: int = 256
    l2_kib: int = 2048
    dma_width_bits: int = 64               # weight-loading datawidth from L2
    l1_width_bits: int = 2048              # aggregate L1 bank bandwidth per cycle
    frequency_ghz: float = 0.3
    wrf_entries: int = 16

    def __post_init__(self):
        # Validate eagerly and with named fields: design-space sweeps build
        # many variants programmatically, and a bad combination must fail at
        # construction time with a clear message, not deep inside
        # ``analyze_layer`` as a ZeroDivisionError three stages later.
        if self.array_size <= 0:
            raise ValueError("array size must be positive")
        if self.subvector_length % self.m_block != 0:
            raise ValueError(
                f"d must be a multiple of M (d={self.subvector_length}, "
                f"M={self.m_block})")
        if self.array_size % self.subvector_length != 0 and self.uses_vq:
            raise ValueError(
                f"array width must be a multiple of the subvector length d "
                f"(array_size={self.array_size}, d={self.subvector_length})")
        if not 1 <= self.n_keep <= self.m_block:
            raise ValueError(
                f"n_keep must be in [1, M] (n_keep={self.n_keep}, "
                f"M={self.m_block})")
        if self.codebook_size < 2:
            raise ValueError(f"codebook_size must be >= 2, got {self.codebook_size}")
        for name in ("codebook_bits", "weight_bits", "activation_bits",
                     "psum_bits", "wrf_entries"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive, got {getattr(self, name)}")
        for name in ("l1_kib", "l2_kib", "dma_width_bits", "l1_width_bits"):
            if getattr(self, name) <= 0:
                raise ValueError(
                    f"{name} must be positive, got {getattr(self, name)} — "
                    "the dataflow model divides by the buffer widths, so a "
                    "non-positive size would fail deep inside analyze_layer")
        if self.l2_kib < self.l1_kib:
            raise ValueError(
                f"L2 must be at least as large as L1 "
                f"(l1_kib={self.l1_kib}, l2_kib={self.l2_kib})")
        if self.frequency_ghz <= 0:
            raise ValueError(
                f"frequency_ghz must be positive, got {self.frequency_ghz}")
        # one weight tile (array_size x array_size at on-chip precision) must
        # fit in L1 next to at least as much activation staging space
        tile_kib = self.array_size * self.array_size * self.weight_bits / 8 / 1024
        if tile_kib > self.l1_kib:
            raise ValueError(
                f"L1 ({self.l1_kib} KiB) cannot hold one "
                f"{self.array_size}x{self.array_size} weight tile "
                f"({tile_kib:.0f} KiB at {self.weight_bits}-bit weights); "
                "increase l1_kib or shrink array_size")

    # -- derived quantities -------------------------------------------------------
    @property
    def uses_vq(self) -> bool:
        return self.compression is not CompressionMode.NONE

    @property
    def uses_mask(self) -> bool:
        return self.compression in (CompressionMode.CM, CompressionMode.CMS)

    @property
    def sparse_array(self) -> bool:
        return self.compression is CompressionMode.CMS

    @property
    def sparsity(self) -> float:
        """Weight sparsity from the N:M pattern (0 when no mask is used)."""
        if not self.uses_mask:
            return 0.0
        return 1.0 - self.n_keep / self.m_block

    @property
    def q_pes_per_group(self) -> int:
        """Q = N/M * d active PEs per d output channels in the sparse tile."""
        return max(1, (self.n_keep * self.subvector_length) // self.m_block)

    @property
    def assignment_bits_per_subvector(self) -> int:
        return int(math.ceil(math.log2(max(self.codebook_size, 2))))

    @property
    def mask_bits_per_subvector(self) -> int:
        if not self.uses_mask:
            return 0
        combos = math.comb(self.m_block, self.n_keep)
        per_block = int(math.ceil(math.log2(max(combos, 2))))
        return per_block * (self.subvector_length // self.m_block)

    @property
    def weight_load_bits_per_weight(self) -> float:
        """Bits fetched from L2 per (dense) weight during weight loading."""
        if not self.uses_vq:
            return float(self.weight_bits)
        per_subvector = self.assignment_bits_per_subvector + self.mask_bits_per_subvector
        return per_subvector / self.subvector_length

    @property
    def peak_tops(self) -> float:
        """Peak throughput 2 * H * L * f in TOPS (dense-equivalent)."""
        return 2 * self.array_size * self.array_size * self.frequency_ghz / 1e3

    @property
    def crf_read_ports(self) -> int:
        """The codebook register file needs L/d read ports (Section 5.2)."""
        if not self.uses_vq:
            return 0
        return max(1, self.array_size // self.subvector_length)

    def with_array_size(self, size: int) -> "AcceleratorConfig":
        return replace(self, array_size=size)


class HardwareSetting(enum.Enum):
    """The six settings of Section 7.1."""

    WS_BASE = "WS"
    WS_CMS = "WS-CMS"
    EWS_BASE = "EWS"
    EWS_C = "EWS-C"
    EWS_CM = "EWS-CM"
    EWS_CMS = "EWS-CMS"


def standard_setting(setting: HardwareSetting, array_size: int = 64,
                     l1_kib: Optional[int] = None, **overrides) -> AcceleratorConfig:
    """The paper's configuration for each hardware setting.

    EWS-C uses common VQ with k=1024, d=8 (no mask); EWS-CM / EWS-CMS /
    WS-CMS use masked VQ with k=512, d=16 and 4:16 sparsity — the matched
    ~22x compression-ratio pair from Section 7.1.  L1 is 128 KiB for the
    16x16 array and 256 KiB for 32x32 / 64x64 (Section 7.2).
    """
    if l1_kib is None:
        l1_kib = 128 if array_size <= 16 else 256

    base = dict(array_size=array_size, l1_kib=l1_kib)
    if setting is HardwareSetting.WS_BASE:
        cfg = AcceleratorConfig(dataflow=Dataflow.WS, compression=CompressionMode.NONE, **base)
    elif setting is HardwareSetting.WS_CMS:
        cfg = AcceleratorConfig(dataflow=Dataflow.WS, compression=CompressionMode.CMS,
                                codebook_size=512, subvector_length=16, n_keep=4, m_block=16, **base)
    elif setting is HardwareSetting.EWS_BASE:
        cfg = AcceleratorConfig(dataflow=Dataflow.EWS, compression=CompressionMode.NONE, **base)
    elif setting is HardwareSetting.EWS_C:
        cfg = AcceleratorConfig(dataflow=Dataflow.EWS, compression=CompressionMode.C,
                                codebook_size=1024, subvector_length=8, n_keep=8, m_block=8, **base)
    elif setting is HardwareSetting.EWS_CM:
        cfg = AcceleratorConfig(dataflow=Dataflow.EWS, compression=CompressionMode.CM,
                                codebook_size=512, subvector_length=16, n_keep=4, m_block=16, **base)
    elif setting is HardwareSetting.EWS_CMS:
        cfg = AcceleratorConfig(dataflow=Dataflow.EWS, compression=CompressionMode.CMS,
                                codebook_size=512, subvector_length=16, n_keep=4, m_block=16, **base)
    else:
        raise ValueError(f"unknown setting {setting}")
    if overrides:
        cfg = replace(cfg, **overrides)
    return cfg


ALL_SETTINGS = [
    HardwareSetting.WS_BASE,
    HardwareSetting.WS_CMS,
    HardwareSetting.EWS_BASE,
    HardwareSetting.EWS_C,
    HardwareSetting.EWS_CM,
    HardwareSetting.EWS_CMS,
]

#: ``accelerator`` spec keys that map straight onto AcceleratorConfig fields
#: (``dataflow`` additionally accepts its string value, e.g. ``"ews"``)
HARDWARE_OVERRIDE_KEYS = (
    "l1_kib", "l2_kib", "dma_width_bits", "l1_width_bits", "frequency_ghz",
    "wrf_entries", "dataflow",
)


def config_from_spec(spec: Dict) -> AcceleratorConfig:
    """An :class:`AcceleratorConfig` from a pipeline ``accelerator`` section.

    Reads ``setting`` (a :class:`HardwareSetting` value, default EWS-CMS),
    ``array_size`` and any of :data:`HARDWARE_OVERRIDE_KEYS`; everything else
    in the section (``workload``, ``derive_vq``, ...) is ignored here.
    Raises ``ValueError`` with the offending field named when the combination
    is invalid, so sweeps can reject a candidate before any compute.
    """
    setting = HardwareSetting(spec.get("setting", "EWS-CMS"))
    overrides = {key: spec[key] for key in HARDWARE_OVERRIDE_KEYS if key in spec}
    if isinstance(overrides.get("dataflow"), str):
        overrides["dataflow"] = Dataflow(overrides["dataflow"])
    return standard_setting(setting, array_size=int(spec.get("array_size", 64)),
                            **overrides)
