"""Energy model calibrated to the paper's Table 8 access costs.

Table 8 normalises every data-access energy to the cost of one MAC
operation:

    DRAM 200, L2 15, L1 6, PRF 0.22, ARF 0.11, WRF 0.02, CRF 0.02.

We adopt those numbers directly as the calibration points of the model (the
same way the paper builds its own energy analysis) and charge them against
the access counts produced by :mod:`repro.accelerator.dataflow`.  Memory
accesses are charged per byte, register files per element access, MACs per
executed multiply-accumulate.

Two further terms complete the Fig. 16 power picture:

* **zero-value gating** (Section 5.3): when either multiplier operand is
  zero the PE does not toggle, so MAC switching energy scales with the
  fraction of non-gated operations.  Dense-array settings (EWS-C/EWS-CM)
  benefit from the many zero weights N:M pruning leaves behind; the sparse
  array (CMS) skips those MACs entirely and only gates on zero activations.
* **array background power**: clock tree, idle registers and control of the
  physical array, proportional to the array (+ CRF) area and the runtime.
  This is what separates EWS-CM from EWS-CMS — the sparse tile is ~55%
  smaller, so it burns proportionally less background power.

The absolute scale ``mac_energy_pj`` converts the normalised total into
Joules so efficiencies come out in TOPS/W, and a constant "others" power
(CPU, DMA, interfaces, IO in Fig. 16) adds a runtime-proportional term.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional

from repro.accelerator.area import AreaModel
from repro.accelerator.config import AcceleratorConfig
from repro.accelerator.dataflow import NetworkAnalysis, analyze_network
from repro.accelerator.workloads import LayerShape

#: Normalised access energy, one MAC operation = 1.0 (paper Table 8).
ENERGY_COSTS: Dict[str, float] = {
    "mac": 1.0,
    "dram": 200.0,
    "l2": 15.0,
    "l1": 6.0,
    "prf": 0.22,
    "arf": 0.11,
    "wrf": 0.02,
    "crf": 0.02,
}


@dataclass
class EnergyBreakdown:
    """Energy per component, in MAC-normalised units."""

    mac: float = 0.0
    array_background: float = 0.0
    dram: float = 0.0
    l2: float = 0.0
    l1: float = 0.0
    prf: float = 0.0
    arf: float = 0.0
    wrf: float = 0.0
    crf: float = 0.0
    others: float = 0.0

    @property
    def accelerator(self) -> float:
        """The 'Accel' bar of Fig. 16: array MACs, background and register files."""
        return self.mac + self.array_background + self.prf + self.arf + self.wrf + self.crf

    @property
    def on_chip_total(self) -> float:
        """Total excluding DRAM (the paper's efficiency numbers exclude DRAM)."""
        return self.accelerator + self.l1 + self.l2 + self.others

    @property
    def total(self) -> float:
        return self.on_chip_total + self.dram

    @property
    def data_access_total(self) -> float:
        """All data-movement energy (the quantity of Figs. 14/15), excluding MACs."""
        return self.dram + self.l2 + self.l1 + self.prf + self.arf + self.wrf + self.crf

    def as_dict(self) -> Dict[str, float]:
        return {
            "mac": self.mac, "array_background": self.array_background,
            "dram": self.dram, "l2": self.l2, "l1": self.l1, "prf": self.prf,
            "arf": self.arf, "wrf": self.wrf, "crf": self.crf, "others": self.others,
        }


class EnergyModel:
    """Turns access counts into energy, power and efficiency numbers."""

    def __init__(self, costs: Optional[Dict[str, float]] = None,
                 mac_energy_pj: float = 0.35,
                 others_power_mw: float = 80.0,
                 others_reference_array: int = 64,
                 others_power_exponent: float = 0.5,
                 activation_zero_fraction: float = 0.4,
                 baseline_weight_zero_fraction: float = 0.05,
                 array_background_per_pe: float = 0.15,
                 sparse_tile_background_fraction: float = 0.35,
                 area_model: Optional[AreaModel] = None,
                 measured_gating: Optional[Dict[str, float]] = None):
        """Parameters
        ----------
        mac_energy_pj:
            Absolute energy of one MAC (converts normalised units to Joules).
        others_power_mw:
            Constant power of everything outside the datapath energy counts:
            CPU, DMA, interfaces, IO and SRAM clock/leakage (the 'Other' bar
            of Fig. 16 plus the static part of L1/L2), quoted for the
            ``others_reference_array`` size and scaled as
            ``(array_size / reference) ** others_power_exponent`` — a larger
            array needs wider DMA/interconnect (Table 7's 'Others' area grows
            with array size).
        activation_zero_fraction:
            Fraction of zero activations (post-ReLU), used by zero gating.
        baseline_weight_zero_fraction:
            Fraction of exactly-zero weights in an uncompressed int8 model.
        array_background_per_pe:
            Clock/idle energy per dense PE per cycle (register files, pipeline
            and clock tree), in MAC-normalised units.
        sparse_tile_background_fraction:
            Background energy of the sparse (CMS) tile relative to a dense
            tile of the same logical width — the sparse tile keeps the adder
            tree and DEMUX/MUX network but only Q of d multipliers/WRFs
            (Table 2), roughly half the dense cost at 4:16.
        measured_gating:
            Optional per-array gating rates ``{"dense": r, "sparse": r}``
            measured from the functional tile simulation
            (:func:`repro.accelerator.systolic.stream_gating_stats`); when
            present they replace the closed-form zero-fraction heuristics
            in the MAC energy term.
        """
        self.costs = dict(ENERGY_COSTS if costs is None else costs)
        self.mac_energy_pj = mac_energy_pj
        self.others_power_mw = others_power_mw
        self.others_reference_array = others_reference_array
        self.others_power_exponent = others_power_exponent
        self.activation_zero_fraction = activation_zero_fraction
        self.baseline_weight_zero_fraction = baseline_weight_zero_fraction
        self.array_background_per_pe = array_background_per_pe
        self.sparse_tile_background_fraction = sparse_tile_background_fraction
        self.area_model = area_model or AreaModel()
        self.measured_gating = dict(measured_gating or {})

    # -- core accounting -----------------------------------------------------------
    def _mac_energy(self, analysis: NetworkAnalysis, config: AcceleratorConfig) -> float:
        access = analysis.access
        act_zero = self.activation_zero_fraction
        if config.sparse_array:
            # zero weights are skipped structurally; gating only on activations
            gating = self.measured_gating.get("sparse", act_zero)
            macs = access.effective_macs
        else:
            weight_zero = config.sparsity if config.uses_mask else self.baseline_weight_zero_fraction
            gating = self.measured_gating.get(
                "dense", weight_zero + (1.0 - weight_zero) * act_zero)
            macs = access.dense_macs
        return macs * (1.0 - gating) * self.costs["mac"]

    @classmethod
    def from_stream_stats(cls, dense_stats=None, sparse_stats=None, **kwargs
                          ) -> "EnergyModel":
        """Energy model whose MAC gating terms come from functional-tile
        measurements (:func:`repro.accelerator.systolic.stream_gating_stats`)
        instead of the closed-form zero-fraction heuristics."""
        measured = dict(kwargs.pop("measured_gating", {}))
        if dense_stats is not None:
            measured["dense"] = dense_stats.gating_rate
        if sparse_stats is not None:
            measured["sparse"] = sparse_stats.gating_rate
        return cls(measured_gating=measured, **kwargs)

    def _array_background(self, analysis: NetworkAnalysis, config: AcceleratorConfig) -> float:
        pes = config.array_size * config.array_size
        if config.sparse_array:
            pes *= self.sparse_tile_background_fraction
        return pes * self.array_background_per_pe * analysis.cycles

    def _others_power_mw(self, config: AcceleratorConfig) -> float:
        scale = (config.array_size / self.others_reference_array) ** self.others_power_exponent
        return self.others_power_mw * scale

    def breakdown(self, analysis: NetworkAnalysis, config: AcceleratorConfig) -> EnergyBreakdown:
        access = analysis.access
        runtime_s = analysis.cycles / (config.frequency_ghz * 1e9)
        others_pj = self._others_power_mw(config) * 1e-3 * runtime_s * 1e12
        others_norm = others_pj / self.mac_energy_pj

        wrf_accesses = access.wrf_accesses
        if config.sparse_array:
            # only the Q active PEs read their WRF each cycle
            wrf_accesses *= 1.0 - config.sparsity

        return EnergyBreakdown(
            mac=self._mac_energy(analysis, config),
            array_background=self._array_background(analysis, config),
            dram=access.dram_bytes * self.costs["dram"],
            l2=access.l2_bytes * self.costs["l2"],
            l1=access.l1_bytes * self.costs["l1"],
            prf=access.prf_accesses * self.costs["prf"],
            arf=access.arf_accesses * self.costs["arf"],
            wrf=wrf_accesses * self.costs["wrf"],
            crf=access.crf_accesses * self.costs["crf"],
            others=others_norm,
        )

    # -- derived metrics --------------------------------------------------------------
    def energy_joules(self, breakdown: EnergyBreakdown, include_dram: bool = False) -> float:
        units = breakdown.total if include_dram else breakdown.on_chip_total
        return units * self.mac_energy_pj * 1e-12

    def efficiency_tops_per_watt(self, analysis: NetworkAnalysis,
                                 config: AcceleratorConfig,
                                 include_dram: bool = False) -> float:
        """TOPS/W using dense-equivalent operations, excluding DRAM by default
        (matching the note under Fig. 19)."""
        breakdown = self.breakdown(analysis, config)
        energy = self.energy_joules(breakdown, include_dram)
        return analysis.total_ops / energy / 1e12

    def power_breakdown_mw(self, analysis: NetworkAnalysis,
                           config: AcceleratorConfig) -> Dict[str, float]:
        """Average power by component (the bars of Fig. 16), in milliwatts."""
        breakdown = self.breakdown(analysis, config)
        runtime_s = analysis.cycles / (config.frequency_ghz * 1e9)
        to_mw = self.mac_energy_pj * 1e-12 / max(runtime_s, 1e-30) * 1e3
        return {
            "accel": breakdown.accelerator * to_mw,
            "l1": breakdown.l1 * to_mw,
            "l2": breakdown.l2 * to_mw,
            "others": breakdown.others * to_mw,
        }

    def data_access_cost(self, analysis: NetworkAnalysis, config: AcceleratorConfig) -> float:
        """Total data-movement energy (normalised units) — the Fig. 14/15 quantity."""
        return self.breakdown(analysis, config).data_access_total

    def data_access_by_level(self, analysis: NetworkAnalysis,
                             config: AcceleratorConfig) -> Dict[str, float]:
        breakdown = self.breakdown(analysis, config)
        return {
            "dram": breakdown.dram,
            "l2": breakdown.l2,
            "l1": breakdown.l1,
            "prf": breakdown.prf,
            "arf": breakdown.arf,
            "wrf": breakdown.wrf,
            "crf": breakdown.crf,
        }


def data_access_reduction(layers: Iterable[LayerShape], base_config: AcceleratorConfig,
                          mvq_config: AcceleratorConfig,
                          model: Optional[EnergyModel] = None,
                          skip_depthwise: bool = False) -> float:
    """Ratio of data-access energy (base / MVQ) — the bars of Fig. 15."""
    model = model or EnergyModel()
    layers = list(layers)
    base = analyze_network(layers, base_config, skip_depthwise=skip_depthwise)
    mvq = analyze_network(layers, mvq_config, skip_depthwise=skip_depthwise)
    return model.data_access_cost(base, base_config) / model.data_access_cost(mvq, mvq_config)
