"""Component-level area model (Table 7 / Table 2).

The per-tile resource counts follow Table 2 of the paper:

================  ==================  ==========================================
Component         EWS (dense tile)    EWS-Sparse (CMS tile)
================  ==================  ==========================================
Multipliers       H x d               H x Q
Adders            H x d               H x d
RF bits           H x d x 16 x bw     H x Q x 16 x bw + H x Q x 16 x log2(d)
LZC               --                  H x Q
DEMUX             --                  H x Q x b_psum
MUX               --                  H x Q x bw
================  ==================  ==========================================

Unit areas are free parameters of the model; the defaults below were fitted
(least squares over the twelve accelerator-block entries of Table 7) so that
the synthesised areas the paper reports are reproduced to within ~15%.  The
L1/L2/"others" entries of Table 7 are kept as direct calibration tables
since they come from SRAM compilers and SoC components we do not model.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional

from repro.accelerator.config import (
    AcceleratorConfig,
    CompressionMode,
    Dataflow,
    HardwareSetting,
    standard_setting,
)


@dataclass
class UnitAreas:
    """Per-instance areas in um^2 (40 nm, fitted to the paper's Table 7)."""

    multiplier: float = 420.0        # 8x8-bit multiplier
    adder: float = 140.0             # 24-bit adder
    register_bit: float = 1.6        # one register-file bit
    pe_control: float = 90.0         # per-PE control / pipeline overhead
    lzc: float = 45.0                # leading-zero counter
    demux_per_bit: float = 1.6
    mux_per_bit: float = 1.6
    crf_bit: float = 4.0             # codebook RF bit (multi-ported)
    crf_port_factor: float = 0.15    # extra CRF area per additional read port
    loader_fixed: float = 45_000.0   # weight loader + LUT + controllers


@dataclass
class AreaBreakdown:
    """Area in mm^2 by block, mirroring the rows of Table 7."""

    array: float
    crf: float
    loader: float
    l1: float
    l2: float
    others: float

    @property
    def accelerator(self) -> float:
        """The 'Accelerator' row of Table 7 (array + CRF + loader)."""
        return self.array + self.crf + self.loader

    @property
    def total(self) -> float:
        return self.accelerator + self.l1 + self.l2 + self.others

    def as_dict(self) -> Dict[str, float]:
        return {
            "array": self.array, "crf": self.crf, "loader": self.loader,
            "l1": self.l1, "l2": self.l2, "others": self.others,
        }


#: SRAM / SoC block areas (mm^2) taken directly from Table 7.
L1_AREA_MM2 = {128: 0.484, 256: 0.968}
L2_AREA_MM2 = 6.924
OTHERS_AREA_MM2 = {16: 0.787, 32: 1.303, 64: 1.659}


class AreaModel:
    """Computes accelerator area for any configuration."""

    def __init__(self, units: Optional[UnitAreas] = None):
        self.units = units or UnitAreas()

    # -- array ------------------------------------------------------------------
    def _dense_pe_area(self, config: AcceleratorConfig, wrf_entries: int) -> float:
        u = self.units
        rf_bits = wrf_entries * config.weight_bits
        return u.multiplier + u.adder + rf_bits * u.register_bit + u.pe_control

    def _sparse_group_area(self, config: AcceleratorConfig) -> float:
        """Area of one d-output-channel group in the sparse tile (Q PEs + tree)."""
        u = self.units
        d = config.subvector_length
        q = config.q_pes_per_group
        wrf_bits = config.wrf_entries * config.weight_bits
        mrf_bits = config.wrf_entries * max(1, int(math.ceil(math.log2(d))))
        area = q * (u.multiplier + u.pe_control)
        area += d * u.adder                                  # adder tree depth d
        area += q * (wrf_bits + mrf_bits) * u.register_bit   # WRF + MRF
        area += q * u.lzc
        area += q * config.psum_bits * u.demux_per_bit
        area += q * config.weight_bits * u.mux_per_bit
        return area

    def array_area_mm2(self, config: AcceleratorConfig) -> float:
        h = l = config.array_size
        if config.dataflow is Dataflow.WS:
            wrf_entries = 2          # current + next weight only
            arf_prf_bits = 0
        else:
            wrf_entries = config.wrf_entries
            # ARF (activations) + PRF (psums) per PE row/column pair
            arf_prf_bits = config.wrf_entries * (config.activation_bits + config.psum_bits)

        if config.sparse_array:
            groups_per_row = l // config.subvector_length
            area = h * groups_per_row * self._sparse_group_area(config)
            # the sparse tile keeps ARF/PRF only for its Q active PEs per group
            arf_prf_scale = config.q_pes_per_group / config.subvector_length
        else:
            area = h * l * self._dense_pe_area(config, wrf_entries)
            arf_prf_scale = 1.0
        if config.dataflow is Dataflow.EWS:
            area += h * l * arf_prf_bits * self.units.register_bit * 0.25 * arf_prf_scale
        return area / 1e6

    # -- codebook register file ---------------------------------------------------
    def crf_area_mm2(self, config: AcceleratorConfig) -> float:
        if not config.uses_vq:
            return 0.0
        bits = config.codebook_size * config.subvector_length * config.codebook_bits
        ports = config.crf_read_ports
        area = bits * self.units.crf_bit * (1.0 + self.units.crf_port_factor * (ports - 1))
        return area / 1e6

    def loader_area_mm2(self, config: AcceleratorConfig) -> float:
        if not config.uses_vq:
            return 0.0
        return self.units.loader_fixed / 1e6

    # -- totals ---------------------------------------------------------------------
    def breakdown(self, config: AcceleratorConfig) -> AreaBreakdown:
        l1 = L1_AREA_MM2.get(config.l1_kib, 0.968 * config.l1_kib / 256)
        others = OTHERS_AREA_MM2.get(config.array_size,
                                     OTHERS_AREA_MM2[64] * config.array_size / 64)
        return AreaBreakdown(
            array=self.array_area_mm2(config),
            crf=self.crf_area_mm2(config),
            loader=self.loader_area_mm2(config),
            l1=l1,
            l2=L2_AREA_MM2,
            others=others,
        )

    def accelerator_area_mm2(self, config: AcceleratorConfig) -> float:
        return self.breakdown(config).accelerator

    def table7(self, array_sizes=(16, 32, 64)) -> Dict[str, Dict[int, float]]:
        """Accelerator-block areas for the rows of Table 7."""
        rows = {
            "WS": HardwareSetting.WS_BASE,
            "EWS": HardwareSetting.EWS_BASE,
            "EWS-C/CM": HardwareSetting.EWS_CM,
            "EWS-CMS": HardwareSetting.EWS_CMS,
        }
        table: Dict[str, Dict[int, float]] = {}
        for label, setting in rows.items():
            table[label] = {}
            for size in array_sizes:
                config = standard_setting(setting, array_size=size)
                table[label][size] = self.accelerator_area_mm2(config)
        return table
