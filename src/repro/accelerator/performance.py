"""Performance model: cycles, runtime, throughput and speedups (Fig. 17)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro.accelerator.config import (
    AcceleratorConfig,
    HardwareSetting,
    standard_setting,
)
from repro.accelerator.dataflow import NetworkAnalysis, analyze_network
from repro.accelerator.energy import EnergyModel
from repro.accelerator.workloads import LayerShape


@dataclass
class NetworkPerformance:
    """Runtime-level summary of one (network, configuration) pair."""

    config: AcceleratorConfig
    analysis: NetworkAnalysis

    @property
    def cycles(self) -> float:
        return self.analysis.cycles

    @property
    def runtime_s(self) -> float:
        return self.cycles / (self.config.frequency_ghz * 1e9)

    @property
    def throughput_tops(self) -> float:
        """Achieved dense-equivalent TOPS."""
        return self.analysis.total_ops / self.runtime_s / 1e12

    @property
    def utilization(self) -> float:
        """Achieved / peak throughput."""
        return self.throughput_tops / self.config.peak_tops

    @property
    def weight_bound_fraction(self) -> float:
        """Fraction of layers whose runtime is set by weight loading."""
        layers = self.analysis.layers
        if not layers:
            return 0.0
        return sum(1 for a in layers if a.weight_bound) / len(layers)


class PerformanceModel:
    """Evaluates networks across hardware settings and array sizes."""

    def __init__(self, energy_model: Optional[EnergyModel] = None):
        self.energy_model = energy_model or EnergyModel()

    def evaluate(self, layers: Iterable[LayerShape], config: AcceleratorConfig,
                 skip_depthwise: bool = False) -> NetworkPerformance:
        analysis = analyze_network(list(layers), config, skip_depthwise=skip_depthwise)
        return NetworkPerformance(config=config, analysis=analysis)

    def speedup(self, layers: Iterable[LayerShape], config: AcceleratorConfig,
                baseline: AcceleratorConfig, skip_depthwise: bool = False) -> float:
        """Runtime ratio baseline / config (>1 means ``config`` is faster)."""
        layers = list(layers)
        ours = self.evaluate(layers, config, skip_depthwise)
        base = self.evaluate(layers, baseline, skip_depthwise)
        return base.cycles / ours.cycles

    def efficiency(self, layers: Iterable[LayerShape], config: AcceleratorConfig,
                   skip_depthwise: bool = False) -> float:
        """Energy efficiency in TOPS/W (Fig. 19/20), DRAM excluded."""
        analysis = analyze_network(list(layers), config, skip_depthwise=skip_depthwise)
        return self.energy_model.efficiency_tops_per_watt(analysis, config)

    # -- convenience sweeps -----------------------------------------------------------
    def setting_sweep(self, layers: Iterable[LayerShape],
                      settings: Iterable[HardwareSetting],
                      array_size: int = 64,
                      skip_depthwise: bool = False) -> Dict[str, NetworkPerformance]:
        layers = list(layers)
        results = {}
        for setting in settings:
            config = standard_setting(setting, array_size=array_size)
            results[setting.value] = self.evaluate(layers, config, skip_depthwise)
        return results

    def efficiency_sweep(self, layers: Iterable[LayerShape],
                         settings: Iterable[HardwareSetting],
                         array_sizes: Iterable[int] = (16, 32, 64),
                         skip_depthwise: bool = False) -> Dict[int, Dict[str, float]]:
        """TOPS/W for every (array size, hardware setting) pair — Fig. 19."""
        layers = list(layers)
        table: Dict[int, Dict[str, float]] = {}
        for size in array_sizes:
            row = {}
            for setting in settings:
                config = standard_setting(setting, array_size=size)
                row[setting.value] = self.efficiency(layers, config, skip_depthwise)
            table[size] = row
        return table
