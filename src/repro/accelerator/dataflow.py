"""WS / EWS dataflow loop-nest models: cycles and per-level access counts.

The model follows the paper's description of the two dataflows (Fig. 7):

* **WS** (weight stationary, C|K unfolding): a tile of ``H x L`` weights is
  held in the array while the output plane is traversed; every compute cycle
  fetches ``H`` activations from L1 and performs a read-modify-write of
  ``L`` partial sums against L1.  Switching to the next weight tile costs an
  array-depth pipeline drain.
* **EWS** adds the ``A``/``B``/``D`` extensions: activations are reused from
  the ARF for ``A x D`` consecutive weight switches and partial sums stay in
  the PRF for ``B x D`` switches, cutting the L1 access rate by those factors
  (Section 5.1).

Weight loading is modelled as a stream from DRAM through L2 into the array
over the ``dma_width_bits`` interface.  With vector quantization only the
assignments (and LUT-encoded masks) are streamed, which is the source of the
speedup the paper reports for weight-loading-bound layers (Fig. 17/18).

Counts are reported in **bytes** for the memories (DRAM / L2 / L1) and in
**element accesses** for the register files (PRF / ARF / WRF / CRF), matching
the granularity of the paper's Table 8 energy costs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.accelerator.config import AcceleratorConfig, CompressionMode, Dataflow
from repro.accelerator.workloads import LayerShape


@dataclass
class AccessCounts:
    """Per-memory-level traffic for one layer (or a whole network)."""

    dram_bytes: float = 0.0
    l2_bytes: float = 0.0
    l1_bytes: float = 0.0
    prf_accesses: float = 0.0
    arf_accesses: float = 0.0
    wrf_accesses: float = 0.0
    crf_accesses: float = 0.0
    effective_macs: float = 0.0      # MACs actually executed (sparse array skips zeros)
    dense_macs: float = 0.0          # MACs of the dense (uncompressed) layer

    def __add__(self, other: "AccessCounts") -> "AccessCounts":
        return AccessCounts(*[a + b for a, b in zip(self._astuple(), other._astuple())])

    def _astuple(self):
        return (self.dram_bytes, self.l2_bytes, self.l1_bytes, self.prf_accesses,
                self.arf_accesses, self.wrf_accesses, self.crf_accesses,
                self.effective_macs, self.dense_macs)

    def as_dict(self) -> Dict[str, float]:
        return {
            "dram_bytes": self.dram_bytes,
            "l2_bytes": self.l2_bytes,
            "l1_bytes": self.l1_bytes,
            "prf_accesses": self.prf_accesses,
            "arf_accesses": self.arf_accesses,
            "wrf_accesses": self.wrf_accesses,
            "crf_accesses": self.crf_accesses,
            "effective_macs": self.effective_macs,
            "dense_macs": self.dense_macs,
        }


#: WS has no WRF to prefetch the next weight tile into, so its weight
#: streaming overlaps only partially with compute (Section 2.3 / ref. [35]).
WS_WEIGHT_LOAD_OVERHEAD = 1.2


@dataclass
class LayerAnalysis:
    """Cycles and traffic of one layer on one accelerator configuration."""

    layer: LayerShape
    config: AcceleratorConfig
    compute_cycles: float
    weight_load_cycles: float
    l1_bound_cycles: float
    access: AccessCounts

    @property
    def cycles(self) -> float:
        """Weight loading is double-buffered, so the layer takes the max of the
        compute, weight-loading and L1-bandwidth bounds."""
        return max(self.compute_cycles, self.weight_load_cycles, self.l1_bound_cycles)

    @property
    def weight_bound(self) -> bool:
        return self.weight_load_cycles >= max(self.compute_cycles, self.l1_bound_cycles)


def _weight_stream_bits(layer: LayerShape, config: AcceleratorConfig) -> float:
    """Bits pulled from L2/DRAM to deliver this layer's weights to the array."""
    bits = layer.num_weights * config.weight_load_bits_per_weight
    if config.uses_vq:
        # one-time codebook initialisation per layer (Section 5.2); tiny but real
        bits += config.codebook_size * config.subvector_length * config.codebook_bits
    return bits


def _activation_spills_to_dram(layer: LayerShape, config: AcceleratorConfig) -> bool:
    """True when the ifmap + ofmap working set exceeds the L2 capacity.

    This is the VGG-16 early-layer effect the paper calls out in Section 7.3
    (large input feature maps must live in DRAM, lowering the reduction ratio).
    """
    act_bytes = (layer.input_elements + layer.output_elements) * config.activation_bits / 8
    return act_bytes > config.l2_kib * 1024


def analyze_layer(layer: LayerShape, config: AcceleratorConfig) -> LayerAnalysis:
    """Cycles + per-level access counts of ``layer`` on ``config``."""
    h = l = config.array_size
    r2 = layer.kernel_size**2
    e2 = layer.output_size**2
    macs = layer.macs

    if layer.depthwise:
        # depthwise kernels map to the array diagonal (Section 7.5)
        tiles_c = math.ceil(layer.in_channels / h)
        tiles_k = 1
        compute_cycles = tiles_c * r2 * e2
        active_cols = 1.0
    else:
        tiles_k = math.ceil(layer.out_channels / l)
        tiles_c = math.ceil(layer.in_channels / h)
        compute_cycles = tiles_k * tiles_c * r2 * e2
        active_cols = float(l)

    if config.dataflow is Dataflow.WS:
        # pipeline drain/refill when the stationary weight tile is switched
        compute_cycles += tiles_k * tiles_c * r2 * h

    weight_bits = _weight_stream_bits(layer, config)
    weight_load_cycles = weight_bits / config.dma_width_bits
    if config.dataflow is Dataflow.WS:
        weight_load_cycles *= WS_WEIGHT_LOAD_OVERHEAD

    # ---- memory traffic -------------------------------------------------------
    act_bytes = config.activation_bits / 8
    psum_bytes = config.psum_bits / 8
    weight_stream_bytes = weight_bits / 8

    # Array-side L1 traffic: activations in, partial sums read-modify-write.
    ifmap_l1_reads = macs / active_cols * act_bytes
    psum_l1_rmw = 2.0 * macs / h * psum_bytes
    if config.dataflow is Dataflow.EWS:
        ifmap_l1_reads /= config.ews_a * config.ews_d
        psum_l1_rmw /= config.ews_b * config.ews_d
        arf_accesses = macs / active_cols
        prf_accesses = 2.0 * macs / h
    else:
        arf_accesses = 0.0
        prf_accesses = 0.0

    # L1 fills from L2 and ofmap drain back
    ifmap_fill = layer.input_elements * act_bytes
    ofmap_drain = layer.output_elements * act_bytes
    l1_bytes = ifmap_l1_reads + psum_l1_rmw + ifmap_fill + ofmap_drain

    # L2 traffic: weights stream through, activations staged once per layer
    l2_bytes = weight_stream_bytes + ifmap_fill + ofmap_drain

    # DRAM traffic: weights always stream from DRAM (model weights exceed L2
    # between layers); activations only when the working set exceeds L2
    dram_bytes = weight_stream_bytes
    if _activation_spills_to_dram(layer, config):
        dram_bytes += ifmap_fill + ofmap_drain

    # Register files
    wrf_accesses = float(macs)
    crf_accesses = (layer.num_weights / config.subvector_length) if config.uses_vq else 0.0

    # MACs actually executed: the sparse tile only computes unpruned weights
    if config.sparse_array:
        effective_macs = macs * (1.0 - config.sparsity)
    else:
        effective_macs = float(macs)

    # Array-side L1 bandwidth bound: the array cannot run faster than L1 can
    # feed activations and absorb partial sums (only binding for WS, whose
    # per-cycle L1 traffic is A*D / B*D times higher than EWS's).
    l1_bound_cycles = (ifmap_l1_reads + psum_l1_rmw) / (config.l1_width_bits / 8)

    access = AccessCounts(
        dram_bytes=dram_bytes,
        l2_bytes=l2_bytes,
        l1_bytes=l1_bytes,
        prf_accesses=prf_accesses,
        arf_accesses=arf_accesses,
        wrf_accesses=wrf_accesses,
        crf_accesses=crf_accesses,
        effective_macs=effective_macs,
        dense_macs=float(macs),
    )
    return LayerAnalysis(layer=layer, config=config, compute_cycles=compute_cycles,
                         weight_load_cycles=weight_load_cycles,
                         l1_bound_cycles=l1_bound_cycles, access=access)


@dataclass
class NetworkAnalysis:
    """Aggregate of per-layer analyses for a whole network."""

    layers: List[LayerAnalysis] = field(default_factory=list)

    @property
    def cycles(self) -> float:
        return sum(a.cycles for a in self.layers)

    @property
    def compute_cycles(self) -> float:
        return sum(a.compute_cycles for a in self.layers)

    @property
    def weight_load_cycles(self) -> float:
        return sum(a.weight_load_cycles for a in self.layers)

    @property
    def access(self) -> AccessCounts:
        total = AccessCounts()
        for a in self.layers:
            total = total + a.access
        return total

    @property
    def dense_macs(self) -> float:
        return sum(a.access.dense_macs for a in self.layers)

    @property
    def total_ops(self) -> float:
        """Dense-equivalent operations (2 per MAC), the paper's TOPS numerator."""
        return 2.0 * self.dense_macs


def analyze_network(layers: Iterable[LayerShape], config: AcceleratorConfig,
                    skip_depthwise: bool = False) -> NetworkAnalysis:
    """Analyse every layer of a network on one configuration.

    ``skip_depthwise=True`` reproduces the paper's MobileNet reporting, which
    presents pointwise-convolution results only (Section 7.5).
    """
    analysis = NetworkAnalysis()
    for layer in layers:
        if skip_depthwise and layer.depthwise:
            continue
        analysis.layers.append(analyze_layer(layer, config))
    return analysis
