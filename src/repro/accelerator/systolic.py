"""Functional model of the dense and sparse systolic tiles (Section 5.3, Fig. 8/9).

These classes model a single tile of the array at the level of its datapath
behaviour: the LZC cascade that encodes an N:M sparsity mask into position
indices, the MRF/WRF pair, the DEMUX routing of the Q partial products to
the adder tree, and the zero-value-gated PE.  They exist to demonstrate
(and test) that the sparse tile with ``Q = N/M * d`` multipliers computes
exactly the same partial sums as a dense tile with ``d`` multipliers — the
property the 55% area saving of Table 7 rests on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np


def lzc_encode_mask(mask: np.ndarray) -> List[int]:
    """Cascaded leading-zero-counter encoding of a d-bit sparsity mask.

    Returns the positions of the set bits in ascending order — exactly what
    the Q cascaded LZCs of Fig. 8 produce: stage ``i`` reports the index of
    the first bit still set after the previous stage XOR-ed out the bit it
    found, so the cascade as a whole enumerates set bits in ascending
    order.  That enumeration is precisely ``np.flatnonzero``, which
    replaces the original stage-by-stage argmax loop with one vectorized
    scan (the cascaded-semantics test pins the equivalence down).
    """
    return [int(i) for i in np.flatnonzero(np.asarray(mask, dtype=bool))]


@dataclass
class StreamStats:
    """Aggregate gating statistics of a batched tile stream.

    ``gated_per_pe``/``active_per_pe`` hold one count per physical PE of the
    tile — by construction identical to what the scalar per-call path
    accumulates in each :class:`ZeroGatedPE`.
    """

    gated_per_pe: np.ndarray
    active_per_pe: np.ndarray

    @property
    def gated_ops(self) -> int:
        return int(self.gated_per_pe.sum())

    @property
    def active_ops(self) -> int:
        return int(self.active_per_pe.sum())

    @property
    def gating_rate(self) -> float:
        total = self.gated_ops + self.active_ops
        return self.gated_ops / total if total else 0.0

    def merge(self, other: "StreamStats") -> "StreamStats":
        return StreamStats(self.gated_per_pe + other.gated_per_pe,
                           self.active_per_pe + other.active_per_pe)


@dataclass
class ZeroGatedPE:
    """A multiply-accumulate PE with zero-value gating (Fig. 9).

    When either operand of the upcoming multiplication is zero, the operand
    registers are not toggled and the multiplier output is forced to zero —
    the PE still produces the correct product (0) but records that the
    multiplier did not switch, which the energy model uses.
    """

    gated_ops: int = 0
    active_ops: int = 0
    _held_weight: float = 0.0
    _held_input: float = 0.0

    def multiply(self, weight: float, activation: float) -> float:
        if weight == 0.0 or activation == 0.0:
            self.gated_ops += 1
            return 0.0
        self.active_ops += 1
        self._held_weight = weight
        self._held_input = activation
        return weight * activation

    @property
    def gating_rate(self) -> float:
        total = self.gated_ops + self.active_ops
        return self.gated_ops / total if total else 0.0


def _pack_stream(weights: np.ndarray, mask: np.ndarray, q: int
                 ) -> Tuple[np.ndarray, np.ndarray]:
    """Batched LZC pack: per-row PE weights and engagement for a subvector
    stream.  Returns ``(packed, engaged)``, both ``(S, q)`` — ``packed`` is
    each row's kept weights in ascending mask position (the WRF contents),
    ``engaged`` marks which PEs that row actually drives.  Raises when any
    row keeps more weights than the tile has PEs."""
    counts = mask.sum(axis=1)
    if counts.max(initial=0) > q:
        raise ValueError(
            f"mask has {int(counts.max())} kept weights but the tile only "
            f"has {q} PEs")
    # stable sort floats set bits first, in ascending position — exactly
    # the position order the cascaded LZCs produce
    order = np.argsort(~mask, axis=1, kind="stable")[:, :q]
    packed = np.take_along_axis(weights, order, axis=1)
    engaged = np.arange(q)[None, :] < counts[:, None]
    return packed, engaged


def _stream_pe_counts(weights: np.ndarray, activations: np.ndarray,
                      engaged: Optional[np.ndarray] = None
                      ) -> Tuple[np.ndarray, np.ndarray]:
    """Per-PE (gated, active) counts of streaming ``activations`` through
    PEs holding ``weights`` (S, Q) — pure mask reductions, no (S, T, Q)
    intermediate.  ``engaged`` (S, Q) marks which PEs a subvector drives."""
    weights = np.asarray(weights, dtype=np.float64)
    zero_acts = int(np.count_nonzero(np.asarray(activations) == 0.0))
    total_acts = int(np.asarray(activations).size)
    zero_w = weights == 0.0
    if engaged is not None:
        engaged_nonzero = (~zero_w & engaged).sum(axis=0)
        engaged_zero = (zero_w & engaged).sum(axis=0)
    else:
        engaged_nonzero = (~zero_w).sum(axis=0)
        engaged_zero = zero_w.sum(axis=0)
    # a PE holding a zero weight gates every cycle; otherwise it gates
    # exactly on the zero activations
    gated = engaged_zero * total_acts + engaged_nonzero * zero_acts
    active = engaged_nonzero * (total_acts - zero_acts)
    return gated.astype(np.int64), active.astype(np.int64)


class DenseTile:
    """A dense EWS tile: d multipliers per output-channel group."""

    def __init__(self, d: int):
        if d < 1:
            raise ValueError("d must be positive")
        self.d = d
        self.pes = [ZeroGatedPE() for _ in range(d)]

    def compute(self, weights: np.ndarray, activation: float) -> np.ndarray:
        """Partial sums of one activation against d per-output-channel weights."""
        weights = np.asarray(weights, dtype=np.float64)
        if weights.shape != (self.d,):
            raise ValueError(f"expected {self.d} weights")
        return np.array([pe.multiply(w, activation) for pe, w in zip(self.pes, weights)])

    def compute_stream(self, weights: np.ndarray, activations: np.ndarray
                       ) -> np.ndarray:
        """Batched :meth:`compute` over whole activation × subvector arrays.

        ``weights`` is ``(d,)`` (one subvector, returns ``(T, d)``) or
        ``(S, d)`` (a stream of subvectors, returns ``(S, T, d)``, as if
        each were computed against every activation in order).  Per-PE
        gating counters advance exactly as the scalar loop would — the
        counts come from mask reductions, not per-element calls.
        """
        weights = np.asarray(weights, dtype=np.float64)
        activations = np.asarray(activations, dtype=np.float64).reshape(-1)
        single = weights.ndim == 1
        w2 = weights[None, :] if single else weights
        if w2.ndim != 2 or w2.shape[1] != self.d:
            raise ValueError(f"expected subvectors of length {self.d}")
        # a gated product is exactly the zero one operand already is, so a
        # single broadcast multiply reproduces the scalar outputs; adding
        # +0.0 in place normalises the -0.0 cases the gating logic forces
        # to +0.0, keeping the stream bit-identical without (S, T, d)
        # boolean temporaries
        out = w2[:, None, :] * activations[None, :, None]
        np.add(out, 0.0, out=out)
        g, a = _stream_pe_counts(w2, activations)
        for i, pe in enumerate(self.pes):
            pe.gated_ops += int(g[i])
            pe.active_ops += int(a[i])
        self._latch_operands(w2, activations)
        return out[0] if single else out

    def _latch_operands(self, w2: np.ndarray, activations: np.ndarray) -> None:
        """Latch each PE's operand registers to its last non-gated pair,
        matching the scalar path's register state after the same stream.

        The last active (subvector, activation) pair in stream order is the
        last subvector whose weight is non-zero for this PE, paired with
        the last non-zero activation — two 1D scans, no (S, T) scan.
        """
        nonzero_acts = np.flatnonzero(activations != 0.0)
        if not nonzero_acts.size:
            return
        last_input = float(activations[nonzero_acts[-1]])
        for i, pe in enumerate(self.pes):
            rows = np.flatnonzero(w2[:, i] != 0.0)
            if rows.size:
                pe._held_weight = float(w2[rows[-1], i])
                pe._held_input = last_input

    @property
    def num_multipliers(self) -> int:
        return self.d


class SparseTile:
    """The sparse tile: Q multipliers + position DEMUX + depth-d adder tree.

    Weights are written together with their LZC-encoded positions (the MRF);
    at compute time each of the Q products is routed to its original output
    position, and the remaining positions receive zero — reproducing the
    dense tile's result with N/M of the multipliers.
    """

    def __init__(self, d: int, q: int):
        if not 0 < q <= d:
            raise ValueError("need 0 < Q <= d")
        self.d = d
        self.q = q
        self.pes = [ZeroGatedPE() for _ in range(q)]
        self._wrf: Optional[np.ndarray] = None     # Q packed weights
        self._mrf: Optional[List[int]] = None      # Q position encodings

    def load_weights(self, weights: np.ndarray, mask: np.ndarray) -> None:
        """Write one sparse weight subvector (and its mask) into WRF + MRF."""
        weights = np.asarray(weights, dtype=np.float64)
        mask = np.asarray(mask, dtype=bool)
        if weights.shape != (self.d,) or mask.shape != (self.d,):
            raise ValueError(f"expected subvectors of length {self.d}")
        positions = lzc_encode_mask(mask)
        if len(positions) > self.q:
            raise ValueError(
                f"mask has {len(positions)} kept weights but the tile only has {self.q} PEs"
            )
        self._mrf = positions
        self._wrf = weights[positions] if positions else np.zeros(0)

    def compute(self, activation: float) -> np.ndarray:
        """Partial sums routed back to their original d output positions."""
        if self._wrf is None or self._mrf is None:
            raise RuntimeError("load_weights must be called before compute")
        out = np.zeros(self.d)
        for pe, weight, position in zip(self.pes, self._wrf, self._mrf):
            out[position] = pe.multiply(weight, activation)
        return out

    def compute_stream(self, activations: np.ndarray) -> np.ndarray:
        """Batched :meth:`compute`: route the loaded subvector against a
        whole activation stream at once, returning ``(T, d)`` partial sums
        with per-PE gating counters identical to the scalar loop."""
        if self._wrf is None or self._mrf is None:
            raise RuntimeError("load_weights must be called before compute")
        activations = np.asarray(activations, dtype=np.float64).reshape(-1)
        out = np.zeros((activations.size, self.d))
        if self._mrf:
            wrf = self._wrf
            routed = activations[:, None] * wrf
            np.add(routed, 0.0, out=routed)   # normalise gated -0.0 to +0.0
            out[:, self._mrf] = routed
            g, a = _stream_pe_counts(wrf[None, :], activations)
            nonzero_acts = np.flatnonzero(activations != 0.0)
            for qi in range(len(self._mrf)):
                self.pes[qi].gated_ops += int(g[qi])
                self.pes[qi].active_ops += int(a[qi])
                if wrf[qi] != 0.0 and nonzero_acts.size:
                    self.pes[qi]._held_weight = float(wrf[qi])
                    self.pes[qi]._held_input = float(activations[nonzero_acts[-1]])
        return out

    def compute_stream_array(self, weights: np.ndarray, mask: np.ndarray,
                             activations: np.ndarray) -> np.ndarray:
        """Load-and-stream a whole ``(S, d)`` subvector array.

        Equivalent to ``load_weights(w[s], mask[s]); compute(a[t])`` for
        every ``(s, t)`` pair in order, but fully vectorized: positions
        come from one stable argsort (the batched LZC cascade), products
        and gating statistics from array reductions.  Returns ``(S, T, d)``
        routed partial sums; the WRF/MRF end up holding the last
        subvector, as the scalar sequence would leave them.
        """
        weights = np.asarray(weights, dtype=np.float64)
        mask = np.asarray(mask, dtype=bool)
        if weights.ndim != 2 or weights.shape[1] != self.d or mask.shape != weights.shape:
            raise ValueError(f"expected (S, {self.d}) weights and mask")
        activations = np.asarray(activations, dtype=np.float64).reshape(-1)
        packed, engaged = _pack_stream(weights, mask, self.q)    # (S, q) each

        # routed outputs: the DEMUX writes each product back to its mask
        # position and unengaged positions stay zero, so masked weights
        # reproduce the routing with one broadcast multiply (+0.0
        # normalises the gated -0.0 cases, as in the dense stream)
        out = (weights * mask)[:, None, :] * activations[None, :, None]
        np.add(out, 0.0, out=out)

        g, a = _stream_pe_counts(packed, activations, engaged=engaged)
        nonzero_acts = np.flatnonzero(activations != 0.0)
        for qi, pe in enumerate(self.pes):
            pe.gated_ops += int(g[qi])
            pe.active_ops += int(a[qi])
            # last non-gated (s, t) pair this PE saw, scanned in stream order
            eng_rows = np.flatnonzero(engaged[:, qi] & (packed[:, qi] != 0.0))
            if eng_rows.size and nonzero_acts.size:
                pe._held_weight = float(packed[eng_rows[-1], qi])
                pe._held_input = float(activations[nonzero_acts[-1]])
        if weights.shape[0]:
            self.load_weights(weights[-1], mask[-1])
        return out

    @property
    def num_multipliers(self) -> int:
        return self.q


def sparse_tile_matches_dense(weights: np.ndarray, mask: np.ndarray,
                              activations: np.ndarray, q: int) -> bool:
    """Check that a sparse tile reproduces the dense tile on masked weights."""
    weights = np.asarray(weights, dtype=np.float64)
    mask = np.asarray(mask, dtype=bool)
    d = weights.shape[0]
    dense = DenseTile(d)
    sparse = SparseTile(d, q)
    sparse.load_weights(weights * mask, mask)
    for activation in np.atleast_1d(activations):
        dense_out = dense.compute(weights * mask, float(activation))
        sparse_out = sparse.compute(float(activation))
        if not np.allclose(dense_out, sparse_out):
            return False
    return True


def stream_gating_stats(weights: np.ndarray, mask: np.ndarray,
                        activations: np.ndarray, q: int
                        ) -> Tuple[StreamStats, StreamStats]:
    """Gating statistics of streaming a whole layer through both tiles.

    Returns ``(dense_stats, sparse_stats)`` for a ``(S, d)`` masked-weight
    array against ``(T,)`` activations — the counts every PE of a dense
    tile (on the masked weights) and a sparse tile would accumulate.  Pure
    mask reductions: no ``(S, T, d)`` tensor is materialised, so
    layer-scale gating-rate sweeps run in milliseconds.
    """
    weights = np.asarray(weights, dtype=np.float64)
    mask = np.asarray(mask, dtype=bool)
    if weights.ndim != 2 or mask.shape != weights.shape:
        raise ValueError("expected matching (S, d) weights and mask")
    activations = np.asarray(activations, dtype=np.float64).reshape(-1)
    masked = weights * mask
    dense_stats = StreamStats(*_stream_pe_counts(masked, activations))
    packed, engaged = _pack_stream(masked, mask, q)
    sparse_stats = StreamStats(*_stream_pe_counts(packed, activations,
                                                  engaged=engaged))
    return dense_stats, sparse_stats


def sparse_stream_matches_dense(weights: np.ndarray, mask: np.ndarray,
                                activations: np.ndarray, q: int,
                                chunk: int = 4096) -> bool:
    """Batched Table-7 equivalence check on realistic layer sizes.

    Streams the whole ``(S, d)`` subvector array through a dense and a
    sparse tile in chunks and verifies identical routed partial sums plus
    identical *total* active-multiply counts (the per-PE split necessarily
    differs: the dense tile charges structural weight zeros as gated ops
    the sparse tile never sees).
    """
    weights = np.asarray(weights, dtype=np.float64)
    mask = np.asarray(mask, dtype=bool)
    d = weights.shape[1]
    dense = DenseTile(d)
    sparse = SparseTile(d, q)
    chunk = max(1, chunk)
    for lo in range(0, weights.shape[0], chunk):
        w = weights[lo:lo + chunk] * mask[lo:lo + chunk]
        m = mask[lo:lo + chunk]
        dense_out = dense.compute_stream(w, activations)
        sparse_out = sparse.compute_stream_array(w, m, activations)
        if not np.array_equal(dense_out, sparse_out):
            return False
    # every active multiply happens in both tiles; only the gated-op split
    # differs (the sparse tile never sees the structurally-zero weights)
    dense_active = sum(pe.active_ops for pe in dense.pes)
    sparse_active = sum(pe.active_ops for pe in sparse.pes)
    return dense_active == sparse_active
