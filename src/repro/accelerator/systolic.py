"""Functional model of the dense and sparse systolic tiles (Section 5.3, Fig. 8/9).

These classes model a single tile of the array at the level of its datapath
behaviour: the LZC cascade that encodes an N:M sparsity mask into position
indices, the MRF/WRF pair, the DEMUX routing of the Q partial products to
the adder tree, and the zero-value-gated PE.  They exist to demonstrate
(and test) that the sparse tile with ``Q = N/M * d`` multipliers computes
exactly the same partial sums as a dense tile with ``d`` multipliers — the
property the 55% area saving of Table 7 rests on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np


def lzc_encode_mask(mask: np.ndarray) -> List[int]:
    """Cascaded leading-zero-counter encoding of a d-bit sparsity mask.

    Returns the positions of the set bits in ascending order — exactly what
    the Q cascaded LZCs of Fig. 8 produce, one position per stage, with each
    stage XOR-ing out the bit found by the previous one.
    """
    mask = np.asarray(mask, dtype=bool)
    remaining = mask.copy()
    positions: List[int] = []
    while remaining.any():
        # leading-zero count == index of the first set bit
        first = int(np.argmax(remaining))
        positions.append(first)
        remaining[first] = False       # XOR with the one-hot of the found bit
    return positions


@dataclass
class ZeroGatedPE:
    """A multiply-accumulate PE with zero-value gating (Fig. 9).

    When either operand of the upcoming multiplication is zero, the operand
    registers are not toggled and the multiplier output is forced to zero —
    the PE still produces the correct product (0) but records that the
    multiplier did not switch, which the energy model uses.
    """

    gated_ops: int = 0
    active_ops: int = 0
    _held_weight: float = 0.0
    _held_input: float = 0.0

    def multiply(self, weight: float, activation: float) -> float:
        if weight == 0.0 or activation == 0.0:
            self.gated_ops += 1
            return 0.0
        self.active_ops += 1
        self._held_weight = weight
        self._held_input = activation
        return weight * activation

    @property
    def gating_rate(self) -> float:
        total = self.gated_ops + self.active_ops
        return self.gated_ops / total if total else 0.0


class DenseTile:
    """A dense EWS tile: d multipliers per output-channel group."""

    def __init__(self, d: int):
        if d < 1:
            raise ValueError("d must be positive")
        self.d = d
        self.pes = [ZeroGatedPE() for _ in range(d)]

    def compute(self, weights: np.ndarray, activation: float) -> np.ndarray:
        """Partial sums of one activation against d per-output-channel weights."""
        weights = np.asarray(weights, dtype=np.float64)
        if weights.shape != (self.d,):
            raise ValueError(f"expected {self.d} weights")
        return np.array([pe.multiply(w, activation) for pe, w in zip(self.pes, weights)])

    @property
    def num_multipliers(self) -> int:
        return self.d


class SparseTile:
    """The sparse tile: Q multipliers + position DEMUX + depth-d adder tree.

    Weights are written together with their LZC-encoded positions (the MRF);
    at compute time each of the Q products is routed to its original output
    position, and the remaining positions receive zero — reproducing the
    dense tile's result with N/M of the multipliers.
    """

    def __init__(self, d: int, q: int):
        if not 0 < q <= d:
            raise ValueError("need 0 < Q <= d")
        self.d = d
        self.q = q
        self.pes = [ZeroGatedPE() for _ in range(q)]
        self._wrf: Optional[np.ndarray] = None     # Q packed weights
        self._mrf: Optional[List[int]] = None      # Q position encodings

    def load_weights(self, weights: np.ndarray, mask: np.ndarray) -> None:
        """Write one sparse weight subvector (and its mask) into WRF + MRF."""
        weights = np.asarray(weights, dtype=np.float64)
        mask = np.asarray(mask, dtype=bool)
        if weights.shape != (self.d,) or mask.shape != (self.d,):
            raise ValueError(f"expected subvectors of length {self.d}")
        positions = lzc_encode_mask(mask)
        if len(positions) > self.q:
            raise ValueError(
                f"mask has {len(positions)} kept weights but the tile only has {self.q} PEs"
            )
        self._mrf = positions
        self._wrf = weights[positions] if positions else np.zeros(0)

    def compute(self, activation: float) -> np.ndarray:
        """Partial sums routed back to their original d output positions."""
        if self._wrf is None or self._mrf is None:
            raise RuntimeError("load_weights must be called before compute")
        out = np.zeros(self.d)
        for pe, weight, position in zip(self.pes, self._wrf, self._mrf):
            out[position] = pe.multiply(weight, activation)
        return out

    @property
    def num_multipliers(self) -> int:
        return self.q


def sparse_tile_matches_dense(weights: np.ndarray, mask: np.ndarray,
                              activations: np.ndarray, q: int) -> bool:
    """Check that a sparse tile reproduces the dense tile on masked weights."""
    weights = np.asarray(weights, dtype=np.float64)
    mask = np.asarray(mask, dtype=bool)
    d = weights.shape[0]
    dense = DenseTile(d)
    sparse = SparseTile(d, q)
    sparse.load_weights(weights * mask, mask)
    for activation in np.atleast_1d(activations):
        dense_out = dense.compute(weights * mask, float(activation))
        sparse_out = sparse.compute(float(activation))
        if not np.allclose(dense_out, sparse_out):
            return False
    return True
