"""Comparison against prior sparse CNN accelerators (Table 9).

The published numbers of SparTen, CGNet, SPOTS and S2TA are kept verbatim;
their energy efficiency is normalised to the 40 nm process with the scaling
equations of Stillmaker & Baas (the reference the paper uses), and the MVQ
rows are produced by our own performance/energy models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.accelerator.config import HardwareSetting, standard_setting
from repro.accelerator.performance import PerformanceModel
from repro.accelerator.area import AreaModel
from repro.accelerator.workloads import get_workload


#: Dynamic-energy scaling factors relative to 40 nm (derived from the
#: Stillmaker & Baas scaling equations: energy per op roughly follows the
#: square of the feature-size ratio at matched voltage).
_PROCESS_ENERGY_SCALE_TO_40NM = {
    16: 0.20,
    28: 0.54,
    40: 1.00,
    45: 1.22,
    65: 2.36,
}


def normalize_efficiency(tops_per_watt: float, process_nm: int) -> float:
    """Normalise an efficiency measured at ``process_nm`` to a 40 nm process.

    A design at a smaller node spends less energy per operation, so its
    efficiency is scaled *down* when projected to 40 nm, and vice versa.
    """
    if process_nm not in _PROCESS_ENERGY_SCALE_TO_40NM:
        raise ValueError(f"no scaling factor for a {process_nm} nm process")
    return tops_per_watt * _PROCESS_ENERGY_SCALE_TO_40NM[process_nm]


@dataclass
class AcceleratorDatasheet:
    """Published characteristics of one comparison accelerator."""

    name: str
    venue: str
    process_nm: int
    frequency_ghz: float
    macs: int
    sparsity: str
    quantization: str
    compression_ratio: Optional[float]
    workload: str
    dataflow: str
    peak_tops: float
    area_mm2: float
    efficiency_tops_w: float

    @property
    def normalized_efficiency(self) -> float:
        return normalize_efficiency(self.efficiency_tops_w, self.process_nm)


#: Published rows of Table 9 (prior works).
SOTA_ACCELERATORS: List[AcceleratorDatasheet] = [
    AcceleratorDatasheet("SparTen", "MICRO19", 45, 0.8, 32, "Random", "INT8",
                         None, "alexnet", "OS", 0.2, 0.766, 0.68),
    AcceleratorDatasheet("CGNet", "MICRO19", 28, 0.5, 576, "Channel-wise", "INT8",
                         10.0, "resnet18", "WS", 2.4, 5.574, 4.5),
    AcceleratorDatasheet("SPOTS", "TACO22", 45, 0.5, 512, "Group-wise", "INT16",
                         3.0, "vgg16", "OS", 0.5, 8.61, 0.47),
    AcceleratorDatasheet("S2TA", "HPCA22", 16, 1.0, 2048, "N:M", "INT8",
                         6.4, "alexnet", "OS", 8.0, 3.8, 14.0),
    AcceleratorDatasheet("S2TA-65", "HPCA22", 65, 0.5, 2048, "N:M", "INT8",
                         6.4, "alexnet", "OS", 4.0, 24.0, 1.1),
]


def mvq_rows(array_sizes=(16, 32, 64), workload: str = "resnet18",
             compression_ratio: float = 22.0) -> List[Dict[str, object]]:
    """Simulated MVQ-16/32/64 rows of Table 9 (our accelerator).

    ``compression_ratio`` defaults to the paper's ~22x; the pipeline's
    ``accel_eval`` stage passes the ratio actually measured on the
    compressed model so Table 9 reflects the deployed artifact.
    """
    performance = PerformanceModel()
    area_model = AreaModel()
    layers = get_workload(workload)()
    rows = []
    for size in array_sizes:
        config = standard_setting(HardwareSetting.EWS_CMS, array_size=size)
        efficiency = performance.efficiency(layers, config)
        breakdown = area_model.breakdown(config)
        rows.append({
            "name": f"MVQ-{size}",
            "process_nm": 40,
            "frequency_ghz": config.frequency_ghz,
            "macs": size * size // 4,          # Q PEs per group: N/M of the dense count
            "sparsity": "N:M (75%)",
            "quantization": "INT8",
            "compression_ratio": compression_ratio,
            "workload": workload,
            "dataflow": "EWS",
            "peak_tops": config.peak_tops,
            "area_mm2": breakdown.total,
            "efficiency_tops_w": efficiency,
            "normalized_efficiency": efficiency,   # already 40 nm
        })
    return rows


def comparison_table(workload: str = "resnet18") -> List[Dict[str, object]]:
    """Full Table 9: published prior works + our simulated MVQ designs."""
    rows: List[Dict[str, object]] = []
    for sheet in SOTA_ACCELERATORS:
        rows.append({
            "name": sheet.name,
            "process_nm": sheet.process_nm,
            "frequency_ghz": sheet.frequency_ghz,
            "macs": sheet.macs,
            "sparsity": sheet.sparsity,
            "quantization": sheet.quantization,
            "compression_ratio": sheet.compression_ratio,
            "workload": sheet.workload,
            "dataflow": sheet.dataflow,
            "peak_tops": sheet.peak_tops,
            "area_mm2": sheet.area_mm2,
            "efficiency_tops_w": sheet.efficiency_tops_w,
            "normalized_efficiency": sheet.normalized_efficiency,
        })
    rows.extend(mvq_rows(workload=workload))
    return rows
