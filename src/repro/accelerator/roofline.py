"""Roofline model for the EWS array (Fig. 18).

Operational intensity is computed against the weight-loading traffic from
L2, which is the bandwidth wall the paper identifies: for arrays larger than
32x32 the dense EWS design sits under the sloped (bandwidth-bound) region,
and MVQ compression moves the operating point to the right, past the ridge,
recovering compute-bound operation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional

from repro.accelerator.config import AcceleratorConfig
from repro.accelerator.dataflow import analyze_network
from repro.accelerator.workloads import LayerShape


@dataclass
class RooflinePoint:
    """One (operational intensity, attained performance) point."""

    label: str
    operational_intensity: float   # OPS per byte of weight traffic from L2
    performance_gops: float        # attained GOPS
    peak_gops: float
    bandwidth_gbps: float

    @property
    def bound(self) -> str:
        ridge = self.peak_gops / self.bandwidth_gbps
        return "memory" if self.operational_intensity < ridge else "compute"


class RooflineModel:
    """Builds roofline points for (network, config) pairs."""

    def __init__(self, config: AcceleratorConfig):
        self.config = config

    @property
    def peak_gops(self) -> float:
        return self.config.peak_tops * 1e3

    @property
    def weight_bandwidth_gbps(self) -> float:
        """Weight-loading bandwidth in GB/s: dma_width bits per cycle."""
        bytes_per_cycle = self.config.dma_width_bits / 8
        return bytes_per_cycle * self.config.frequency_ghz

    def point(self, layers: Iterable[LayerShape], label: str = "",
              skip_depthwise: bool = False) -> RooflinePoint:
        layers = list(layers)
        analysis = analyze_network(layers, self.config, skip_depthwise=skip_depthwise)
        total_ops = analysis.total_ops
        weight_bytes = sum(
            a.weight_load_cycles * self.config.dma_width_bits / 8 for a in analysis.layers
        )
        intensity = total_ops / max(weight_bytes, 1e-12)

        runtime_s = analysis.cycles / (self.config.frequency_ghz * 1e9)
        attained_gops = total_ops / runtime_s / 1e9
        roof = min(self.peak_gops, intensity * self.weight_bandwidth_gbps)
        return RooflinePoint(
            label=label,
            operational_intensity=intensity,
            performance_gops=min(attained_gops, roof),
            peak_gops=self.peak_gops,
            bandwidth_gbps=self.weight_bandwidth_gbps,
        )


def roofline_sweep(layers: Iterable[LayerShape], configs: List[AcceleratorConfig],
                   labels: Optional[List[str]] = None,
                   skip_depthwise: bool = False) -> List[RooflinePoint]:
    """Roofline points for a list of configurations (Fig. 18's markers)."""
    layers = list(layers)
    labels = labels or [f"config{i}" for i in range(len(configs))]
    points = []
    for config, label in zip(configs, labels):
        points.append(RooflineModel(config).point(layers, label, skip_depthwise))
    return points
