"""MVQ reproduction: masked vector quantization for DNN compression and acceleration.

Public API surface:

* :mod:`repro.nn`           — numpy DNN substrate (layers, models, training, data).
* :mod:`repro.core`         — the MVQ compression pipeline (grouping, N:M pruning,
  masked k-means, codebook quantization, masked-gradient fine-tuning).
* :mod:`repro.pipeline`     — declarative staged orchestration: JSON pipeline
  configs with per-layer overrides, content-hash artifact caching, scenario
  registry and the ``python -m repro.pipeline`` CLI.
* :mod:`repro.baselines`    — PQF / BGD / PvQ comparators.
* :mod:`repro.accelerator`  — EWS/WS systolic-array accelerator simulator with
  energy, area, performance and roofline models.
"""

from repro.core import (
    Codebook,
    CompressedModel,
    CodebookFinetuner,
    GroupingStrategy,
    LayerCompressionConfig,
    MVQCompressor,
    compression_ratio,
    CompressionSpec,
    masked_kmeans,
    kmeans,
    nm_prune_mask,
)

__version__ = "1.0.0"

__all__ = [
    "Codebook",
    "CompressedModel",
    "CodebookFinetuner",
    "GroupingStrategy",
    "LayerCompressionConfig",
    "MVQCompressor",
    "compression_ratio",
    "CompressionSpec",
    "masked_kmeans",
    "kmeans",
    "nm_prune_mask",
    "__version__",
]
