"""Executable models built straight from a :class:`WorkloadSpec`.

:class:`SpecModel` is the ``build_model()`` factory target: it interprets a
validated spec as a flat list of :mod:`repro.nn` layers plus a small step
program (run / save / load / residual) that realises the spec's dataflow
tags.  The result is an ordinary :class:`~repro.nn.module.Module` — it
trains with the trainer, compresses with the MVQ compressor
(``include_linear=True`` reaches the attention projections), and serves
through the centroid/LUT engines with no model-specific Python anywhere.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro import nn
from repro.nn.module import Module
from repro.workloads.schema import INPUT_TAG, ResolvedLayer, WorkloadSpec

_ACTIVATIONS = {"relu": nn.ReLU, "relu6": nn.ReLU6}

#: one instruction of the dataflow program: (opcode, operand)
Step = Tuple[str, Union[int, str]]


def _modules_for(rl: ResolvedLayer, rng: np.random.Generator) -> List[Module]:
    """The nn layer stack one resolved schema node expands to."""
    node, d = rl.node, rl.dims
    stack: List[Module] = []
    if node.op == "conv":
        stack.append(nn.Conv2d(d["in_channels"], d["out_channels"],
                               d["kernel_size"], stride=d["stride"],
                               padding=d["padding"], bias=node.bias, rng=rng))
    elif node.op == "depthwise":
        c = d["channels"]
        stack.append(nn.Conv2d(c, c, d["kernel_size"], stride=d["stride"],
                               padding=d["padding"], bias=node.bias,
                               groups=c, rng=rng))
    elif node.op == "linear":
        stack.append(nn.Linear(d["in_features"], d["out_features"],
                               bias=node.bias, rng=rng))
    elif node.op == "attention":
        stack.append(nn.MultiHeadAttention(d["embed_dim"], d["num_heads"],
                                           bias=node.bias, rng=rng))
    elif node.op == "norm":
        stack.append(nn.LayerNorm(d["features"]))
    elif node.op == "act":
        stack.append(_ACTIVATIONS[d["kind"]]())
    elif node.op == "pool":
        kind = d["kind"]
        if kind == "max":
            stack.append(nn.MaxPool2d(d["kernel_size"], stride=d["stride"]))
        elif kind == "avg":
            stack.append(nn.AvgPool2d(d["kernel_size"], stride=d["stride"]))
        elif kind == "global_avg":
            stack.append(nn.GlobalAvgPool2d())
        else:  # seq_mean
            stack.append(nn.SequenceMean())
    elif node.op == "flatten":
        stack.append(nn.Flatten())
    elif node.op == "upsample":
        stack.append(nn.Upsample2d(d["scale"]))
    # residual expands to a step, not a module
    if node.norm == "batch":
        stack.append(nn.BatchNorm2d(d["out_channels"]))
    if node.act is not None:
        stack.append(_ACTIVATIONS[node.act]())
    return stack


class SpecModel(Module):
    """A :class:`WorkloadSpec` interpreted as an executable module.

    The spec's layers expand into ``self.blocks`` (so parameter discovery,
    ``state_dict`` and the compressor's ``named_modules`` walk see ordinary
    ``blocks.<i>`` children) and ``self.steps``, a tiny program over the
    activation chain and a tag store:

    * ``("run", i)`` — apply ``blocks[i]`` to the chain activation
    * ``("save", tag)`` — store the chain activation under ``tag``
    * ``("load", tag)`` — replace the chain activation with ``tag``'s value
    * ``("residual", tag)`` — add ``tag``'s value onto the chain activation

    The backward pass runs the program in reverse, accumulating pending
    gradients per tag, so skip connections and branches declared in JSON
    backpropagate exactly like the hand-written residual blocks in the zoo.
    """

    def __init__(self, spec: WorkloadSpec, seed: int = 0):
        super().__init__()
        self.spec = spec
        self.blocks: List[Module] = []
        #: spec layer name each block belongs to (parallel to ``blocks``)
        self.block_sources: List[str] = []
        self.steps: List[Step] = []
        rng = np.random.default_rng(seed)
        for rl in spec.resolved_layers():
            node = rl.node
            if node.input_from is not None:
                self.steps.append(("load", node.input_from))
            if node.op == "residual":
                self.steps.append(("residual", rl.dims["from"]))
            for module in _modules_for(rl, rng):
                self.steps.append(("run", len(self.blocks)))
                self.blocks.append(module)
                self.block_sources.append(node.name)
            if node.save_as is not None:
                self.steps.append(("save", node.save_as))
        self._out_shapes: Dict[int, Tuple[int, ...]] = {}

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x)
        saved: Dict[str, np.ndarray] = {INPUT_TAG: x}
        for step_idx, (opcode, operand) in enumerate(self.steps):
            if opcode == "run":
                x = self.blocks[operand].forward(x)
                self._out_shapes[step_idx] = x.shape
            elif opcode == "save":
                saved[operand] = x
            elif opcode == "load":
                x = saved[operand]
            else:  # residual
                x = x + saved[operand]
        return x

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        grad: Union[np.ndarray, float] = grad_out
        pending: Dict[str, Union[np.ndarray, float]] = {}
        for step_idx in reversed(range(len(self.steps))):
            opcode, operand = self.steps[step_idx]
            if opcode == "run":
                if np.ndim(grad) == 0:
                    # the chain value was consumed only through tags; its
                    # direct downstream contribution is zero
                    grad = np.zeros(self._out_shapes[step_idx],
                                    dtype=np.asarray(grad_out).dtype)
                grad = self.blocks[operand].backward(grad)
            elif opcode == "save":
                grad = grad + pending.pop(operand, 0.0)
            elif opcode == "load":
                pending[operand] = pending.get(operand, 0.0) + grad
                grad = 0.0
            else:  # residual: identity on the chain, plus a branch to the tag
                pending[operand] = pending.get(operand, 0.0) + grad
        return grad + pending.pop(INPUT_TAG, 0.0)

    def named_layer_blocks(self):
        """``(spec_layer_name, module)`` pairs in execution order."""
        return list(zip(self.block_sources, self.blocks))

    def __repr__(self) -> str:
        return (f"SpecModel({self.spec.name!r}, layers={len(self.spec.layers)}, "
                f"blocks={len(self.blocks)})")
