"""Built-in declarative workload specs.

Three families, all expressed as plain layer dicts (the exact JSON the
pipeline CLI accepts from a file):

* ``transformer_block`` — a pre-norm transformer encoder block (multi-head
  self-attention + MLP with residuals) over a 64-token / 32-wide sequence.
  Every projection is an ordinary ``linear``/``attention`` node, so MVQ
  compression (``include_linear``) and the centroid/LUT serving engines
  apply unchanged, and the accelerator table lowers attention to its four
  weight GEMMs.  The 64-token length is a perfect square by design: the
  accelerator maps sequence GEMMs onto an 8x8 feature grid.
* ``simple_detector`` / ``deeplab_lite`` — schema mirrors of the
  hand-written detection/segmentation minis in :mod:`repro.nn.models`,
  giving those models the accelerator LayerShape tables they never had.
  The cross-validation test asserts the spec tables agree with
  :func:`repro.nn.flops.per_layer_flops` on the *hand-written* models, so
  schema and model cannot drift apart silently.
* ``stress_gemm_tower`` / ``stress_conv_ladder`` — synthetic shapes for the
  perf harness: a pure-GEMM tower and a strided conv ladder.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.workloads.schema import WorkloadSpec


def _conv(name: str, cin: int, cout: int, k: int, stride: int = 1,
          padding: Optional[int] = None, bias: bool = False,
          norm: Optional[str] = "batch", act: Optional[str] = "relu",
          **tags: Any) -> Dict[str, Any]:
    dims: Dict[str, Any] = {"in_channels": cin, "out_channels": cout,
                            "kernel_size": k}
    if stride != 1:
        dims["stride"] = stride
    if padding is not None:
        dims["padding"] = padding
    node: Dict[str, Any] = {"name": name, "op": "conv", "dims": dims,
                            "bias": bias}
    if norm:
        node["norm"] = norm
    if act:
        node["act"] = act
    node.update(tags)
    return node


def _dw(name: str, channels: int, stride: int = 1, act: str = "relu6",
        **tags: Any) -> Dict[str, Any]:
    dims: Dict[str, Any] = {"channels": channels, "kernel_size": 3}
    if stride != 1:
        dims["stride"] = stride
    return {"name": name, "op": "depthwise", "dims": dims, "bias": False,
            "norm": "batch", "act": act, **tags}


def _linear(name: str, fin: int, fout: int, act: Optional[str] = None,
            **tags: Any) -> Dict[str, Any]:
    node: Dict[str, Any] = {"name": name, "op": "linear",
                            "dims": {"in_features": fin, "out_features": fout}}
    if act:
        node["act"] = act
    node.update(tags)
    return node


def _residual(name: str, source: str, act: Optional[str] = None,
              **tags: Any) -> Dict[str, Any]:
    node: Dict[str, Any] = {"name": name, "op": "residual",
                            "dims": {"from": source}}
    if act:
        node["act"] = act
    node.update(tags)
    return node


def _basic_block(prefix: str, cin: int, cout: int, stride: int,
                 block_in: str, save_as: str) -> List[Dict[str, Any]]:
    """A ResNet BasicBlock as schema nodes (identity or projection skip)."""
    layers = [
        _conv(f"{prefix}.conv1", cin, cout, 3, stride=stride),
        _conv(f"{prefix}.conv2", cout, cout, 3, act=None),
    ]
    if stride != 1 or cin != cout:
        layers[-1]["save_as"] = f"{prefix}.main"
        layers.append(_conv(f"{prefix}.downsample", cin, cout, 1,
                            stride=stride, act=None, input_from=block_in))
        layers.append(_residual(f"{prefix}.add", f"{prefix}.main",
                                act="relu", save_as=save_as))
    else:
        layers.append(_residual(f"{prefix}.add", block_in, act="relu",
                                save_as=save_as))
    return layers


def transformer_block_spec(seq_len: int = 64, embed_dim: int = 32,
                           num_heads: int = 4, mlp_ratio: int = 2,
                           num_classes: int = 10) -> WorkloadSpec:
    """Pre-norm transformer encoder block with a mean-pooled classifier."""
    hidden = embed_dim * mlp_ratio
    return WorkloadSpec.from_dict({
        "name": "transformer_block",
        "description": "Pre-norm transformer encoder block (MHA + MLP) over "
                       f"a {seq_len}-token sequence; linear-heavy MVQ target.",
        "input_shape": [seq_len, embed_dim],
        "layers": [
            {"name": "ln1", "op": "norm"},
            {"name": "attn", "op": "attention",
             "dims": {"embed_dim": embed_dim, "num_heads": num_heads}},
            _residual("attn.add", "input", save_as="h1"),
            {"name": "ln2", "op": "norm"},
            _linear("mlp.up", embed_dim, hidden, act="relu"),
            _linear("mlp.down", hidden, embed_dim),
            _residual("mlp.add", "h1"),
            {"name": "pool", "op": "pool", "dims": {"kind": "seq_mean"}},
            _linear("head", embed_dim, num_classes),
        ],
    })


def simple_detector_spec(num_classes: int = 5, width: int = 16,
                         hidden: int = 32, image_size: int = 16) -> WorkloadSpec:
    """Schema mirror of :class:`repro.nn.models.SimpleDetector` (ResNet-18
    mini backbone, shared neck, classification + box heads)."""
    w2 = width * 2
    layers: List[Dict[str, Any]] = [
        _conv("stem", 3, width, 3, save_as="s1b1_in"),
    ]
    layers += _basic_block("s1b1", width, width, 1, "s1b1_in", "s1b2_in")
    layers += _basic_block("s1b2", width, width, 1, "s1b2_in", "s2b1_in")
    layers += _basic_block("s2b1", width, w2, 2, "s2b1_in", "s2b2_in")
    layers += _basic_block("s2b2", w2, w2, 1, "s2b2_in", "feat")
    layers += [
        {"name": "pool", "op": "pool", "dims": {"kind": "global_avg"}},
        _linear("neck", w2, hidden, act="relu", save_as="trunk"),
        _linear("cls_head", hidden, num_classes),
        _linear("box_head", hidden, 4, input_from="trunk"),
    ]
    return WorkloadSpec.from_dict({
        "name": "simple_detector",
        "description": "Single-box detector: ResNet-18 mini backbone with "
                       "shared neck and classification/box heads.",
        "input_shape": [3, image_size, image_size],
        "layers": layers,
    })


def _inverted_residual(prefix: str, cin: int, cout: int, stride: int,
                       expand: int, block_in: Optional[str],
                       save_as: Optional[str]) -> List[Dict[str, Any]]:
    """A MobileNet-V2 inverted-residual block as schema nodes."""
    hidden = cin * expand
    layers: List[Dict[str, Any]] = []
    if expand != 1:
        layers.append(_conv(f"{prefix}.expand", cin, hidden, 1, act="relu6"))
    layers.append(_dw(f"{prefix}.dw", hidden, stride=stride))
    layers.append(_conv(f"{prefix}.project", hidden, cout, 1, act=None))
    if stride == 1 and cin == cout and block_in is not None:
        layers.append(_residual(f"{prefix}.add", block_in))
    if save_as is not None:
        layers[-1]["save_as"] = save_as
    return layers


def deeplab_lite_spec(num_classes: int = 4, width: int = 12,
                      head_channels: int = 32, image_size: int = 16,
                      output_stride: int = 4) -> WorkloadSpec:
    """Schema mirror of :class:`repro.nn.models.DeepLabLite` (MobileNet-V2
    mini backbone, three summed context branches, 1x1 classifier,
    nearest upsample)."""
    feat = width * 8   # head doubles the last block's width * 4
    layers: List[Dict[str, Any]] = [
        _conv("stem", 3, width, 3, act="relu6", save_as="b1_in"),
    ]
    layers += _inverted_residual("b1", width, width, 1, 1, "b1_in", None)
    layers += _inverted_residual("b2", width, width * 2, 2, 4, None, "b3_in")
    layers += _inverted_residual("b3", width * 2, width * 2, 1, 4, "b3_in", None)
    layers += _inverted_residual("b4", width * 2, width * 4, 2, 4, None, None)
    layers += [
        _conv("head", width * 4, feat, 1, act="relu6", save_as="feat"),
        _conv("branch1", feat, head_channels, 1, save_as="br1"),
        _conv("branch2", feat, head_channels, 3, input_from="feat",
              save_as="br2"),
        _conv("branch3.a", feat, head_channels, 3, input_from="feat"),
        _conv("branch3.b", head_channels, head_channels, 3),
        _residual("fuse.b1", "br1"),
        _residual("fuse.b2", "br2"),
        _conv("classifier", head_channels, num_classes, 1, bias=True,
              norm=None, act=None),
        {"name": "up", "op": "upsample", "dims": {"scale": output_stride}},
    ]
    return WorkloadSpec.from_dict({
        "name": "deeplab_lite",
        "description": "DeepLab-lite segmenter: MobileNet-V2 mini backbone, "
                       "multi-branch context module, 1x1 classifier.",
        "input_shape": [3, image_size, image_size],
        "layers": layers,
    })


def stress_gemm_tower_spec(features: int = 256, depth: int = 3,
                           num_classes: int = 10) -> WorkloadSpec:
    """Pure-GEMM stress shape: a tower of wide square linears."""
    layers = [_linear(f"fc{i + 1}", features, features, act="relu")
              for i in range(depth)]
    layers.append(_linear("head", features, num_classes))
    return WorkloadSpec.from_dict({
        "name": "stress_gemm_tower",
        "description": f"Synthetic stress workload: {depth} square "
                       f"{features}x{features} GEMMs plus a head.",
        "input_shape": [features],
        "layers": layers,
    })


def stress_conv_ladder_spec(channels: int = 8, image_size: int = 32,
                            rungs: int = 3, num_classes: int = 10) -> WorkloadSpec:
    """Conv stress shape: a strided ladder that doubles channels per rung."""
    layers: List[Dict[str, Any]] = []
    cin = channels
    for i in range(rungs):
        layers.append(_conv(f"rung{i + 1}", cin, cin * 2, 3, stride=2))
        cin *= 2
    layers += [
        {"name": "pool", "op": "pool", "dims": {"kind": "global_avg"}},
        _linear("head", cin, num_classes),
    ]
    return WorkloadSpec.from_dict({
        "name": "stress_conv_ladder",
        "description": f"Synthetic stress workload: {rungs} stride-2 convs "
                       "doubling channels per rung.",
        "input_shape": [channels, image_size, image_size],
        "layers": layers,
    })


#: name -> zero-argument spec factory for every built-in spec
BUILTIN_SPECS = {
    "transformer_block": transformer_block_spec,
    "simple_detector": simple_detector_spec,
    "deeplab_lite": deeplab_lite_spec,
    "stress_gemm_tower": stress_gemm_tower_spec,
    "stress_conv_ladder": stress_conv_ladder_spec,
}
