"""Declarative workload schema: validated per-layer dicts, zigzag style.

A :class:`WorkloadSpec` is a JSON-loadable description of one network as an
ordered list of :class:`LayerNode` dicts — op type (conv / depthwise /
linear / attention / norm / act / pool / flatten / upsample / residual),
op-specific dims, optional precision and mapping hints, and explicit
dataflow tags (``save_as`` / ``input_from`` / residual ``from``) that
express skip connections and branches without any per-model Python.

One spec drives *both* halves of the system:

* :meth:`WorkloadSpec.build_model` — an executable :mod:`repro.nn` module
  (see :mod:`repro.workloads.builder`) that trains, compresses and serves
  through the centroid/LUT engines like any hand-written zoo model;
* :meth:`WorkloadSpec.layer_shapes` — the accelerator's
  :class:`~repro.accelerator.workloads.LayerShape` table, with attention
  lowered to its four constituent weight GEMMs (q/k/v/out projections).

Validation walks the activation-shape chain eagerly at construction time
and raises :class:`WorkloadSpecError` naming the offending field
(``layers[3].dims.in_channels``), so a bad spec fails at load time with a
diagnosable message instead of a shape error deep inside a forward pass.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

from repro.accelerator.workloads import LayerShape

#: ops that carry weights (and therefore lower to accelerator LayerShapes)
WEIGHT_OPS: Tuple[str, ...] = ("conv", "depthwise", "linear", "attention")

#: every op type the schema accepts
OP_TYPES: Tuple[str, ...] = WEIGHT_OPS + (
    "norm", "act", "pool", "flatten", "upsample", "residual")

#: dims keys each op accepts: {key: required}
_OP_DIMS: Dict[str, Dict[str, bool]] = {
    "conv": {"in_channels": True, "out_channels": True, "kernel_size": True,
             "stride": False, "padding": False},
    "depthwise": {"channels": True, "kernel_size": True,
                  "stride": False, "padding": False},
    "linear": {"in_features": True, "out_features": True},
    "attention": {"embed_dim": True, "num_heads": True},
    "norm": {"features": False},
    "act": {"kind": False},
    "pool": {"kind": True, "kernel_size": False, "stride": False},
    "flatten": {},
    "upsample": {"scale": True},
    "residual": {"from": True},
}

_ACT_KINDS = ("relu", "relu6")
_POOL_KINDS = ("max", "avg", "global_avg", "seq_mean")
_NORM_KINDS = ("batch",)

#: the reserved dataflow tag naming the model input
INPUT_TAG = "input"


class WorkloadSpecError(ValueError):
    """Schema validation failure, naming the field that is wrong.

    ``field`` is the dotted path into the spec dict (e.g.
    ``layers[2].dims.kernel_size``); the message always embeds it so CLI
    users see exactly which entry of their JSON to fix.
    """

    def __init__(self, message: str, field: Optional[str] = None):
        self.field = field
        super().__init__(f"{field}: {message}" if field else message)


@dataclass(frozen=True)
class LayerNode:
    """One validated layer dict of a workload spec."""

    name: str
    op: str
    dims: Mapping[str, Any] = field(default_factory=dict)
    #: bias on weight ops (conv / linear / attention projections)
    bias: bool = True
    #: normalisation attached after a conv/depthwise op ("batch" or None)
    norm: Optional[str] = None
    #: activation attached after a weight op ("relu" / "relu6" or None)
    act: Optional[str] = None
    #: read this node's input from a saved tag instead of the chain
    input_from: Optional[str] = None
    #: tag this node's output for later residual/branch consumers
    save_as: Optional[str] = None
    #: weight-precision hint in bits (metadata for the accelerator models)
    precision: Optional[int] = None
    #: free-form mapping hints (dataflow, tiling, ...) carried to consumers
    mapping: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self):
        # normalise mappings to plain dicts so == and JSON round-trips hold
        object.__setattr__(self, "dims", dict(self.dims))
        object.__setattr__(self, "mapping", dict(self.mapping))

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {"name": self.name, "op": self.op}
        if self.dims:
            data["dims"] = dict(self.dims)
        if not self.bias:
            data["bias"] = False
        for key in ("norm", "act", "input_from", "save_as", "precision"):
            value = getattr(self, key)
            if value is not None:
                data[key] = value
        if self.mapping:
            data["mapping"] = dict(self.mapping)
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any], where: str = "layer") -> "LayerNode":
        if not isinstance(data, Mapping):
            raise WorkloadSpecError(
                f"expected a layer dict, got {type(data).__name__}", where)
        data = dict(data)
        known = {"name", "op", "dims", "bias", "norm", "act", "input_from",
                 "save_as", "precision", "mapping"}
        unknown = set(data) - known
        if unknown:
            raise WorkloadSpecError(
                f"unknown layer fields {sorted(unknown)}; expected a subset "
                f"of {sorted(known)}", where)
        for required in ("name", "op"):
            if required not in data:
                raise WorkloadSpecError("field is required", f"{where}.{required}")
        return cls(**data)


def _positive_int(value: Any, field_name: str, minimum: int = 1) -> int:
    if not isinstance(value, int) or isinstance(value, bool) or value < minimum:
        raise WorkloadSpecError(
            f"must be an integer >= {minimum}, got {value!r}", field_name)
    return value


@dataclass(frozen=True)
class ResolvedLayer:
    """One schema node with defaults filled in and shapes attached."""

    node: LayerNode
    index: int
    in_shape: Tuple[int, ...]
    out_shape: Tuple[int, ...]
    #: dims with stride/padding/kind defaults resolved
    dims: Dict[str, Any]


@dataclass(frozen=True)
class WorkloadSpec:
    """A whole network as validated layer dicts; one JSON file, two factories."""

    name: str
    input_shape: Tuple[int, ...]
    layers: Tuple[LayerNode, ...] = ()
    description: str = ""
    #: free-form spec-level metadata (source, resolution, notes, ...)
    meta: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self):
        object.__setattr__(self, "input_shape", tuple(self.input_shape))
        object.__setattr__(self, "layers", tuple(
            node if isinstance(node, LayerNode) else LayerNode.from_dict(node)
            for node in self.layers))
        object.__setattr__(self, "meta", dict(self.meta))
        object.__setattr__(self, "_resolved", self._validate())

    # -- validation ----------------------------------------------------------
    def _validate(self) -> Tuple[ResolvedLayer, ...]:
        if not self.name:
            raise WorkloadSpecError("workload name must be non-empty", "name")
        if len(self.input_shape) not in (1, 2, 3) or any(
                not isinstance(v, int) or v < 1 for v in self.input_shape):
            raise WorkloadSpecError(
                "input_shape must be 1-3 positive ints: (features,), "
                f"(seq, embed) or (channels, h, w); got {self.input_shape}",
                "input_shape")
        if not self.layers:
            raise WorkloadSpecError("a workload needs at least one layer", "layers")

        resolved: List[ResolvedLayer] = []
        tags: Dict[str, Tuple[int, ...]] = {INPUT_TAG: self.input_shape}
        seen_names: Dict[str, int] = {}
        shape = self.input_shape
        for i, node in enumerate(self.layers):
            where = f"layers[{i}]"
            if node.name in seen_names:
                raise WorkloadSpecError(
                    f"duplicate layer name {node.name!r} (also layers"
                    f"[{seen_names[node.name]}])", f"{where}.name")
            seen_names[node.name] = i
            if node.op not in OP_TYPES:
                raise WorkloadSpecError(
                    f"unknown op type {node.op!r}; available: {sorted(OP_TYPES)}",
                    f"{where}.op")
            allowed = _OP_DIMS[node.op]
            unknown = set(node.dims) - set(allowed)
            if unknown:
                raise WorkloadSpecError(
                    f"op {node.op!r} does not accept dims {sorted(unknown)}; "
                    f"allowed: {sorted(allowed)}", f"{where}.dims")
            for key, required in allowed.items():
                if required and key not in node.dims:
                    raise WorkloadSpecError(
                        f"op {node.op!r} requires this dim", f"{where}.dims.{key}")
            if node.input_from is not None:
                if node.input_from not in tags:
                    raise WorkloadSpecError(
                        f"references unsaved tag {node.input_from!r}; tags "
                        f"saved so far: {sorted(tags)}", f"{where}.input_from")
                shape = tags[node.input_from]
            if node.precision is not None:
                _positive_int(node.precision, f"{where}.precision")
            out_shape, dims = self._apply_op(node, shape, tags, where)
            resolved.append(ResolvedLayer(node, i, shape, out_shape, dims))
            shape = out_shape
            if node.save_as is not None:
                if node.save_as == INPUT_TAG:
                    raise WorkloadSpecError(
                        f"{INPUT_TAG!r} is the reserved tag for the model "
                        "input", f"{where}.save_as")
                tags[node.save_as] = shape
        return tuple(resolved)

    def _apply_op(self, node: LayerNode, shape: Tuple[int, ...],
                  tags: Dict[str, Tuple[int, ...]], where: str
                  ) -> Tuple[Tuple[int, ...], Dict[str, Any]]:
        """Shape transition + resolved dims of one node; raises on mismatch."""
        op, d = node.op, dict(node.dims)
        if node.norm is not None and node.norm not in _NORM_KINDS:
            raise WorkloadSpecError(
                f"unknown norm {node.norm!r}; available: {sorted(_NORM_KINDS)}",
                f"{where}.norm")
        if node.norm is not None and op not in ("conv", "depthwise"):
            raise WorkloadSpecError(
                f"norm attaches to conv/depthwise ops, not {op!r}", f"{where}.norm")
        if node.act is not None and node.act not in _ACT_KINDS:
            raise WorkloadSpecError(
                f"unknown act {node.act!r}; available: {sorted(_ACT_KINDS)}",
                f"{where}.act")

        if op in ("conv", "depthwise"):
            if len(shape) != 3:
                raise WorkloadSpecError(
                    f"{op} needs (channels, h, w) input, has {shape}", where)
            c, h, w = shape
            k = _positive_int(d["kernel_size"], f"{where}.dims.kernel_size")
            stride = _positive_int(d.get("stride", 1), f"{where}.dims.stride")
            padding = d.get("padding", k // 2)
            if not isinstance(padding, int) or padding < 0:
                raise WorkloadSpecError(
                    f"must be an integer >= 0, got {padding!r}",
                    f"{where}.dims.padding")
            if op == "conv":
                cin = _positive_int(d["in_channels"], f"{where}.dims.in_channels")
                cout = _positive_int(d["out_channels"], f"{where}.dims.out_channels")
            else:
                cin = cout = _positive_int(d["channels"], f"{where}.dims.channels")
            if cin != c:
                raise WorkloadSpecError(
                    f"expects {cin} input channels but the incoming "
                    f"activation has {c}", f"{where}.dims."
                    f"{'in_channels' if op == 'conv' else 'channels'}")
            oh = (h + 2 * padding - k) // stride + 1
            ow = (w + 2 * padding - k) // stride + 1
            if oh < 1 or ow < 1:
                raise WorkloadSpecError(
                    f"kernel {k} (stride {stride}, padding {padding}) does "
                    f"not fit the {h}x{w} input", f"{where}.dims.kernel_size")
            return (cout, oh, ow), {**d, "stride": stride, "padding": padding,
                                    "in_channels": cin, "out_channels": cout}

        if op == "linear":
            if len(shape) == 3:
                raise WorkloadSpecError(
                    "linear needs (features,) or (seq, embed) input — flatten "
                    f"or pool the {shape} feature map first", where)
            fin = _positive_int(d["in_features"], f"{where}.dims.in_features")
            fout = _positive_int(d["out_features"], f"{where}.dims.out_features")
            if fin != shape[-1]:
                raise WorkloadSpecError(
                    f"expects {fin} input features but the incoming "
                    f"activation has {shape[-1]}", f"{where}.dims.in_features")
            return (*shape[:-1], fout), d

        if op == "attention":
            if len(shape) != 2:
                raise WorkloadSpecError(
                    f"attention needs (seq, embed) input, has {shape}", where)
            s, e = shape
            embed = _positive_int(d["embed_dim"], f"{where}.dims.embed_dim")
            heads = _positive_int(d["num_heads"], f"{where}.dims.num_heads")
            if embed != e:
                raise WorkloadSpecError(
                    f"embed_dim {embed} does not match the incoming embedding "
                    f"width {e}", f"{where}.dims.embed_dim")
            if embed % heads != 0:
                raise WorkloadSpecError(
                    f"num_heads {heads} must divide embed_dim {embed}",
                    f"{where}.dims.num_heads")
            return shape, d

        if op == "norm":
            if len(shape) == 3:
                raise WorkloadSpecError(
                    "norm (LayerNorm) runs over (seq, embed) or (features,) "
                    "activations; attach 'norm': 'batch' to a conv for "
                    "feature maps", where)
            features = d.get("features", shape[-1])
            _positive_int(features, f"{where}.dims.features")
            if features != shape[-1]:
                raise WorkloadSpecError(
                    f"normalises {features} features but the incoming "
                    f"activation has {shape[-1]}", f"{where}.dims.features")
            return shape, {**d, "features": features}

        if op == "act":
            kind = d.get("kind", "relu")
            if kind not in _ACT_KINDS:
                raise WorkloadSpecError(
                    f"unknown act kind {kind!r}; available: "
                    f"{sorted(_ACT_KINDS)}", f"{where}.dims.kind")
            return shape, {**d, "kind": kind}

        if op == "pool":
            kind = d["kind"]
            if kind not in _POOL_KINDS:
                raise WorkloadSpecError(
                    f"unknown pool kind {kind!r}; available: "
                    f"{sorted(_POOL_KINDS)}", f"{where}.dims.kind")
            if kind == "seq_mean":
                if len(shape) != 2:
                    raise WorkloadSpecError(
                        f"seq_mean pools (seq, embed) input, has {shape}", where)
                return (shape[1],), {**d, "kind": kind}
            if len(shape) != 3:
                raise WorkloadSpecError(
                    f"{kind} pooling needs (channels, h, w) input, has "
                    f"{shape}", where)
            c, h, w = shape
            if kind == "global_avg":
                return (c,), {**d, "kind": kind}
            k = _positive_int(d.get("kernel_size", 2), f"{where}.dims.kernel_size")
            stride = _positive_int(d.get("stride", k), f"{where}.dims.stride")
            oh, ow = (h - k) // stride + 1, (w - k) // stride + 1
            if oh < 1 or ow < 1:
                raise WorkloadSpecError(
                    f"window {k} (stride {stride}) does not fit the {h}x{w} "
                    f"input", f"{where}.dims.kernel_size")
            return (c, oh, ow), {**d, "kind": kind, "kernel_size": k,
                                 "stride": stride}

        if op == "flatten":
            return (int(math.prod(shape)),), d

        if op == "upsample":
            if len(shape) != 3:
                raise WorkloadSpecError(
                    f"upsample needs (channels, h, w) input, has {shape}", where)
            scale = _positive_int(d["scale"], f"{where}.dims.scale")
            return (shape[0], shape[1] * scale, shape[2] * scale), d

        if op == "residual":
            source = d["from"]
            if source not in tags:
                raise WorkloadSpecError(
                    f"references unsaved tag {source!r}; tags saved so far: "
                    f"{sorted(tags)}", f"{where}.dims.from")
            if tags[source] != shape:
                raise WorkloadSpecError(
                    f"adds tag {source!r} of shape {tags[source]} to an "
                    f"activation of shape {shape}", f"{where}.dims.from")
            return shape, d

        raise WorkloadSpecError(f"unhandled op {op!r}", where)  # pragma: no cover

    # -- derived views -------------------------------------------------------
    def resolved_layers(self) -> Tuple[ResolvedLayer, ...]:
        """Every node with defaults filled in and in/out shapes attached."""
        return self._resolved  # type: ignore[attr-defined]

    def output_shape(self) -> Tuple[int, ...]:
        return self.resolved_layers()[-1].out_shape

    # -- factory 1: the accelerator LayerShape table ---------------------------
    def layer_shapes(self) -> List[LayerShape]:
        """The accelerator workload table this spec describes.

        Convolutions map 1:1; linears become 1x1 convolutions (per-token for
        sequence inputs); attention lowers to its four weight GEMMs
        (``<name>.q/.k/.v/.out``).  Parameter-free ops (norm, act, pool,
        flatten, upsample, residual) do not appear, exactly as the
        hand-written tables omit BatchNorm and pooling.
        """
        shapes: List[LayerShape] = []
        for rl in self.resolved_layers():
            node, d = rl.node, rl.dims
            if node.op == "conv":
                c, h, w = rl.in_shape
                self._require_square(h, w, rl)
                shapes.append(LayerShape(node.name, d["in_channels"],
                                         d["out_channels"], d["kernel_size"],
                                         h, d["stride"], d["padding"]))
            elif node.op == "depthwise":
                c, h, w = rl.in_shape
                self._require_square(h, w, rl)
                shapes.append(LayerShape(node.name, c, c, d["kernel_size"], h,
                                         d["stride"], d["padding"],
                                         depthwise=True))
            elif node.op == "linear":
                size = (1 if len(rl.in_shape) == 1
                        else self._token_grid(rl.in_shape[0], rl))
                shapes.append(LayerShape(node.name, d["in_features"],
                                         d["out_features"], 1, size, 1, 0))
            elif node.op == "attention":
                size = self._token_grid(rl.in_shape[0], rl)
                e = d["embed_dim"]
                for proj in ("q", "k", "v", "out"):
                    shapes.append(LayerShape(f"{node.name}.{proj}", e, e, 1,
                                             size, 1, 0))
        return shapes

    def _require_square(self, h: int, w: int, rl: ResolvedLayer) -> None:
        if h != w:
            raise WorkloadSpecError(
                f"accelerator lowering needs square feature maps, layer "
                f"{rl.node.name!r} sees {h}x{w}", f"layers[{rl.index}]")

    def _token_grid(self, seq: int, rl: ResolvedLayer) -> int:
        """Sequence GEMMs map tokens onto the accelerator's square feature
        grid; the token count must therefore be a perfect square."""
        size = math.isqrt(seq)
        if size * size != seq:
            raise WorkloadSpecError(
                f"accelerator lowering maps the {seq} tokens feeding layer "
                f"{rl.node.name!r} onto a square grid; use a perfect-square "
                f"sequence length (e.g. {size * size} or {(size + 1) ** 2})",
                f"layers[{rl.index}]")
        return size

    # -- factory 2: the executable model --------------------------------------
    def build_model(self, seed: int = 0):
        """An executable :mod:`repro.nn` module of this spec (see
        :class:`repro.workloads.builder.SpecModel`)."""
        from repro.workloads.builder import SpecModel

        return SpecModel(self, seed=seed)

    # -- aggregate counts ------------------------------------------------------
    def macs(self) -> int:
        """Per-frame multiply-accumulates of all weight layers."""
        return sum(shape.macs for shape in self.layer_shapes())

    def num_weights(self) -> int:
        """Weight parameters of all weight layers (biases/norms excluded)."""
        return sum(shape.num_weights for shape in self.layer_shapes())

    # -- (de)serialization -----------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "name": self.name,
            "input_shape": list(self.input_shape),
            "layers": [node.to_dict() for node in self.layers],
        }
        if self.description:
            data["description"] = self.description
        if self.meta:
            data["meta"] = dict(self.meta)
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "WorkloadSpec":
        if not isinstance(data, Mapping):
            raise WorkloadSpecError(
                f"expected a workload dict, got {type(data).__name__}")
        data = dict(data)
        known = {"name", "input_shape", "layers", "description", "meta"}
        unknown = set(data) - known
        if unknown:
            raise WorkloadSpecError(
                f"unknown workload fields {sorted(unknown)}; expected a "
                f"subset of {sorted(known)}")
        for required in ("name", "input_shape", "layers"):
            if required not in data:
                raise WorkloadSpecError("field is required", required)
        if not isinstance(data["layers"], (list, tuple)):
            raise WorkloadSpecError("must be a list of layer dicts", "layers")
        layers = tuple(
            LayerNode.from_dict(node, where=f"layers[{i}]")
            for i, node in enumerate(data["layers"]))
        return cls(name=data["name"], input_shape=tuple(data["input_shape"]),
                   layers=layers, description=data.get("description", ""),
                   meta=dict(data.get("meta", {})))

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "WorkloadSpec":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise WorkloadSpecError(
                f"workload file is not valid JSON: {error}") from error
        return cls.from_dict(data)

    @classmethod
    def from_file(cls, path: Union[str, Path]) -> "WorkloadSpec":
        path = Path(path)
        if not path.exists():
            raise WorkloadSpecError(f"workload file {str(path)!r} does not exist")
        return cls.from_json(path.read_text())

    def save(self, path: Union[str, Path]) -> None:
        Path(path).write_text(self.to_json() + "\n")
