"""One registry for every workload: executable models + accelerator tables.

Before this package, the repo kept two disconnected registries coupled only
by string convention — mini model factories in
:data:`repro.nn.models.MODEL_ZOO` and hand-written full-size LayerShape
tables in :data:`repro.accelerator.workloads.WORKLOADS`.  Here both become
views of one :class:`WorkloadEntry` table:

* zoo entries contribute their ``model_factory`` (the *same* callable
  object, so the ``get_model_factory`` deprecation shim is bit-identical);
* accelerator entries contribute their ``shape_factory`` (ditto for
  ``get_workload``);
* spec-backed entries (:mod:`repro.workloads.specs`, or any JSON file a
  user registers) derive *both* from one :class:`WorkloadSpec`.

Entries are populated lazily on first lookup, so importing this module is
free and the nn/accelerator packages can keep their raw tables as the
source of truth without an import cycle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.workloads.resolving import resolve
from repro.workloads.schema import WorkloadSpec


@dataclass(frozen=True)
class WorkloadEntry:
    """One named workload: how to build its model and/or its shape table."""

    name: str
    description: str = ""
    #: declarative spec, when the entry is schema-backed
    spec: Optional[WorkloadSpec] = None
    #: ``(**kwargs) -> Module`` — executable mini model
    model_factory: Optional[Callable[..., Any]] = None
    #: ``() -> List[LayerShape]`` — accelerator layer table
    shape_factory: Optional[Callable[[], List[Any]]] = None
    #: where the entry came from: "zoo", "accel", "spec", "user"
    source: str = "user"
    tags: Dict[str, Any] = field(default_factory=dict)

    @property
    def has_model(self) -> bool:
        return self.model_factory is not None

    @property
    def has_shapes(self) -> bool:
        return self.shape_factory is not None

    def build_model(self, **kwargs: Any):
        if self.model_factory is None:
            raise KeyError(
                f"workload {self.name!r} has no executable model factory "
                f"(shape-table only)")
        return self.model_factory(**kwargs)

    def layer_shapes(self) -> List[Any]:
        if self.shape_factory is None:
            raise KeyError(
                f"workload {self.name!r} has no accelerator layer table "
                f"(model only)")
        return list(self.shape_factory())


_REGISTRY: Dict[str, WorkloadEntry] = {}
_populated = False


def _spec_model_factory(spec: WorkloadSpec) -> Callable[..., Any]:
    """A stable zoo-style factory for a spec (same object every lookup)."""
    def factory(seed: int = 0):
        return spec.build_model(seed=seed)

    factory.__name__ = f"build_{spec.name}"
    factory.__doc__ = f"SpecModel factory for workload {spec.name!r}."
    return factory


def register(entry: WorkloadEntry, overwrite: bool = False) -> WorkloadEntry:
    _populate()
    if entry.name in _REGISTRY and not overwrite:
        raise ValueError(f"workload {entry.name!r} is already registered")
    _REGISTRY[entry.name] = entry
    return entry


def register_spec(spec: WorkloadSpec,
                  model_factory: Optional[Callable[..., Any]] = None,
                  source: str = "spec", overwrite: bool = False) -> WorkloadEntry:
    """Register a declarative spec as a workload entry.

    Both factories derive from the spec; ``model_factory`` overrides the
    executable side for entries that shadow a hand-written model (the spec
    then only supplies the accelerator table — and the cross-validation
    test holds the two against each other).
    """
    return register(WorkloadEntry(
        name=spec.name,
        description=spec.description,
        spec=spec,
        model_factory=model_factory or _spec_model_factory(spec),
        shape_factory=spec.layer_shapes,
        source=source,
    ), overwrite=overwrite)


def _merge_entry(name: str, **updates: Any) -> None:
    current = _REGISTRY.get(name)
    if current is None:
        _REGISTRY[name] = WorkloadEntry(name=name, **updates)
    else:
        import dataclasses

        _REGISTRY[name] = dataclasses.replace(current, **updates)


def _populate() -> None:
    """Seed the registry from the legacy tables and the built-in specs."""
    global _populated
    if _populated:
        return
    _populated = True
    from repro.accelerator.workloads import WORKLOADS
    from repro.nn.models import (MODEL_ZOO, deeplab_lite_mini,
                                 simple_detector_mini)
    from repro.workloads.specs import BUILTIN_SPECS

    for name, factory in MODEL_ZOO.items():
        _merge_entry(name, model_factory=factory, source="zoo",
                     description=f"model-zoo mini {name}")
    for name, factory in WORKLOADS.items():
        _merge_entry(name, shape_factory=factory, source="zoo",
                     description=f"model-zoo mini {name} + full-size "
                                 f"accelerator table")

    # spec-backed entries; detection/segmentation keep their hand-written
    # executable factories and take the accelerator table from the schema
    shadows = {"simple_detector": simple_detector_mini,
               "deeplab_lite": deeplab_lite_mini}
    for name, spec_factory in BUILTIN_SPECS.items():
        spec = spec_factory()
        register_spec(spec, model_factory=shadows.get(name), overwrite=True)


def get_entry(name: str) -> WorkloadEntry:
    _populate()
    return resolve(_REGISTRY, name, "workload")


def model_factory(name: str) -> Callable[..., Any]:
    """Executable model factory of a registered workload (the
    ``get_model_factory`` shim resolves here)."""
    entry = get_entry(name)
    if entry.model_factory is None:
        raise KeyError(
            f"workload {name!r} has no executable model factory; "
            f"models available: {sorted(model_zoo())}")
    return entry.model_factory


def shape_factory(name: str) -> Callable[[], List[Any]]:
    """Accelerator layer-table factory of a registered workload (the
    ``get_workload`` shim resolves here)."""
    entry = get_entry(name)
    if entry.shape_factory is None:
        raise KeyError(
            f"workload {name!r} has no accelerator layer table; "
            f"tables available: {sorted(shape_tables())}")
    return entry.shape_factory


def model_zoo() -> Dict[str, Callable[..., Any]]:
    """Every entry with an executable model, name -> factory."""
    _populate()
    return {name: e.model_factory for name, e in _REGISTRY.items()
            if e.model_factory is not None}


def shape_tables() -> Dict[str, Callable[[], List[Any]]]:
    """Every entry with an accelerator table, name -> factory."""
    _populate()
    return {name: e.shape_factory for name, e in _REGISTRY.items()
            if e.shape_factory is not None}


def list_entries() -> List[WorkloadEntry]:
    _populate()
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


def spec_entries() -> List[WorkloadEntry]:
    """Entries backed by a declarative spec (schema <-> model crosscheck set)."""
    _populate()
    return [e for e in list_entries() if e.spec is not None]
