"""The one registry-lookup helper every named registry resolves through.

Before this module existed, ``get_model_factory``, ``get_workload``, the
scenario registry and the explore space/strategy registries each hand-rolled
the same ``KeyError``-with-available-names pattern with slightly different
wording.  :func:`resolve` is that pattern, once: a mapping lookup whose
failure names the kind of thing being looked up and lists what *is*
registered, in one consistent format::

    unknown scenario 'quickstrat-resnet18'; available: ['quickstart-resnet18', ...]

Kept dependency-free so every layer of the system (nn, accelerator,
pipeline, explore) can import it without cycles.
"""

from __future__ import annotations

from typing import Mapping, TypeVar

T = TypeVar("T")


def resolve(mapping: Mapping[str, T], name: str, kind: str) -> T:
    """Look up ``name`` in ``mapping``, raising a uniform, helpful error.

    Raises ``KeyError`` formatted as
    ``unknown <kind> <name>; available: [...]`` so typos surface the full
    menu of registered names regardless of which registry was consulted.
    """
    try:
        return mapping[name]
    except KeyError:
        raise KeyError(
            f"unknown {kind} {name!r}; available: {sorted(mapping)}") from None
