"""Declarative workloads: one validated JSON spec drives the whole system.

A :class:`WorkloadSpec` (ROADMAP's zigzag-style ``WorkloadFactory`` /
``LayerNode``) describes a network as validated per-layer dicts and yields
two factories from the same data: :meth:`~WorkloadSpec.build_model` (an
executable :mod:`repro.nn` module that trains, compresses and serves) and
:meth:`~WorkloadSpec.layer_shapes` (the accelerator
:class:`~repro.accelerator.workloads.LayerShape` table).  The
:mod:`~repro.workloads.registry` unifies these spec-backed workloads with
the legacy model zoo and hand-written accelerator tables under one name
space, and :func:`resolve` is the shared registry-lookup helper every named
registry in the repo errors through.
"""

from repro.workloads.resolving import resolve
from repro.workloads.schema import (INPUT_TAG, OP_TYPES, WEIGHT_OPS,
                                    LayerNode, ResolvedLayer, WorkloadSpec,
                                    WorkloadSpecError)
from repro.workloads.builder import SpecModel
from repro.workloads.registry import (WorkloadEntry, get_entry, list_entries,
                                      model_factory, model_zoo, register,
                                      register_spec, shape_factory,
                                      shape_tables, spec_entries)

__all__ = [
    "resolve",
    "INPUT_TAG",
    "OP_TYPES",
    "WEIGHT_OPS",
    "LayerNode",
    "ResolvedLayer",
    "WorkloadSpec",
    "WorkloadSpecError",
    "SpecModel",
    "WorkloadEntry",
    "get_entry",
    "list_entries",
    "model_factory",
    "model_zoo",
    "register",
    "register_spec",
    "shape_factory",
    "shape_tables",
    "spec_entries",
]
