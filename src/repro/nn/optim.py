"""Optimizers: SGD with momentum, Adam, AdamW.

The fine-tuning step of MVQ (Eq. 6 in the paper) performs
``c_i <- c_i - O(masked_grad, theta)`` where ``O`` is any of these
optimizers; they therefore operate on plain :class:`Parameter` objects so
they can drive both network weights and codebooks.
"""

from __future__ import annotations

from typing import Iterable, List

import numpy as np

from repro.nn.tensor import Parameter


class Optimizer:
    def __init__(self, params: Iterable[Parameter], lr: float):
        self.params: List[Parameter] = list(params)
        if not self.params:
            raise ValueError("optimizer got an empty parameter list")
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.lr = lr

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ):
        super().__init__(params, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.value) for p in self.params]

    def step(self) -> None:
        for p, v in zip(self.params, self._velocity):
            if not p.requires_grad:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.value
            if self.momentum:
                v *= self.momentum
                v += grad
                update = v
            else:
                update = grad
            p.value -= self.lr * update


class Adam(Optimizer):
    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float = 1e-3,
        betas=(0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(params, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.value) for p in self.params]
        self._v = [np.zeros_like(p.value) for p in self.params]
        self._t = 0

    def _decayed_grad(self, p: Parameter) -> np.ndarray:
        if self.weight_decay:
            return p.grad + self.weight_decay * p.value
        return p.grad

    def step(self) -> None:
        self._t += 1
        bias1 = 1 - self.beta1**self._t
        bias2 = 1 - self.beta2**self._t
        for p, m, v in zip(self.params, self._m, self._v):
            if not p.requires_grad:
                continue
            grad = self._decayed_grad(p)
            m *= self.beta1
            m += (1 - self.beta1) * grad
            v *= self.beta2
            v += (1 - self.beta2) * grad**2
            m_hat = m / bias1
            v_hat = v / bias2
            p.value -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class AdamW(Adam):
    """Adam with decoupled weight decay."""

    def _decayed_grad(self, p: Parameter) -> np.ndarray:
        return p.grad

    def step(self) -> None:
        if self.weight_decay:
            for p in self.params:
                if p.requires_grad:
                    p.value -= self.lr * self.weight_decay * p.value
        super().step()
