"""Training loop and evaluation helpers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from repro.nn.data import SyntheticClassification
from repro.nn.losses import Loss
from repro.nn.module import Module
from repro.nn.optim import Optimizer


@dataclass
class TrainHistory:
    """Per-epoch loss/accuracy curves collected by the trainer."""

    train_loss: List[float] = field(default_factory=list)
    train_accuracy: List[float] = field(default_factory=list)
    val_accuracy: List[float] = field(default_factory=list)


class Trainer:
    """Minimal epoch-based trainer for classification models.

    A ``hook`` callable may be supplied; it runs after every optimizer step
    and is how MVQ keeps reconstructed weights and codebook gradients in sync
    during fine-tuning.
    """

    def __init__(
        self,
        model: Module,
        loss_fn: Loss,
        optimizer: Optimizer,
        batch_size: int = 32,
        hook: Optional[Callable[[], None]] = None,
    ):
        self.model = model
        self.loss_fn = loss_fn
        self.optimizer = optimizer
        self.batch_size = batch_size
        self.hook = hook
        self.history = TrainHistory()

    def train_epoch(self, dataset: SyntheticClassification) -> float:
        self.model.train()
        losses = []
        correct = 0
        total = 0
        for batch in dataset.batches(self.batch_size, shuffle=True):
            self.optimizer.zero_grad()
            logits = self.model.forward(batch.images)
            loss = self.loss_fn.forward(logits, batch.targets)
            grad = self.loss_fn.backward()
            self.model.backward(grad)
            self.optimizer.step()
            if self.hook is not None:
                self.hook()
            losses.append(loss)
            correct += int((logits.argmax(axis=1) == batch.targets).sum())
            total += len(batch.targets)
        epoch_loss = float(np.mean(losses))
        self.history.train_loss.append(epoch_loss)
        self.history.train_accuracy.append(correct / max(total, 1))
        return epoch_loss

    def fit(
        self,
        train_set: SyntheticClassification,
        epochs: int,
        val_set: Optional[SyntheticClassification] = None,
    ) -> TrainHistory:
        for _ in range(epochs):
            self.train_epoch(train_set)
            if val_set is not None:
                self.history.val_accuracy.append(
                    evaluate_accuracy(self.model, val_set, self.batch_size)
                )
        return self.history


def evaluate_accuracy(
    model: Module, dataset: SyntheticClassification, batch_size: int = 64
) -> float:
    """Top-1 accuracy of ``model`` on a classification dataset."""
    model.eval()
    correct = 0
    total = 0
    for batch in dataset.batches(batch_size, shuffle=False):
        logits = model.forward(batch.images)
        correct += int((logits.argmax(axis=1) == batch.targets).sum())
        total += len(batch.targets)
    model.train()
    return correct / max(total, 1)
