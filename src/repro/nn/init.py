"""Weight initialisation helpers (He / Xavier / uniform)."""

from __future__ import annotations

import numpy as np


def kaiming_normal(shape, fan_in: int, rng: np.random.Generator) -> np.ndarray:
    """He-normal initialisation suited to ReLU networks."""
    std = np.sqrt(2.0 / max(fan_in, 1))
    return rng.normal(0.0, std, size=shape)


def xavier_uniform(shape, fan_in: int, fan_out: int, rng: np.random.Generator) -> np.ndarray:
    """Glorot-uniform initialisation used for linear classifier heads."""
    limit = np.sqrt(6.0 / max(fan_in + fan_out, 1))
    return rng.uniform(-limit, limit, size=shape)


def default_rng(seed: int | None = None) -> np.random.Generator:
    return np.random.default_rng(seed)
