"""Synthetic datasets standing in for ImageNet / COCO / Pascal VOC.

The paper's algorithmic claims are relative (MVQ vs. conventional VQ at the
same compression ratio); to reproduce their *shape* offline we need learnable
tasks whose accuracy degrades when weights are approximated badly.  Each
generator below builds a task with a controllable number of classes, image
size and difficulty, drawn deterministically from a seed.

* :class:`SyntheticClassification` — Gaussian class prototypes rendered as
  structured images (blobs + oriented gratings), the ImageNet stand-in.
* :class:`SyntheticDetection` — images containing 1-3 coloured rectangles
  with class + box annotations, the COCO stand-in.
* :class:`SyntheticSegmentation` — dense per-pixel masks of the same scenes,
  the Pascal VOC stand-in.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

import numpy as np


@dataclass
class Batch:
    """A minibatch of images and targets."""

    images: np.ndarray
    targets: np.ndarray


class _SyntheticBase:
    def __init__(
        self,
        num_samples: int,
        image_size: int,
        num_classes: int,
        channels: int = 3,
        noise: float = 0.25,
        seed: int = 0,
    ):
        if num_samples <= 0 or image_size <= 0 or num_classes <= 1:
            raise ValueError("invalid dataset size parameters")
        self.num_samples = num_samples
        self.image_size = image_size
        self.num_classes = num_classes
        self.channels = channels
        self.noise = noise
        self.seed = seed
        self.rng = np.random.default_rng(seed)

    def __len__(self) -> int:
        return self.num_samples


class SyntheticClassification(_SyntheticBase):
    """Image classification with class-specific spatial structure.

    Each class ``c`` is defined by an oriented grating (frequency and angle
    derived from the class index) plus a class-specific channel colouring;
    images are the prototype plus Gaussian noise.  Linear models cannot
    solve it perfectly but small CNNs reach high accuracy, so accuracy drops
    measurably when weights are distorted — matching the role ImageNet plays
    in the paper.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._prototypes = self._build_prototypes()
        self.images, self.labels = self._generate()

    def _build_prototypes(self) -> np.ndarray:
        size = self.image_size
        yy, xx = np.meshgrid(np.arange(size), np.arange(size), indexing="ij")
        protos = np.zeros((self.num_classes, self.channels, size, size))
        for c in range(self.num_classes):
            angle = np.pi * c / self.num_classes
            freq = 2 * np.pi * (1 + c % 4) / size
            grating = np.sin(freq * (np.cos(angle) * xx + np.sin(angle) * yy))
            cy = size * (0.25 + 0.5 * ((c * 7) % self.num_classes) / self.num_classes)
            cx = size * (0.25 + 0.5 * ((c * 3) % self.num_classes) / self.num_classes)
            blob = np.exp(-(((yy - cy) ** 2 + (xx - cx) ** 2) / (2 * (size / 4) ** 2)))
            for ch in range(self.channels):
                weight = np.cos(2 * np.pi * (c + ch) / self.num_classes)
                protos[c, ch] = grating * 0.6 + blob * weight
        return protos

    def _generate(self) -> Tuple[np.ndarray, np.ndarray]:
        labels = self.rng.integers(0, self.num_classes, size=self.num_samples)
        images = self._prototypes[labels] + self.rng.normal(
            0, self.noise, size=(self.num_samples, self.channels, self.image_size, self.image_size)
        )
        return images.astype(np.float64), labels.astype(np.int64)

    def batches(self, batch_size: int, shuffle: bool = True) -> Iterator[Batch]:
        order = np.arange(self.num_samples)
        if shuffle:
            self.rng.shuffle(order)
        for start in range(0, self.num_samples, batch_size):
            idx = order[start : start + batch_size]
            yield Batch(self.images[idx], self.labels[idx])


class SyntheticDetection(_SyntheticBase):
    """Detection stand-in: each image holds one dominant object.

    Targets are ``(class_id, cx, cy, w, h)`` with box coordinates normalised
    to [0, 1].  The simplified detector predicts one box + class per image,
    which is enough to measure AP-style localisation/classification quality
    degradation under compression.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.images, self.boxes, self.labels = self._generate()

    def _generate(self):
        size = self.image_size
        images = self.rng.normal(0, self.noise, size=(self.num_samples, self.channels, size, size))
        boxes = np.zeros((self.num_samples, 4))
        labels = self.rng.integers(0, self.num_classes, size=self.num_samples)
        yy, xx = np.meshgrid(np.arange(size), np.arange(size), indexing="ij")
        for i in range(self.num_samples):
            c = labels[i]
            w = self.rng.uniform(0.3, 0.6)
            h = self.rng.uniform(0.3, 0.6)
            cx = self.rng.uniform(w / 2, 1 - w / 2)
            cy = self.rng.uniform(h / 2, 1 - h / 2)
            boxes[i] = (cx, cy, w, h)
            x0, x1 = int((cx - w / 2) * size), int((cx + w / 2) * size)
            y0, y1 = int((cy - h / 2) * size), int((cy + h / 2) * size)
            texture = np.sin(2 * np.pi * (1 + c % 3) * xx[y0:y1, x0:x1] / size) * np.cos(
                2 * np.pi * (1 + c % 4) * yy[y0:y1, x0:x1] / size
            )
            for ch in range(self.channels):
                images[i, ch, y0:y1, x0:x1] += texture * np.cos(
                    2 * np.pi * (c + ch) / self.num_classes
                ) + 0.5
        return images, boxes, labels.astype(np.int64)

    def batches(self, batch_size: int, shuffle: bool = True):
        order = np.arange(self.num_samples)
        if shuffle:
            self.rng.shuffle(order)
        for start in range(0, self.num_samples, batch_size):
            idx = order[start : start + batch_size]
            yield self.images[idx], self.boxes[idx], self.labels[idx]


class SyntheticSegmentation(_SyntheticBase):
    """Segmentation stand-in: per-pixel labels of blob scenes (VOC surrogate)."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.images, self.masks = self._generate()

    def _generate(self):
        size = self.image_size
        images = self.rng.normal(0, self.noise, size=(self.num_samples, self.channels, size, size))
        masks = np.zeros((self.num_samples, size, size), dtype=np.int64)
        yy, xx = np.meshgrid(np.arange(size), np.arange(size), indexing="ij")
        for i in range(self.num_samples):
            c = int(self.rng.integers(1, self.num_classes))
            cy = self.rng.uniform(0.3, 0.7) * size
            cx = self.rng.uniform(0.3, 0.7) * size
            radius = self.rng.uniform(0.2, 0.35) * size
            region = ((yy - cy) ** 2 + (xx - cx) ** 2) < radius**2
            masks[i][region] = c
            texture = np.sin(2 * np.pi * (1 + c % 3) * xx / size)
            for ch in range(self.channels):
                images[i, ch][region] += texture[region] * np.cos(
                    2 * np.pi * (c + ch) / self.num_classes
                ) + 0.5
        return images, masks

    def batches(self, batch_size: int, shuffle: bool = True):
        order = np.arange(self.num_samples)
        if shuffle:
            self.rng.shuffle(order)
        for start in range(0, self.num_samples, batch_size):
            idx = order[start : start + batch_size]
            yield self.images[idx], self.masks[idx]


def train_val_split(
    dataset: SyntheticClassification, val_fraction: float = 0.2
) -> Tuple[SyntheticClassification, SyntheticClassification]:
    """Split a classification dataset into train/val views sharing prototypes."""
    if not 0.0 < val_fraction < 1.0:
        raise ValueError("val_fraction must be in (0, 1)")
    n_val = max(1, int(dataset.num_samples * val_fraction))
    train = SyntheticClassification.__new__(SyntheticClassification)
    val = SyntheticClassification.__new__(SyntheticClassification)
    for view, lo, hi in ((train, 0, dataset.num_samples - n_val), (val, dataset.num_samples - n_val, dataset.num_samples)):
        view.__dict__.update(dataset.__dict__)
        view.images = dataset.images[lo:hi]
        view.labels = dataset.labels[lo:hi]
        view.num_samples = hi - lo
        view.rng = np.random.default_rng(dataset.seed + lo + 1)
    return train, val
