"""Decode-free compressed-domain inference (the paper's Section 5 datapath).

:class:`CompressedLinear` and :class:`CompressedConv2d` run forward — and
backward with respect to activations — directly from ``(codebook,
assignments, mask)`` without materialising the dense weight tensor per
call.  The centroid-domain path mirrors what the MVQ accelerator does in
hardware: activations are combined with the small effective-codeword table
once (``(batch, U)`` products, ``U ≪ N_G``) and partial sums are routed to
outputs by assignment index, the product-reuse idea of the CRF + assignment
routing datapath.

Three execution modes per layer:

* ``"centroid"`` — the decode-free path.  For grouping strategies whose
  subvectors lie along the *reduction* dimension (``INPUT``, ``KERNEL``)
  the forward pass is *gather-form*: one skinny GEMM against the table
  followed by a fused segment-gather of partial sums.  For the paper's
  ``OUTPUT`` grouping the forward pass is *scatter-form* (activations are
  segment-summed per codeword first) and the backward pass is gather-form.
* ``"dense"`` — reconstruct the weight matrix **once**, cache it, and run
  ordinary GEMMs.  Still serves from compressed storage (nothing is decoded
  per call after the first), and on BLAS-backed CPUs it is usually the
  fastest steady state.
* ``"lut"`` — the integer/LUT fast path.  Same dataflow as the centroid
  path, but the per-call routing is driven by one precomputed flat
  lookup table (``row * U + table_entry``, built once per layer like
  ``_dense_cache``) so the gather direction becomes a single
  ``np.take`` over the partial-product table and the scatter direction
  becomes a per-sample ``np.bincount`` accumulate in the wide
  accumulation dtype.  Bit-identical to ``"centroid"`` (same summation
  order; at float32 the scatter direction keeps the ``np.add.at``
  kernel precisely to preserve that contract).
* ``"lut_quant"`` — opt-in quantized-activation LUT mode: activations
  are snapped to a small symmetric alphabet (``act_levels`` per sign,
  int8-like at the default 127) before the LUT path runs with float32
  only at accumulation boundaries (the ``repro.core.precision``
  compute/accumulate split).  Approximate by design — callers gate on a
  max relative-error budget instead of bit-identity.  Never chosen by
  ``auto``.
* ``"auto"`` — a calibrated :class:`InferenceCostModel` picks between
  dense, centroid and exact-LUT per (layer, batch, dtype).  On CPU the
  gather/scatter rates are far below BLAS GEMM rates, so large layers
  fall back to the cached-dense path exactly as large ``k``/``U`` erodes
  the centroid path's reuse; on the modelled accelerator the same
  formulas favour the centroid/LUT paths.

The centroid implementations are exact (not approximations): every mode
produces bit-comparable results up to float summation order, which the
equivalence tests pin down across grouping strategies, mask settings and
compute dtypes.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.codebook import Codebook, assignment_dtype
from repro.core.grouping import GroupingStrategy, grouped_shape, ungroup_weight
from repro.core.precision import accum_dtype, compute_dtype, distance_block_bytes
from repro.core.reconstruct import effective_subvector_table
from repro.nn import functional as F
from repro.nn.module import Module
from repro.nn.tensor import Parameter

MODES = ("auto", "centroid", "dense", "lut", "lut_quant")

#: default size of the symmetric quantized-activation alphabet (levels per
#: sign — 127 mirrors int8 activations on the paper's accelerator)
DEFAULT_ACT_LEVELS = 127


@dataclass
class InferenceCostModel:
    """Per-primitive throughput estimates behind ``mode="auto"``.

    The constants are element/FLOP rates of the numpy primitives each path
    is built from, calibrated on a single AVX core; they only need to be
    directionally right, since the selection compares path estimates
    against each other.  Lowering ``gather_elems_per_s``/raising
    ``gemm_flops_per_s`` models a CPU (dense GEMM wins); the converse
    models accelerator-style hardware where routing is free and FLOPs are
    the scarce resource.
    """

    #: large-K BLAS GEMM throughput (FLOP/s)
    gemm_flops_per_s: float = 3.0e10
    #: GEMM against the (U, d) table: K == d is tiny, BLAS runs far below peak
    skinny_gemm_flops_per_s: float = 3.0e9
    #: fancy-indexed gather + accumulate (elements/s)
    gather_elems_per_s: float = 3.0e8
    #: ``np.add.at`` scatter-accumulate (elements/s)
    scatter_elems_per_s: float = 5.0e7
    #: layout transposes / copies (elements/s)
    copy_elems_per_s: float = 2.0e8
    #: LUT-path ``np.take`` gather + accumulate (elements/s)
    lut_gather_elems_per_s: float = 4.5e8
    #: LUT-path ``np.bincount`` scatter-accumulate (elements/s, float64 —
    #: at float32 the LUT scatter keeps ``np.add.at`` for bit-identity)
    lut_scatter_elems_per_s: float = 2.4e8
    #: float32 speedup over the float64 rates above
    fp32_speedup: float = 2.0

    def _scale(self, dtype: np.dtype) -> float:
        return self.fp32_speedup if np.dtype(dtype) == np.float32 else 1.0

    def dense_seconds(self, batch: int, n_in: int, n_out: int,
                      dtype=np.float64) -> float:
        """Steady-state cost of the cached-dense GEMM path."""
        return 2.0 * batch * n_in * n_out / (self.gemm_flops_per_s * self._scale(dtype))

    def centroid_seconds(self, batch: int, n_in: int, n_out: int, d: int,
                         table_size: int, gather_form: bool,
                         dtype=np.float64) -> float:
        """Cost of the decode-free path.

        ``gather_form`` selects the fused segment-gather variant (reduction
        -side grouping); the scatter variant pays ``np.add.at`` rates
        instead.  Both share the skinny table GEMM whose cost scales with
        ``table_size`` — this is where large ``k`` (relative to ``N_G``)
        erodes the centroid path's product reuse.
        """
        scale = self._scale(dtype)
        num_blocks = n_in // d if gather_form else n_in
        seconds = 2.0 * batch * n_in * table_size / (self.skinny_gemm_flops_per_s * scale)
        if gather_form:
            # transpose of the (batch, NB, U) product tensor + routed gather
            seconds += batch * num_blocks * table_size / (self.copy_elems_per_s * scale)
            seconds += batch * n_out * num_blocks / (self.gather_elems_per_s * scale)
        else:
            # scatter-form: segment-sum activations per output group first
            seconds += batch * n_in * (n_out // d) / (self.scatter_elems_per_s * scale)
        return seconds

    def lut_seconds(self, batch: int, n_in: int, n_out: int, d: int,
                    table_size: int, gather_form: bool,
                    dtype=np.float64) -> float:
        """Cost of the exact integer/LUT path.

        Same skinny table GEMM and layout terms as the centroid path; the
        routing term runs at the faster flat-``np.take`` / ``np.bincount``
        rates.  The float32 scatter direction pays the plain ``np.add.at``
        rate — the LUT path keeps that kernel at float32 so it stays
        bit-identical to the centroid path.
        """
        scale = self._scale(dtype)
        num_blocks = n_in // d if gather_form else n_in
        seconds = 2.0 * batch * n_in * table_size / (self.skinny_gemm_flops_per_s * scale)
        if gather_form:
            seconds += batch * num_blocks * table_size / (self.copy_elems_per_s * scale)
            seconds += batch * n_out * num_blocks / (self.lut_gather_elems_per_s * scale)
        else:
            rate = (self.lut_scatter_elems_per_s
                    if np.dtype(dtype) == np.float64 else self.scatter_elems_per_s)
            seconds += batch * n_in * (n_out // d) / (rate * scale)
        return seconds

    def select(self, batch: int, n_in: int, n_out: int, d: int,
               table_size: int, gather_form: bool, dtype=np.float64) -> str:
        """Cheapest exact path for this shape.  ``lut_quant`` is approximate
        and therefore opt-in only — ``auto`` never selects it."""
        dense = self.dense_seconds(batch, n_in, n_out, dtype)
        centroid = self.centroid_seconds(batch, n_in, n_out, d, table_size,
                                         gather_form, dtype)
        lut = self.lut_seconds(batch, n_in, n_out, d, table_size,
                               gather_form, dtype)
        best = "centroid" if centroid < dense else "dense"
        if lut < min(centroid, dense):
            best = "lut"
        return best


#: grouping strategies whose subvectors lie along the GEMM reduction axis,
#: making the centroid *forward* pass gather-form (fast segment-gather)
_REDUCTION_SIDE = (GroupingStrategy.INPUT, GroupingStrategy.KERNEL)


class CentroidEngine:
    """Strategy-aware compressed GEMM core shared by Linear and Conv2d.

    Operates on the im2col view: ``forward(cols) -> (batch, c_out)`` and
    ``backward(grad) -> grad_cols``, where ``cols`` rows are laid out
    ``(c_in, kh, kw)`` exactly as :func:`repro.nn.functional.im2col`
    produces them.
    """

    def __init__(self, codebook: Codebook, assignments: np.ndarray,
                 mask: Optional[np.ndarray], weight_shape: Tuple[int, ...],
                 d: int, strategy: GroupingStrategy,
                 mode: str = "auto",
                 cost_model: Optional[InferenceCostModel] = None):
        if mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}, got {mode!r}")
        shape4 = weight_shape if len(weight_shape) == 4 else (*weight_shape, 1, 1)
        expected = grouped_shape(shape4, d, strategy)
        # hold assignments at the narrowest safe integer width (uint8 for
        # k <= 256, the paper's operating point) — no copy when the caller
        # already supplies the narrow dtype (e.g. a shared-memory view)
        assignments = np.asarray(assignments)
        narrow = assignment_dtype(codebook.k)
        if assignments.dtype != narrow:
            assignments = assignments.astype(narrow)
        if assignments.shape[0] != expected[0]:
            raise ValueError(
                f"{assignments.shape[0]} assignments for {expected[0]} subvectors")
        self.codebook = codebook
        self.assignments = assignments
        self.mask = None if mask is None else np.asarray(mask, dtype=bool)
        self.weight_shape = tuple(weight_shape)
        self.c_out, self.c_in, self.kh, self.kw = shape4
        self.n_in = self.c_in * self.kh * self.kw
        self.d = d
        self.strategy = strategy
        self.mode = mode
        self.cost_model = cost_model or InferenceCostModel()
        self.gather_forward = strategy in _REDUCTION_SIDE
        #: alphabet size (levels per sign) of the ``lut_quant`` snap
        self.act_levels = DEFAULT_ACT_LEVELS
        #: mode that actually ran on the most recent forward/backward
        self.last_mode: Optional[str] = None

        self._table: Optional[np.ndarray] = None       # (U, d) float64
        self._index: Optional[np.ndarray] = None       # (N_G,)
        self._assign2d: Optional[np.ndarray] = None    # strategy-specific 2D view
        self._dense_cache: Dict[str, np.ndarray] = {}  # cache key -> (c_out, n_in)
        self._table_cache: Dict[str, np.ndarray] = {}  # cache key -> (U, d)
        self._lut: Dict[str, np.ndarray] = {}          # "route"/"flat" LUTs

    # -- compressed state -----------------------------------------------------
    def _index_view(self, index: np.ndarray) -> np.ndarray:
        """Strategy-specific 2D reshape of the routing index (a view)."""
        s = self.strategy
        if s is GroupingStrategy.OUTPUT:
            # rows (c_out/d, c_in, kh, kw): one assignment row per output group
            return index.reshape(self.c_out // self.d, self.n_in)
        if s is GroupingStrategy.INPUT:
            # rows (c_out, c_in/d, kh, kw): blocks stride the reduction axis
            return index.reshape(
                self.c_out, (self.c_in // self.d) * self.kh * self.kw)
        # KERNEL: rows (c_out, c_in), one kernel plane per subvector
        return index.reshape(self.c_out, self.c_in)

    def _build_table(self) -> None:
        if self._table is not None:
            return
        self._table, self._index = effective_subvector_table(
            self.codebook, self.assignments, self.mask)
        self._assign2d = self._index_view(self._index)

    def _build_lut(self) -> None:
        """Precompute the flat routing LUT (once per layer, like the dense
        cache): ``flat[row, col] = row * U + assign2d[row, col]`` oriented so
        one table serves gather and scatter in both directions.  Routed reads
        become a single ``np.take`` into the flattened ``(R*U, bc)`` partial
        -product tensor; routed writes become ``np.bincount`` keys."""
        if "flat" in self._lut:
            return
        self._build_table()
        u = int(self._table.shape[0])
        route = self._assign2d.T if self.gather_forward else self._assign2d
        route = np.ascontiguousarray(route)
        self._lut["route"] = route
        self._lut["flat"] = (
            route + np.arange(route.shape[0], dtype=np.int64)[:, None] * u)

    def share_tables_with(self, source: "CentroidEngine") -> None:
        """Adopt ``source``'s lazily-built derived state instead of building
        our own copy.

        Replicas of one compressed model already share the raw ``(codebook,
        assignments, mask)`` arrays; what this shares is everything derived
        from them — the effective-codeword table, the routing index, and
        the per-dtype dense/table caches (the dense cache is the O(model)
        item).  All of it is read-only after construction, so thread
        replicas can serve from one physical copy.  The cache *dicts* are
        shared by reference: a miss filled by any replica is a hit for all
        of them (worst case under races is a benign duplicate build,
        last-write-wins).
        """
        if source is self:
            return
        source._build_table()
        # the narrow-width assignment copy is derived state too (the raw
        # source array may have been wider) — share one physical copy
        self.assignments = source.assignments
        self._table = source._table
        self._index = source._index
        self._assign2d = source._assign2d
        self._dense_cache = source._dense_cache
        self._table_cache = source._table_cache
        self._lut = source._lut

    def derived_arrays(self) -> Dict[str, np.ndarray]:
        """Everything lazily derived from the raw compressed state, as flat
        name -> array (read-only after build).  The serving tier ships these
        in the :class:`~repro.serve.shm.ShmArena` so spawned workers adopt
        them zero-copy instead of rebuilding per process."""
        self._build_table()
        out: Dict[str, np.ndarray] = {"table": self._table, "index": self._index}
        for key, arr in self._lut.items():
            out[f"lut/{key}"] = arr
        for key, arr in self._table_cache.items():
            out[f"table_cache/{key}"] = arr
        for key, arr in self._dense_cache.items():
            out[f"dense_cache/{key}"] = arr
        return out

    def adopt_derived(self, arrays: Dict[str, np.ndarray]) -> None:
        """Adopt previously exported derived state (inverse of
        :meth:`derived_arrays`); arrays may be shared-memory views."""
        self._table = np.asarray(arrays["table"])
        self._index = np.asarray(arrays["index"])
        self._assign2d = self._index_view(self._index)
        for name, arr in arrays.items():
            prefix, _, key = name.partition("/")
            if prefix == "lut":
                self._lut[key] = np.asarray(arr)
            elif prefix == "table_cache":
                self._table_cache[key] = np.asarray(arr)
            elif prefix == "dense_cache":
                self._dense_cache[key] = np.asarray(arr)

    @property
    def table_size(self) -> int:
        """U — number of distinct decoded subvector values."""
        self._build_table()
        return int(self._table.shape[0])

    def lut_table_bytes(self) -> int:
        """Bytes held by the precomputed LUT routing tables and the
        per-dtype effective-codeword tables (0 until the LUT path runs)."""
        total = sum(arr.nbytes for arr in self._lut.values())
        total += sum(arr.nbytes for arr in self._table_cache.values())
        return int(total)

    @property
    def num_blocks(self) -> int:
        """Subvector blocks along the reduction axis (gather-form only)."""
        return self.n_in // self.d if self.gather_forward else self.n_in

    def _cache_key(self, dtype: np.dtype) -> str:
        """Per-dtype caches are also keyed by the integer assignment width,
        so swapping in assignments of a different width (wider codebook,
        adopted shared views) can never alias a stale entry."""
        return f"{np.dtype(dtype).name}/{self.assignments.dtype.name}"

    def _table_as(self, dtype: np.dtype) -> np.ndarray:
        self._build_table()
        key = self._cache_key(dtype)
        if key not in self._table_cache:
            self._table_cache[key] = np.ascontiguousarray(self._table, dtype=dtype)
        return self._table_cache[key]

    def weight_matrix(self, dtype: np.dtype) -> np.ndarray:
        """Cached dense ``(c_out, n_in)`` weight matrix (built at most once
        per dtype — this is the 'decode once' fallback, not a per-call decode)."""
        key = self._cache_key(dtype)
        if key not in self._dense_cache:
            self._build_table()
            grouped = self._table[self._index]
            weight = ungroup_weight(grouped, self.weight_shape, self.d, self.strategy)
            w_mat = weight.reshape(self.c_out, self.n_in)
            self._dense_cache[key] = np.ascontiguousarray(w_mat, dtype=dtype)
        return self._dense_cache[key]

    # -- mode selection -------------------------------------------------------
    def choose_mode(self, batch: int, dtype: np.dtype) -> str:
        if self.mode != "auto":
            return self.mode
        return self.cost_model.select(batch, self.n_in, self.c_out, self.d,
                                      self.table_size, self.gather_forward, dtype)

    def pin_mode(self, batch: int, dtype: np.dtype) -> str:
        """Resolve ``auto`` at one batch shape and pin the result.

        Steady-state serving runs every batch at one canonical shape; after
        pinning, the engine stays on the exact code path the cost model
        chose for that shape — no per-call re-selection, and no surprise
        mode flips if a caller later probes with a different batch size.
        Returns the pinned mode.
        """
        self.mode = self.choose_mode(batch, dtype)
        return self.mode

    def serving_stats(self) -> Dict[str, object]:
        """Introspection for serving reports: mode, table reuse, shapes."""
        return {
            "mode": self.mode,
            "last_mode": self.last_mode or self.mode,
            "strategy": self.strategy.value,
            "table_size": self.table_size,
            "subvectors": int(self.assignments.shape[0]),
            "table_reuse": float(self.assignments.shape[0]
                                 / max(self.table_size, 1)),
            "n_in": self.n_in,
            "n_out": self.c_out,
            "gather_forward": self.gather_forward,
            "assignments_dtype": self.assignments.dtype.name,
            "act_levels": int(self.act_levels),
            "lut_table_bytes": self.lut_table_bytes(),
        }

    # -- block layout helpers (gather-form strategies) ------------------------
    def _to_blocks(self, cols: np.ndarray) -> np.ndarray:
        """``(batch, n_in)`` im2col rows -> ``(batch, NB, d)`` subvector blocks."""
        b = cols.shape[0]
        if self.strategy is GroupingStrategy.KERNEL:
            return cols.reshape(b, self.c_in, self.kh * self.kw)
        # INPUT: channels are the subvector axis, strided by kh*kw in cols
        xb = cols.reshape(b, self.c_in // self.d, self.d, self.kh * self.kw)
        return np.ascontiguousarray(xb.transpose(0, 1, 3, 2)).reshape(
            b, self.num_blocks, self.d)

    def _from_blocks(self, xb: np.ndarray) -> np.ndarray:
        """Inverse of :meth:`_to_blocks` for the backward pass."""
        b = xb.shape[0]
        if self.strategy is GroupingStrategy.KERNEL:
            return xb.reshape(b, self.n_in)
        xb = xb.reshape(b, self.c_in // self.d, self.kh * self.kw, self.d)
        return np.ascontiguousarray(xb.transpose(0, 1, 3, 2)).reshape(b, self.n_in)

    def _batch_chunk(self, width: int, itemsize: int) -> int:
        """Batch rows per chunk so intermediates respect the block budget."""
        return max(1, distance_block_bytes() // max(1, width * itemsize))

    # -- centroid-domain cores -------------------------------------------------
    # Forward and backward are the same two primitives with the roles of
    # the block and output dimensions swapped, so one gather core and one
    # scatter core serve all four directions:
    #
    # * gather: subvector-shaped operands meet the table once per
    #   (row, codeword), then a fused segment-gather routes partial sums —
    #   ``route`` maps (row, output) to the table entry to pick up.
    # * scatter: flat operands are segment-summed per (row, codeword)
    #   first (``route`` maps (row, operand) to the segment), then one
    #   small GEMM against the table expands each segment to d outputs.

    def _gather_core(self, rows3: np.ndarray, route: np.ndarray,
                     out_width: int) -> np.ndarray:
        """``(bc, R, d)`` operands x table -> routed ``(bc, out_width)``."""
        table = self._table_as(rows3.dtype)
        u = table.shape[0]
        bc, r, _ = rows3.shape
        prod = (rows3.reshape(bc * r, self.d) @ table.T).reshape(bc, r, u)
        # (R, U, bc) layout makes each routed read a contiguous bc-vector
        prod = np.ascontiguousarray(prod.transpose(1, 2, 0))
        acc = np.zeros((out_width, bc), dtype=rows3.dtype)
        chunk = max(1, distance_block_bytes() //
                    max(1, out_width * bc * rows3.itemsize))
        for lo in range(0, r, chunk):
            rr = np.arange(lo, min(lo + chunk, r))
            acc += prod[rr[:, None], route[rr]].sum(axis=0)
        return acc.T

    def _scatter_core(self, values: np.ndarray, route: np.ndarray) -> np.ndarray:
        """``(bc, M)`` operands segment-summed by ``route`` (R, M), then
        expanded through the table -> ``(bc, R, d)``."""
        table = self._table_as(values.dtype)
        u = table.shape[0]
        bc = values.shape[0]
        r = route.shape[0]
        seg = np.zeros((r, u, bc), dtype=values.dtype)
        np.add.at(seg, (np.arange(r)[:, None], route), values.T[None, :, :])
        expanded = seg.transpose(0, 2, 1).reshape(r * bc, u) @ table
        return np.ascontiguousarray(
            expanded.reshape(r, bc, self.d).transpose(1, 0, 2))

    # -- integer/LUT cores ------------------------------------------------------
    # Same dataflow as the centroid cores, but routing runs off the
    # precomputed flat LUT: the gather direction reads the flattened
    # (R*U, bc) partial-product tensor with one np.take per chunk, and the
    # scatter direction turns routed writes into np.bincount over the flat
    # keys, accumulating in the wide dtype.  Chunking and summation order
    # match the centroid cores exactly, which is what makes the exact LUT
    # mode bit-identical.

    def _lut_gather_core(self, rows3: np.ndarray) -> np.ndarray:
        """``(bc, R, d)`` operands x table -> routed ``(bc, out_width)``."""
        table = self._table_as(rows3.dtype)
        u = table.shape[0]
        bc, r, _ = rows3.shape
        flat = self._lut["flat"]
        out_width = flat.shape[1]
        prod = (rows3.reshape(bc * r, self.d) @ table.T).reshape(bc, r, u)
        prod = np.ascontiguousarray(prod.transpose(1, 2, 0)).reshape(r * u, bc)
        acc = np.zeros((out_width, bc), dtype=rows3.dtype)
        chunk = max(1, distance_block_bytes() //
                    max(1, out_width * bc * rows3.itemsize))
        for lo in range(0, r, chunk):
            acc += np.take(prod, flat[lo:lo + chunk], axis=0).sum(axis=0)
        return acc.T

    def _lut_scatter_core(self, values: np.ndarray) -> np.ndarray:
        """``(bc, M)`` operands segment-summed via the flat-key bincount,
        then expanded through the table -> ``(bc, R, d)``."""
        table = self._table_as(values.dtype)
        u = table.shape[0]
        bc = values.shape[0]
        flat = self._lut["flat"]
        r, m = flat.shape
        if values.dtype == np.float64:
            keys = flat.ravel()
            seg = np.empty((r * u, bc), dtype=np.float64)
            for b in range(bc):
                seg[:, b] = np.bincount(
                    keys,
                    weights=np.broadcast_to(values[b], (r, m)).ravel(),
                    minlength=r * u)
            seg = seg.reshape(r, u, bc)
        else:
            # float32: bincount accumulates internally in float64 and would
            # break bit-identity with the centroid path — keep np.add.at
            seg = np.zeros((r, u, bc), dtype=values.dtype)
            np.add.at(seg, (np.arange(r)[:, None], self._lut["route"]),
                      values.T[None, :, :])
        expanded = seg.transpose(0, 2, 1).reshape(r * bc, u) @ table
        return np.ascontiguousarray(
            expanded.reshape(r, bc, self.d).transpose(1, 0, 2))

    def _snap_activations(self, x: np.ndarray) -> np.ndarray:
        """Snap to the symmetric ``2 * act_levels + 1``-point alphabet
        (per-call max-abs scale) used by ``lut_quant``."""
        amax = float(np.max(np.abs(x))) if x.size else 0.0
        if amax == 0.0:
            return x
        scale = amax / float(self.act_levels)
        return (np.round(x / scale) * scale).astype(x.dtype, copy=False)

    def _centroid_chunks(self, total: int, itemsize: int):
        """Batch-row chunks sized so the (bc, R, U) product tensor of
        either core respects the global block budget."""
        self._build_table()
        width = max(self.num_blocks, self.c_out // self.d) * self.table_size
        chunk = self._batch_chunk(width, itemsize)
        for lo in range(0, total, chunk):
            yield lo, min(lo + chunk, total)

    # -- centroid-domain forward ----------------------------------------------
    def _forward_gather(self, cols: np.ndarray) -> np.ndarray:
        """Gather-form: skinny table GEMM, then fused segment-gather."""
        out = np.empty((cols.shape[0], self.c_out), dtype=cols.dtype)
        for lo, hi in self._centroid_chunks(cols.shape[0], cols.itemsize):
            out[lo:hi] = self._gather_core(
                self._to_blocks(cols[lo:hi]), self._assign2d.T, self.c_out)
        return out

    def _forward_scatter(self, cols: np.ndarray) -> np.ndarray:
        """Scatter-form (OUTPUT grouping): segment-sum activations per
        codeword and output group, then one small GEMM against the table."""
        out = np.empty((cols.shape[0], self.c_out), dtype=cols.dtype)
        for lo, hi in self._centroid_chunks(cols.shape[0], cols.itemsize):
            partial = self._scatter_core(cols[lo:hi], self._assign2d)
            out[lo:hi] = partial.reshape(hi - lo, self.c_out)
        return out

    # -- centroid-domain backward (w.r.t. activations) ------------------------
    def _backward_gather(self, grad_out: np.ndarray) -> np.ndarray:
        """OUTPUT grouping: the transpose product is gather-form."""
        n_go = self.c_out // self.d
        grad_cols = np.empty((grad_out.shape[0], self.n_in), dtype=grad_out.dtype)
        for lo, hi in self._centroid_chunks(grad_out.shape[0], grad_out.itemsize):
            rows3 = grad_out[lo:hi].reshape(hi - lo, n_go, self.d)
            grad_cols[lo:hi] = self._gather_core(rows3, self._assign2d, self.n_in)
        return grad_cols

    def _backward_scatter(self, grad_out: np.ndarray) -> np.ndarray:
        """INPUT/KERNEL grouping: scatter grad_out per codeword, then GEMM."""
        grad_cols = np.empty((grad_out.shape[0], self.n_in), dtype=grad_out.dtype)
        for lo, hi in self._centroid_chunks(grad_out.shape[0], grad_out.itemsize):
            blocks3 = self._scatter_core(grad_out[lo:hi], self._assign2d.T)
            grad_cols[lo:hi] = self._from_blocks(blocks3)
        return grad_cols

    # -- integer/LUT forward/backward ------------------------------------------
    def _forward_lut(self, cols: np.ndarray, quant: bool) -> np.ndarray:
        """Exact LUT forward, or (``quant``) the quantized-activation variant
        accumulating in the wide dtype with the narrow compute dtype only at
        the boundary."""
        self._build_lut()
        work = cols
        if quant:
            work = self._snap_activations(cols).astype(accum_dtype(), copy=False)
        out = np.empty((work.shape[0], self.c_out), dtype=work.dtype)
        for lo, hi in self._centroid_chunks(work.shape[0], work.itemsize):
            if self.gather_forward:
                out[lo:hi] = self._lut_gather_core(self._to_blocks(work[lo:hi]))
            else:
                partial = self._lut_scatter_core(work[lo:hi])
                out[lo:hi] = partial.reshape(hi - lo, self.c_out)
        return out.astype(cols.dtype, copy=False)

    def _backward_lut(self, grad_out: np.ndarray, quant: bool) -> np.ndarray:
        """LUT backward w.r.t. activations (straight-through in quant mode:
        the upstream gradient is snapped to the same alphabet)."""
        self._build_lut()
        work = grad_out
        if quant:
            work = self._snap_activations(grad_out).astype(accum_dtype(),
                                                           copy=False)
        grad_cols = np.empty((work.shape[0], self.n_in), dtype=work.dtype)
        n_go = self.c_out // self.d
        for lo, hi in self._centroid_chunks(work.shape[0], work.itemsize):
            if self.gather_forward:      # forward gathered -> backward scatters
                blocks3 = self._lut_scatter_core(work[lo:hi])
                grad_cols[lo:hi] = self._from_blocks(blocks3)
            else:                        # OUTPUT: the transpose product gathers
                rows3 = work[lo:hi].reshape(hi - lo, n_go, self.d)
                grad_cols[lo:hi] = self._lut_gather_core(rows3)
        return grad_cols.astype(grad_out.dtype, copy=False)

    # -- public entry points --------------------------------------------------
    def forward(self, cols: np.ndarray) -> np.ndarray:
        mode = self.choose_mode(cols.shape[0], cols.dtype)
        self.last_mode = mode
        if mode == "dense":
            return cols @ self.weight_matrix(cols.dtype).T
        if mode in ("lut", "lut_quant"):
            return self._forward_lut(cols, quant=(mode == "lut_quant"))
        if self.gather_forward:
            return self._forward_gather(cols)
        return self._forward_scatter(cols)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        mode = self.choose_mode(grad_out.shape[0], grad_out.dtype)
        self.last_mode = mode
        if mode == "dense":
            return grad_out @ self.weight_matrix(grad_out.dtype)
        if mode in ("lut", "lut_quant"):
            return self._backward_lut(grad_out, quant=(mode == "lut_quant"))
        if self.gather_forward:          # forward gathered -> backward scatters
            return self._backward_scatter(grad_out)
        return self._backward_gather(grad_out)


class CompressedLinear(Module):
    """A Linear layer that serves directly from compressed storage."""

    def __init__(self, in_features: int, out_features: int,
                 codebook: Codebook, assignments: np.ndarray,
                 mask: Optional[np.ndarray], d: int,
                 strategy: GroupingStrategy = GroupingStrategy.OUTPUT,
                 bias: Optional[np.ndarray] = None,
                 mode: str = "auto",
                 cost_model: Optional[InferenceCostModel] = None,
                 dtype=None):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.dtype = np.dtype(dtype) if dtype is not None else compute_dtype()
        self.engine = CentroidEngine(codebook, assignments, mask,
                                     (out_features, in_features), d, strategy,
                                     mode=mode, cost_model=cost_model)
        self.bias = (Parameter(np.asarray(bias, dtype=np.float64), name="bias")
                     if bias is not None else None)
        self._cache: Optional[Tuple[int, ...]] = None

    @classmethod
    def from_layer(cls, layer, state, mode: str = "auto",
                   cost_model: Optional[InferenceCostModel] = None
                   ) -> "CompressedLinear":
        """Build from an ``nn.Linear`` and its core ``CompressedLayer``."""
        mask = state.mask if state.config.store_mask else None
        return cls(layer.in_features, layer.out_features,
                   state.codebook, state.assignments, mask,
                   state.config.d, state.config.strategy,
                   bias=None if layer.bias is None else layer.bias.value.copy(),
                   mode=mode, cost_model=cost_model,
                   dtype=layer.weight.value.dtype)

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x).astype(self.dtype, copy=False)
        self._cache = x.shape
        x2d = x.reshape(-1, self.in_features)
        out = self.engine.forward(np.ascontiguousarray(x2d))
        if self.bias is not None:
            out += self.bias.value
        return out.reshape(*x.shape[:-1], self.out_features)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        g2d = np.ascontiguousarray(grad_out.reshape(-1, self.out_features))
        if self.bias is not None:
            self.bias.accumulate_grad(g2d.sum(axis=0))
        return self.engine.backward(g2d).reshape(self._cache)


class CompressedConv2d(Module):
    """A dense Conv2d that serves directly from compressed storage.

    Keeps Conv2d's interface surface (channel/kernel/stride attributes and
    the im2col ``_cache``) so FLOPs counting and downstream tooling treat
    it as a convolution.  Holds a persistent im2col buffer that batched
    serving (:func:`repro.nn.serve.predict_batched`) reuses across calls.
    """

    def __init__(self, in_channels: int, out_channels: int, kernel_size: int,
                 codebook: Codebook, assignments: np.ndarray,
                 mask: Optional[np.ndarray], d: int,
                 strategy: GroupingStrategy = GroupingStrategy.OUTPUT,
                 stride: int = 1, padding: int = 0,
                 bias: Optional[np.ndarray] = None,
                 mode: str = "auto",
                 cost_model: Optional[InferenceCostModel] = None,
                 dtype=None):
        super().__init__()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.depthwise = False
        self.groups = 1
        self.dtype = np.dtype(dtype) if dtype is not None else compute_dtype()
        shape = (out_channels, in_channels, kernel_size, kernel_size)
        self.engine = CentroidEngine(codebook, assignments, mask, shape, d,
                                     strategy, mode=mode, cost_model=cost_model)
        self.bias = (Parameter(np.asarray(bias, dtype=np.float64), name="bias")
                     if bias is not None else None)
        self._cache = None
        self._col_buffer: Optional[np.ndarray] = None

    @classmethod
    def from_layer(cls, layer, state, mode: str = "auto",
                   cost_model: Optional[InferenceCostModel] = None
                   ) -> "CompressedConv2d":
        """Build from an ``nn.Conv2d`` and its core ``CompressedLayer``."""
        if layer.depthwise:
            raise ValueError("depthwise convolutions are not compressed")
        mask = state.mask if state.config.store_mask else None
        return cls(layer.in_channels, layer.out_channels, layer.kernel_size,
                   state.codebook, state.assignments, mask,
                   state.config.d, state.config.strategy,
                   stride=layer.stride, padding=layer.padding,
                   bias=None if layer.bias is None else layer.bias.value.copy(),
                   mode=mode, cost_model=cost_model,
                   dtype=layer.weight.value.dtype)

    def _columns(self, x: np.ndarray) -> np.ndarray:
        n, _, h, w = x.shape
        k = self.kernel_size
        out_h = F.conv_output_size(h, k, self.stride, self.padding)
        out_w = F.conv_output_size(w, k, self.stride, self.padding)
        shape = (n * out_h * out_w, self.in_channels * k * k)
        buf = self._col_buffer
        if buf is None or buf.shape != shape or buf.dtype != x.dtype:
            buf = np.empty(shape, dtype=x.dtype)
            self._col_buffer = buf
        return F.im2col(x, (k, k), self.stride, self.padding, out=buf)

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x).astype(self.dtype, copy=False)
        n, _, h, w = x.shape
        k = self.kernel_size
        out_h = F.conv_output_size(h, k, self.stride, self.padding)
        out_w = F.conv_output_size(w, k, self.stride, self.padding)
        cols = self._columns(x)
        out = self.engine.forward(cols)
        if self.bias is not None:
            out += self.bias.value
        self._cache = (cols, x.shape)
        return out.reshape(n, out_h, out_w, self.out_channels).transpose(0, 3, 1, 2)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Gradient w.r.t. activations only — compressed weights are frozen."""
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        _, x_shape = self._cache
        grad_mat = np.ascontiguousarray(
            grad_out.transpose(0, 2, 3, 1).reshape(-1, self.out_channels))
        if self.bias is not None:
            self.bias.accumulate_grad(grad_mat.sum(axis=0))
        grad_cols = self.engine.backward(grad_mat)
        k = self.kernel_size
        return F.col2im(grad_cols, x_shape, (k, k), self.stride, self.padding)


def compress_module(module: Module, state, mode: str = "auto",
                    cost_model: Optional[InferenceCostModel] = None) -> Module:
    """The compressed counterpart of one Linear/Conv2d module."""
    from repro.nn.layers import Conv2d, Linear
    if isinstance(module, Conv2d):
        return CompressedConv2d.from_layer(module, state, mode, cost_model)
    if isinstance(module, Linear):
        return CompressedLinear.from_layer(module, state, mode, cost_model)
    raise TypeError(f"cannot compress module of type {type(module).__name__}")


def _replace_module(root: Module, dotted: str, replacement: Module) -> None:
    """Swap the module at ``dotted`` path (attribute or list entry) in place."""
    parts = dotted.split(".")
    parent: object = root
    for part in parts[:-1]:
        parent = parent[int(part)] if part.isdigit() else getattr(parent, part)
    leaf = parts[-1]
    if leaf.isdigit():
        idx = int(leaf)
        if isinstance(parent, tuple):
            raise TypeError(
                f"cannot replace {dotted!r}: container is an immutable tuple")
        parent[idx] = replacement
    else:
        setattr(parent, leaf, replacement)


def swap_to_compressed(model: Module, compressed_model, mode: str = "auto",
                       cost_model: Optional[InferenceCostModel] = None
                       ) -> Dict[str, Module]:
    """Replace every compressed layer of ``model`` with a compressed module.

    ``compressed_model`` is a :class:`repro.core.compressor.CompressedModel`;
    returns the mapping of dotted layer names to the new modules.
    """
    modules = dict(model.named_modules())
    swapped: Dict[str, Module] = {}
    for name, state in compressed_model.layers.items():
        replacement = compress_module(modules[name], state, mode, cost_model)
        _replace_module(model, name, replacement)
        swapped[name] = replacement
    return swapped


def restore_modules(model: Module, originals: Dict[str, Module]) -> None:
    """Swap previously replaced modules back into ``model`` (inverse of
    :func:`swap_to_compressed` given the pre-swap modules)."""
    for name, module in originals.items():
        _replace_module(model, name, module)


@contextmanager
def compressed_serving(model: Module, compressed_model, mode: str = "auto",
                       cost_model: Optional[InferenceCostModel] = None):
    """Serve from compressed storage within a scope, then restore the model.

    Swaps every compressed layer to its decode-free module on entry and
    puts the original dense modules back on exit, so evaluation harnesses
    (e.g. the pipeline's ``serve_eval`` stage) can compare compressed and
    dense serving on the same live model without cloning it.  Yields the
    ``{name: module}`` mapping of the swapped-in compressed modules.
    """
    originals = dict(model.named_modules())
    originals = {name: originals[name] for name in compressed_model.layers}
    try:
        # the swap runs inside the try so a failure partway through the
        # per-layer loop still restores the modules already replaced
        swapped = swap_to_compressed(model, compressed_model, mode=mode,
                                     cost_model=cost_model)
        yield swapped
    finally:
        restore_modules(model, originals)
