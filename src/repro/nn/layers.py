"""Parameterised and stateless layers with explicit forward/backward passes."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.nn import functional as F
from repro.nn import init
from repro.nn.module import Module
from repro.nn.tensor import Parameter


class Conv2d(Module):
    """2D convolution (NCHW).  Supports dense and depthwise variants.

    ``groups`` may be either 1 (dense) or ``in_channels`` (depthwise) —
    the two cases the paper's model zoo needs.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
        groups: int = 1,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        if groups not in (1, in_channels):
            raise ValueError("Conv2d supports groups=1 (dense) or groups=in_channels (depthwise)")
        if groups == in_channels and out_channels != in_channels:
            raise ValueError("depthwise convolution requires out_channels == in_channels")
        rng = rng or init.default_rng()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.groups = groups
        self.depthwise = groups == in_channels and groups > 1

        if self.depthwise:
            w_shape = (out_channels, 1, kernel_size, kernel_size)
            fan_in = kernel_size * kernel_size
        else:
            w_shape = (out_channels, in_channels, kernel_size, kernel_size)
            fan_in = in_channels * kernel_size * kernel_size
        self.weight = Parameter(init.kaiming_normal(w_shape, fan_in, rng), name="weight")
        self.bias = Parameter(np.zeros(out_channels), name="bias") if bias else None

        self._cache: Optional[Tuple[np.ndarray, Tuple[int, int, int, int]]] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        # entering the parameterised stack: adopt the model's compute dtype
        x = np.asarray(x).astype(self.weight.value.dtype, copy=False)
        bias = self.bias.value if self.bias is not None else None
        if self.depthwise:
            out, cols = F.depthwise_conv2d_forward(
                x, self.weight.value, bias, self.stride, self.padding
            )
        else:
            out, cols = F.conv2d_forward(
                x, self.weight.value, bias, self.stride, self.padding
            )
        self._cache = (cols, x.shape)
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        cols, x_shape = self._cache
        with_bias = self.bias is not None
        if self.depthwise:
            grad_x, grad_w, grad_b = F.depthwise_conv2d_backward(
                grad_out, cols, x_shape, self.weight.value, self.stride, self.padding, with_bias
            )
        else:
            grad_x, grad_w, grad_b = F.conv2d_backward(
                grad_out, cols, x_shape, self.weight.value, self.stride, self.padding, with_bias
            )
        self.weight.accumulate_grad(grad_w)
        if with_bias:
            self.bias.accumulate_grad(grad_b)
        return grad_x


class Linear(Module):
    """Fully connected layer over the last dimension."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        rng = rng or init.default_rng()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            init.xavier_uniform((out_features, in_features), in_features, out_features, rng),
            name="weight",
        )
        self.bias = Parameter(np.zeros(out_features), name="bias") if bias else None
        self._cache: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x).astype(self.weight.value.dtype, copy=False)
        self._cache = x
        out = x @ self.weight.value.T
        if self.bias is not None:
            out += self.bias.value
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        x = self._cache
        if x is None:
            raise RuntimeError("backward called before forward")
        x2d = x.reshape(-1, self.in_features)
        g2d = grad_out.reshape(-1, self.out_features)
        self.weight.accumulate_grad(g2d.T @ x2d)
        if self.bias is not None:
            self.bias.accumulate_grad(g2d.sum(axis=0))
        return grad_out @ self.weight.value


class BatchNorm2d(Module):
    """Batch normalisation over the channel dimension of NCHW tensors."""

    _buffer_names = ("running_mean", "running_var")

    def __init__(self, num_features: int, eps: float = 1e-5, momentum: float = 0.1):
        super().__init__()
        self.num_features = num_features
        self.eps = eps
        self.momentum = momentum
        self.gamma = Parameter(np.ones(num_features), name="gamma")
        self.beta = Parameter(np.zeros(num_features), name="beta")
        self.running_mean = np.zeros(num_features)
        self.running_var = np.ones(num_features)
        self._cache = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        # statistics are accumulation-sensitive: always reduce in float64,
        # whatever dtype the activations run in
        if self.training:
            mean = x.mean(axis=(0, 2, 3), dtype=np.float64)
            var = x.var(axis=(0, 2, 3), dtype=np.float64)
            self.running_mean = (
                (1 - self.momentum) * self.running_mean + self.momentum * mean
            )
            self.running_var = (
                (1 - self.momentum) * self.running_var + self.momentum * var
            )
        else:
            mean = self.running_mean
            var = self.running_var

        inv_std = (1.0 / np.sqrt(var + self.eps)).astype(x.dtype)
        mean = mean.astype(x.dtype)
        x_hat = (x - mean[None, :, None, None]) * inv_std[None, :, None, None]
        out = (
            self.gamma.value[None, :, None, None] * x_hat
            + self.beta.value[None, :, None, None]
        )
        self._cache = (x_hat, inv_std, x.shape)
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        x_hat, inv_std, x_shape = self._cache
        n, c, h, w = x_shape
        m = n * h * w

        self.gamma.accumulate_grad((grad_out * x_hat).sum(axis=(0, 2, 3), dtype=np.float64))
        self.beta.accumulate_grad(grad_out.sum(axis=(0, 2, 3), dtype=np.float64))

        g = grad_out * self.gamma.value[None, :, None, None]
        if self.training:
            # full batch-norm gradient (means reduced in float64)
            sum_g = g.sum(axis=(0, 2, 3), keepdims=True, dtype=np.float64).astype(g.dtype)
            sum_gx = (g * x_hat).sum(axis=(0, 2, 3), keepdims=True, dtype=np.float64).astype(g.dtype)
            grad_x = (
                inv_std[None, :, None, None]
                * (g - sum_g / m - x_hat * sum_gx / m)
            )
        else:
            grad_x = g * inv_std[None, :, None, None]
        return grad_x


class ReLU(Module):
    def __init__(self):
        super().__init__()
        self._mask = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = x > 0
        return x * self._mask

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return grad_out * self._mask


class ReLU6(Module):
    """ReLU clipped at 6, used by MobileNets."""

    def __init__(self):
        super().__init__()
        self._mask = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = (x > 0) & (x < 6.0)
        return np.clip(x, 0.0, 6.0)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return grad_out * self._mask


class MaxPool2d(Module):
    def __init__(self, kernel_size: int, stride: Optional[int] = None, padding: int = 0):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride if stride is not None else kernel_size
        self.padding = padding
        self._cache = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        n, c, h, w = x.shape
        k = self.kernel_size
        cols = F.im2col(
            x.reshape(n * c, 1, h, w), (k, k), self.stride, self.padding
        )  # (N*C*oh*ow, k*k)
        out_h = F.conv_output_size(h, k, self.stride, self.padding)
        out_w = F.conv_output_size(w, k, self.stride, self.padding)
        argmax = cols.argmax(axis=1)
        out = cols[np.arange(cols.shape[0]), argmax]
        self._cache = (argmax, cols.shape, (n, c, h, w), out_h, out_w)
        return out.reshape(n, c, out_h, out_w)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        argmax, cols_shape, x_shape, out_h, out_w = self._cache
        n, c, h, w = x_shape
        k = self.kernel_size
        grad_cols = np.zeros(cols_shape, dtype=grad_out.dtype)
        grad_cols[np.arange(cols_shape[0]), argmax] = grad_out.reshape(-1)
        grad_x = F.col2im(
            grad_cols, (n * c, 1, h, w), (k, k), self.stride, self.padding
        )
        return grad_x.reshape(n, c, h, w)


class AvgPool2d(Module):
    def __init__(self, kernel_size: int, stride: Optional[int] = None, padding: int = 0):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride if stride is not None else kernel_size
        self.padding = padding
        self._cache = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        n, c, h, w = x.shape
        k = self.kernel_size
        cols = F.im2col(x.reshape(n * c, 1, h, w), (k, k), self.stride, self.padding)
        out_h = F.conv_output_size(h, k, self.stride, self.padding)
        out_w = F.conv_output_size(w, k, self.stride, self.padding)
        out = cols.mean(axis=1)
        self._cache = (cols.shape, (n, c, h, w))
        return out.reshape(n, c, out_h, out_w)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        cols_shape, x_shape = self._cache
        n, c, h, w = x_shape
        k = self.kernel_size
        grad_cols = np.repeat(
            grad_out.reshape(-1, 1) / (k * k), k * k, axis=1
        )
        grad_x = F.col2im(grad_cols, (n * c, 1, h, w), (k, k), self.stride, self.padding)
        return grad_x.reshape(n, c, h, w)


class GlobalAvgPool2d(Module):
    """Average over the full spatial extent, keeping (N, C)."""

    def __init__(self):
        super().__init__()
        self._cache = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._cache = x.shape
        return x.mean(axis=(2, 3))

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        n, c, h, w = self._cache
        return np.broadcast_to(
            grad_out[:, :, None, None] / (h * w), (n, c, h, w)
        ).copy()


class Flatten(Module):
    def __init__(self):
        super().__init__()
        self._shape = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return grad_out.reshape(self._shape)


class Dropout(Module):
    def __init__(self, p: float = 0.5, rng: Optional[np.random.Generator] = None):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError("dropout probability must be in [0, 1)")
        self.p = p
        self.rng = rng or init.default_rng()
        self._mask = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if not self.training or self.p == 0.0:
            self._mask = None
            return x
        self._mask = ((self.rng.random(x.shape) >= self.p) / (1.0 - self.p)).astype(x.dtype)
        return x * self._mask

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad_out
        return grad_out * self._mask


class Add(Module):
    """Elementwise addition of two activation tensors (residual join).

    This module is stateless; composite blocks call ``forward(a, b)`` and
    route the single incoming gradient to both branches themselves.
    """

    def forward(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:  # type: ignore[override]
        return a + b

    def backward(self, grad_out: np.ndarray):  # type: ignore[override]
        return grad_out, grad_out


class LayerNorm(Module):
    """Layer normalisation over the last dimension (transformer style)."""

    def __init__(self, num_features: int, eps: float = 1e-5):
        super().__init__()
        self.num_features = num_features
        self.eps = eps
        self.gamma = Parameter(np.ones(num_features), name="gamma")
        self.beta = Parameter(np.zeros(num_features), name="beta")
        self._cache = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x)
        # reductions in float64, like BatchNorm2d: normalisation statistics
        # are accumulation-sensitive whatever dtype activations run in
        mean = x.mean(axis=-1, keepdims=True, dtype=np.float64).astype(x.dtype)
        var = x.var(axis=-1, keepdims=True, dtype=np.float64)
        inv_std = (1.0 / np.sqrt(var + self.eps)).astype(x.dtype)
        x_hat = (x - mean) * inv_std
        self._cache = (x_hat, inv_std)
        return self.gamma.value * x_hat + self.beta.value

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        x_hat, inv_std = self._cache
        reduce_axes = tuple(range(grad_out.ndim - 1))
        self.gamma.accumulate_grad(
            (grad_out * x_hat).sum(axis=reduce_axes, dtype=np.float64))
        self.beta.accumulate_grad(grad_out.sum(axis=reduce_axes, dtype=np.float64))
        g = grad_out * self.gamma.value
        g_mean = g.mean(axis=-1, keepdims=True)
        gx_mean = (g * x_hat).mean(axis=-1, keepdims=True)
        return inv_std * (g - g_mean - x_hat * gx_mean)


class SequenceMean(Module):
    """Mean over the token dimension of (batch, seq, features) tensors."""

    def __init__(self):
        super().__init__()
        self._shape = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._shape = x.shape
        return x.mean(axis=1)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        n, s, e = self._shape
        return np.broadcast_to(grad_out[:, None, :] / s, (n, s, e)).copy()


class MultiHeadAttention(Module):
    """Multi-head self-attention over (batch, seq, embed) activations.

    The four projections (query/key/value/output) are ordinary
    :class:`Linear` layers, so the MVQ compressor (``include_linear=True``)
    vector-quantizes them like any other weight matrix and the
    compressed-domain engines serve them unchanged.  The score and context
    GEMMs are activation-activation products and carry no weights.
    """

    def __init__(self, embed_dim: int, num_heads: int, bias: bool = True,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        if embed_dim % num_heads != 0:
            raise ValueError(
                f"embed_dim ({embed_dim}) must be divisible by num_heads "
                f"({num_heads})")
        rng = rng or init.default_rng()
        self.embed_dim = embed_dim
        self.num_heads = num_heads
        self.head_dim = embed_dim // num_heads
        self.q = Linear(embed_dim, embed_dim, bias=bias, rng=rng)
        self.k = Linear(embed_dim, embed_dim, bias=bias, rng=rng)
        self.v = Linear(embed_dim, embed_dim, bias=bias, rng=rng)
        self.out = Linear(embed_dim, embed_dim, bias=bias, rng=rng)
        self._cache = None

    def _split_heads(self, x: np.ndarray) -> np.ndarray:
        n, s, _ = x.shape
        return x.reshape(n, s, self.num_heads, self.head_dim).transpose(0, 2, 1, 3)

    def _join_heads(self, x: np.ndarray) -> np.ndarray:
        n, h, s, d = x.shape
        return x.transpose(0, 2, 1, 3).reshape(n, s, h * d)

    def forward(self, x: np.ndarray) -> np.ndarray:
        if np.ndim(x) != 3:
            raise ValueError(
                f"attention expects (batch, seq, embed) input, got shape "
                f"{np.shape(x)}")
        q = self._split_heads(self.q.forward(x))       # (N, H, S, D)
        k = self._split_heads(self.k.forward(x))
        v = self._split_heads(self.v.forward(x))
        scale = 1.0 / np.sqrt(self.head_dim)
        scores = (q @ k.transpose(0, 1, 3, 2)) * scale  # (N, H, S, S)
        scores -= scores.max(axis=-1, keepdims=True)    # stable softmax
        attn = np.exp(scores)
        attn /= attn.sum(axis=-1, keepdims=True)
        context = attn @ v                              # (N, H, S, D)
        self._cache = (q, k, v, attn, scale)
        return self.out.forward(self._join_heads(context))

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        q, k, v, attn, scale = self._cache
        g_context = self._split_heads(self.out.backward(grad_out))
        g_attn = g_context @ v.transpose(0, 1, 3, 2)
        g_v = attn.transpose(0, 1, 3, 2) @ g_context
        # softmax jacobian: dS = A * (dA - sum(dA * A))
        g_scores = attn * (g_attn - (g_attn * attn).sum(axis=-1, keepdims=True))
        g_q = (g_scores @ k) * scale
        g_k = (g_scores.transpose(0, 1, 3, 2) @ q) * scale
        grad_x = self.q.backward(self._join_heads(g_q))
        grad_x = grad_x + self.k.backward(self._join_heads(g_k))
        grad_x = grad_x + self.v.backward(self._join_heads(g_v))
        return grad_x


class Upsample2d(Module):
    """Nearest-neighbour spatial upsampling by an integer factor."""

    def __init__(self, scale: int = 2):
        super().__init__()
        if scale < 1:
            raise ValueError("scale must be >= 1")
        self.scale = scale

    def forward(self, x: np.ndarray) -> np.ndarray:
        s = self.scale
        return x.repeat(s, axis=2).repeat(s, axis=3)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        s = self.scale
        n, c, h, w = grad_out.shape
        return (
            grad_out.reshape(n, c, h // s, s, w // s, s).sum(axis=(3, 5))
        )
