"""Module base class and the Sequential container.

Layers implement ``forward(x)`` and ``backward(grad_out)``; composite
modules (Sequential, residual blocks, model classes) route activations and
gradients between their children.  Parameters are discovered recursively by
walking instance attributes, mirroring the ergonomics of larger frameworks
while staying dependency-free.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

import numpy as np

from repro.nn.tensor import Parameter


class Module:
    """Base class for all layers and models."""

    def __init__(self):
        self.training = True

    # -- forward / backward ------------------------------------------------
    def forward(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)

    # -- parameter / submodule discovery ------------------------------------
    def children(self) -> Iterator[Tuple[str, "Module"]]:
        for name, attr in vars(self).items():
            if isinstance(attr, Module):
                yield name, attr
            elif isinstance(attr, (list, tuple)):
                for i, item in enumerate(attr):
                    if isinstance(item, Module):
                        yield f"{name}.{i}", item

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, attr in vars(self).items():
            if isinstance(attr, Parameter):
                yield (f"{prefix}{name}", attr)
        for child_name, child in self.children():
            yield from child.named_parameters(prefix=f"{prefix}{child_name}.")

    def parameters(self) -> List[Parameter]:
        return [p for _, p in self.named_parameters()]

    def named_modules(self, prefix: str = "") -> Iterator[Tuple[str, "Module"]]:
        yield prefix.rstrip("."), self
        for child_name, child in self.children():
            yield from child.named_modules(prefix=f"{prefix}{child_name}.")

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    # -- train / eval mode ---------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        self.training = mode
        for _, child in self.children():
            child.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    # -- buffers (non-trainable state such as BatchNorm running stats) --------
    #: attribute names that should be saved/restored alongside parameters
    _buffer_names: Tuple[str, ...] = ()

    def named_buffers(self, prefix: str = "") -> Iterator[Tuple[str, np.ndarray]]:
        for attr in self._buffer_names:
            yield f"{prefix}{attr}", getattr(self, attr)
        for child_name, child in self.children():
            yield from child.named_buffers(prefix=f"{prefix}{child_name}.")

    # -- state dict ----------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        state = {name: p.value.copy() for name, p in self.named_parameters()}
        state.update({name: np.array(buf, copy=True) for name, buf in self.named_buffers()})
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        params = dict(self.named_parameters())
        buffer_names = {name for name, _ in self.named_buffers()}
        expected = set(params) | buffer_names
        missing = expected - set(state)
        unexpected = set(state) - expected
        if missing or unexpected:
            raise KeyError(
                f"state dict mismatch: missing={sorted(missing)}, "
                f"unexpected={sorted(unexpected)}"
            )
        buffers = dict(self.named_buffers())
        for name, value in state.items():
            if name in params:
                params[name].copy_(value)
            else:
                buffers[name][...] = value

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())


class Sequential(Module):
    """Chain of modules executed in order."""

    def __init__(self, *modules: Module):
        super().__init__()
        self.layers = list(modules)

    def append(self, module: Module) -> "Sequential":
        self.layers.append(module)
        return self

    def __len__(self) -> int:
        return len(self.layers)

    def __getitem__(self, idx: int) -> Module:
        return self.layers[idx]

    def __iter__(self):
        return iter(self.layers)

    def forward(self, x: np.ndarray) -> np.ndarray:
        for layer in self.layers:
            x = layer.forward(x)
        return x

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            grad_out = layer.backward(grad_out)
        return grad_out
