"""Batched inference serving on top of the compressed-domain engine.

:func:`predict_batched` is the steady-state serving loop: it slices a
request stream into fixed-size batches and pushes them through the model in
eval mode.  Keeping the batch shape constant is what lets every
:class:`~repro.nn.compressed.CompressedConv2d` reuse its persistent im2col
buffer call after call — the last partial batch is zero-padded up to the
batch size (and the padding outputs dropped) for exactly that reason.

The same canonical-shape trick is what makes dynamic batching (the
``repro.serve`` model server) *bit-exact*: a batch padded to a fixed shape
runs the identical kernel schedule regardless of how many rows are real or
where a request landed in the batch, so a request served alone produces the
same bits as the same request coalesced with seven strangers.
:func:`forward_padded` is that one-batch primitive, shared by this module's
loop and the server's workers; :func:`prepare_for_serving` warms a model's
caches at the canonical shape and pins ``auto`` engine modes so steady-state
serving never re-runs the cost model (or changes its mind) mid-traffic.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.nn.module import Module


def pad_batch(batch: np.ndarray, batch_size: int) -> Tuple[np.ndarray, int]:
    """Zero-pad ``batch`` up to ``batch_size`` rows; returns ``(padded, valid)``.

    ``valid`` is the original row count; rows past it are zeros.  A batch
    already at (or above) ``batch_size`` is returned as-is.
    """
    valid = batch.shape[0]
    if valid >= batch_size:
        return batch, valid
    padded = np.zeros((batch_size, *batch.shape[1:]), dtype=batch.dtype)
    padded[:valid] = batch
    return padded, valid


def forward_padded(model: Module, batch: np.ndarray, batch_size: int) -> np.ndarray:
    """Forward one batch at the canonical ``batch_size`` shape.

    Pads with zero rows, forwards, and drops the padding outputs — the
    fixed-shape primitive that keeps im2col buffers warm and batched
    outputs bit-identical to individually-served ones.
    """
    padded, valid = pad_batch(np.asarray(batch), batch_size)
    return np.asarray(model.forward(padded))[:valid]


def prepare_for_serving(model: Module, input_shape: Tuple[int, ...],
                        batch_size: int, dtype=np.float64) -> Module:
    """Warm ``model`` for steady-state serving at one canonical batch shape.

    Puts the model in eval mode and forwards one zero batch of shape
    ``(batch_size, *input_shape)`` so every compressed module builds its
    effective-codeword table / cached dense weight / im2col buffer *before*
    the first real request.  Compressed engines left in ``"auto"`` mode are
    then pinned to whatever the cost model chose at this shape: mode
    selection depends on the batch row count, and pinning it keeps every
    subsequent forward on the identical code path (a prerequisite for
    bit-stable serving).  Returns the model for chaining.
    """
    model.eval()
    warm = np.zeros((batch_size, *input_shape), dtype=dtype)
    model.forward(warm)
    for _, module in model.named_modules():
        engine = getattr(module, "engine", None)
        if engine is None or engine.mode != "auto":
            continue
        cache = getattr(module, "_cache", None)
        if (isinstance(cache, tuple) and len(cache) == 2
                and isinstance(cache[0], np.ndarray)):        # Conv2d: (cols, x.shape)
            rows = cache[0].shape[0]
        elif isinstance(cache, tuple):                        # Linear: x.shape
            rows = int(np.prod(cache[:-1])) if len(cache) > 1 else 1
        else:
            rows = batch_size
        engine.pin_mode(rows, np.dtype(dtype))
    return model


def predict_batched(model: Module, inputs: np.ndarray, batch_size: int = 32,
                    pad_partial: bool = True) -> np.ndarray:
    """Forward ``inputs`` through ``model`` in fixed-size batches.

    Parameters
    ----------
    inputs:
        Stacked requests, shape ``(num_samples, ...)``.
    batch_size:
        Rows per forward call.  All full batches share one activation
        shape, so compressed convolutions hit their im2col buffers.
    pad_partial:
        Zero-pad the final short batch up to ``batch_size`` (padding rows
        are discarded from the output).  Keeps buffer shapes stable for a
        stream of arbitrary length; disable to forward the tail as-is.
    """
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    inputs = np.asarray(inputs)
    n = inputs.shape[0]
    was_training = model.training
    model.eval()
    try:
        outputs: Optional[np.ndarray] = None
        for lo in range(0, n, batch_size):
            batch = inputs[lo:lo + batch_size]
            valid = batch.shape[0]
            if pad_partial:
                out = forward_padded(model, batch, batch_size)
            else:
                out = np.asarray(model.forward(batch))[:valid]
            if outputs is None:
                outputs = np.empty((n, *out.shape[1:]), dtype=out.dtype)
            outputs[lo:lo + valid] = out
        if outputs is None:
            raise ValueError("predict_batched needs at least one input row")
        return outputs
    finally:
        model.train(was_training)
