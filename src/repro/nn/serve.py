"""Batched inference serving on top of the compressed-domain engine.

:func:`predict_batched` is the steady-state serving loop: it slices a
request stream into fixed-size batches and pushes them through the model in
eval mode.  Keeping the batch shape constant is what lets every
:class:`~repro.nn.compressed.CompressedConv2d` reuse its persistent im2col
buffer call after call — the last partial batch is zero-padded up to the
batch size (and the padding outputs dropped) for exactly that reason.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.module import Module


def predict_batched(model: Module, inputs: np.ndarray, batch_size: int = 32,
                    pad_partial: bool = True) -> np.ndarray:
    """Forward ``inputs`` through ``model`` in fixed-size batches.

    Parameters
    ----------
    inputs:
        Stacked requests, shape ``(num_samples, ...)``.
    batch_size:
        Rows per forward call.  All full batches share one activation
        shape, so compressed convolutions hit their im2col buffers.
    pad_partial:
        Zero-pad the final short batch up to ``batch_size`` (padding rows
        are discarded from the output).  Keeps buffer shapes stable for a
        stream of arbitrary length; disable to forward the tail as-is.
    """
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    inputs = np.asarray(inputs)
    n = inputs.shape[0]
    was_training = model.training
    model.eval()
    try:
        outputs: Optional[np.ndarray] = None
        for lo in range(0, n, batch_size):
            batch = inputs[lo:lo + batch_size]
            valid = batch.shape[0]
            if valid < batch_size and pad_partial:
                padded = np.zeros((batch_size, *inputs.shape[1:]), dtype=inputs.dtype)
                padded[:valid] = batch
                batch = padded
            out = np.asarray(model.forward(batch))[:valid]
            if outputs is None:
                outputs = np.empty((n, *out.shape[1:]), dtype=out.dtype)
            outputs[lo:lo + valid] = out
        if outputs is None:
            raise ValueError("predict_batched needs at least one input row")
        return outputs
    finally:
        model.train(was_training)
