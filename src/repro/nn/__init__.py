"""A small, self-contained numpy DNN framework.

This package is the training/inference substrate the MVQ reproduction is
built on.  It provides parameterised layers with explicit forward and
backward passes, composite modules, optimizers, losses, synthetic datasets,
a trainer, a FLOPs counter and a model zoo mirroring the architectures the
paper evaluates (ResNets, MobileNets, EfficientNet, VGG, AlexNet, a
detection head and a DeepLab-style segmentation head).
"""

from repro.nn.tensor import Parameter
from repro.nn.module import Module, Sequential
from repro.nn.layers import (
    Add,
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    Dropout,
    Flatten,
    GlobalAvgPool2d,
    LayerNorm,
    Linear,
    MaxPool2d,
    MultiHeadAttention,
    ReLU,
    ReLU6,
    SequenceMean,
    Upsample2d,
)
from repro.nn.losses import CrossEntropyLoss, MSELoss, Loss
from repro.nn.optim import SGD, Adam, AdamW, Optimizer
from repro.nn.train import Trainer, evaluate_accuracy
from repro.nn.flops import count_flops, count_sparse_flops, count_parameters
from repro.nn.compressed import (
    CentroidEngine,
    CompressedConv2d,
    CompressedLinear,
    InferenceCostModel,
    compress_module,
    swap_to_compressed,
)
from repro.nn.serve import (forward_padded, pad_batch, predict_batched,
                            prepare_for_serving)

__all__ = [
    "Parameter",
    "Module",
    "Sequential",
    "Conv2d",
    "Linear",
    "BatchNorm2d",
    "ReLU",
    "ReLU6",
    "MaxPool2d",
    "AvgPool2d",
    "GlobalAvgPool2d",
    "Flatten",
    "Dropout",
    "Add",
    "LayerNorm",
    "MultiHeadAttention",
    "SequenceMean",
    "Upsample2d",
    "Loss",
    "CrossEntropyLoss",
    "MSELoss",
    "Optimizer",
    "SGD",
    "Adam",
    "AdamW",
    "Trainer",
    "evaluate_accuracy",
    "count_flops",
    "count_sparse_flops",
    "count_parameters",
    "CentroidEngine",
    "CompressedConv2d",
    "CompressedLinear",
    "InferenceCostModel",
    "compress_module",
    "swap_to_compressed",
    "forward_padded",
    "pad_batch",
    "predict_batched",
    "prepare_for_serving",
]
