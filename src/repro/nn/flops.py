"""FLOPs and parameter counting.

The counters run one forward pass on a probe input and then read the shape
caches each layer stored, which yields per-layer multiply-accumulate counts
without any extra instrumentation.  ``count_sparse_flops`` additionally
scales convolution/linear FLOPs by the fraction of non-zero weights, which
is how the paper reports FLOPs reductions for N:M-pruned MVQ models
(e.g. 1.81G -> 0.54G on ResNet-18 at 75% sparsity).
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.nn.compressed import CompressedConv2d, CompressedLinear
from repro.nn.layers import Conv2d, Linear
from repro.nn.module import Module


def per_layer_flops(model: Module, input_shape, batch: int = 1) -> Dict[str, int]:
    """FLOPs of every Conv2d/Linear layer, keyed by module path.

    ``input_shape`` is (C, H, W); the probe batch size is 1 and results are
    scaled by ``batch``.
    """
    was_training = model.training
    model.eval()
    probe = np.zeros((1, *input_shape))
    model.forward(probe)
    model.train(was_training)

    flops: Dict[str, int] = {}
    for name, mod in model.named_modules():
        if isinstance(mod, (Conv2d, CompressedConv2d)) and mod._cache is not None:
            cols, x_shape = mod._cache
            out_positions = cols.shape[0] // x_shape[0]  # out_h * out_w
            if mod.depthwise:
                flops[name] = 2 * mod.kernel_size**2 * out_positions * mod.out_channels * batch
            else:
                flops[name] = (
                    2
                    * mod.in_channels
                    * mod.kernel_size**2
                    * out_positions
                    * mod.out_channels
                    * batch
                )
        elif isinstance(mod, Linear) and mod._cache is not None:
            rows = int(np.prod(mod._cache.shape[:-1]))
            flops[name] = 2 * rows * mod.in_features * mod.out_features * batch
        elif isinstance(mod, CompressedLinear) and mod._cache is not None:
            rows = int(np.prod(mod._cache[:-1]))  # cached input shape tuple
            flops[name] = 2 * rows * mod.in_features * mod.out_features * batch
    return flops


def count_flops(model: Module, input_shape, batch: int = 1) -> int:
    """Total FLOPs of one forward pass (2 x MACs convention)."""
    return int(sum(per_layer_flops(model, input_shape, batch).values()))


def count_sparse_flops(
    model: Module,
    input_shape,
    sparsity_by_layer: Optional[Dict[str, float]] = None,
    default_sparsity: float = 0.0,
    batch: int = 1,
) -> int:
    """FLOPs of a forward pass when zero weights are skipped.

    ``sparsity_by_layer`` maps module paths to the fraction of *pruned*
    weights; layers not listed use ``default_sparsity``.
    """
    if not 0.0 <= default_sparsity < 1.0:
        raise ValueError("default_sparsity must be in [0, 1)")
    layer_flops = per_layer_flops(model, input_shape, batch)
    total = 0.0
    for name, flops in layer_flops.items():
        sparsity = default_sparsity
        if sparsity_by_layer and name in sparsity_by_layer:
            sparsity = sparsity_by_layer[name]
        total += flops * (1.0 - sparsity)
    return int(total)


def count_parameters(model: Module) -> int:
    """Number of trainable scalars in the model."""
    return model.num_parameters()
