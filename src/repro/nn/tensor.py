"""Parameter container used by every trainable layer."""

from __future__ import annotations

import numpy as np

from repro.core.precision import compute_dtype


class Parameter:
    """A trainable array together with its accumulated gradient.

    The framework uses explicit forward/backward methods on layers instead
    of a tape-based autograd; each layer writes the gradient of the loss
    with respect to its parameters into ``Parameter.grad`` during
    ``backward`` and optimizers read/clear it during ``step``.

    Values (and therefore gradients) are stored in the global compute dtype
    (:func:`repro.core.precision.compute_dtype`) captured at construction
    time, so whole models can run float32 end to end.
    """

    def __init__(self, value: np.ndarray, requires_grad: bool = True, name: str = ""):
        self.value = np.asarray(value, dtype=compute_dtype())
        self.grad = np.zeros_like(self.value)
        self.requires_grad = requires_grad
        self.name = name

    @property
    def shape(self):
        return self.value.shape

    @property
    def size(self) -> int:
        return int(self.value.size)

    def zero_grad(self) -> None:
        self.grad[...] = 0.0

    def accumulate_grad(self, grad: np.ndarray) -> None:
        if self.requires_grad:
            self.grad += grad

    def copy_(self, value: np.ndarray) -> None:
        """In-place overwrite of the parameter value (shape must match)."""
        value = np.asarray(value, dtype=self.value.dtype)
        if value.shape != self.value.shape:
            raise ValueError(
                f"shape mismatch in copy_: {value.shape} vs {self.value.shape}"
            )
        self.value[...] = value

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Parameter(name={self.name!r}, shape={self.value.shape})"
