"""EfficientNet-lite style model built from MBConv (inverted residual) blocks.

Squeeze-excitation is omitted (as in the official *lite* variants) which
keeps the backward pass simple without changing the weight structure that
matters to vector quantization: mostly 1x1 expand/project convolutions.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.nn.layers import GlobalAvgPool2d, Linear
from repro.nn.models.mobilenet import InvertedResidual, _conv_bn_relu6
from repro.nn.module import Module, Sequential


class EfficientNetLite(Module):
    """Stem conv, MBConv stages with increasing width, 1x1 head, classifier."""

    def __init__(self, num_classes: int = 10, width: int = 12, in_channels: int = 3,
                 stage_config: Optional[List[Tuple[int, int, int, int]]] = None,
                 seed: int = 0):
        super().__init__()
        rng = np.random.default_rng(seed)
        # (out_channels, num_blocks, stride, expand_ratio)
        stage_config = stage_config or [
            (width, 1, 1, 1),
            (width * 2, 2, 2, 4),
            (width * 3, 2, 2, 4),
        ]
        self.stem = _conv_bn_relu6(in_channels, width, 3, 1, 1, rng=rng)
        blocks = []
        channels = width
        for out_ch, num_blocks, stride, expand in stage_config:
            for block_idx in range(num_blocks):
                block_stride = stride if block_idx == 0 else 1
                blocks.append(InvertedResidual(channels, out_ch, stride=block_stride,
                                               expand_ratio=expand, rng=rng))
                channels = out_ch
        self.blocks = Sequential(*blocks)
        self.head = _conv_bn_relu6(channels, channels * 2, 1, 1, 0, rng=rng)
        self.pool = GlobalAvgPool2d()
        self.fc = Linear(channels * 2, num_classes, rng=rng)
        self.feature_channels = channels * 2

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = self.stem.forward(x)
        x = self.blocks.forward(x)
        x = self.head.forward(x)
        x = self.pool.forward(x)
        return self.fc.forward(x)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        grad = self.fc.backward(grad_out)
        grad = self.pool.backward(grad)
        grad = self.head.backward(grad)
        grad = self.blocks.backward(grad)
        return self.stem.backward(grad)


def efficientnet_lite_mini(num_classes: int = 10, seed: int = 0, width: int = 12) -> EfficientNetLite:
    return EfficientNetLite(num_classes=num_classes, width=width, seed=seed)
