"""AlexNet-style model: large-ish early kernels, no residuals."""

from __future__ import annotations

import numpy as np

from repro.nn.layers import Conv2d, Dropout, Flatten, Linear, MaxPool2d, ReLU
from repro.nn.module import Module, Sequential


class AlexNet(Module):
    """Scaled-down AlexNet: 5 conv layers with pooling, 3 FC layers."""

    def __init__(self, num_classes: int = 10, in_channels: int = 3,
                 input_size: int = 16, width: int = 16, seed: int = 0):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.features = Sequential(
            Conv2d(in_channels, width, 5, stride=1, padding=2, rng=rng),
            ReLU(),
            MaxPool2d(2, 2),
            Conv2d(width, width * 2, 3, padding=1, rng=rng),
            ReLU(),
            MaxPool2d(2, 2),
            Conv2d(width * 2, width * 4, 3, padding=1, rng=rng),
            ReLU(),
            Conv2d(width * 4, width * 2, 3, padding=1, rng=rng),
            ReLU(),
            Conv2d(width * 2, width * 2, 3, padding=1, rng=rng),
            ReLU(),
        )
        spatial = input_size // 4
        self.flatten = Flatten()
        self.classifier = Sequential(
            Dropout(0.1, rng=rng),
            Linear(width * 2 * spatial * spatial, width * 4, rng=rng),
            ReLU(),
            Linear(width * 4, num_classes, rng=rng),
        )
        self.feature_channels = width * 2

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = self.features.forward(x)
        x = self.flatten.forward(x)
        return self.classifier.forward(x)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        grad = self.classifier.backward(grad_out)
        grad = self.flatten.backward(grad)
        return self.features.backward(grad)


def alexnet_mini(num_classes: int = 10, seed: int = 0, width: int = 16,
                 input_size: int = 16) -> AlexNet:
    return AlexNet(num_classes=num_classes, width=width, input_size=input_size, seed=seed)
