"""DeepLab-lite semantic segmentation model (MobileNet-V2 backbone).

The paper compresses DeepLab-V3 with a MobileNet-V2 backbone and reports
Pascal-VOC mIoU (Table 6).  Our offline stand-in keeps the same shape:
a MobileNet-V2 backbone, a multi-branch context module (1x1 + two 3x3
branches approximating the ASPP block; true atrous convolution is replaced
by stacked 3x3s which have the same weight layout), and bilinear-free
nearest upsampling back to input resolution.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.layers import BatchNorm2d, Conv2d, ReLU, Upsample2d
from repro.nn.losses import CrossEntropyLoss
from repro.nn.models.mobilenet import MobileNetV2, mobilenet_v2_mini
from repro.nn.module import Module, Sequential
from repro.nn.optim import Adam


class DeepLabLite(Module):
    """Backbone features -> context branches -> classifier -> upsample."""

    def __init__(self, num_classes: int = 4, backbone: Optional[MobileNetV2] = None,
                 head_channels: int = 32, output_stride: int = 4, seed: int = 0):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.backbone = backbone or mobilenet_v2_mini(num_classes=num_classes, seed=seed)
        feat = self.backbone.feature_channels
        self.branch1 = Sequential(
            Conv2d(feat, head_channels, 1, bias=False, rng=rng),
            BatchNorm2d(head_channels), ReLU(),
        )
        self.branch2 = Sequential(
            Conv2d(feat, head_channels, 3, padding=1, bias=False, rng=rng),
            BatchNorm2d(head_channels), ReLU(),
        )
        self.branch3 = Sequential(
            Conv2d(feat, head_channels, 3, padding=1, bias=False, rng=rng),
            BatchNorm2d(head_channels), ReLU(),
            Conv2d(head_channels, head_channels, 3, padding=1, bias=False, rng=rng),
            BatchNorm2d(head_channels), ReLU(),
        )
        self.classifier = Conv2d(head_channels, num_classes, 1, rng=rng)
        self.upsample = Upsample2d(output_stride)
        self.num_classes = num_classes

    def forward(self, x: np.ndarray) -> np.ndarray:
        feat = self.backbone.features(x)
        fused = (
            self.branch1.forward(feat)
            + self.branch2.forward(feat)
            + self.branch3.forward(feat)
        )
        logits = self.classifier.forward(fused)
        return self.upsample.forward(logits)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        grad = self.upsample.backward(grad_out)
        grad = self.classifier.backward(grad)
        grad_feat = (
            self.branch1.backward(grad)
            + self.branch2.backward(grad)
            + self.branch3.backward(grad)
        )
        grad_feat = self.backbone.head.backward(grad_feat)
        grad_feat = self.backbone.blocks.backward(grad_feat)
        return self.backbone.stem.backward(grad_feat)


def train_segmenter(model: DeepLabLite, dataset, epochs: int = 3,
                    batch_size: int = 8, lr: float = 1e-3, hook=None) -> None:
    """Train the segmenter; ``hook`` runs after every optimizer step (used by
    the MVQ codebook fine-tuner)."""
    loss_fn = CrossEntropyLoss()
    optimizer = Adam(model.parameters(), lr=lr)
    model.train()
    for _ in range(epochs):
        for images, masks in dataset.batches(batch_size, shuffle=True):
            optimizer.zero_grad()
            logits = model.forward(images)
            loss_fn.forward(logits, masks)
            model.backward(loss_fn.backward())
            optimizer.step()
            if hook is not None:
                hook()


def segmentation_miou(model: DeepLabLite, dataset, batch_size: int = 16) -> float:
    """Mean intersection-over-union across classes present in the dataset."""
    model.eval()
    num_classes = model.num_classes
    intersection = np.zeros(num_classes)
    union = np.zeros(num_classes)
    for images, masks in dataset.batches(batch_size, shuffle=False):
        preds = model.forward(images).argmax(axis=1)
        for c in range(num_classes):
            pred_c = preds == c
            true_c = masks == c
            intersection[c] += np.logical_and(pred_c, true_c).sum()
            union[c] += np.logical_or(pred_c, true_c).sum()
    model.train()
    present = union > 0
    if not present.any():
        return 0.0
    return float(np.mean(intersection[present] / union[present]))


def deeplab_lite_mini(num_classes: int = 4, seed: int = 0) -> DeepLabLite:
    return DeepLabLite(num_classes=num_classes, seed=seed)
