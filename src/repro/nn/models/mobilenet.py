"""MobileNet-V1 (depthwise separable) and MobileNet-V2 (inverted residual).

These parameter-efficient models are where the paper observes that 50%
sparsity already costs accuracy, motivating 1:2 / 2:4 pruning instead of the
4:16 used for ResNets (Fig. 11).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.nn.layers import BatchNorm2d, Conv2d, GlobalAvgPool2d, Linear, ReLU6
from repro.nn.module import Module, Sequential


def _conv_bn_relu6(in_ch: int, out_ch: int, kernel: int, stride: int, padding: int,
                   groups: int = 1, rng: Optional[np.random.Generator] = None) -> Sequential:
    return Sequential(
        Conv2d(in_ch, out_ch, kernel, stride=stride, padding=padding, bias=False,
               groups=groups, rng=rng),
        BatchNorm2d(out_ch),
        ReLU6(),
    )


class DepthwiseSeparableBlock(Module):
    """MobileNet-V1 block: depthwise 3x3 then pointwise 1x1."""

    def __init__(self, in_channels: int, out_channels: int, stride: int = 1,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.depthwise = _conv_bn_relu6(in_channels, in_channels, 3, stride, 1,
                                        groups=in_channels, rng=rng)
        self.pointwise = _conv_bn_relu6(in_channels, out_channels, 1, 1, 0, rng=rng)

    def forward(self, x: np.ndarray) -> np.ndarray:
        return self.pointwise.forward(self.depthwise.forward(x))

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return self.depthwise.backward(self.pointwise.backward(grad_out))


class InvertedResidual(Module):
    """MobileNet-V2 block: 1x1 expand, 3x3 depthwise, 1x1 project, optional skip."""

    def __init__(self, in_channels: int, out_channels: int, stride: int = 1,
                 expand_ratio: int = 4, rng: Optional[np.random.Generator] = None):
        super().__init__()
        hidden = in_channels * expand_ratio
        self.use_residual = stride == 1 and in_channels == out_channels
        self.expand = _conv_bn_relu6(in_channels, hidden, 1, 1, 0, rng=rng) if expand_ratio != 1 else None
        self.depthwise = _conv_bn_relu6(hidden, hidden, 3, stride, 1, groups=hidden, rng=rng)
        self.project = Sequential(
            Conv2d(hidden, out_channels, 1, bias=False, rng=rng),
            BatchNorm2d(out_channels),
        )

    def forward(self, x: np.ndarray) -> np.ndarray:
        out = x if self.expand is None else self.expand.forward(x)
        out = self.depthwise.forward(out)
        out = self.project.forward(out)
        if self.use_residual:
            return x + out
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        grad = self.project.backward(grad_out)
        grad = self.depthwise.backward(grad)
        if self.expand is not None:
            grad = self.expand.backward(grad)
        if self.use_residual:
            grad = grad + grad_out
        return grad


class MobileNetV1(Module):
    """Stack of depthwise-separable blocks."""

    def __init__(self, num_classes: int = 10, width: int = 16, in_channels: int = 3,
                 block_config: Optional[List[Tuple[int, int]]] = None, seed: int = 0):
        super().__init__()
        rng = np.random.default_rng(seed)
        block_config = block_config or [(width, 1), (width * 2, 2), (width * 2, 1), (width * 4, 2)]
        self.stem = _conv_bn_relu6(in_channels, width, 3, 1, 1, rng=rng)
        blocks = []
        channels = width
        for out_ch, stride in block_config:
            blocks.append(DepthwiseSeparableBlock(channels, out_ch, stride=stride, rng=rng))
            channels = out_ch
        self.blocks = Sequential(*blocks)
        self.pool = GlobalAvgPool2d()
        self.fc = Linear(channels, num_classes, rng=rng)
        self.feature_channels = channels

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = self.stem.forward(x)
        x = self.blocks.forward(x)
        x = self.pool.forward(x)
        return self.fc.forward(x)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        grad = self.fc.backward(grad_out)
        grad = self.pool.backward(grad)
        grad = self.blocks.backward(grad)
        return self.stem.backward(grad)


class MobileNetV2(Module):
    """Stack of inverted residual blocks."""

    def __init__(self, num_classes: int = 10, width: int = 12, in_channels: int = 3,
                 block_config: Optional[List[Tuple[int, int, int]]] = None, seed: int = 0):
        super().__init__()
        rng = np.random.default_rng(seed)
        # (out_channels, stride, expand_ratio)
        block_config = block_config or [
            (width, 1, 1),
            (width * 2, 2, 4),
            (width * 2, 1, 4),
            (width * 4, 2, 4),
        ]
        self.stem = _conv_bn_relu6(in_channels, width, 3, 1, 1, rng=rng)
        blocks = []
        channels = width
        for out_ch, stride, expand in block_config:
            blocks.append(InvertedResidual(channels, out_ch, stride=stride,
                                           expand_ratio=expand, rng=rng))
            channels = out_ch
        self.blocks = Sequential(*blocks)
        self.head = _conv_bn_relu6(channels, channels * 2, 1, 1, 0, rng=rng)
        self.pool = GlobalAvgPool2d()
        self.fc = Linear(channels * 2, num_classes, rng=rng)
        self.feature_channels = channels * 2

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = self.stem.forward(x)
        x = self.blocks.forward(x)
        x = self.head.forward(x)
        x = self.pool.forward(x)
        return self.fc.forward(x)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        grad = self.fc.backward(grad_out)
        grad = self.pool.backward(grad)
        grad = self.head.backward(grad)
        grad = self.blocks.backward(grad)
        return self.stem.backward(grad)

    def features(self, x: np.ndarray) -> np.ndarray:
        """Backbone feature map (used by the DeepLab-lite segmentation head)."""
        return self.head.forward(self.blocks.forward(self.stem.forward(x)))


def mobilenet_v1_mini(num_classes: int = 10, seed: int = 0, width: int = 16) -> MobileNetV1:
    return MobileNetV1(num_classes=num_classes, width=width, seed=seed)


def mobilenet_v2_mini(num_classes: int = 10, seed: int = 0, width: int = 12) -> MobileNetV2:
    return MobileNetV2(num_classes=num_classes, width=width, seed=seed)
