"""ResNet-style models (BasicBlock / Bottleneck residual networks).

``resnet18_mini`` and ``resnet50_mini`` keep the block structure of
ResNet-18 / ResNet-50 (two stages of basic or bottleneck blocks with a
stride-2 transition and an expansion of 4 for bottlenecks) at reduced width
and depth so they train in seconds on the synthetic classification task.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.nn.layers import BatchNorm2d, Conv2d, GlobalAvgPool2d, Linear, ReLU
from repro.nn.module import Module, Sequential


class BasicBlock(Module):
    """Two 3x3 convolutions with an identity (or 1x1 projection) shortcut."""

    expansion = 1

    def __init__(self, in_channels: int, out_channels: int, stride: int = 1,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.conv1 = Conv2d(in_channels, out_channels, 3, stride=stride, padding=1,
                            bias=False, rng=rng)
        self.bn1 = BatchNorm2d(out_channels)
        self.relu1 = ReLU()
        self.conv2 = Conv2d(out_channels, out_channels, 3, stride=1, padding=1,
                            bias=False, rng=rng)
        self.bn2 = BatchNorm2d(out_channels)
        self.relu2 = ReLU()
        self.downsample = None
        if stride != 1 or in_channels != out_channels:
            self.downsample = Sequential(
                Conv2d(in_channels, out_channels, 1, stride=stride, bias=False, rng=rng),
                BatchNorm2d(out_channels),
            )

    def forward(self, x: np.ndarray) -> np.ndarray:
        identity = x if self.downsample is None else self.downsample.forward(x)
        out = self.relu1.forward(self.bn1.forward(self.conv1.forward(x)))
        out = self.bn2.forward(self.conv2.forward(out))
        return self.relu2.forward(out + identity)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        grad = self.relu2.backward(grad_out)
        grad_identity = grad
        grad_main = self.conv1.backward(
            self.bn1.backward(self.relu1.backward(
                self.conv2.backward(self.bn2.backward(grad))
            ))
        )
        if self.downsample is not None:
            grad_identity = self.downsample.backward(grad_identity)
        return grad_main + grad_identity


class Bottleneck(Module):
    """1x1 -> 3x3 -> 1x1 bottleneck with expansion 4 (ResNet-50 style)."""

    expansion = 4

    def __init__(self, in_channels: int, planes: int, stride: int = 1,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        out_channels = planes * self.expansion
        self.conv1 = Conv2d(in_channels, planes, 1, bias=False, rng=rng)
        self.bn1 = BatchNorm2d(planes)
        self.relu1 = ReLU()
        self.conv2 = Conv2d(planes, planes, 3, stride=stride, padding=1, bias=False, rng=rng)
        self.bn2 = BatchNorm2d(planes)
        self.relu2 = ReLU()
        self.conv3 = Conv2d(planes, out_channels, 1, bias=False, rng=rng)
        self.bn3 = BatchNorm2d(out_channels)
        self.relu3 = ReLU()
        self.downsample = None
        if stride != 1 or in_channels != out_channels:
            self.downsample = Sequential(
                Conv2d(in_channels, out_channels, 1, stride=stride, bias=False, rng=rng),
                BatchNorm2d(out_channels),
            )

    def forward(self, x: np.ndarray) -> np.ndarray:
        identity = x if self.downsample is None else self.downsample.forward(x)
        out = self.relu1.forward(self.bn1.forward(self.conv1.forward(x)))
        out = self.relu2.forward(self.bn2.forward(self.conv2.forward(out)))
        out = self.bn3.forward(self.conv3.forward(out))
        return self.relu3.forward(out + identity)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        grad = self.relu3.backward(grad_out)
        grad_identity = grad
        grad_main = self.bn3.backward(grad)
        grad_main = self.conv3.backward(grad_main)
        grad_main = self.relu2.backward(grad_main)
        grad_main = self.bn2.backward(grad_main)
        grad_main = self.conv2.backward(grad_main)
        grad_main = self.relu1.backward(grad_main)
        grad_main = self.bn1.backward(grad_main)
        grad_main = self.conv1.backward(grad_main)
        if self.downsample is not None:
            grad_identity = self.downsample.backward(grad_identity)
        return grad_main + grad_identity


class ResNet(Module):
    """Residual network: stem conv, stacked residual stages, GAP classifier."""

    def __init__(
        self,
        block,
        stage_blocks: List[int],
        stage_channels: List[int],
        num_classes: int = 10,
        in_channels: int = 3,
        stem_channels: int = 16,
        seed: int = 0,
    ):
        super().__init__()
        if len(stage_blocks) != len(stage_channels):
            raise ValueError("stage_blocks and stage_channels must have equal length")
        rng = np.random.default_rng(seed)
        self.stem = Sequential(
            Conv2d(in_channels, stem_channels, 3, stride=1, padding=1, bias=False, rng=rng),
            BatchNorm2d(stem_channels),
            ReLU(),
        )
        blocks = []
        channels = stem_channels
        for stage_idx, (num_blocks, planes) in enumerate(zip(stage_blocks, stage_channels)):
            for block_idx in range(num_blocks):
                stride = 2 if (stage_idx > 0 and block_idx == 0) else 1
                blocks.append(block(channels, planes, stride=stride, rng=rng))
                channels = planes * block.expansion
        self.stages = Sequential(*blocks)
        self.pool = GlobalAvgPool2d()
        self.fc = Linear(channels, num_classes, rng=rng)
        self.feature_channels = channels

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = self.stem.forward(x)
        x = self.stages.forward(x)
        x = self.pool.forward(x)
        return self.fc.forward(x)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        grad = self.fc.backward(grad_out)
        grad = self.pool.backward(grad)
        grad = self.stages.backward(grad)
        return self.stem.backward(grad)

    def features(self, x: np.ndarray) -> np.ndarray:
        """Feature map before pooling (used by detection/segmentation heads)."""
        return self.stages.forward(self.stem.forward(x))


def resnet18_mini(num_classes: int = 10, seed: int = 0, width: int = 16) -> ResNet:
    """Scaled-down ResNet-18: BasicBlocks, [2, 2] stages."""
    return ResNet(BasicBlock, [2, 2], [width, width * 2], num_classes=num_classes,
                  stem_channels=width, seed=seed)


def resnet50_mini(num_classes: int = 10, seed: int = 0, width: int = 8) -> ResNet:
    """Scaled-down ResNet-50: Bottleneck blocks with expansion 4, [2, 2] stages."""
    return ResNet(Bottleneck, [2, 2], [width, width * 2], num_classes=num_classes,
                  stem_channels=width * Bottleneck.expansion, seed=seed)
