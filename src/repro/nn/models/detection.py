"""Simplified object detector standing in for ResNet-50 Mask-RCNN FPN.

The paper compresses a Mask-RCNN backbone and reports COCO box/mask AP
(Table 6).  Reproducing a full two-stage detector offline is out of scope;
what matters for the compression study is (i) a convolutional backbone whose
weights get vector-quantized and (ii) a task metric that degrades when the
backbone is approximated badly.  ``SimpleDetector`` predicts a single box
and class per image from a ResNet backbone; the evaluation metric
(:func:`detection_ap`) is an IoU-thresholded average precision analogous to
COCO's AP@0.5.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.nn import functional as F
from repro.nn.layers import GlobalAvgPool2d, Linear, ReLU
from repro.nn.losses import CrossEntropyLoss, SmoothL1Loss
from repro.nn.models.resnet import ResNet, resnet18_mini
from repro.nn.module import Module, Sequential
from repro.nn.optim import Adam


class SimpleDetector(Module):
    """Backbone + shared neck + (classification, box-regression) heads."""

    def __init__(self, num_classes: int = 5, backbone: Optional[ResNet] = None,
                 hidden: int = 32, seed: int = 0):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.backbone = backbone or resnet18_mini(num_classes=num_classes, seed=seed)
        feat = self.backbone.feature_channels
        self.pool = GlobalAvgPool2d()
        self.neck = Sequential(Linear(feat, hidden, rng=rng), ReLU())
        self.cls_head = Linear(hidden, num_classes, rng=rng)
        self.box_head = Linear(hidden, 4, rng=rng)
        self.num_classes = num_classes
        self._cache = None

    def forward(self, x: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:  # type: ignore[override]
        feat = self.backbone.features(x)
        pooled = self.pool.forward(feat)
        neck = self.neck.forward(pooled)
        logits = self.cls_head.forward(neck)
        boxes = F.sigmoid(self.box_head.forward(neck))
        self._cache = boxes
        return logits, boxes

    def backward(self, grads: Tuple[np.ndarray, np.ndarray]) -> np.ndarray:  # type: ignore[override]
        grad_logits, grad_boxes = grads
        boxes = self._cache
        grad_box_logits = grad_boxes * boxes * (1 - boxes)  # through the sigmoid
        grad_neck = self.cls_head.backward(grad_logits) + self.box_head.backward(grad_box_logits)
        grad_pooled = self.neck.backward(grad_neck)
        grad_feat = self.pool.backward(grad_pooled)
        grad_feat = self.backbone.stages.backward(grad_feat)
        return self.backbone.stem.backward(grad_feat)


def box_iou(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """IoU between boxes in (cx, cy, w, h) normalised format."""
    ax0, ay0 = a[..., 0] - a[..., 2] / 2, a[..., 1] - a[..., 3] / 2
    ax1, ay1 = a[..., 0] + a[..., 2] / 2, a[..., 1] + a[..., 3] / 2
    bx0, by0 = b[..., 0] - b[..., 2] / 2, b[..., 1] - b[..., 3] / 2
    bx1, by1 = b[..., 0] + b[..., 2] / 2, b[..., 1] + b[..., 3] / 2
    ix0, iy0 = np.maximum(ax0, bx0), np.maximum(ay0, by0)
    ix1, iy1 = np.minimum(ax1, bx1), np.minimum(ay1, by1)
    inter = np.clip(ix1 - ix0, 0, None) * np.clip(iy1 - iy0, 0, None)
    area_a = np.clip(ax1 - ax0, 0, None) * np.clip(ay1 - ay0, 0, None)
    area_b = np.clip(bx1 - bx0, 0, None) * np.clip(by1 - by0, 0, None)
    union = area_a + area_b - inter
    return np.where(union > 0, inter / union, 0.0)


def train_detector(detector: SimpleDetector, dataset, epochs: int = 3,
                   batch_size: int = 16, lr: float = 1e-3, hook=None) -> None:
    """Train classification + box regression heads jointly.

    ``hook``, if given, runs after every optimizer step — the MVQ codebook
    fine-tuner plugs in here exactly as it does for classification training.
    """
    cls_loss = CrossEntropyLoss()
    box_loss = SmoothL1Loss()
    optimizer = Adam(detector.parameters(), lr=lr)
    detector.train()
    for _ in range(epochs):
        for images, boxes, labels in dataset.batches(batch_size, shuffle=True):
            optimizer.zero_grad()
            logits, pred_boxes = detector.forward(images)
            cls_loss.forward(logits, labels)
            box_loss.forward(pred_boxes, boxes)
            grad_logits = cls_loss.backward()
            grad_boxes = box_loss.backward()
            detector.backward((grad_logits, grad_boxes))
            optimizer.step()
            if hook is not None:
                hook()


def detection_ap(detector: SimpleDetector, dataset, iou_threshold: float = 0.5,
                 batch_size: int = 32) -> float:
    """AP@IoU: fraction of images whose class is right and IoU clears the bar."""
    detector.eval()
    hits = 0
    total = 0
    for images, boxes, labels in dataset.batches(batch_size, shuffle=False):
        logits, pred_boxes = detector.forward(images)
        pred_labels = logits.argmax(axis=1)
        ious = box_iou(pred_boxes, boxes)
        hits += int(((pred_labels == labels) & (ious >= iou_threshold)).sum())
        total += len(labels)
    detector.train()
    return hits / max(total, 1)


def simple_detector_mini(num_classes: int = 5, seed: int = 0) -> SimpleDetector:
    return SimpleDetector(num_classes=num_classes, seed=seed)
