"""Model zoo mirroring the architectures evaluated in the MVQ paper.

Every model is a scaled-down but structurally faithful variant (residual
blocks, depthwise-separable blocks, inverted residuals, plain conv stacks,
detection and segmentation heads) trained on the synthetic datasets in
:mod:`repro.nn.data`.  The full-size layer shape tables used by the
accelerator experiments live in :mod:`repro.accelerator.workloads`.
"""

from repro.nn.models.resnet import ResNet, resnet18_mini, resnet50_mini, BasicBlock, Bottleneck
from repro.nn.models.mobilenet import MobileNetV1, MobileNetV2, mobilenet_v1_mini, mobilenet_v2_mini
from repro.nn.models.efficientnet import EfficientNetLite, efficientnet_lite_mini
from repro.nn.models.vgg import VGG, vgg16_mini
from repro.nn.models.alexnet import AlexNet, alexnet_mini
from repro.nn.models.detection import SimpleDetector, simple_detector_mini
from repro.nn.models.deeplab import DeepLabLite, deeplab_lite_mini

__all__ = [
    "ResNet",
    "BasicBlock",
    "Bottleneck",
    "resnet18_mini",
    "resnet50_mini",
    "MobileNetV1",
    "MobileNetV2",
    "mobilenet_v1_mini",
    "mobilenet_v2_mini",
    "EfficientNetLite",
    "efficientnet_lite_mini",
    "VGG",
    "vgg16_mini",
    "AlexNet",
    "alexnet_mini",
    "SimpleDetector",
    "simple_detector_mini",
    "DeepLabLite",
    "deeplab_lite_mini",
]
