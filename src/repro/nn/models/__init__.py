"""Model zoo mirroring the architectures evaluated in the MVQ paper.

Every model is a scaled-down but structurally faithful variant (residual
blocks, depthwise-separable blocks, inverted residuals, plain conv stacks,
detection and segmentation heads) trained on the synthetic datasets in
:mod:`repro.nn.data`.  The full-size layer shape tables used by the
accelerator experiments live in :mod:`repro.accelerator.workloads`.
"""

from typing import Callable, Dict

from repro.nn.models.resnet import ResNet, resnet18_mini, resnet50_mini, BasicBlock, Bottleneck
from repro.nn.models.mobilenet import MobileNetV1, MobileNetV2, mobilenet_v1_mini, mobilenet_v2_mini
from repro.nn.models.efficientnet import EfficientNetLite, efficientnet_lite_mini
from repro.nn.models.vgg import VGG, vgg16_mini
from repro.nn.models.alexnet import AlexNet, alexnet_mini
from repro.nn.models.detection import SimpleDetector, simple_detector_mini
from repro.nn.models.deeplab import DeepLabLite, deeplab_lite_mini

#: classification model zoo, keyed by the names the pipeline's scenario
#: registry (and the benchmark harness) use
MODEL_ZOO: Dict[str, Callable] = {
    "resnet18": resnet18_mini,
    "resnet50": resnet50_mini,
    "mobilenet_v1": mobilenet_v1_mini,
    "mobilenet_v2": mobilenet_v2_mini,
    "efficientnet": efficientnet_lite_mini,
    "vgg16": vgg16_mini,
    "alexnet": alexnet_mini,
}


def get_model_factory(name: str) -> Callable:
    """Model factory by name — deprecation shim over the unified registry.

    New code should use :func:`repro.workloads.model_factory`, which also
    resolves spec-backed workloads (``transformer_block``, the stress
    shapes, user-registered JSON specs).  Zoo names return the *same*
    factory objects as before — the registry is seeded from
    :data:`MODEL_ZOO`, so outputs are bit-identical.
    """
    from repro.workloads.registry import model_factory

    return model_factory(name)


__all__ = [
    "MODEL_ZOO",
    "get_model_factory",
    "ResNet",
    "BasicBlock",
    "Bottleneck",
    "resnet18_mini",
    "resnet50_mini",
    "MobileNetV1",
    "MobileNetV2",
    "mobilenet_v1_mini",
    "mobilenet_v2_mini",
    "EfficientNetLite",
    "efficientnet_lite_mini",
    "VGG",
    "vgg16_mini",
    "AlexNet",
    "alexnet_mini",
    "SimpleDetector",
    "simple_detector_mini",
    "DeepLabLite",
    "deeplab_lite_mini",
]
