"""VGG-style plain convolutional stack (VGG-16 mini)."""

from __future__ import annotations

from typing import List, Optional, Union

import numpy as np

from repro.nn.layers import BatchNorm2d, Conv2d, Flatten, Linear, MaxPool2d, ReLU
from repro.nn.module import Module, Sequential


class VGG(Module):
    """Plain conv/pool stack followed by a small MLP classifier.

    ``config`` is a list of channel counts and the literal ``"M"`` for a
    2x2 max-pool, mirroring torchvision's VGG configuration strings.
    """

    def __init__(
        self,
        config: List[Union[int, str]],
        num_classes: int = 10,
        in_channels: int = 3,
        input_size: int = 16,
        hidden: int = 64,
        seed: int = 0,
    ):
        super().__init__()
        rng = np.random.default_rng(seed)
        layers: List[Module] = []
        channels = in_channels
        spatial = input_size
        for item in config:
            if item == "M":
                layers.append(MaxPool2d(2, 2))
                spatial //= 2
            else:
                layers.append(Conv2d(channels, int(item), 3, padding=1, bias=False, rng=rng))
                layers.append(BatchNorm2d(int(item)))
                layers.append(ReLU())
                channels = int(item)
        self.features = Sequential(*layers)
        self.flatten = Flatten()
        self.classifier = Sequential(
            Linear(channels * spatial * spatial, hidden, rng=rng),
            ReLU(),
            Linear(hidden, num_classes, rng=rng),
        )
        self.feature_channels = channels

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = self.features.forward(x)
        x = self.flatten.forward(x)
        return self.classifier.forward(x)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        grad = self.classifier.backward(grad_out)
        grad = self.flatten.backward(grad)
        return self.features.backward(grad)


def vgg16_mini(num_classes: int = 10, seed: int = 0, width: int = 16,
               input_size: int = 16) -> VGG:
    """Scaled-down VGG-16: two convs per stage, three stages with pooling."""
    config = [width, width, "M", width * 2, width * 2, "M", width * 4, width * 4, "M"]
    return VGG(config, num_classes=num_classes, input_size=input_size, seed=seed)
