"""Loss functions.  Each returns a scalar and produces a gradient on backward."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn import functional as F


class Loss:
    """Base class: ``forward(pred, target) -> float`` then ``backward() -> grad``."""

    def forward(self, pred: np.ndarray, target: np.ndarray) -> float:
        raise NotImplementedError

    def backward(self) -> np.ndarray:
        raise NotImplementedError

    def __call__(self, pred: np.ndarray, target: np.ndarray) -> float:
        return self.forward(pred, target)


class CrossEntropyLoss(Loss):
    """Softmax cross-entropy over logits.

    ``target`` is an integer class-index array.  For segmentation, logits of
    shape (N, C, H, W) and targets (N, H, W) are also accepted.
    """

    def __init__(self, label_smoothing: float = 0.0):
        if not 0.0 <= label_smoothing < 1.0:
            raise ValueError("label_smoothing must be in [0, 1)")
        self.label_smoothing = label_smoothing
        self._cache = None

    def forward(self, pred: np.ndarray, target: np.ndarray) -> float:
        original_shape = pred.shape
        if pred.ndim == 4:
            n, c, h, w = pred.shape
            logits = pred.transpose(0, 2, 3, 1).reshape(-1, c)
            labels = target.reshape(-1)
        else:
            logits = pred
            labels = target
        n_samples, n_classes = logits.shape

        log_probs = F.log_softmax(logits, axis=1)
        smooth = self.label_smoothing
        onehot = np.full((n_samples, n_classes), smooth / max(n_classes - 1, 1))
        onehot[np.arange(n_samples), labels] = 1.0 - smooth

        loss = -(onehot * log_probs).sum(axis=1).mean()
        self._cache = (log_probs, onehot, original_shape, n_samples)
        return float(loss)

    def backward(self) -> np.ndarray:
        log_probs, onehot, original_shape, n_samples = self._cache
        probs = np.exp(log_probs)
        # keep the gradient in the activations' dtype (the onehot target is
        # float64, which would otherwise upcast the whole backward pass)
        grad = ((probs - onehot) / n_samples).astype(log_probs.dtype)
        if len(original_shape) == 4:
            n, c, h, w = original_shape
            grad = grad.reshape(n, h, w, c).transpose(0, 3, 1, 2)
        return grad


class MSELoss(Loss):
    def __init__(self):
        self._cache = None

    def forward(self, pred: np.ndarray, target: np.ndarray) -> float:
        diff = pred - target
        self._cache = (diff, pred.size)
        return float(np.mean(diff**2))

    def backward(self) -> np.ndarray:
        diff, size = self._cache
        return 2.0 * diff / size


class SmoothL1Loss(Loss):
    """Huber-style loss used by the detection head for box regression."""

    def __init__(self, beta: float = 1.0):
        if beta <= 0:
            raise ValueError("beta must be positive")
        self.beta = beta
        self._cache = None

    def forward(self, pred: np.ndarray, target: np.ndarray) -> float:
        diff = pred - target
        abs_diff = np.abs(diff)
        quad = abs_diff < self.beta
        loss = np.where(
            quad, 0.5 * diff**2 / self.beta, abs_diff - 0.5 * self.beta
        )
        self._cache = (diff, quad, pred.size)
        return float(loss.mean())

    def backward(self) -> np.ndarray:
        diff, quad, size = self._cache
        grad = np.where(quad, diff / self.beta, np.sign(diff))
        return grad / size


class BCEWithLogitsLoss(Loss):
    """Binary cross-entropy over logits (objectness / mask heads)."""

    def __init__(self):
        self._cache = None

    def forward(self, pred: np.ndarray, target: np.ndarray) -> float:
        probs = F.sigmoid(pred)
        eps = 1e-12
        loss = -(target * np.log(probs + eps) + (1 - target) * np.log(1 - probs + eps))
        self._cache = (probs, target, pred.size)
        return float(loss.mean())

    def backward(self) -> np.ndarray:
        probs, target, size = self._cache
        return (probs - target) / size
