"""Low-level numerical kernels: im2col/col2im and convolution primitives.

Convolutions are implemented with the classic im2col lowering so that both
the forward pass and the weight/input gradients reduce to matrix products.
All tensors follow the NCHW layout used throughout the paper.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np


def conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Spatial output size of a convolution / pooling window."""
    out = (size + 2 * padding - kernel) // stride + 1
    if out <= 0:
        raise ValueError(
            f"non-positive output size for input={size}, kernel={kernel}, "
            f"stride={stride}, padding={padding}"
        )
    return out


def im2col(
    x: np.ndarray, kernel: Tuple[int, int], stride: int, padding: int,
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Lower ``x`` of shape (N, C, H, W) to columns.

    Returns an array of shape ``(N * out_h * out_w, C * kh * kw)`` where each
    row holds one receptive field.  The receptive fields are materialised
    from a zero-copy :func:`~numpy.lib.stride_tricks.sliding_window_view`,
    so the only data movement is the single final copy into row layout.

    ``out`` may supply a preallocated ``(N * out_h * out_w, C * kh * kw)``
    buffer (matching dtype) that receives that copy — serving loops reuse
    one buffer across calls instead of allocating per batch.
    """
    n, c, h, w = x.shape
    kh, kw = kernel
    out_h = conv_output_size(h, kh, stride, padding)
    out_w = conv_output_size(w, kw, stride, padding)

    if padding > 0:
        x = np.pad(
            x, ((0, 0), (0, 0), (padding, padding), (padding, padding)), mode="constant"
        )

    # (N, C, H', W', kh, kw) strided view of every receptive field
    windows = np.lib.stride_tricks.sliding_window_view(x, (kh, kw), axis=(2, 3))
    if stride > 1:
        windows = windows[:, :, ::stride, ::stride]

    rows, width = n * out_h * out_w, c * kh * kw
    if out is None:
        out = np.empty((rows, width), dtype=x.dtype)
    elif out.shape != (rows, width) or out.dtype != x.dtype:
        raise ValueError(
            f"im2col buffer must be {(rows, width)} {x.dtype}, "
            f"got {out.shape} {out.dtype}"
        )
    # (N, out_h, out_w, C, kh, kw) -> rows; the assignment is the one copy
    out.reshape(n, out_h, out_w, c, kh, kw)[...] = windows.transpose(0, 2, 3, 1, 4, 5)
    return out


def col2im(
    cols: np.ndarray,
    x_shape: Tuple[int, int, int, int],
    kernel: Tuple[int, int],
    stride: int,
    padding: int,
) -> np.ndarray:
    """Inverse of :func:`im2col`: scatter-add columns back to an image."""
    n, c, h, w = x_shape
    kh, kw = kernel
    out_h = conv_output_size(h, kh, stride, padding)
    out_w = conv_output_size(w, kw, stride, padding)

    cols = cols.reshape(n, out_h, out_w, c, kh, kw).transpose(0, 3, 4, 5, 1, 2)
    x_padded = np.zeros((n, c, h + 2 * padding, w + 2 * padding), dtype=cols.dtype)
    for i in range(kh):
        i_max = i + stride * out_h
        for j in range(kw):
            j_max = j + stride * out_w
            x_padded[:, :, i:i_max:stride, j:j_max:stride] += cols[:, :, i, j, :, :]

    if padding > 0:
        return x_padded[:, :, padding:-padding, padding:-padding]
    return x_padded


def conv2d_forward(
    x: np.ndarray, weight: np.ndarray, bias: np.ndarray, stride: int, padding: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Dense 2D convolution forward.

    Parameters
    ----------
    x: (N, C_in, H, W)
    weight: (C_out, C_in, kh, kw)
    bias: (C_out,) or None

    Returns (output, cached_columns).
    """
    n, c_in, h, w = x.shape
    c_out, c_in_w, kh, kw = weight.shape
    if c_in != c_in_w:
        raise ValueError(f"channel mismatch: input {c_in} vs weight {c_in_w}")
    out_h = conv_output_size(h, kh, stride, padding)
    out_w = conv_output_size(w, kw, stride, padding)

    cols = im2col(x, (kh, kw), stride, padding)
    w_mat = weight.reshape(c_out, -1)
    out = cols @ w_mat.T
    if bias is not None:
        out += bias
    out = out.reshape(n, out_h, out_w, c_out).transpose(0, 3, 1, 2)
    return out, cols


def conv2d_backward(
    grad_out: np.ndarray,
    cols: np.ndarray,
    x_shape: Tuple[int, int, int, int],
    weight: np.ndarray,
    stride: int,
    padding: int,
    with_bias: bool = True,
):
    """Gradients of a dense 2D convolution.

    Returns ``(grad_x, grad_weight, grad_bias)``; ``grad_bias`` is ``None``
    when ``with_bias`` is False.
    """
    c_out, _, kh, kw = weight.shape
    n = x_shape[0]
    # (N, C_out, out_h, out_w) -> (N*out_h*out_w, C_out)
    grad_mat = grad_out.transpose(0, 2, 3, 1).reshape(-1, c_out)

    grad_weight = (grad_mat.T @ cols).reshape(weight.shape)
    grad_bias = grad_mat.sum(axis=0) if with_bias else None

    w_mat = weight.reshape(c_out, -1)
    grad_cols = grad_mat @ w_mat
    grad_x = col2im(grad_cols, x_shape, (kh, kw), stride, padding)
    return grad_x, grad_weight, grad_bias


def depthwise_conv2d_forward(
    x: np.ndarray, weight: np.ndarray, bias: np.ndarray, stride: int, padding: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Depthwise convolution forward (one filter per input channel).

    weight has shape (C, 1, kh, kw).
    """
    n, c, h, w = x.shape
    c_w, one, kh, kw = weight.shape
    if c_w != c or one != 1:
        raise ValueError(f"depthwise weight shape {weight.shape} incompatible with input {x.shape}")
    out_h = conv_output_size(h, kh, stride, padding)
    out_w = conv_output_size(w, kw, stride, padding)

    cols = im2col(x, (kh, kw), stride, padding)  # (N*oh*ow, C*kh*kw)
    cols_c = cols.reshape(-1, c, kh * kw)
    w_mat = weight.reshape(c, kh * kw)
    out = np.einsum("pck,ck->pc", cols_c, w_mat)
    if bias is not None:
        out += bias
    out = out.reshape(n, out_h, out_w, c).transpose(0, 3, 1, 2)
    return out, cols


def depthwise_conv2d_backward(
    grad_out: np.ndarray,
    cols: np.ndarray,
    x_shape: Tuple[int, int, int, int],
    weight: np.ndarray,
    stride: int,
    padding: int,
    with_bias: bool = True,
):
    """Gradients of a depthwise convolution."""
    c, _, kh, kw = weight.shape
    grad_mat = grad_out.transpose(0, 2, 3, 1).reshape(-1, c)  # (P, C)
    cols_c = cols.reshape(-1, c, kh * kw)  # (P, C, K)

    grad_weight = np.einsum("pc,pck->ck", grad_mat, cols_c).reshape(weight.shape)
    grad_bias = grad_mat.sum(axis=0) if with_bias else None

    w_mat = weight.reshape(c, kh * kw)
    grad_cols = np.einsum("pc,ck->pck", grad_mat, w_mat).reshape(cols.shape)
    grad_x = col2im(grad_cols, x_shape, (kh, kw), stride, padding)
    return grad_x, grad_weight, grad_bias


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax."""
    shifted = x - np.max(x, axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / np.sum(exp, axis=axis, keepdims=True)


def log_softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    shifted = x - np.max(x, axis=axis, keepdims=True)
    return shifted - np.log(np.sum(np.exp(shifted), axis=axis, keepdims=True))


def sigmoid(x: np.ndarray) -> np.ndarray:
    out = np.empty_like(x)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    expx = np.exp(x[~pos])
    out[~pos] = expx / (1.0 + expx)
    return out
