"""Declarative search spaces over compression × accelerator configurations.

A :class:`SearchSpace` is a base scenario (model, workload, pipeline config)
plus a list of :class:`Axis` objects, each naming one knob and the values it
sweeps.  Three axis forms cover the MVQ design space:

* **path axes** — a dotted path into the candidate's scenario spec.  Paths
  rooted at ``model`` / ``model_kwargs`` / ``workload`` / ``input_shape``
  address the scenario itself; anything else addresses the pipeline config
  (``base.k``, ``accelerator.array_size``, ``preset``, ...).
* **per-layer override axes** — ``pattern`` + ``field`` address one
  :class:`~repro.pipeline.config.LayerOverride` entry (``fnmatch`` pattern
  over dotted layer names), e.g. codebook size for the stem only.
* **coupled axes** — ``path: ""`` with mapping values applies several keys
  at once (e.g. switching ``model`` and ``workload`` together).

The JSON form is either a standalone space dict or a
:class:`~repro.pipeline.config.PipelineConfig` dict carrying an ``explore``
section — the rest of the config is then the sweep's base pipeline.
"""

from __future__ import annotations

import copy
import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.explore.pareto import DEFAULT_OBJECTIVES, resolve_objectives
from repro.pipeline.config import LayerOverride, PipelineConfig

#: top-level scenario keys a path axis may address directly; all other paths
#: are rooted in the candidate's pipeline config
SCENARIO_KEYS = ("model", "model_kwargs", "workload", "input_shape")

#: stage list explored candidates run by default: the full flow minus
#: ``export`` (nobody needs one .npz per candidate; the winner is exported
#: by re-running its spec through repro.pipeline)
EXPLORE_STAGES: Tuple[str, ...] = (
    "group", "prune", "cluster", "quantize", "finetune", "serve_eval",
    "accel_eval")


@dataclass(frozen=True)
class Axis:
    """One swept knob and its candidate values."""

    values: Tuple[Any, ...]
    path: Optional[str] = None           # dotted path form
    pattern: Optional[str] = None        # per-layer override form ...
    layer_field: Optional[str] = None    # ... with the field it sets
    name: Optional[str] = None           # display label override

    def __post_init__(self):
        if not self.values:
            raise ValueError(f"axis {self.label!r} has no values")
        if (self.pattern is None) != (self.layer_field is None):
            raise ValueError(
                f"axis {self.label!r}: 'pattern' and 'field' come together")
        if self.pattern is None and self.path is None:
            raise ValueError("an axis needs either 'path' or 'pattern'+'field'")
        if self.pattern is not None:
            # validates the field name against LayerCompressionConfig
            LayerOverride(self.pattern, {self.layer_field: self.values[0]})
        if self.path == "":
            for value in self.values:
                if not isinstance(value, Mapping):
                    raise ValueError(
                        f"coupled axis {self.label!r} (empty path) needs "
                        f"mapping values, got {value!r}")

    @property
    def label(self) -> str:
        if self.name:
            return self.name
        if self.pattern is not None:
            return f"overrides[{self.pattern}].{self.layer_field}"
        return self.path if self.path else "coupled"

    def apply(self, spec: Dict[str, Any], value: Any) -> None:
        """Write ``value`` into a candidate scenario spec (in place)."""
        if self.pattern is not None:
            overrides = spec["pipeline"].setdefault("overrides", [])
            for entry in overrides:
                if entry.get("pattern") == self.pattern:
                    entry.setdefault("fields", {})[self.layer_field] = value
                    return
            overrides.append({"pattern": self.pattern,
                              "fields": {self.layer_field: value}})
            return
        if self.path == "":
            for path, sub_value in value.items():
                _deep_set(spec, path, sub_value)
            return
        _deep_set(spec, self.path, value)

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {"values": list(self.values)}
        if self.pattern is not None:
            data["pattern"] = self.pattern
            data["field"] = self.layer_field
        else:
            data["path"] = self.path
        if self.name:
            data["name"] = self.name
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Axis":
        known = {"values", "path", "pattern", "field", "name"}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown axis keys {sorted(unknown)}; expected a subset of "
                f"{sorted(known)}")
        if "values" not in data:
            raise ValueError(f"axis {data!r} is missing 'values'")
        return cls(values=tuple(data["values"]), path=data.get("path"),
                   pattern=data.get("pattern"), layer_field=data.get("field"),
                   name=data.get("name"))


def _deep_set(spec: Dict[str, Any], path: str, value: Any) -> None:
    segments = path.split(".")
    target: Dict[str, Any] = spec
    if segments[0] not in SCENARIO_KEYS:
        target = spec["pipeline"]
    for segment in segments[:-1]:
        target = target.setdefault(segment, {})
        if not isinstance(target, dict):
            raise ValueError(f"axis path {path!r}: {segment!r} is not a dict")
    target[segments[-1]] = value


@dataclass(frozen=True)
class Candidate:
    """One fully specified design point of a search space."""

    index: int
    values: Tuple[Tuple[str, Any], ...]      # (axis label, value) pairs
    spec: Mapping[str, Any]                  # full scenario spec (run as-is)

    @property
    def values_dict(self) -> Dict[str, Any]:
        return dict(self.values)

    def scenario_spec(self) -> Dict[str, Any]:
        return copy.deepcopy(dict(self.spec))


@dataclass(frozen=True)
class SearchSpace:
    """Everything one exploration run needs, loadable from JSON."""

    name: str
    axes: Tuple[Axis, ...]
    description: str = ""
    model: str = "resnet18"
    model_kwargs: Mapping[str, Any] = field(default_factory=dict)
    workload: Optional[str] = None
    input_shape: Tuple[int, ...] = (3, 16, 16)
    pipeline: Mapping[str, Any] = field(default_factory=dict)
    strategy: str = "grid"
    budget: Optional[int] = None
    seed: int = 0
    objectives: Tuple[str, ...] = DEFAULT_OBJECTIVES
    #: successive halving: keep ceil(n/eta) per rung
    eta: int = 2
    #: successive halving: first-rung fidelity (fraction of k-means budget)
    min_fidelity: float = 0.25

    def __post_init__(self):
        if not self.axes:
            raise ValueError(f"search space {self.name!r} has no axes")
        labels = [axis.label for axis in self.axes]
        if len(set(labels)) != len(labels):
            raise ValueError(f"duplicate axis labels in {self.name!r}: {labels}")
        resolve_objectives(self.objectives)       # fail on typos eagerly
        if self.eta < 2:
            raise ValueError("eta must be >= 2")
        if not 0.0 < self.min_fidelity <= 1.0:
            raise ValueError("min_fidelity must be in (0, 1]")
        # the base pipeline must itself be a valid PipelineConfig
        PipelineConfig.from_dict(dict(self.pipeline))

    # -- enumeration ------------------------------------------------------------
    @property
    def grid_size(self) -> int:
        size = 1
        for axis in self.axes:
            size *= len(axis.values)
        return size

    def base_spec(self) -> Dict[str, Any]:
        return {
            "model": self.model,
            "model_kwargs": dict(self.model_kwargs),
            "workload": self.workload,
            "input_shape": list(self.input_shape),
            "pipeline": copy.deepcopy(dict(self.pipeline)),
        }

    def candidate(self, index: int,
                  assignment: Sequence[Any]) -> Candidate:
        spec = self.base_spec()
        values = []
        for axis, value in zip(self.axes, assignment):
            axis.apply(spec, value)
            values.append((axis.label, value))
        return Candidate(index=index, values=tuple(values), spec=spec)

    def grid(self) -> List[Candidate]:
        """Every point of the full cartesian grid, in deterministic order."""
        return [self.candidate(i, assignment) for i, assignment in
                enumerate(itertools.product(*(a.values for a in self.axes)))]

    def sample(self, n: int, seed: Optional[int] = None) -> List[Candidate]:
        """``n`` distinct grid points, uniformly sampled (the full grid when
        ``n`` covers it)."""
        total = self.grid_size
        if n >= total:
            return self.grid()
        rng = np.random.default_rng(self.seed if seed is None else seed)
        if total <= 10**7:
            chosen = sorted(int(i) for i in
                            rng.choice(total, size=n, replace=False))
        else:  # huge grids: rejection-sample distinct indices instead of
            picked: set = set()  # materialising a permutation of the grid
            while len(picked) < n:
                picked.update(int(i) for i in
                              rng.integers(0, total, size=n - len(picked)))
            chosen = sorted(picked)
        sizes = [len(a.values) for a in self.axes]
        candidates = []
        for index in chosen:
            assignment, remainder = [], index
            for size in reversed(sizes):
                assignment.append(remainder % size)
                remainder //= size
            assignment = [axis.values[i] for axis, i in
                          zip(self.axes, reversed(assignment))]
            candidates.append(self.candidate(index, assignment))
        return candidates

    # -- (de)serialization ------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "description": self.description,
            "model": self.model,
            "model_kwargs": dict(self.model_kwargs),
            "workload": self.workload,
            "input_shape": list(self.input_shape),
            "pipeline": copy.deepcopy(dict(self.pipeline)),
            "axes": [axis.to_dict() for axis in self.axes],
            "strategy": self.strategy,
            "budget": self.budget,
            "seed": self.seed,
            "objectives": list(self.objectives),
            "eta": self.eta,
            "min_fidelity": self.min_fidelity,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SearchSpace":
        data = dict(data)
        if "explore" in data and "axes" not in data:
            return cls._from_pipeline_dict(data)
        known = {"name", "description", "model", "model_kwargs", "workload",
                 "input_shape", "pipeline", "axes", "strategy", "budget",
                 "seed", "objectives", "eta", "min_fidelity"}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown SearchSpace keys {sorted(unknown)}; expected a "
                f"subset of {sorted(known)}")
        axes = tuple(a if isinstance(a, Axis) else Axis.from_dict(a)
                     for a in _axes_entries(data.get("axes")))
        kwargs: Dict[str, Any] = {"axes": axes}
        kwargs["name"] = data.get("name", "adhoc")
        for key in ("description", "model", "workload", "strategy", "budget",
                    "seed", "eta", "min_fidelity"):
            if key in data:
                kwargs[key] = data[key]
        if "model_kwargs" in data:
            kwargs["model_kwargs"] = dict(data["model_kwargs"])
        if "input_shape" in data:
            kwargs["input_shape"] = tuple(data["input_shape"])
        if "pipeline" in data:
            kwargs["pipeline"] = dict(data["pipeline"])
        if "objectives" in data:
            kwargs["objectives"] = tuple(data["objectives"])
        return cls(**kwargs)

    @classmethod
    def _from_pipeline_dict(cls, data: Mapping[str, Any]) -> "SearchSpace":
        """A PipelineConfig dict with an ``explore`` section: the section
        carries the search keys, the remainder is the base pipeline."""
        pipeline = dict(data)
        explore = dict(pipeline.pop("explore"))
        PipelineConfig.from_dict(pipeline)        # validate the base up front
        explore.setdefault("pipeline", pipeline)
        return cls.from_dict(explore)

    @classmethod
    def from_config(cls, config: PipelineConfig, **scenario: Any) -> "SearchSpace":
        """The space a :class:`PipelineConfig`'s ``explore`` section describes
        (``scenario`` supplies model/workload keys the config cannot carry)."""
        if not config.explore:
            raise ValueError("PipelineConfig has no explore section")
        base = config.to_dict()
        base.pop("explore")
        explore = dict(config.explore)
        explore.setdefault("pipeline", base)
        explore.update(scenario)
        return cls.from_dict(explore)


def _axes_entries(axes: Any) -> Iterable[Mapping[str, Any]]:
    """Accept both the list form and the ``{"base.k": [16, 32]}`` shorthand."""
    if axes is None:
        raise ValueError("search space is missing 'axes'")
    if isinstance(axes, Mapping):
        return [{"path": path, "values": list(values)}
                for path, values in axes.items()]
    return list(axes)
