"""Search strategies: how a space's candidates get chosen and budgeted.

Every strategy is a function ``(space, evaluator) -> StrategyOutcome``
registered under a name (``python -m repro.explore list-strategies``):

* **grid** — exhaustively evaluates the full cartesian grid (optionally
  capped by ``budget``, taking a deterministic uniform sample).
* **random** — ``budget`` distinct points sampled uniformly from the grid
  with the space's seed.
* **halving** — budgeted successive halving: a random pool is evaluated at
  a cheap proxy fidelity (scaled-down k-means budget, no fine-tuning),
  dominated candidates are pruned rung by rung (non-dominated sorting,
  keep ``ceil(n / eta)``), and only the survivors pay for the full-fidelity
  evaluation including fine-tuning.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Tuple

from repro.explore.evaluator import CandidateResult, Evaluator
from repro.explore.pareto import nondominated_rank, resolve_objectives, scalarize
from repro.explore.space import SearchSpace


@dataclass
class StrategyOutcome:
    """What a strategy hands the runner: the full-fidelity results that feed
    the frontier, plus the proxy-rung history (for halving)."""

    results: List[CandidateResult]
    history: List[Dict[str, Any]]


@dataclass(frozen=True)
class StrategyInfo:
    name: str
    func: Callable[[SearchSpace, Evaluator], StrategyOutcome]
    description: str


STRATEGIES: Dict[str, StrategyInfo] = {}


def register_strategy(name: str, description: str):
    def decorator(func):
        STRATEGIES[name] = StrategyInfo(name, func, description)
        return func
    return decorator


def get_strategy(name: str) -> StrategyInfo:
    from repro.workloads.resolving import resolve

    return resolve(STRATEGIES, name, "strategy")


def list_strategies() -> List[StrategyInfo]:
    return [STRATEGIES[name] for name in sorted(STRATEGIES)]


@register_strategy("grid", "exhaustive cartesian sweep (budget caps it to a "
                           "deterministic uniform sample)")
def run_grid(space: SearchSpace, evaluator: Evaluator) -> StrategyOutcome:
    if space.budget is not None and space.budget < space.grid_size:
        candidates = space.sample(space.budget)
    else:
        candidates = space.grid()
    return StrategyOutcome(results=evaluator.evaluate(candidates), history=[])


@register_strategy("random", "uniform random sample of `budget` distinct "
                             "grid points (seeded)")
def run_random(space: SearchSpace, evaluator: Evaluator) -> StrategyOutcome:
    budget = space.budget if space.budget is not None else min(8, space.grid_size)
    candidates = space.sample(budget)
    return StrategyOutcome(results=evaluator.evaluate(candidates), history=[])


def _rank_survivors(results: List[CandidateResult], keep: int,
                    space: SearchSpace) -> List[CandidateResult]:
    """Non-dominated sorting on proxy objectives, then scalarized tie-break.

    Candidates dominated on the cheap proxy are pruned first (rank peeling);
    within the last admitted rank, a direction-normalised sum breaks ties
    deterministically (candidate index as the final tie-break).
    """
    objectives = resolve_objectives(space.objectives)
    ranks = nondominated_rank(results, objectives)
    scores = scalarize(results, objectives)
    order = sorted(range(len(results)),
                   key=lambda i: (ranks[i], -scores[i],
                                  results[i].candidate.index))
    return [results[i] for i in order[:keep]]


@register_strategy("halving", "budgeted successive halving: prune dominated "
                              "candidates on cheap proxy evals (reduced "
                              "k-means budget, no fine-tune), then evaluate "
                              "survivors at full fidelity")
def run_halving(space: SearchSpace, evaluator: Evaluator) -> StrategyOutcome:
    budget = space.budget if space.budget is not None else min(8, space.grid_size)
    survivors = space.sample(budget)
    fidelity = space.min_fidelity
    history: List[Dict[str, Any]] = []

    while fidelity < 1.0 and len(survivors) > 1:
        results = [r for r in evaluator.evaluate(survivors, fidelity=fidelity)
                   if r.ok]
        if not results:
            break
        keep = max(1, math.ceil(len(results) / space.eta))
        kept = _rank_survivors(results, keep, space)
        kept_indices = {r.candidate.index for r in kept}
        history.append({
            "fidelity": fidelity,
            "evaluated": [r.candidate.index for r in results],
            "kept": sorted(kept_indices),
            "pruned": [r.candidate.index for r in results
                       if r.candidate.index not in kept_indices],
        })
        survivors = [r.candidate for r in kept]
        fidelity = min(1.0, fidelity * space.eta)

    return StrategyOutcome(results=evaluator.evaluate(survivors, fidelity=1.0),
                           history=history)
