"""Exploration runner: strategy × evaluator × frontier, end to end.

:func:`explore` is the programmatic entry point::

    from repro.explore import explore, get_space

    result = explore(get_space("accel-sweep"), workers=4)
    result.frontier.to_markdown()        # Table-3-style ablation table
    result.best_scenario()               # a servable Scenario of the winner

Every frontier point's record embeds the candidate's **full scenario spec**,
so re-running it through ``python -m repro.pipeline run point.json`` (or
:func:`repro.pipeline.run_scenario`) reproduces the exact accuracy/CR and
accelerator numbers — against a warm cache, without re-clustering anything.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Union

from repro.explore.evaluator import CandidateResult, Evaluator
from repro.explore.pareto import ParetoFrontier, render_csv, render_markdown
from repro.explore.space import SearchSpace
from repro.explore.strategies import get_strategy
from repro.pipeline.artifacts import ArtifactStore
from repro.pipeline.scenarios import Scenario, register_scenario


@dataclass
class ExplorationResult:
    """Everything one exploration run produced."""

    space: SearchSpace
    strategy: str
    results: List[CandidateResult]           # full-fidelity evaluations
    frontier: ParetoFrontier
    history: List[Dict[str, Any]] = field(default_factory=list)
    stats: Dict[str, Any] = field(default_factory=dict)

    @property
    def ok_results(self) -> List[CandidateResult]:
        return [r for r in self.results if r.ok]

    @property
    def errors(self) -> List[CandidateResult]:
        return [r for r in self.results if not r.ok]

    # -- picking / serving the winner -------------------------------------------
    def best(self, weights: Optional[Mapping[str, float]] = None
             ) -> CandidateResult:
        return self.frontier.best(weights)

    def best_scenario(self, name: Optional[str] = None,
                      weights: Optional[Mapping[str, float]] = None) -> Scenario:
        """A :class:`Scenario` of the frontier's best point, ready for
        ``run_scenario`` or the ``repro.serve`` loader."""
        best = self.best(weights)
        return Scenario.from_dict({
            **best.candidate.scenario_spec(),
            "name": name or f"explore-{self.space.name}-best",
            "description": f"best frontier point of search space "
                           f"{self.space.name!r} (candidate "
                           f"{best.candidate.index}: "
                           f"{best.candidate.values_dict})",
        })

    def register_best(self, name: Optional[str] = None,
                      overwrite: bool = True) -> Scenario:
        return register_scenario(self.best_scenario(name), overwrite=overwrite)

    # -- reporting --------------------------------------------------------------
    def report(self) -> Dict[str, Any]:
        """The JSON-able run report (what ``--output`` writes)."""
        return {
            "schema": 1,
            "space": self.space.to_dict(),
            "strategy": self.strategy,
            "objectives": [{"name": o.name, "direction": o.direction}
                           for o in self.frontier.objectives],
            "stats": dict(self.stats),
            "history": list(self.history),
            "frontier": self.frontier.to_records(),
            "best": self.best().record() if len(self.frontier) else None,
            "candidates": [r.record() for r in self.results],
        }

    def save(self, path: Union[str, Path]) -> None:
        Path(path).write_text(
            json.dumps(self.report(), indent=2, sort_keys=True) + "\n")

    def to_markdown(self) -> str:
        return self.frontier.to_markdown()

    def to_csv(self) -> str:
        return self.frontier.to_csv()


def explore(space: Union[SearchSpace, Mapping[str, Any]],
            strategy: Optional[str] = None,
            budget: Optional[int] = None,
            store: Optional[ArtifactStore] = None,
            cache_dir: Optional[str] = None,
            workers: Optional[int] = None,
            stages: Optional[Sequence[str]] = None,
            retries: int = 2,
            backoff_ms: float = 25.0,
            backend: str = "thread") -> ExplorationResult:
    """Run one design-space exploration and return its Pareto frontier.

    ``strategy`` / ``budget`` override the space's own settings;
    ``store`` / ``cache_dir`` wire in a (shareable, warm-able) artifact
    cache; ``workers`` caps the evaluator's pool and ``backend`` picks its
    worker kind (``thread`` default, ``process`` for spawned workers over a
    disk-backed store, ``auto`` — see :class:`Evaluator`).  A candidate
    whose evaluation raises is retried up to ``retries`` times with
    exponential backoff (``backoff_ms`` initial), then recorded as a typed
    failure in ``stats["errors"]`` and excluded from the frontier — the
    sweep itself always completes.
    """
    if not isinstance(space, SearchSpace):
        space = SearchSpace.from_dict(space)
    overrides: Dict[str, Any] = {}
    if strategy is not None:
        overrides["strategy"] = strategy
    if budget is not None:
        overrides["budget"] = budget
    if overrides:
        space = SearchSpace.from_dict({**space.to_dict(), **overrides})

    info = get_strategy(space.strategy)
    evaluator = Evaluator(space, store=store, cache_dir=cache_dir,
                          workers=workers, stages=stages,
                          retries=retries, backoff_ms=backoff_ms,
                          backend=backend)
    store_before = evaluator.store.stats()

    start = time.perf_counter()
    outcome = info.func(space, evaluator)
    seconds = time.perf_counter() - start

    frontier = ParetoFrontier(space.objectives)
    ok = [r for r in outcome.results if r.ok]
    frontier.update(ok)

    store_after = evaluator.store.stats()
    stats = {
        "seconds": seconds,
        "candidates": len(outcome.results),
        "frontier_size": len(frontier),
        "dominated": frontier.dominated_count,
        "errors": [
            {"index": r.candidate.index, "error": r.error,
             "error_type": r.error_type, "attempts": r.attempts}
            for r in outcome.results if not r.ok
        ],
        "cluster_layers_cached": sum(r.cluster_layers_cached for r in ok),
        "cluster_layers_fresh": sum(r.cluster_layers_fresh for r in ok),
        "store_hits": store_after["hits"] - store_before["hits"],
        "store_misses": store_after["misses"] - store_before["misses"],
        **evaluator.stats(),
    }
    return ExplorationResult(space=space, strategy=space.strategy,
                             results=outcome.results, frontier=frontier,
                             history=outcome.history, stats=stats)


# -- saved-report rendering (the `report` CLI subcommand) -----------------------

def render_report(report: Mapping[str, Any], fmt: str = "markdown") -> str:
    """Re-render a saved exploration report's frontier as a table."""
    objective_names = [o["name"] for o in report.get("objectives", [])]
    records = report.get("frontier", [])
    if fmt == "markdown":
        return render_markdown(records, objective_names)
    if fmt == "csv":
        return render_csv(records, objective_names)
    if fmt == "json":
        return json.dumps(records, indent=2, sort_keys=True)
    raise ValueError(f"unknown report format {fmt!r}; "
                     "expected markdown, csv or json")
