"""Parallel candidate evaluation through the repro.pipeline stages.

One :class:`Evaluator` owns a shared
:class:`~repro.pipeline.artifacts.ArtifactStore` and fans candidates across
a thread pool; every candidate runs the standard pipeline composition
(compress → serve_eval for accuracy/CR → accel_eval for latency/energy) and
comes back as a :class:`CandidateResult` holding its objective vector plus
the full run report.

Two things make a sweep cheap rather than embarrassingly expensive:

* **cluster-cache reuse** — the pipeline's content-hash store already keys
  per-layer clustering by (layer bytes, clustering config, precision), so
  candidates that share layer settings (e.g. accelerator-only variants, or
  per-layer overrides touching one stage) skip re-clustering the rest.
* **signature waves** — candidates with an *identical* clustering signature
  are scheduled in two waves: one representative computes, then the rest
  run against the warm cache.  Without this, identical candidates racing
  in parallel would each miss and recompute; with it the cache hits are
  deterministic (and asserted in tests/CI).

Infeasible accelerator combinations are rejected up front
(:meth:`Evaluator.validate`) with the :class:`ValueError` the
:class:`~repro.accelerator.config.AcceleratorConfig` constructor raises —
no compression work is spent on a candidate that cannot be priced.
"""

from __future__ import annotations

import copy
import json
import multiprocessing
import threading
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core import telemetry
from repro.core.compressor import _available_cpus, layer_config_to_dict
from repro.core.faults import active_plan, fault_point
from repro.explore.pareto import Objective, resolve_objectives
from repro.explore.space import Candidate, EXPLORE_STAGES, SearchSpace
from repro.pipeline.artifacts import ArtifactStore
from repro.pipeline.config import PipelineConfig
from repro.pipeline.runner import Pipeline, PipelineResult
from repro.pipeline.scenarios import Scenario

#: LayerCompressionConfig fields the cluster stage never reads — candidates
#: differing only here share every cluster-cache entry
_NON_CLUSTER_FIELDS = ("codebook_bits", "weight_bits")


@dataclass
class CandidateResult:
    """Outcome of evaluating one candidate (possibly at reduced fidelity)."""

    candidate: Candidate
    objectives: Dict[str, float] = field(default_factory=dict)
    report: Dict[str, Any] = field(default_factory=dict)
    error: Optional[str] = None
    error_type: Optional[str] = None   # exception class name of the failure
    attempts: int = 1                  # evaluation attempts consumed
    fidelity: float = 1.0
    seconds: float = 0.0
    cluster_layers_cached: int = 0
    cluster_layers_fresh: int = 0

    @property
    def ok(self) -> bool:
        return self.error is None

    def record(self) -> Dict[str, Any]:
        """JSON-able record; frontier points embed their full scenario spec
        so ``python -m repro.pipeline run point.json`` reproduces them."""
        return {
            "index": self.candidate.index,
            "values": self.candidate.values_dict,
            "objectives": dict(self.objectives),
            "error": self.error,
            "error_type": self.error_type,
            "attempts": self.attempts,
            "fidelity": self.fidelity,
            "seconds": self.seconds,
            "cluster_layers_cached": self.cluster_layers_cached,
            "cluster_layers_fresh": self.cluster_layers_fresh,
            "report": copy.deepcopy(self.report),
            "scenario": self.candidate.scenario_spec(),
        }


def extract_objectives(result: PipelineResult,
                       objectives: Sequence[Objective]) -> Dict[str, float]:
    """Pull the requested objective values out of a pipeline run."""
    serve = result.artifacts.get("serve_report") or {}
    accel = result.artifacts.get("accel_report") or {}
    available: Dict[str, Any] = {}
    if result.compressed is not None:
        available["compression_ratio"] = result.compressed.compression_ratio()
    if "val_accuracy" in serve:
        available["accuracy"] = serve["val_accuracy"]
    if "rel_err_vs_uncompressed" in serve:
        available["fidelity"] = -serve["rel_err_vs_uncompressed"]
    if "runtime_ms" in accel:
        available["latency_ms"] = accel["runtime_ms"]
    if "energy_mj_per_frame" in accel:
        available["energy_mj"] = accel["energy_mj_per_frame"]
    if "throughput_tops" in accel:
        available["throughput_tops"] = accel["throughput_tops"]
    if "efficiency_tops_w" in accel:
        available["efficiency_tops_w"] = accel["efficiency_tops_w"]

    extracted: Dict[str, float] = {}
    for objective in objectives:
        if objective.name not in available:
            raise KeyError(
                f"objective {objective.name!r} is unavailable for this "
                f"candidate — stages run: {list(result.stages_run)}; did the "
                "space's pipeline include serve_eval/accel_eval, a workload "
                "and (for accuracy) a data section?")
        extracted[objective.name] = float(available[objective.name])
    return extracted


def clustering_signature(spec: Mapping[str, Any]) -> str:
    """A stable key of everything that determines a candidate's clustering.

    Two candidates with equal signatures produce byte-identical cluster
    inputs for *every* layer, so the second one is guaranteed all cache
    hits.  (Candidates with different signatures may still share individual
    layers — the content-hash store handles that finer granularity.)
    """
    config = PipelineConfig.from_dict(dict(spec.get("pipeline", {})))
    base = layer_config_to_dict(config.base)
    for name in _NON_CLUSTER_FIELDS:
        base.pop(name, None)
    overrides = []
    for override in config.overrides:
        fields = {k: v for k, v in dict(override.fields).items()
                  if k not in _NON_CLUSTER_FIELDS}
        if fields:
            overrides.append((override.pattern, sorted(fields.items())))
    payload = {
        "model": spec.get("model"),
        "model_kwargs": dict(spec.get("model_kwargs") or {}),
        "base": base,
        "overrides": overrides,
        "crosslayer": config.crosslayer,
        "include_linear": config.include_linear,
        "skip_layers": list(config.skip_layers),
    }
    return json.dumps(payload, sort_keys=True, default=str)


def _scaled_spec(spec: Dict[str, Any], fidelity: float) -> Dict[str, Any]:
    """The cheap-proxy variant of a candidate spec.

    Reduced fidelity scales the k-means iteration budget, drops the
    fine-tuning stage and caps the serve_eval sample count — enough signal
    to rank candidates, a fraction of the cost.
    """
    if fidelity >= 1.0:
        return spec
    spec = copy.deepcopy(spec)
    pipeline = spec.setdefault("pipeline", {})

    def scale(section: Dict[str, Any]) -> None:
        iterations = int(section.get("max_kmeans_iterations", 60))
        section["max_kmeans_iterations"] = max(2, round(iterations * fidelity))

    scale(pipeline.setdefault("base", {}))
    for override in pipeline.get("overrides", []):
        if "max_kmeans_iterations" in override.get("fields", {}):
            scale(override["fields"])
    pipeline["finetune"] = None
    if "stages" in pipeline:
        pipeline["stages"] = [s for s in pipeline["stages"] if s != "finetune"]
    serve = pipeline.setdefault("serve", {})
    serve["num_samples"] = min(int(serve.get("num_samples", 8)), 8)
    return spec


class Evaluator:
    """Fans candidates of one :class:`SearchSpace` across workers.

    ``backend`` picks the worker kind:

    * ``"thread"`` (default) — shared in-process :class:`ArtifactStore`,
      cheapest on a single CPU (clustering already fans layer work across
      cores), and the only backend a :class:`~repro.core.faults.FaultPlan`
      can reach (plans are thread-scoped and do not cross processes).
    * ``"process"`` — spawned worker processes, each rebuilding a
      single-use Evaluator against the same **disk-backed** store (the
      crash-safe content-hash cache is the cross-process channel, so the
      signature-wave cache guarantee still holds).  Requires ``cache_dir``;
      with a memory-only store it degrades to threads.
    * ``"auto"`` — ``"process"`` iff more than one CPU is available *and*
      the store is disk-backed, else ``"thread"``.
    """

    def __init__(self, space: SearchSpace,
                 store: Optional[ArtifactStore] = None,
                 cache_dir: Optional[str] = None,
                 workers: Optional[int] = None,
                 stages: Optional[Sequence[str]] = None,
                 retries: int = 2, backoff_ms: float = 25.0,
                 backend: str = "thread"):
        if retries < 0:
            raise ValueError("retries must be >= 0")
        if backoff_ms < 0:
            raise ValueError("backoff_ms must be >= 0")
        if backend not in ("auto", "thread", "process"):
            raise ValueError(
                f"backend must be 'auto', 'thread' or 'process', "
                f"got {backend!r}")
        self.space = space
        self.store = store if store is not None else ArtifactStore(cache_dir)
        requested = workers if workers is not None else _available_cpus()
        self.workers = max(1, min(int(requested), _available_cpus()))
        self.stages = tuple(stages) if stages is not None else None
        self.objectives = resolve_objectives(space.objectives)
        self.retries = int(retries)
        self.backoff_ms = float(backoff_ms)
        self.backend = backend
        self._backend_used = "thread"
        # counters are bumped from worker threads; += is not atomic
        self._counter_lock = threading.Lock()
        self.evaluated = 0
        self.infeasible = 0
        self.failed = 0
        self.retried = 0

    def _count(self, counter: str, by: int = 1) -> None:
        with self._counter_lock:
            setattr(self, counter, getattr(self, counter) + by)

    def _resolve_backend(self) -> str:
        """The backend actually used for this evaluate() call.

        Resolved per call (not per Evaluator) because the two dynamic
        conditions — an active fault plan, a single usable worker — can
        change between sweeps on the same Evaluator.
        """
        on_disk = self.store.cache_dir is not None
        if self.backend == "auto":
            if _available_cpus() > 1 and on_disk:
                resolved = "process"
            else:
                resolved = "thread"
        else:
            resolved = self.backend
        if resolved == "process":
            if active_plan() is not None:
                # fault plans are thread-scoped: a spawned worker would
                # silently evaluate without the injected faults
                resolved = "thread"
            elif not on_disk or self.workers <= 1:
                resolved = "thread"
        return resolved

    # -- validation -------------------------------------------------------------
    def validate(self, candidate: Candidate) -> Optional[str]:
        """The up-front feasibility check; an error string or ``None``.

        Builds the candidate's :class:`AcceleratorConfig` and pipeline
        config eagerly so an invalid combination (array/buffer mismatch,
        bad layer fields) is rejected with a clear message before any
        clustering work is spent on it.
        """
        from repro.accelerator.config import config_from_spec

        spec = candidate.scenario_spec()
        try:
            config = PipelineConfig.from_dict(dict(spec.get("pipeline", {})))
            config_from_spec(dict(config.accelerator))
        except (ValueError, KeyError) as error:
            return f"infeasible candidate: {error}"
        return None

    # -- evaluation -------------------------------------------------------------
    def _stage_list(self, config: PipelineConfig) -> Tuple[str, ...]:
        if self.stages is not None:
            return self.stages
        if "stages" in (self.space.pipeline or {}):
            return tuple(config.stages)
        return EXPLORE_STAGES

    def evaluate_one(self, candidate: Candidate, fidelity: float = 1.0,
                     wave: str = "leader") -> CandidateResult:
        with telemetry.span("explore.candidate", candidate=candidate.index,
                            wave=wave, fidelity=fidelity,
                            proxy=fidelity < 1.0) as sp:
            result = self._evaluate_one(candidate, fidelity)
            sp.set_attribute("attempts", result.attempts)
            if result.error_type is not None:
                sp.set_attribute("error", result.error_type)
        return result

    def _evaluate_one(self, candidate: Candidate,
                      fidelity: float = 1.0) -> CandidateResult:
        start = time.perf_counter()
        error = self.validate(candidate)
        if error is not None:
            self._count("infeasible")
            return CandidateResult(candidate=candidate, error=error,
                                   error_type="InfeasibleCandidate",
                                   attempts=0, fidelity=fidelity,
                                   seconds=time.perf_counter() - start)
        spec = _scaled_spec(candidate.scenario_spec(), fidelity)
        scenario = Scenario.from_dict({
            **spec,
            "name": f"{self.space.name}#{candidate.index}",
            "description": f"candidate {candidate.index} of search space "
                           f"{self.space.name}",
        })
        # a transiently-failing candidate (injected fault, flaky IO) is
        # retried with exponential backoff; past the budget it is recorded
        # as a typed failure and excluded — the sweep itself never dies
        attempts = 0
        while True:
            attempts += 1
            try:
                fault_point("explore.candidate.eval")
                config = scenario.pipeline_config()
                pipeline = Pipeline(config, store=self.store,
                                    workload=scenario.workload,
                                    input_shape=scenario.input_shape,
                                    scenario=scenario.name)
                run = pipeline.run(scenario.build_model(),
                                   stages=self._stage_list(config))
                objectives = extract_objectives(run, self.objectives)
                break
            except Exception as exc:  # failure must not kill the sweep
                if attempts <= self.retries:
                    self._count("retried")
                    time.sleep(self.backoff_ms / 1e3
                               * 2.0 ** (attempts - 1))
                    continue
                self._count("failed")
                return CandidateResult(candidate=candidate,
                                       error=f"{type(exc).__name__}: {exc}",
                                       error_type=type(exc).__name__,
                                       attempts=attempts,
                                       fidelity=fidelity,
                                       seconds=time.perf_counter() - start)

        cluster = run.event_for("cluster") or {}
        serve = run.artifacts.get("serve_report") or {}
        accel = run.artifacts.get("accel_report") or {}
        report = {
            "compression_ratio": float(run.compressed.compression_ratio()),
            "sparsity": float(run.compressed.sparsity()),
            "stages_run": list(run.stages_run),
            "cluster_status": cluster.get("status"),
            "serve": {k: serve[k] for k in
                      ("val_accuracy", "rel_err_vs_uncompressed",
                       "outputs_match", "throughput_sps") if k in serve},
            "accel": {k: accel[k] for k in
                      ("workload", "setting", "array_size", "runtime_ms",
                       "energy_mj_per_frame", "efficiency_tops_w",
                       "throughput_tops", "utilization") if k in accel},
        }
        self._count("evaluated")
        return CandidateResult(
            candidate=candidate,
            objectives=objectives,
            report=report,
            attempts=attempts,
            fidelity=fidelity,
            seconds=time.perf_counter() - start,
            cluster_layers_cached=len(cluster.get("layers_cached", [])),
            cluster_layers_fresh=len(cluster.get("layers_clustered", [])),
        )

    def evaluate(self, candidates: Sequence[Candidate],
                 fidelity: float = 1.0) -> List[CandidateResult]:
        """Evaluate all candidates, in signature waves (see module docs).

        Results come back in candidate order and are identical to a
        sequential evaluation — parallelism changes wall time, not output.
        """
        leaders: List[Candidate] = []
        followers: List[Candidate] = []
        seen: Dict[str, bool] = {}
        for candidate in candidates:
            signature = clustering_signature(candidate.spec)
            if signature in seen:
                followers.append(candidate)
            else:
                seen[signature] = True
                leaders.append(candidate)

        backend = self._backend_used = self._resolve_backend()
        results: Dict[int, CandidateResult] = {}
        for label, wave in (("leader", leaders), ("follower", followers)):
            if not wave:
                continue
            if self.workers <= 1 or len(wave) == 1:
                for candidate in wave:
                    results[candidate.index] = self.evaluate_one(
                        candidate, fidelity, wave=label)
            elif backend == "process":
                # spans of spawned evaluation workers stay worker-local
                # (no IPC trace channel here); the parent still sees the
                # wave structure through the store's hit/miss counters
                for candidate, outcome in zip(
                        wave, self._evaluate_wave_process(wave, fidelity)):
                    results[candidate.index] = outcome
            else:
                with ThreadPoolExecutor(max_workers=self.workers) as pool:
                    for candidate, outcome in zip(wave, pool.map(
                            lambda c: self.evaluate_one(c, fidelity,
                                                        wave=label), wave)):
                        results[candidate.index] = outcome
        return [results[c.index] for c in candidates]

    def _evaluate_wave_process(self, wave: Sequence[Candidate],
                               fidelity: float) -> List[CandidateResult]:
        """One wave on spawned worker processes over the disk-backed store."""
        from repro.core.precision import compute_dtype, distance_block_bytes

        base = {
            "space": self.space.to_dict(),
            "cache_dir": str(self.store.cache_dir),
            "stages": self.stages,
            "retries": self.retries,
            "backoff_ms": self.backoff_ms,
            "fidelity": fidelity,
            "compute_dtype": compute_dtype().name,
            "distance_block_bytes": distance_block_bytes(),
        }
        payloads = [{**base, "index": c.index, "values": c.values,
                     "spec": c.scenario_spec()} for c in wave]
        context = multiprocessing.get_context("spawn")
        workers = min(self.workers, len(wave))
        with ProcessPoolExecutor(max_workers=workers,
                                 mp_context=context) as pool:
            outcomes = list(pool.map(_evaluate_candidate_process, payloads))
        results = []
        for result, counters in outcomes:
            for counter, value in counters.items():
                if value:
                    self._count(counter, value)
            results.append(result)
        return results

    def stats(self) -> Dict[str, Any]:
        return {
            "workers": self.workers,
            "backend": self._backend_used,
            "evaluated": self.evaluated,
            "infeasible": self.infeasible,
            "failed": self.failed,
            "retried": self.retried,
            "store": self.store.stats(),
        }


def _evaluate_candidate_process(
        payload: Dict[str, Any]) -> Tuple[CandidateResult, Dict[str, int]]:
    """Spawned-worker entry: evaluate one candidate, return result + counters.

    Rebuilds a fresh single-use :class:`Evaluator` (thread locks don't
    pickle) against the parent's disk cache and precision settings, so a
    process-backend sweep is observationally identical to a thread sweep.
    """
    from repro.core.precision import set_compute_dtype, set_distance_block_bytes
    from repro.explore.space import SearchSpace as _SearchSpace

    set_compute_dtype(payload["compute_dtype"])
    set_distance_block_bytes(payload["distance_block_bytes"])
    evaluator = Evaluator(_SearchSpace.from_dict(payload["space"]),
                          cache_dir=payload["cache_dir"], workers=1,
                          stages=payload["stages"],
                          retries=payload["retries"],
                          backoff_ms=payload["backoff_ms"])
    candidate = Candidate(index=int(payload["index"]),
                          values=tuple(tuple(pair) for pair
                                       in payload["values"]),
                          spec=payload["spec"])
    result = evaluator.evaluate_one(candidate, payload["fidelity"])
    counters = {name: getattr(evaluator, name) for name in
                ("evaluated", "infeasible", "failed", "retried")}
    return result, counters
