"""repro.explore — design-space exploration and auto-tuning.

Enumerates candidate designs — per-layer compression overrides crossed with
accelerator configurations — evaluates each through the :mod:`repro.pipeline`
stages (compress → serve_eval → accel_eval) on a shared content-hash
artifact cache, and returns the Pareto frontier over (accuracy, compression
ratio, latency, energy).  See ``python -m repro.explore --help``.
"""

from repro.explore.evaluator import CandidateResult, Evaluator, clustering_signature
from repro.explore.pareto import (
    DEFAULT_OBJECTIVES,
    OBJECTIVES,
    Objective,
    ParetoFrontier,
    dominates,
    nondominated_rank,
    render_csv,
    render_markdown,
    scalarize,
)
from repro.explore.runner import ExplorationResult, explore, render_report
from repro.explore.space import Axis, Candidate, SearchSpace
from repro.explore.spaces import (
    SPACES,
    FrontierScenario,
    get_space,
    list_spaces,
    register_space,
)
from repro.explore.strategies import (
    STRATEGIES,
    StrategyOutcome,
    get_strategy,
    list_strategies,
    register_strategy,
)

__all__ = [
    "Axis",
    "Candidate",
    "CandidateResult",
    "DEFAULT_OBJECTIVES",
    "Evaluator",
    "ExplorationResult",
    "FrontierScenario",
    "OBJECTIVES",
    "Objective",
    "ParetoFrontier",
    "SPACES",
    "STRATEGIES",
    "SearchSpace",
    "StrategyOutcome",
    "clustering_signature",
    "dominates",
    "explore",
    "get_space",
    "get_strategy",
    "list_spaces",
    "list_strategies",
    "nondominated_rank",
    "register_space",
    "register_strategy",
    "render_csv",
    "render_markdown",
    "render_report",
    "scalarize",
]
