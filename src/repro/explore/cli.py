"""Command-line entry points of the design-space explorer.

::

    python -m repro.explore run space.json            # search-space JSON file
    python -m repro.explore run --scenario NAME       # registered space
    python -m repro.explore list-strategies
    python -m repro.explore list-spaces
    python -m repro.explore report frontier.json      # re-render a saved run

A JSON file may be a standalone :class:`SearchSpace` dict or a
:class:`PipelineConfig` dict carrying an ``explore`` section (the remainder
of the config is then the sweep's base pipeline).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.core import telemetry
from repro.explore.runner import ExplorationResult, explore, render_report
from repro.explore.space import SearchSpace
from repro.explore.spaces import get_space, list_spaces
from repro.explore.strategies import list_strategies


def _print_result(result: ExplorationResult) -> None:
    stats = result.stats
    print(f"[explore] space {result.space.name!r}: strategy "
          f"{result.strategy}, {stats['candidates']} candidates evaluated "
          f"in {stats['seconds']:.2f}s "
          f"({stats['workers']} {stats.get('backend', 'thread')} workers)")
    print(f"[explore] cluster cache: "
          f"{stats['cluster_layers_cached']} layer results reused, "
          f"{stats['cluster_layers_fresh']} clustered fresh "
          f"(store: {stats['store_hits']} hits / "
          f"{stats['store_misses']} misses)")
    if stats.get("retried"):
        print(f"[explore] transient failures retried: {stats['retried']}")
    for error in stats["errors"]:
        print(f"[explore] candidate {error['index']} failed "
              f"({error.get('error_type')}, "
              f"{error.get('attempts', 1)} attempts): "
              f"{error['error']}", file=sys.stderr)
    print(f"[explore] Pareto frontier: {len(result.frontier)} of "
          f"{len(result.ok_results)} feasible points "
          f"({stats['dominated']} dominated)")
    if len(result.frontier):
        print()
        print(result.to_markdown())
        best = result.best()
        print(f"[explore] best (scalarized): candidate "
              f"{best.candidate.index} {best.candidate.values_dict} -> "
              f"{ {k: round(v, 4) for k, v in best.objectives.items()} }")


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.explore",
        description="Design-space exploration over compression x "
                    "accelerator configs")
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="run a search from a JSON space or a "
                                       "registered space")
    run_p.add_argument("space", nargs="?", default=None,
                       help="JSON file: a SearchSpace dict or a "
                            "PipelineConfig dict with an 'explore' section")
    run_p.add_argument("--scenario", default=None,
                       help="name of a registered search space")
    run_p.add_argument("--strategy", default=None,
                       help="override the space's strategy "
                            "(grid | random | halving)")
    run_p.add_argument("--budget", type=int, default=None,
                       help="override the space's candidate budget")
    run_p.add_argument("--workers", type=int, default=None,
                       help="evaluator pool size (default: CPU count)")
    run_p.add_argument("--backend", choices=("auto", "thread", "process"),
                       default="thread",
                       help="evaluator workers: threads (default), spawned "
                            "processes over a disk-backed --cache-dir, or "
                            "auto (process iff >1 CPU and --cache-dir)")
    run_p.add_argument("--cache-dir", default=None,
                       help="artifact cache directory shared across "
                            "candidates (and across runs)")
    run_p.add_argument("--output", default=None,
                       help="write the JSON exploration report to this path")
    run_p.add_argument("--csv", default=None,
                       help="write the frontier as CSV to this path")
    run_p.add_argument("--markdown", default=None,
                       help="write the frontier markdown table to this path")
    run_p.add_argument("--register", action="store_true",
                       help="register the frontier's best point as a "
                            "pipeline scenario (explore-<space>-best)")
    run_p.add_argument("--retries", type=int, default=2,
                       help="retry budget per failing candidate before it "
                            "is recorded as a typed failure (default: 2)")
    run_p.add_argument("--faults", type=float, default=0.0, metavar="RATE",
                       help="chaos session: inject faults at this "
                            "probability into candidate evaluation and the "
                            "artifact store (0 disables; see README "
                            "'Robustness & fault injection')")
    run_p.add_argument("--fault-seed", type=int, default=0,
                       help="seed of the injected fault plan (same seed = "
                            "bit-identical chaos)")
    run_p.add_argument("--trace", default=None, metavar="OUT.json",
                       help="record a trace of the sweep (per-candidate "
                            "spans grouped by wave) and write it as Chrome "
                            "trace-event JSON; OUT.jsonl is written too")

    sub.add_parser("list-strategies", help="print the strategy registry")
    sub.add_parser("list-spaces", help="print the search-space registry")

    report_p = sub.add_parser("report", help="re-render a saved exploration "
                                             "report's frontier")
    report_p.add_argument("report", help="JSON report written by run --output")
    report_p.add_argument("--format", default="markdown",
                          choices=("markdown", "csv", "json"))

    args = parser.parse_args(argv)

    if args.command == "list-strategies":
        for info in list_strategies():
            print(f"{info.name:<10s} {info.description}")
        return 0

    if args.command == "list-spaces":
        for space in list_spaces():
            print(f"{space.name:<20s} model={space.model:<14s} "
                  f"strategy={space.strategy:<8s} "
                  f"grid={space.grid_size:<4d} {space.description}")
        return 0

    if args.command == "report":
        report = json.loads(Path(args.report).read_text())
        print(render_report(report, fmt=args.format))
        return 0

    if (args.space is None) == (args.scenario is None):
        print("run: provide exactly one of a space file or --scenario",
              file=sys.stderr)
        return 2

    if args.scenario is not None:
        space = get_space(args.scenario)
    else:
        space = SearchSpace.from_dict(json.loads(Path(args.space).read_text()))

    tracer = telemetry.enable() if args.trace else None

    if args.faults > 0.0:
        from repro.core.faults import FaultPlan, FaultRule

        plan = FaultPlan([
            FaultRule("explore.candidate.eval", probability=args.faults),
            FaultRule("artifacts.store.write", probability=args.faults / 4,
                      kind="corrupt"),
        ], seed=args.fault_seed)
        print(f"[explore] chaos session: fault rate {args.faults} "
              f"(seed {args.fault_seed})")
        with plan.active():
            # the evaluator itself also forces threads under an active
            # plan — process workers would not see the injected faults
            result = explore(space, strategy=args.strategy,
                             budget=args.budget, cache_dir=args.cache_dir,
                             workers=args.workers, retries=args.retries,
                             backend=args.backend)
        summary = plan.summary()
        print(f"[explore] injected faults: "
              f"{ {k: v for k, v in summary['injections'].items() if v} }")
    else:
        result = explore(space, strategy=args.strategy, budget=args.budget,
                         cache_dir=args.cache_dir, workers=args.workers,
                         retries=args.retries, backend=args.backend)
    _print_result(result)

    telemetry_summary = None
    if tracer is not None:
        telemetry_summary = tracer.summary()
        tracer.export_chrome(args.trace)
        tracer.export_jsonl(str(Path(args.trace).with_suffix(".jsonl")))
        telemetry.disable()
        for line in telemetry.format_summary(telemetry_summary,
                                             prefix="[explore]"):
            print(line)
        print(f"[explore] wrote trace {args.trace} "
              f"(open at https://ui.perfetto.dev)")

    # write the reports even for a failed sweep: stats.errors and the
    # per-candidate records are exactly what debugging it needs
    if args.output:
        if telemetry_summary is not None:
            report = result.report()
            report["telemetry"] = telemetry_summary
            Path(args.output).write_text(
                json.dumps(report, indent=2, sort_keys=True, default=str))
        else:
            result.save(args.output)
        print(f"[explore] wrote {args.output}")
    if args.csv:
        Path(args.csv).write_text(result.to_csv())
        print(f"[explore] wrote {args.csv}")
    if args.markdown:
        Path(args.markdown).write_text(result.to_markdown())
        print(f"[explore] wrote {args.markdown}")

    if not len(result.frontier):
        print("[explore] ERROR: no feasible candidate survived — empty "
              "frontier", file=sys.stderr)
        return 1

    if args.register:
        scenario = result.register_best()
        print(f"[explore] registered scenario {scenario.name!r} "
              "(this process)")
    return 0
