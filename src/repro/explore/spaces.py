"""Built-in search spaces + the lazy ``explore-*`` scenario entries.

The registry makes exploration runs *data*, like the pipeline's scenario
registry: ``python -m repro.explore run --scenario NAME`` runs one of these
spaces, and for every fixed-model space importing this module also
registers an ``explore-<space>-best`` entry in the **pipeline** scenario
registry — a :class:`FrontierScenario` that resolves to the frontier's best
point on first use, so the model server can serve an auto-tuned deployment
by name::

    python -m repro.serve --scenario explore-accel-sweep-best

(:func:`repro.pipeline.scenarios.get_scenario` imports this module lazily
for any ``explore-*`` name, so no explicit import is needed.)
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.explore.space import EXPLORE_STAGES, SearchSpace
from repro.pipeline.config import PipelineConfig
from repro.pipeline.scenarios import Scenario, register_scenario

SPACES: Dict[str, SearchSpace] = {}


def register_space(space: SearchSpace, overwrite: bool = False) -> SearchSpace:
    if space.name in SPACES and not overwrite:
        raise ValueError(f"search space {space.name!r} is already registered")
    SPACES[space.name] = space
    return space


def get_space(name: str) -> SearchSpace:
    from repro.workloads.resolving import resolve

    return resolve(SPACES, name, "search space")


def list_spaces() -> List[SearchSpace]:
    return [SPACES[name] for name in sorted(SPACES)]


# ---------------------------------------------------------------------------
# frontier-best scenarios: lazily resolved pipeline-registry entries
# ---------------------------------------------------------------------------

_BEST_SPECS: Dict[str, dict] = {}
_BEST_LOCK = threading.Lock()


def _best_pipeline_dict(space_name: str) -> dict:
    """The best frontier point's pipeline dict, memoized per space.

    The first access runs the (deliberately tiny) search; later accesses —
    including re-runs through a shared artifact store — are free.
    """
    with _BEST_LOCK:
        if space_name not in _BEST_SPECS:
            from repro.explore.runner import explore

            result = explore(get_space(space_name))
            best = result.best()
            _BEST_SPECS[space_name] = best.candidate.scenario_spec()
        return _BEST_SPECS[space_name]


@dataclass(frozen=True)
class FrontierScenario(Scenario):
    """A scenario whose pipeline config is the best point of a search space.

    Only spaces with a fixed model/workload (no model axis) get one: the
    static ``model`` / ``workload`` / ``input_shape`` fields must describe
    every candidate, because loaders read them before the search resolves.
    """

    space: str = ""

    def pipeline_config(self) -> PipelineConfig:
        return PipelineConfig.from_dict(
            dict(_best_pipeline_dict(self.space)["pipeline"]))


def _register_best_scenario(space: SearchSpace) -> Optional[Scenario]:
    # any axis touching the scenario itself (model, model_kwargs, workload,
    # input_shape — directly or via a coupled axis) makes the static fields
    # unreliable: the served architecture could differ from the searched
    # winner.  Such spaces get no lazy entry; use `run --register` instead.
    from repro.explore.space import SCENARIO_KEYS

    if any(axis.path == "" or (axis.path is not None
                               and axis.path.split(".")[0] in SCENARIO_KEYS)
           for axis in space.axes):
        return None
    return register_scenario(FrontierScenario(
        name=f"explore-{space.name}-best",
        description=f"auto-tuned: the Pareto-best point of search space "
                    f"{space.name!r} ({space.strategy} over "
                    f"{space.grid_size} candidates)",
        model=space.model,
        model_kwargs=dict(space.model_kwargs),
        pipeline=dict(space.pipeline),
        workload=space.workload,
        input_shape=space.input_shape,
        space=space.name,
    ), overwrite=True)


# ---------------------------------------------------------------------------
# built-in spaces (tiny models, smoke-sized budgets — seconds, not hours)
# ---------------------------------------------------------------------------

#: shared tiny-model pipeline settings (mirrors the pipeline registry's
#: smoke scenarios: small codebooks, few k-means iterations)
_TINY_PIPELINE = {
    "preset": "mvq",
    "base": {"k": 16, "max_kmeans_iterations": 6},
    "stages": list(EXPLORE_STAGES),
    "serve": {"batch_size": 4, "num_samples": 8},
    "data": {"num_samples": 64, "image_size": 16, "num_classes": 5},
    "accelerator": {"setting": "EWS-CMS", "array_size": 64},
}

register_space(SearchSpace.from_dict({
    "name": "quickstart-grid",
    "description": "Small grid over codebook size, stem pruning and array "
                   "size on the tiny ResNet-18 — the README quickstart.",
    "model": "resnet18",
    "model_kwargs": {"num_classes": 5, "seed": 1},
    "workload": "resnet18",
    "pipeline": _TINY_PIPELINE,
    "strategy": "grid",
    "axes": [
        {"path": "base.k", "values": [12, 24]},
        {"pattern": "stem.*", "field": "n_keep", "values": [2, 4]},
        {"path": "accelerator.array_size", "values": [32, 64]},
    ],
}))

register_space(SearchSpace.from_dict({
    "name": "accel-sweep",
    "description": "Fixed compression, accelerator-only sweep (hardware "
                   "setting x array size): every candidate shares the "
                   "cluster cache, so only the first one clusters.",
    "model": "resnet18",
    "model_kwargs": {"num_classes": 5, "seed": 1},
    "workload": "resnet18",
    "pipeline": _TINY_PIPELINE,
    "strategy": "grid",
    "axes": [
        {"path": "accelerator.setting", "values": ["EWS-CMS", "EWS-CM"]},
        {"path": "accelerator.array_size", "values": [32, 64]},
    ],
}))

register_space(SearchSpace.from_dict({
    "name": "table3-ablation",
    "description": "The paper's Table 3 ablation (cases A-D) as an automatic "
                   "frontier sweep: prune / masked-kmeans / mask-storage "
                   "toggles against accuracy, CR, latency and energy.",
    "model": "resnet18",
    "model_kwargs": {"num_classes": 5, "seed": 1},
    "workload": "resnet18",
    "pipeline": {**_TINY_PIPELINE, "preset": "mvq"},
    "strategy": "grid",
    "axes": [
        {"path": "preset", "name": "table3_case",
         "values": ["table3_case_a", "table3_case_b", "table3_case_c",
                    "table3_case_d"]},
    ],
}))

register_space(SearchSpace.from_dict({
    "name": "models-grid",
    "description": "Two models x per-layer codebook/pruning variants x two "
                   "accelerator configs — the acceptance-criteria grid "
                   "(16 candidates).",
    "model": "resnet18",
    "model_kwargs": {"num_classes": 5, "seed": 1},
    "workload": "resnet18",
    "pipeline": _TINY_PIPELINE,
    "strategy": "grid",
    "axes": [
        {"path": "", "name": "model",
         "values": [{"model": "resnet18", "workload": "resnet18"},
                    {"model": "mobilenet_v1", "workload": "mobilenet_v1"}]},
        {"pattern": "*", "field": "k", "values": [12, 24], "name": "k"},
        {"pattern": "*", "field": "n_keep", "values": [2, 4],
         "name": "n_keep"},
        {"path": "accelerator.array_size", "values": [32, 64]},
    ],
}))

register_space(SearchSpace.from_dict({
    "name": "halving-demo",
    "description": "Budgeted successive halving over codebook size, "
                   "codebook bits and pruning: dominated candidates are "
                   "pruned on cheap proxy evals before the full-fidelity "
                   "(fine-tuned) evaluation.",
    "model": "resnet18",
    "model_kwargs": {"num_classes": 5, "seed": 1},
    "workload": "resnet18",
    "pipeline": {**_TINY_PIPELINE,
                 "finetune": {"epochs": 1, "lr": 0.02, "codebook_lr": 3e-3}},
    "strategy": "halving",
    "budget": 6,
    "axes": [
        {"path": "base.k", "values": [8, 16, 24]},
        {"path": "base.codebook_bits", "values": [6, 8]},
        {"path": "base.n_keep", "values": [2, 4]},
    ],
}))

for _space in list_spaces():
    _register_best_scenario(_space)
