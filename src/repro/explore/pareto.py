"""Pareto-dominance bookkeeping for design-space exploration.

Every evaluated candidate is a point in objective space — by default
(accuracy, compression ratio, latency, energy), the axes of the paper's
Table 3 / Table 9 trade-off studies.  :class:`ParetoFrontier` maintains the
non-dominated set incrementally and exports it as JSON records, a CSV file
or a Table-3-style markdown table.

Dominance is direction-aware: each :class:`Objective` says whether larger
or smaller is better, and point ``a`` dominates point ``b`` iff ``a`` is at
least as good in every objective and strictly better in at least one.
Points with identical objective vectors do not dominate each other — ties
stay on the frontier side by side.
"""

from __future__ import annotations

import csv
import io
import json
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple


@dataclass(frozen=True)
class Objective:
    """One optimisation axis: its report key and which direction is better."""

    name: str
    direction: str = "max"              # "max" or "min"

    def __post_init__(self):
        if self.direction not in ("max", "min"):
            raise ValueError(
                f"objective {self.name!r}: direction must be 'max' or 'min', "
                f"got {self.direction!r}")

    @property
    def sign(self) -> float:
        return 1.0 if self.direction == "max" else -1.0


#: the built-in objectives of the MVQ design space.  ``accuracy`` is the
#: compressed model's validation accuracy (``serve_eval``), ``fidelity`` the
#: negative output distortion vs the uncompressed network — a smoother proxy
#: when every candidate sits at chance accuracy.
OBJECTIVES: Dict[str, Objective] = {
    "accuracy": Objective("accuracy", "max"),
    "fidelity": Objective("fidelity", "max"),
    "compression_ratio": Objective("compression_ratio", "max"),
    "latency_ms": Objective("latency_ms", "min"),
    "energy_mj": Objective("energy_mj", "min"),
    "throughput_tops": Objective("throughput_tops", "max"),
    "efficiency_tops_w": Objective("efficiency_tops_w", "max"),
}

#: the default four-objective frontier of the ISSUE's Table-3/Table-9 sweep
DEFAULT_OBJECTIVES: Tuple[str, ...] = (
    "accuracy", "compression_ratio", "latency_ms", "energy_mj")


def get_objective(name: str) -> Objective:
    from repro.workloads.resolving import resolve

    return resolve(OBJECTIVES, name, "objective")


def resolve_objectives(names: Iterable[str]) -> Tuple[Objective, ...]:
    return tuple(get_objective(name) for name in names)


def _objective_map(point: Any) -> Mapping[str, float]:
    """The objective dict of a point (attribute or mapping form)."""
    if isinstance(point, Mapping):
        values = point.get("objectives", point)
    else:
        values = getattr(point, "objectives", None)
    if not isinstance(values, Mapping):
        raise TypeError(
            f"point {point!r} has no 'objectives' mapping to rank by")
    return values


def dominates(a: Any, b: Any, objectives: Sequence[Objective]) -> bool:
    """True iff ``a`` dominates ``b``: no worse everywhere, better somewhere."""
    va, vb = _objective_map(a), _objective_map(b)
    strictly_better = False
    for obj in objectives:
        da = obj.sign * float(va[obj.name])
        db = obj.sign * float(vb[obj.name])
        if da < db:
            return False
        if da > db:
            strictly_better = True
    return strictly_better


def nondominated_rank(points: Sequence[Any],
                      objectives: Sequence[Objective]) -> List[int]:
    """Pareto rank per point: 0 = non-dominated, 1 = dominated only by rank
    0, ...  (the peeling used by the successive-halving pruner)."""
    remaining = list(range(len(points)))
    ranks = [0] * len(points)
    rank = 0
    while remaining:
        front = [i for i in remaining
                 if not any(dominates(points[j], points[i], objectives)
                            for j in remaining if j != i)]
        if not front:                       # safety net; cannot happen
            front = list(remaining)
        for i in front:
            ranks[i] = rank
        remaining = [i for i in remaining if i not in set(front)]
        rank += 1
    return ranks


def scalarize(points: Sequence[Any], objectives: Sequence[Objective],
              weights: Optional[Mapping[str, float]] = None) -> List[float]:
    """One scalar score per point: each objective min-max normalised to
    [0, 1] over ``points`` (direction-corrected; a degenerate span counts
    as 1.0) and combined as a weighted sum (equal weights by default).
    Shared by :meth:`ParetoFrontier.best` and the halving pruner so their
    rankings cannot drift apart."""
    weights = dict(weights or {})
    spans = {}
    for obj in objectives:
        values = [obj.sign * float(_objective_map(p)[obj.name])
                  for p in points]
        spans[obj.name] = (min(values), max(values))

    scores = []
    for point in points:
        total = 0.0
        for obj in objectives:
            lo, hi = spans[obj.name]
            value = obj.sign * float(_objective_map(point)[obj.name])
            unit = (value - lo) / (hi - lo) if hi > lo else 1.0
            total += weights.get(obj.name, 1.0) * unit
        scores.append(total)
    return scores


class ParetoFrontier:
    """Incrementally maintained non-dominated set over named objectives."""

    def __init__(self, objectives: Sequence[Any] = DEFAULT_OBJECTIVES):
        self.objectives: Tuple[Objective, ...] = tuple(
            obj if isinstance(obj, Objective) else get_objective(obj)
            for obj in objectives)
        if not self.objectives:
            raise ValueError("a frontier needs at least one objective")
        self._points: List[Any] = []
        self.dominated_count = 0

    def __len__(self) -> int:
        return len(self._points)

    def __iter__(self):
        return iter(self._points)

    @property
    def points(self) -> List[Any]:
        return list(self._points)

    def add(self, point: Any) -> bool:
        """Insert ``point``; returns True iff it joined the frontier (and
        evicts any existing points it dominates)."""
        _objective_map(point)               # validate eagerly
        for existing in self._points:
            if dominates(existing, point, self.objectives):
                self.dominated_count += 1
                return False
        survivors = [p for p in self._points
                     if not dominates(point, p, self.objectives)]
        self.dominated_count += len(self._points) - len(survivors)
        survivors.append(point)
        self._points = survivors
        return True

    def update(self, points: Iterable[Any]) -> int:
        """Add many points; returns how many ended up on the frontier."""
        for point in points:
            self.add(point)
        return len(self._points)

    # -- picking one point ------------------------------------------------------
    def best(self, weights: Optional[Mapping[str, float]] = None) -> Any:
        """The scalarized pick for "serve the frontier's best point".

        Each objective is min-max normalised to [0, 1] over the frontier
        (direction-corrected) and combined as a weighted sum (equal weights
        by default).  Deterministic: ties break toward the earliest-added
        point.
        """
        if not self._points:
            raise ValueError("empty frontier has no best point")
        scores = scalarize(self._points, self.objectives, weights)
        best_index = max(range(len(scores)),
                         key=lambda i: (scores[i], -i))   # earliest tie wins
        return self._points[best_index]

    # -- export -----------------------------------------------------------------
    def to_records(self) -> List[Dict[str, Any]]:
        """JSON-able dicts, sorted by the first objective (best first)."""
        lead = self.objectives[0]
        records = []
        for point in self._points:
            if isinstance(point, Mapping):
                records.append(dict(point))
            else:
                records.append(point.record())
        records.sort(key=lambda r: -lead.sign * float(r["objectives"][lead.name]))
        return records

    def to_json(self, indent: int = 2) -> str:
        return json.dumps({
            "objectives": [{"name": o.name, "direction": o.direction}
                           for o in self.objectives],
            "points": self.to_records(),
        }, indent=indent, sort_keys=True)

    def to_csv(self) -> str:
        return render_csv(self.to_records(), [o.name for o in self.objectives])

    def to_markdown(self) -> str:
        return render_markdown(self.to_records(),
                               [o.name for o in self.objectives])


# ---------------------------------------------------------------------------
# table rendering — module-level so saved reports re-render without a live
# frontier object (`python -m repro.explore report frontier.json`)
# ---------------------------------------------------------------------------

def _format_value(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    if isinstance(value, (dict, list)):
        return json.dumps(value, sort_keys=True)
    return str(value)


def _table_columns(records: Sequence[Mapping[str, Any]],
                   objective_names: Sequence[str]):
    axis_names: List[str] = []
    for record in records:
        for key in record.get("values", {}):
            if key not in axis_names:
                axis_names.append(key)
    header = ["candidate", *axis_names, *objective_names]
    rows = []
    for record in records:
        values = record.get("values", {})
        objectives = record.get("objectives", {})
        rows.append([
            str(record.get("index", "-")),
            *[_format_value(values[k]) if k in values else "-"
              for k in axis_names],
            *[_format_value(objectives[k]) if k in objectives else "-"
              for k in objective_names],
        ])
    return header, rows


def render_markdown(records: Sequence[Mapping[str, Any]],
                    objective_names: Sequence[str]) -> str:
    """A GitHub-markdown frontier table (the Table-3-style ablation view)."""
    header, rows = _table_columns(records, objective_names)
    lines = ["| " + " | ".join(header) + " |",
             "| " + " | ".join("---" for _ in header) + " |"]
    lines += ["| " + " | ".join(row) + " |" for row in rows]
    return "\n".join(lines) + "\n"


def render_csv(records: Sequence[Mapping[str, Any]],
               objective_names: Sequence[str]) -> str:
    header, rows = _table_columns(records, objective_names)
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(header)
    writer.writerows(rows)
    return buffer.getvalue()
