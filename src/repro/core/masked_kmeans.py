"""Masked k-means clustering (Section 4.4, the paper's key algorithm).

Both steps of Lloyd's algorithm are modified so that pruned weights cannot
drag codewords towards zero:

* **Masked assignment** (Eq. 2): the distance between a subvector and a
  codeword only sums the unpruned coordinates,
  ``||w_j - c o bm_j||^2``.
* **Masked update** (Eq. 3/4): each codeword coordinate becomes the mean of
  that coordinate over *unpruned* occurrences only,
  ``c_i = sum_p v_p / sum_p n_p`` (elementwise).

The paper implements the masked distance with a broadcast ``[L, k, d]``
tensor; since the subvectors are already zero at pruned positions, the same
quantity expands to ``||w||^2 - 2 w.c + bm . c^2`` which we evaluate with a
single fused matrix product — no (L, k, d) intermediate is ever
materialised, so the GPU batching trick in the paper becomes unnecessary on
CPU.

Performance notes (shared with :mod:`repro.core.kmeans`):

* Assignment is one blocked GEMM ``[w, bm] @ [-2c, c^2]^T`` whose per-block
  score matrix is bounded by the global distance budget.
* The masked update uses flattened ``np.bincount`` segment sums instead of
  ``np.add.at`` scatter-adds (float64 accumulation built in).
* Dense math runs in :func:`repro.core.precision.compute_dtype`; the
  reported SSE always accumulates in float64.
* ``init="kmeans++"`` seeds by masked-distance D^2 sampling and
  ``minibatch=<batch>`` enables streaming updates for very large layers.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core import precision
from repro.core.kmeans import (
    KMeansResult,
    _blocked_argmin,
    _choose_init,
    segment_sums,
)


def _augment_mask(data: np.ndarray, mask: np.ndarray) -> np.ndarray:
    """``[w, bm]`` rows for the fused masked-assignment GEMM."""
    n, d = data.shape
    aug = np.empty((n, 2 * d), dtype=data.dtype)
    aug[:, :d] = data
    aug[:, d:] = mask
    return aug


def _scorer_mask(codewords: np.ndarray, dtype: np.dtype) -> np.ndarray:
    """Fused ``[-2c, c^2]^T`` codeword matrix for ``[w, bm]`` rows."""
    k, d = codewords.shape
    scorer = np.empty((2 * d, k), dtype=dtype)
    scorer[:d] = -2.0 * codewords.T
    scorer[d:] = (codewords ** 2).T
    return scorer


def masked_assign(data: np.ndarray, mask: np.ndarray, codewords: np.ndarray,
                  block_bytes: Optional[int] = None) -> np.ndarray:
    """Nearest codeword per subvector under the masked distance (Eq. 2).

    ``data`` is assumed pre-masked (zero at pruned positions).  The score
    ``bm.c^2 - 2 w.c`` is produced by one fused GEMM evaluated in row blocks
    bounded by the distance budget — chunked and unchunked paths compute the
    same per-row arithmetic, so their argmins are identical.
    """
    dt = np.result_type(data, codewords)
    data = np.ascontiguousarray(data, dtype=dt)
    mask = np.asarray(mask)
    return _blocked_argmin(_augment_mask(data, mask.astype(dt)),
                           _scorer_mask(codewords, dt), block_bytes)


def masked_distances(data: np.ndarray, mask: np.ndarray, codewords: np.ndarray) -> np.ndarray:
    """Full masked squared-distance matrix (N_G, k); used by tests/analysis."""
    data_norm = np.einsum("nd,nd->n", data, data)
    cross = data @ codewords.T
    masked_c_norm = mask @ (codewords**2).T
    return data_norm[:, None] - 2.0 * cross + masked_c_norm


def masked_update(data: np.ndarray, mask: np.ndarray, assignments: np.ndarray,
                  k: int, previous: np.ndarray) -> np.ndarray:
    """Masked codeword update (Eq. 4): per-coordinate mean over unpruned entries.

    Coordinates with no unpruned occurrence in a cluster (including entirely
    empty clusters) keep their previous value.
    """
    sums = segment_sums(assignments, data, k)
    counts = segment_sums(assignments, mask.astype(data.dtype), k)
    updated = np.where(counts > 0, sums / np.maximum(counts, 1.0), previous)
    return updated.astype(data.dtype)


def masked_kmeans(
    data: np.ndarray,
    mask: np.ndarray,
    k: int,
    max_iterations: int = 100,
    change_threshold: float = 1e-3,
    seed: int = 0,
    init_codewords: Optional[np.ndarray] = None,
    init: str = "random",
    minibatch: Optional[int] = None,
    block_bytes: Optional[int] = None,
) -> KMeansResult:
    """Masked k-means over pre-pruned subvectors.

    ``data`` is the (N_G, d) matrix of pruned subvectors (zeros at pruned
    positions), ``mask`` the matching boolean keep-mask.  The returned SSE is
    the masked clustering error ``sum_j ||w_j - q(w_j) o bm_j||^2`` — the
    quantity the algorithm minimises and the paper reports as "Mask SSE".

    ``max_iterations=0`` performs no update step: the result is the masked
    assignment of the data to the *initial* codewords (``iterations == 0``).
    ``init``/``minibatch``/``block_bytes`` behave as in
    :func:`repro.core.kmeans.kmeans`; the k-means++ variant samples by
    masked distance.
    """
    data = precision.as_compute(data)
    mask = np.asarray(mask, dtype=bool)
    if data.shape != mask.shape:
        raise ValueError("data and mask must have the same shape")
    if data.ndim != 2:
        raise ValueError("data must be a 2D (N_G, d) matrix")
    if k < 1:
        raise ValueError("k must be >= 1")
    if max_iterations < 0:
        raise ValueError("max_iterations must be >= 0")

    data = data * mask  # enforce the pruning invariant
    dt = data.dtype
    rng = np.random.default_rng(seed)
    codewords = (
        np.array(init_codewords, dtype=dt, copy=True)
        if init_codewords is not None
        else _choose_init(data, k, rng, init, mask=mask)
    )
    if codewords.shape != (k, data.shape[1]):
        raise ValueError(f"initial codewords must have shape {(k, data.shape[1])}")

    maskf = mask.astype(dt)
    aug = _augment_mask(data, maskf)

    iterations = 0
    if minibatch is not None and max_iterations > 0:
        codewords = _minibatch_masked(data, maskf, codewords, k, minibatch,
                                      max_iterations, rng, block_bytes)
        iterations = max_iterations
        assignments = _blocked_argmin(aug, _scorer_mask(codewords, dt), block_bytes)
    else:
        assignments = _blocked_argmin(aug, _scorer_mask(codewords, dt), block_bytes)
        for iterations in range(1, max_iterations + 1):
            codewords = masked_update(data, mask, assignments, k, codewords)
            new_assignments = _blocked_argmin(aug, _scorer_mask(codewords, dt),
                                              block_bytes)
            changed = np.count_nonzero(new_assignments != assignments)
            assignments = new_assignments
            if changed <= change_threshold * data.shape[0]:
                break

    residual = ((data - codewords[assignments]) * mask).astype(np.float64, copy=False)
    sse = float(np.einsum("nd,nd->", residual, residual))
    return KMeansResult(codewords=codewords, assignments=assignments,
                        sse=sse, iterations=iterations)


def _minibatch_masked(data: np.ndarray, maskf: np.ndarray, codewords: np.ndarray,
                      k: int, batch: int, max_iterations: int,
                      rng: np.random.Generator,
                      block_bytes: Optional[int]) -> np.ndarray:
    """Streaming masked mini-batch updates: per-coordinate running means over
    every unpruned occurrence seen so far."""
    n, d = data.shape
    batch = min(batch, n)
    dt = data.dtype
    sums = np.zeros((k, d), dtype=np.float64)
    counts = np.zeros((k, d), dtype=np.float64)
    for _ in range(max_iterations):
        idx = rng.integers(0, n, size=batch)
        rows, row_mask = data[idx], maskf[idx]
        assignments = _blocked_argmin(_augment_mask(rows, row_mask),
                                      _scorer_mask(codewords, dt), block_bytes)
        sums += segment_sums(assignments, rows, k)
        counts += segment_sums(assignments, row_mask, k)
        seen = counts > 0
        codewords[seen] = (sums[seen] / counts[seen]).astype(dt)
    return codewords
