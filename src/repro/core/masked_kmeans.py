"""Masked k-means clustering (Section 4.4, the paper's key algorithm).

Both steps of Lloyd's algorithm are modified so that pruned weights cannot
drag codewords towards zero:

* **Masked assignment** (Eq. 2): the distance between a subvector and a
  codeword only sums the unpruned coordinates,
  ``||w_j - c o bm_j||^2``.
* **Masked update** (Eq. 3/4): each codeword coordinate becomes the mean of
  that coordinate over *unpruned* occurrences only,
  ``c_i = sum_p v_p / sum_p n_p`` (elementwise).

The paper implements the masked distance with a broadcast ``[L, k, d]``
tensor; since the subvectors are already zero at pruned positions, the same
quantity expands to ``||w||^2 - 2 w.c + bm . c^2`` which we evaluate with
two matrix products — no (L, k, d) intermediate is ever materialised, so the
GPU batching trick in the paper becomes unnecessary on CPU.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.kmeans import KMeansResult, _init_codewords


def masked_assign(data: np.ndarray, mask: np.ndarray, codewords: np.ndarray) -> np.ndarray:
    """Nearest codeword per subvector under the masked distance (Eq. 2)."""
    # data is assumed pre-masked (zero at pruned positions).
    cross = data @ codewords.T                     # (N_G, k)
    masked_c_norm = mask @ (codewords**2).T        # (N_G, k)
    return np.argmin(masked_c_norm - 2.0 * cross, axis=1)


def masked_distances(data: np.ndarray, mask: np.ndarray, codewords: np.ndarray) -> np.ndarray:
    """Full masked squared-distance matrix (N_G, k); used by tests/analysis."""
    data_norm = np.einsum("nd,nd->n", data, data)
    cross = data @ codewords.T
    masked_c_norm = mask @ (codewords**2).T
    return data_norm[:, None] - 2.0 * cross + masked_c_norm


def masked_update(data: np.ndarray, mask: np.ndarray, assignments: np.ndarray,
                  k: int, previous: np.ndarray) -> np.ndarray:
    """Masked codeword update (Eq. 4): per-coordinate mean over unpruned entries."""
    d = data.shape[1]
    sums = np.zeros((k, d))
    counts = np.zeros((k, d))
    np.add.at(sums, assignments, data)
    np.add.at(counts, assignments, mask.astype(float))
    updated = np.where(counts > 0, sums / np.maximum(counts, 1.0), previous)
    return updated


def masked_kmeans(
    data: np.ndarray,
    mask: np.ndarray,
    k: int,
    max_iterations: int = 100,
    change_threshold: float = 1e-3,
    seed: int = 0,
    init_codewords: Optional[np.ndarray] = None,
) -> KMeansResult:
    """Masked k-means over pre-pruned subvectors.

    ``data`` is the (N_G, d) matrix of pruned subvectors (zeros at pruned
    positions), ``mask`` the matching boolean keep-mask.  The returned SSE is
    the masked clustering error ``sum_j ||w_j - q(w_j) o bm_j||^2`` — the
    quantity the algorithm minimises and the paper reports as "Mask SSE".
    """
    data = np.asarray(data, dtype=np.float64)
    mask = np.asarray(mask, dtype=bool)
    if data.shape != mask.shape:
        raise ValueError("data and mask must have the same shape")
    if data.ndim != 2:
        raise ValueError("data must be a 2D (N_G, d) matrix")
    if k < 1:
        raise ValueError("k must be >= 1")

    data = data * mask  # enforce the pruning invariant
    rng = np.random.default_rng(seed)
    codewords = (
        np.array(init_codewords, dtype=np.float64, copy=True)
        if init_codewords is not None
        else _init_codewords(data, k, rng)
    )
    if codewords.shape != (k, data.shape[1]):
        raise ValueError(f"initial codewords must have shape {(k, data.shape[1])}")

    assignments = masked_assign(data, mask, codewords)
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        codewords = masked_update(data, mask, assignments, k, codewords)
        new_assignments = masked_assign(data, mask, codewords)
        changed = np.count_nonzero(new_assignments != assignments)
        assignments = new_assignments
        if changed <= change_threshold * data.shape[0]:
            break

    residual = (data - codewords[assignments]) * mask
    sse = float(np.sum(residual**2))
    return KMeansResult(codewords=codewords, assignments=assignments,
                        sse=sse, iterations=iterations)
