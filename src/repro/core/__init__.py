"""MVQ core: the paper's masked vector quantization compression pipeline.

The four pipeline stages (Fig. 2 of the paper):

1. Weight grouping and N:M pruning      -> :mod:`repro.core.grouping`, :mod:`repro.core.pruning`
2. Masked k-means clustering            -> :mod:`repro.core.masked_kmeans`
3. Codebook quantization (int8 + LSQ)   -> :mod:`repro.core.codebook`
4. Fine-tuning with masked gradients    -> :mod:`repro.core.finetune`

The :class:`repro.core.compressor.MVQCompressor` orchestrates all four over
a whole model; :mod:`repro.core.storage` implements the compression-ratio
accounting of Eq. 7 and the mask look-up-table encoding.
"""

from repro.core import precision
from repro.core.precision import (
    accum_dtype,
    compute_dtype,
    distance_block_bytes,
    precision as precision_scope,
    set_compute_dtype,
    set_distance_block_bytes,
)
from repro.core.grouping import GroupingStrategy, group_weight, ungroup_weight, grouped_shape
from repro.core.pruning import (
    nm_prune_mask,
    apply_mask,
    sparsity_of_mask,
    SparseFinetuner,
    asp_prune,
)
from repro.core.kmeans import KMeansResult, kmeans
from repro.core.masked_kmeans import masked_kmeans
from repro.core.codebook import Codebook, quantize_symmetric, fit_scale_mse, LSQScale
from repro.core.reconstruct import reconstruct_grouped, reconstruct_weight
from repro.core.storage import (
    CompressionSpec,
    compression_ratio,
    mask_bits_per_weight,
    assignment_bits,
    codebook_bits,
    MaskLUT,
)
from repro.core.metrics import total_sse, masked_sse, clustering_report
from repro.core.compressor import (
    MVQCompressor,
    LayerCompressionConfig,
    CompressedLayer,
    CompressedModel,
    layer_config_from_dict,
    layer_config_to_dict,
)
from repro.core.faults import (
    FaultPlan,
    FaultRule,
    InjectedFault,
    fault_point,
    install_plan,
    register_error_type,
    register_fault_point,
)
from repro.core.finetune import CodebookFinetuner
from repro.core.mixed_sparsity import MixedSparsitySearch, LayerSparsityChoice
from repro.core.serialization import save_compressed_model, load_compressed_model

__all__ = [
    "precision",
    "accum_dtype",
    "compute_dtype",
    "distance_block_bytes",
    "precision_scope",
    "set_compute_dtype",
    "set_distance_block_bytes",
    "GroupingStrategy",
    "group_weight",
    "ungroup_weight",
    "grouped_shape",
    "nm_prune_mask",
    "apply_mask",
    "sparsity_of_mask",
    "SparseFinetuner",
    "asp_prune",
    "KMeansResult",
    "kmeans",
    "masked_kmeans",
    "Codebook",
    "quantize_symmetric",
    "fit_scale_mse",
    "LSQScale",
    "reconstruct_grouped",
    "reconstruct_weight",
    "CompressionSpec",
    "compression_ratio",
    "mask_bits_per_weight",
    "assignment_bits",
    "codebook_bits",
    "MaskLUT",
    "total_sse",
    "masked_sse",
    "clustering_report",
    "MVQCompressor",
    "LayerCompressionConfig",
    "CompressedLayer",
    "CompressedModel",
    "layer_config_from_dict",
    "layer_config_to_dict",
    "CodebookFinetuner",
    "MixedSparsitySearch",
    "LayerSparsityChoice",
    "save_compressed_model",
    "load_compressed_model",
    "FaultPlan",
    "FaultRule",
    "InjectedFault",
    "fault_point",
    "install_plan",
    "register_error_type",
    "register_fault_point",
]
