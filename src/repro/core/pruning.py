"""N:M structured pruning (Section 4.3) and sparse fine-tuning.

``N:M`` here follows the paper's convention: within every group of ``M``
consecutive weights, the ``N`` largest-magnitude weights are kept and the
remaining ``M - N`` are pruned (so 4:16 keeps 4 of every 16 = 75% sparsity,
1:2 and 2:4 are both 50% sparsity but differ in mask storage cost).

Two fine-tuning flavours are provided, mirroring the paper's setup:

* :class:`SparseFinetuner` with ``sr_ste=True`` — SR-STE-style training
  where the dense weights stay live, the mask is recomputed from magnitudes
  every step, and pruned weights receive a decay penalty (used for
  classification models);
* :func:`asp_prune` + :class:`SparseFinetuner` with ``sr_ste=False`` —
  one-shot magnitude pruning with a frozen mask (the ASP method used for
  detection/segmentation).
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.core.grouping import GroupingStrategy, group_weight, ungroup_weight
from repro.nn.layers import Conv2d, Linear
from repro.nn.module import Module


def nm_prune_mask(grouped: np.ndarray, n_keep: int, m: int) -> np.ndarray:
    """Binary keep-mask for an (N_G, d) matrix under N:M magnitude pruning.

    Every non-overlapping group of ``m`` consecutive elements along the
    subvector dimension keeps its ``n_keep`` largest-magnitude entries.
    """
    if grouped.ndim != 2:
        raise ValueError("expected a 2D grouped weight matrix")
    n_groups, d = grouped.shape
    if not 0 < n_keep <= m:
        raise ValueError(f"need 0 < N <= M, got N={n_keep}, M={m}")
    if d % m != 0:
        raise ValueError(f"subvector length d={d} must be a multiple of M={m}")

    blocks = np.abs(grouped).reshape(n_groups, d // m, m)
    # indices of the (m - n_keep) smallest magnitudes in each block
    order = np.argsort(blocks, axis=2)
    mask = np.ones_like(blocks, dtype=bool)
    drop = order[:, :, : m - n_keep]
    rows = np.arange(n_groups)[:, None, None]
    cols = np.arange(d // m)[None, :, None]
    mask[rows, cols, drop] = False
    return mask.reshape(n_groups, d)


def apply_mask(grouped: np.ndarray, mask: np.ndarray) -> np.ndarray:
    """Zero out pruned positions."""
    if grouped.shape != mask.shape:
        raise ValueError("weight and mask shapes differ")
    return grouped * mask


def sparsity_of_mask(mask: np.ndarray) -> float:
    """Fraction of pruned (zero) weights."""
    return float(1.0 - mask.mean())


def asp_prune(weight: np.ndarray, n_keep: int, m: int, d: int,
              strategy: GroupingStrategy = GroupingStrategy.OUTPUT) -> np.ndarray:
    """One-shot N:M magnitude pruning of a full weight tensor (ASP style).

    Returns the pruned weight; the mask can be recovered as ``weight != 0``
    or recomputed with :func:`nm_prune_mask`.
    """
    grouped = group_weight(weight, d, strategy)
    mask = nm_prune_mask(grouped, n_keep, m)
    return ungroup_weight(apply_mask(grouped, mask), weight.shape, d, strategy)


class SparseFinetuner:
    """Keeps a model N:M sparse while it trains.

    Call :meth:`apply` after every optimizer step.  With ``sr_ste=True`` the
    mask is recomputed from the live dense weights and pruned weights decay
    towards zero (SR-STE); with ``sr_ste=False`` the mask computed on the
    first call is frozen and simply re-applied (ASP).
    """

    def __init__(self, model: Module, n_keep: int, m: int, d: int,
                 strategy: GroupingStrategy = GroupingStrategy.OUTPUT,
                 sr_ste: bool = True, decay: float = 2e-4,
                 skip_layers: Optional[set] = None):
        self.model = model
        self.n_keep = n_keep
        self.m = m
        self.d = d
        self.strategy = strategy
        self.sr_ste = sr_ste
        self.decay = decay
        self.skip_layers = skip_layers or set()
        self._frozen_masks: Dict[str, np.ndarray] = {}

    def prunable_layers(self):
        """Conv/Linear layers whose weights are compatible with the grouping."""
        from repro.core.grouping import compatible_d

        for name, mod in self.model.named_modules():
            if name in self.skip_layers:
                continue
            if isinstance(mod, Conv2d) and not mod.depthwise:
                if compatible_d(mod.weight.shape, self.d, self.strategy):
                    yield name, mod
            elif isinstance(mod, Linear):
                if compatible_d(mod.weight.shape, self.d, self.strategy):
                    yield name, mod

    def apply(self) -> None:
        """Re-impose N:M sparsity on all prunable layers."""
        for name, mod in self.prunable_layers():
            weight = mod.weight.value
            grouped = group_weight(weight, self.d, self.strategy)
            if self.sr_ste:
                mask = nm_prune_mask(grouped, self.n_keep, self.m)
                pruned = grouped * mask + (1.0 - self.decay) * grouped * ~mask
                # SR-STE keeps pruned weights alive but shrinking; the
                # *effective* forward weight is the masked one.
                effective = grouped * mask
            else:
                if name not in self._frozen_masks:
                    self._frozen_masks[name] = nm_prune_mask(grouped, self.n_keep, self.m)
                mask = self._frozen_masks[name]
                pruned = grouped * mask
                effective = pruned
            mod.weight.copy_(ungroup_weight(effective, weight.shape, self.d, self.strategy))

    def masks(self) -> Dict[str, np.ndarray]:
        """Current keep-masks of all prunable layers (grouped layout)."""
        result = {}
        for name, mod in self.prunable_layers():
            grouped = group_weight(mod.weight.value, self.d, self.strategy)
            if not self.sr_ste and name in self._frozen_masks:
                result[name] = self._frozen_masks[name].copy()
            else:
                result[name] = nm_prune_mask(grouped, self.n_keep, self.m)
        return result

    def model_sparsity(self) -> float:
        """Overall fraction of pruned weights across prunable layers."""
        pruned = 0
        total = 0
        for _, mask in self.masks().items():
            pruned += mask.size - int(mask.sum())
            total += mask.size
        return pruned / max(total, 1)
