"""Serialization of compressed models to and from ``.npz`` archives.

A deployed MVQ model ships exactly the three artefacts the accelerator needs
(Section 5): per-layer assignments, LUT-encoded masks and the (shared or
per-layer) int8 codebooks.  This module packs a :class:`CompressedModel`
into a single ``.npz`` file in that format and reloads it, so a compression
run and the hardware-facing export are decoupled.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Union

import numpy as np

from repro.core.codebook import Codebook, assignment_dtype

# the manifest uses the shared layer-config wire schema (also the pipeline
# config's schema — one source of truth).  Archives written by older
# versions (manifests without max_kmeans_iterations/seed) still load:
# missing fields fall back to the dataclass defaults.
from repro.core.compressor import (
    CompressedLayer,
    CompressedModel,
    layer_config_from_dict,
    layer_config_to_dict,
)
from repro.core.storage import MaskLUT
from repro.nn.module import Module


def save_compressed_model(compressed: CompressedModel, path: Union[str, Path]) -> None:
    """Write assignments, LUT-encoded masks and codebooks to a ``.npz`` archive."""
    path = Path(path)
    arrays: Dict[str, np.ndarray] = {}
    manifest = {"crosslayer": compressed.crosslayer, "layers": {}}

    codebook_ids: Dict[int, str] = {}
    for index, state in enumerate(compressed):
        key = id(state.codebook)
        if key not in codebook_ids:
            cb_name = f"codebook_{len(codebook_ids)}"
            codebook_ids[key] = cb_name
            # store the codewords as the accelerator sees them (already on the
            # int8 grid), so reconstruction after reload is bit-exact
            arrays[cb_name] = state.codebook.effective_codewords()
        safe = state.name.replace(".", "__")
        arrays[f"{safe}__assignments"] = state.assignments.astype(np.int32)
        if state.config.store_mask and state.mask is not None:
            lut = MaskLUT(state.config.n_keep, state.config.m)
            arrays[f"{safe}__mask_codes"] = lut.encode_mask(state.mask).astype(np.int32)
        manifest["layers"][state.name] = {
            "weight_shape": list(state.weight_shape),
            "config": layer_config_to_dict(state.config),
            "codebook": codebook_ids[key],
        }

    arrays["__manifest__"] = np.frombuffer(
        json.dumps(manifest).encode("utf-8"), dtype=np.uint8
    ).copy()
    np.savez_compressed(path, **arrays)


def load_compressed_model(model: Module, path: Union[str, Path]) -> CompressedModel:
    """Rebuild a :class:`CompressedModel` for ``model`` from a saved archive.

    ``model`` must have the same architecture the archive was produced from;
    the original full-precision weights are taken from the live model (they
    are only used for SSE reporting, not for reconstruction).
    """
    path = Path(path)
    with np.load(path) as data:
        manifest = json.loads(bytes(data["__manifest__"].tolist()).decode("utf-8"))
        arrays = {name: data[name] for name in data.files if name != "__manifest__"}

    modules = dict(model.named_modules())
    codebooks: Dict[str, Codebook] = {}
    layers: Dict[str, CompressedLayer] = {}
    for name, info in manifest["layers"].items():
        if name not in modules:
            raise KeyError(f"layer {name!r} from the archive is missing from the model")
        config = layer_config_from_dict(info["config"])
        cb_name = info["codebook"]
        if cb_name not in codebooks:
            # the stored codewords are already fake-quantized; bits=None means
            # lookups return them verbatim
            codebooks[cb_name] = Codebook(arrays[cb_name], bits=None)
        safe = name.replace(".", "__")
        assignments = arrays[f"{safe}__assignments"].astype(
            assignment_dtype(codebooks[cb_name].k))

        mask = None
        if config.store_mask:
            lut = MaskLUT(config.n_keep, config.m)
            mask = lut.decode_mask(arrays[f"{safe}__mask_codes"].astype(np.int64), config.d)

        from repro.core.grouping import group_weight

        original_grouped = group_weight(modules[name].weight.value, config.d, config.strategy)
        layers[name] = CompressedLayer(
            name=name, weight_shape=tuple(info["weight_shape"]), config=config,
            codebook=codebooks[cb_name], assignments=assignments, mask=mask,
            original_grouped=original_grouped,
        )
    return CompressedModel(model, layers, crosslayer=manifest["crosslayer"])


def compressed_file_size_bytes(path: Union[str, Path]) -> int:
    """On-disk size of a saved compressed model."""
    return Path(path).stat().st_size


# -- the zero-copy serving form ------------------------------------------------
# The shared-memory serving arena (repro.serve.shm) stores the same artefacts
# as the .npz archive but in the exact dtypes the decode-free engines consume
# (float64 effective codewords, narrowest-width integer assignments — uint8
# for k <= 256 — and bool masks), so a worker process attaching the arena
# builds its CentroidEngines directly on the shared views — np.asarray at
# matching dtype is a no-op, zero bytes copied.

def serving_arrays(compressed: CompressedModel):
    """``(manifest, arrays)`` of a compressed model in serving form.

    ``arrays`` maps names to the read-only state the compressed-domain
    engines need — deduplicated effective codebooks, narrow-width integer
    assignments and decoded boolean masks; ``manifest`` is the JSON-able
    layer table (the
    same layer-config wire schema as the ``.npz`` archive) that
    :func:`layers_from_serving_arrays` inverts.
    """
    arrays: Dict[str, np.ndarray] = {}
    manifest = {"crosslayer": compressed.crosslayer, "layers": {}}
    codebook_ids: Dict[int, str] = {}
    for state in compressed:
        key = id(state.codebook)
        if key not in codebook_ids:
            cb_name = f"codebook_{len(codebook_ids)}"
            codebook_ids[key] = cb_name
            arrays[cb_name] = np.ascontiguousarray(
                state.codebook.effective_codewords(), dtype=np.float64)
        safe = state.name.replace(".", "__")
        arrays[f"{safe}__assignments"] = np.ascontiguousarray(
            state.assignments, dtype=assignment_dtype(state.codebook.k))
        has_mask = bool(state.config.store_mask and state.mask is not None)
        if has_mask:
            arrays[f"{safe}__mask"] = np.ascontiguousarray(
                state.mask, dtype=bool)
        manifest["layers"][state.name] = {
            "weight_shape": list(state.weight_shape),
            "config": layer_config_to_dict(state.config),
            "codebook": codebook_ids[key],
            "mask": f"{safe}__mask" if has_mask else None,
        }
    return manifest, arrays


def layers_from_serving_arrays(manifest: Dict,
                               arrays: Dict[str, np.ndarray]
                               ) -> Dict[str, CompressedLayer]:
    """Rebuild the per-layer compressed state from serving-form arrays.

    The inverse of :func:`serving_arrays`.  Codebooks, assignments and masks
    are adopted as-is (views stay views — this is what makes worker-process
    attach zero-copy); ``original_grouped`` is ``None`` since no dense model
    backs a serving artifact.
    """
    codebooks: Dict[str, Codebook] = {}
    layers: Dict[str, CompressedLayer] = {}
    for name, info in manifest["layers"].items():
        config = layer_config_from_dict(info["config"])
        cb_name = info["codebook"]
        if cb_name not in codebooks:
            codebooks[cb_name] = Codebook(arrays[cb_name], bits=None)
        safe = name.replace(".", "__")
        mask = arrays[info["mask"]] if info.get("mask") else None
        layers[name] = CompressedLayer(
            name=name, weight_shape=tuple(info["weight_shape"]), config=config,
            codebook=codebooks[cb_name],
            assignments=arrays[f"{safe}__assignments"], mask=mask,
        )
    return layers


#: array-name prefix of non-compressed model state in a serving arena
STATE_PREFIX = "state::"

#: array-name prefix of engine-derived state (effective-codeword tables,
#: LUT routing tables, per-dtype caches) in a serving arena.  Shipping these
#: means spawned workers adopt the warmed engines' tables zero-copy instead
#: of rebuilding them per process — and a pinned LUT mode survives the trip.
DERIVED_PREFIX = "derived::"


def derived_serving_arrays(model: Module, compressed: CompressedModel):
    """``(derived_meta, arrays)`` of a serving model's engine-derived state.

    Walks the compressed layers of an already-swapped (and ideally warmed)
    serving ``model``; for each layer with a
    :class:`~repro.nn.compressed.CentroidEngine` exports its
    :meth:`derived_arrays` under ``derived::<layer>::<name>`` keys plus a
    JSON-able per-layer record of the resolved execution mode and the
    quantized-activation alphabet.  Models without engines (e.g. the
    original dense model) yield ``({}, {})`` — derived shipping is purely
    opportunistic.
    """
    modules = dict(model.named_modules())
    derived_meta: Dict[str, Dict] = {}
    arrays: Dict[str, np.ndarray] = {}
    for name in compressed.layers:
        module = modules.get(name)
        engine = getattr(module, "engine", None)
        if engine is None:
            continue
        safe = name.replace(".", "__")
        for arr_name, arr in engine.derived_arrays().items():
            arrays[f"{DERIVED_PREFIX}{safe}::{arr_name}"] = arr
        derived_meta[name] = {"mode": engine.mode,
                              "act_levels": int(engine.act_levels)}
    return derived_meta, arrays


def serving_state_arrays(model: Module,
                         compressed: CompressedModel) -> Dict[str, np.ndarray]:
    """The non-compressed state a serving replica needs, keyed by state-dict
    name: every parameter except the compressed layers' dense weights (those
    live in the codebook + assignment arrays) plus all buffers.

    Works on the live model before *or* after its compressed-module swap —
    post-swap models simply no longer expose the dropped weights.
    """
    dropped = {f"{name}.weight" for name in compressed.layers}
    state: Dict[str, np.ndarray] = {}
    for key, param in model.named_parameters():
        if key not in dropped:
            state[key] = param.value
    for key, buf in model.named_buffers():
        state[key] = np.asarray(buf)
    return state
