"""Storage accounting: compression ratio (Eq. 7) and mask LUT encoding.

The compressed representation has three parts:

* assignments  — ``ceil(log2 k)`` bits per subvector;
* masks        — an N:M block admits only ``C(M, N)`` keep patterns, so a
  look-up table reduces mask storage from 1 bit/weight to
  ``ceil(log2 C(M, N)) / M`` bits per weight (Section 5);
* codebook     — ``k * d * q_c`` bits.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np


def assignment_bits(num_subvectors: int, k: int) -> int:
    """b_a = ceil(log2 k) * N_G."""
    if k < 1 or num_subvectors < 0:
        raise ValueError("invalid assignment parameters")
    return int(math.ceil(math.log2(max(k, 2)))) * num_subvectors


def codebook_bits(k: int, d: int, qc: int = 8) -> int:
    """b_c = k * d * q_c."""
    return k * d * qc


def mask_bits_per_weight(n_keep: int, m: int) -> float:
    """ceil(log2 C(M, N)) / M bits per weight for LUT-encoded N:M masks."""
    combos = math.comb(m, n_keep)
    return math.ceil(math.log2(max(combos, 2))) / m


def mask_bits(num_weights: int, n_keep: int, m: int) -> int:
    """Total LUT-encoded mask storage in bits for ``num_weights`` weights."""
    return int(math.ceil(mask_bits_per_weight(n_keep, m) * num_weights))


@dataclass(frozen=True)
class CompressionSpec:
    """Parameters that define one compressed weight block."""

    k: int                    # codewords
    d: int                    # subvector length
    n_keep: int               # N of N:M (kept weights per group)
    m: int                    # M of N:M
    codebook_bits: int = 8    # q_c
    weight_bits: int = 32     # b_f, bits of the original full-precision weight

    def __post_init__(self):
        if self.d % self.m != 0:
            raise ValueError(f"d={self.d} must be a multiple of M={self.m}")
        if not 0 < self.n_keep <= self.m:
            raise ValueError("need 0 < N <= M")

    @property
    def sparsity(self) -> float:
        return 1.0 - self.n_keep / self.m

    def bits_per_weight(self, num_subvectors: int, store_mask: bool = True,
                        count_codebook: bool = True) -> float:
        total = self.total_bits(num_subvectors, store_mask, count_codebook)
        return total / (num_subvectors * self.d)

    def total_bits(self, num_subvectors: int, store_mask: bool = True,
                   count_codebook: bool = True) -> float:
        num_weights = num_subvectors * self.d
        total = assignment_bits(num_subvectors, self.k)
        if store_mask:
            total += mask_bits(num_weights, self.n_keep, self.m)
        if count_codebook:
            total += codebook_bits(self.k, self.d, self.codebook_bits)
        return total


def compression_ratio(spec: CompressionSpec, num_subvectors: int,
                      store_mask: bool = True, count_codebook: bool = True) -> float:
    """Eq. 7: (N_G * d * b_f) / (b_a + b_m + b_c)."""
    uncompressed = num_subvectors * spec.d * spec.weight_bits
    compressed = spec.total_bits(num_subvectors, store_mask, count_codebook)
    return uncompressed / compressed


class MaskLUT:
    """Look-up table between N:M block masks and compact indices.

    The accelerator's weight loader stores ``ceil(log2 C(M,N))`` bits per
    M-element block and expands them to a d-bit sparse mask with this LUT
    before the AND-gate weight reconstruction (Section 5.2).
    """

    def __init__(self, n_keep: int, m: int):
        if not 0 < n_keep <= m:
            raise ValueError("need 0 < N <= M")
        self.n_keep = n_keep
        self.m = m
        self._patterns: Tuple[Tuple[int, ...], ...] = tuple(
            itertools.combinations(range(m), n_keep)
        )
        self._index_of: Dict[Tuple[int, ...], int] = {
            pattern: idx for idx, pattern in enumerate(self._patterns)
        }

    @property
    def num_patterns(self) -> int:
        return len(self._patterns)

    @property
    def index_bits(self) -> int:
        return int(math.ceil(math.log2(max(self.num_patterns, 2))))

    def encode_block(self, mask_block: np.ndarray) -> int:
        """Compact index of one M-element boolean keep-mask."""
        mask_block = np.asarray(mask_block, dtype=bool)
        if mask_block.shape != (self.m,):
            raise ValueError(f"expected a mask of length {self.m}")
        kept = tuple(int(i) for i in np.flatnonzero(mask_block))
        if len(kept) != self.n_keep:
            raise ValueError(
                f"mask keeps {len(kept)} weights, expected exactly {self.n_keep}"
            )
        return self._index_of[kept]

    def decode_block(self, index: int) -> np.ndarray:
        """Boolean keep-mask for a compact index."""
        if not 0 <= index < self.num_patterns:
            raise ValueError(f"index {index} out of range [0, {self.num_patterns})")
        mask = np.zeros(self.m, dtype=bool)
        mask[list(self._patterns[index])] = True
        return mask

    def encode_mask(self, mask: np.ndarray) -> np.ndarray:
        """Encode a (N_G, d) keep-mask into per-block indices (N_G, d/M)."""
        mask = np.asarray(mask, dtype=bool)
        n_groups, d = mask.shape
        if d % self.m != 0:
            raise ValueError("mask width must be a multiple of M")
        blocks = mask.reshape(n_groups, d // self.m, self.m)
        out = np.empty((n_groups, d // self.m), dtype=np.int64)
        for i in range(n_groups):
            for j in range(d // self.m):
                out[i, j] = self.encode_block(blocks[i, j])
        return out

    def decode_mask(self, indices: np.ndarray, d: int) -> np.ndarray:
        """Expand per-block indices back into a (N_G, d) boolean keep-mask."""
        indices = np.asarray(indices, dtype=np.int64)
        n_groups, blocks_per_vec = indices.shape
        if blocks_per_vec * self.m != d:
            raise ValueError("index matrix incompatible with requested width d")
        patterns = np.zeros((self.num_patterns, self.m), dtype=bool)
        for idx, pattern in enumerate(self._patterns):
            patterns[idx, list(pattern)] = True
        return patterns[indices].reshape(n_groups, d)
