"""The MVQ compression pipeline over whole models (Fig. 2).

:class:`MVQCompressor` walks a model's convolution/linear layers, groups and
prunes their weights, runs (masked) k-means layerwise or crosslayer,
quantizes the codebooks and returns a :class:`CompressedModel` that can
reconstruct weights, report storage/compression-ratio numbers and write the
reconstructed weights back into the network.

The same class also produces the ablation variants of Table 3 through the
``prune`` / ``use_masked_kmeans`` / ``store_mask`` switches:

========  ======  =================  ===========  ==========================
Case      prune   use_masked_kmeans  store_mask   description
========  ======  =================  ===========  ==========================
A         False   False              False        dense weights, common k-means
B         True    False              False        sparse weights, dense reconstruct
C         True    False              True         sparse weights, sparse reconstruct
D (MVQ)   True    True               True         the paper's method
========  ======  =================  ===========  ==========================
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
import zlib
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.core import precision
from repro.core.codebook import Codebook
from repro.core.grouping import GroupingStrategy, compatible_d, group_weight
from repro.core.kmeans import kmeans
from repro.core.masked_kmeans import masked_kmeans
from repro.core.metrics import ClusteringReport, clustering_report
from repro.core.pruning import apply_mask, nm_prune_mask
from repro.core.reconstruct import reconstruct_grouped, reconstruct_weight
from repro.core.storage import CompressionSpec, compression_ratio
from repro.nn.layers import Conv2d, Linear
from repro.nn.module import Module


#: recognised values of ``MVQCompressor(parallel_backend=...)``
PARALLEL_BACKENDS = ("auto", "thread", "process")

#: clustering work (subvectors x iterations) above which ``"auto"`` prefers
#: real processes over threads: below this the fork/pickle overhead dominates,
#: above it the GIL-holding portions of the numpy path do
_PROCESS_BACKEND_WORK_THRESHOLD = 2_000_000


def _available_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # platforms without CPU affinity (macOS, Windows)
        return os.cpu_count() or 1


def _cluster_layer_task(args):
    """Cluster one prepared layer; top-level so process pools can pickle it.

    The worker re-applies the caller's precision policy explicitly: child
    processes inherit only the environment defaults, not scoped
    ``precision(...)`` overrides active in the parent.
    """
    pruned, mask, cfg, seed, dtype_name, block_bytes = args
    with precision.precision(dtype_name, block_bytes):
        if cfg.use_masked_kmeans:
            return masked_kmeans(pruned, mask, cfg.k, cfg.max_kmeans_iterations,
                                 seed=seed)
        return kmeans(pruned, cfg.k, cfg.max_kmeans_iterations, seed=seed)


@dataclass
class LayerCompressionConfig:
    """Compression hyper-parameters for one layer (or the whole model)."""

    k: int = 256
    d: int = 8
    n_keep: int = 2
    m: int = 8
    codebook_bits: int = 8
    weight_bits: int = 32
    strategy: GroupingStrategy = GroupingStrategy.OUTPUT
    prune: bool = True
    use_masked_kmeans: bool = True
    store_mask: bool = True
    max_kmeans_iterations: int = 60
    seed: int = 0

    def spec(self) -> CompressionSpec:
        return CompressionSpec(
            k=self.k, d=self.d, n_keep=self.n_keep, m=self.m,
            codebook_bits=self.codebook_bits, weight_bits=self.weight_bits,
        )


# -- the layer-config wire schema ---------------------------------------------
# Single source of truth for LayerCompressionConfig (de)serialization: the
# .npz manifest (repro.core.serialization) and the declarative pipeline
# config (repro.pipeline.config) both use these two functions, so the
# archive format and the pipeline schema cannot drift apart.

_LAYER_CONFIG_FIELDS = {f.name for f in dataclasses.fields(LayerCompressionConfig)}


def layer_config_to_dict(config: LayerCompressionConfig) -> Dict:
    """Full JSON-able dict of one :class:`LayerCompressionConfig`."""
    data = dataclasses.asdict(config)
    data["strategy"] = config.strategy.value
    return data


def layer_config_from_dict(data, base: Optional[LayerCompressionConfig] = None
                           ) -> LayerCompressionConfig:
    """Rebuild a :class:`LayerCompressionConfig` from a (possibly partial) dict.

    Missing fields fall back to ``base`` (or the dataclass defaults), which
    keeps pre-schema ``.npz`` manifests — written without
    ``max_kmeans_iterations``/``seed`` — loadable, and lets pipeline
    overrides specify only the fields they change.  Unknown keys are an
    error so config typos fail loudly.
    """
    unknown = set(data) - _LAYER_CONFIG_FIELDS
    if unknown:
        raise ValueError(
            f"unknown LayerCompressionConfig fields {sorted(unknown)}; "
            f"expected a subset of {sorted(_LAYER_CONFIG_FIELDS)}")
    fields = dict(data)
    if "strategy" in fields and not isinstance(fields["strategy"], GroupingStrategy):
        fields["strategy"] = GroupingStrategy(fields["strategy"])
    if base is None:
        return LayerCompressionConfig(**fields)
    return replace(base, **fields)


@dataclass
class CompressedLayer:
    """Compressed state of one layer: codebook + assignments + mask."""

    name: str
    weight_shape: Tuple[int, ...]
    config: LayerCompressionConfig
    codebook: Codebook
    assignments: np.ndarray
    mask: Optional[np.ndarray]
    #: the pre-compression grouped weights, kept for SSE reporting only.
    #: ``None`` for layers rebuilt from a serving artifact (shared-memory
    #: arena, ``.npz`` without a live dense model) — reconstruction and the
    #: decode-free engines never need it.
    original_grouped: Optional[np.ndarray] = field(default=None, repr=False)

    @property
    def num_subvectors(self) -> int:
        return int(self.assignments.shape[0])

    def reconstruct_grouped(self) -> np.ndarray:
        mask = self.mask if self.config.store_mask else None
        return reconstruct_grouped(self.codebook, self.assignments, mask)

    def reconstruct_weight(self) -> np.ndarray:
        mask = self.mask if self.config.store_mask else None
        return reconstruct_weight(self.codebook, self.assignments, self.weight_shape,
                                  self.config.d, mask, self.config.strategy)

    def report(self) -> ClusteringReport:
        if self.original_grouped is None:
            raise ValueError(
                f"layer {self.name!r} has no original_grouped weights "
                "(rebuilt from a serving artifact); SSE reporting needs the "
                "pre-compression weights")
        mask = self.mask if self.mask is not None else np.ones_like(self.original_grouped, dtype=bool)
        return clustering_report(self.original_grouped, self.reconstruct_grouped(), mask)

    def sparsity(self) -> float:
        if self.mask is None or not self.config.store_mask:
            return 0.0
        return float(1.0 - self.mask.mean())


class CompressedModel:
    """Holds every compressed layer plus shared (crosslayer) codebooks."""

    def __init__(self, model: Module, layers: Dict[str, CompressedLayer],
                 crosslayer: bool = False):
        self.model = model
        self.layers = layers
        self.crosslayer = crosslayer

    def __iter__(self):
        return iter(self.layers.values())

    def __len__(self) -> int:
        return len(self.layers)

    def apply_to_model(self) -> None:
        """Write reconstructed weights into the underlying network."""
        modules = dict(self.model.named_modules())
        for name, state in self.layers.items():
            modules[name].weight.copy_(state.reconstruct_weight())

    def compression_ratio(self, count_codebook: bool = True) -> float:
        """Weighted-average compression ratio over all compressed layers (Eq. 7)."""
        uncompressed = 0.0
        compressed = 0.0
        codebooks_seen = set()
        for state in self.layers.values():
            spec = state.config.spec()
            num_weights = state.num_subvectors * spec.d
            uncompressed += num_weights * spec.weight_bits
            compressed += spec.total_bits(state.num_subvectors,
                                          store_mask=state.config.store_mask,
                                          count_codebook=False)
            if count_codebook and id(state.codebook) not in codebooks_seen:
                codebooks_seen.add(id(state.codebook))
                compressed += state.codebook.storage_bits(spec.codebook_bits)
        return uncompressed / max(compressed, 1.0)

    def sparsity(self) -> float:
        """Fraction of pruned weights among compressed layers."""
        pruned = 0.0
        total = 0.0
        for state in self.layers.values():
            n = state.num_subvectors * state.config.d
            pruned += state.sparsity() * n
            total += n
        return pruned / max(total, 1.0)

    def sse_report(self) -> Dict[str, ClusteringReport]:
        return {name: state.report() for name, state in self.layers.items()}

    def total_sse(self) -> float:
        return float(sum(r.total_sse for r in self.sse_report().values()))

    def mask_sse(self) -> float:
        return float(sum(r.mask_sse for r in self.sse_report().values()))

    def sparsity_by_layer(self) -> Dict[str, float]:
        return {name: state.sparsity() for name, state in self.layers.items()}

    def swap_into_model(self, mode: str = "auto", cost_model=None) -> Dict[str, Module]:
        """Replace the underlying model's compressed layers with decode-free
        compressed-domain modules (:mod:`repro.nn.compressed`) in place.

        Works for any :class:`CompressedModel` — including one rebuilt from
        an ``.npz`` archive by :func:`repro.core.serialization.load_compressed_model`
        — so serialized artifacts can be served without re-running
        compression.  Returns the mapping of layer names to new modules.
        """
        # imported lazily: repro.nn.compressed depends on repro.core
        from repro.nn.compressed import swap_to_compressed

        return swap_to_compressed(self.model, self, mode=mode, cost_model=cost_model)


class MVQCompressor:
    """Runs the MVQ pipeline (group -> prune -> cluster -> quantize) on a model."""

    def __init__(self, config: LayerCompressionConfig,
                 per_layer_overrides: Optional[Dict[str, LayerCompressionConfig]] = None,
                 crosslayer: bool = False,
                 skip_layers: Optional[Iterable[str]] = None,
                 quantize_codebook: bool = True,
                 include_linear: bool = False,
                 workers: Optional[int] = None,
                 decorrelate_seeds: bool = False,
                 parallel_backend: str = "auto"):
        self.config = config
        self.per_layer_overrides = per_layer_overrides or {}
        self.crosslayer = crosslayer
        self.skip_layers = set(skip_layers or [])
        self.quantize_codebook = quantize_codebook
        self.include_linear = include_linear
        if workers is not None and workers < 1:
            raise ValueError("workers must be >= 1")
        if parallel_backend not in PARALLEL_BACKENDS:
            raise ValueError(
                f"parallel_backend must be one of {PARALLEL_BACKENDS}, "
                f"got {parallel_backend!r}")
        self.workers = workers
        self.decorrelate_seeds = decorrelate_seeds
        self.parallel_backend = parallel_backend

    # -- layer selection -----------------------------------------------------
    def compressible_layers(self, model: Module) -> List[Tuple[str, Module]]:
        """Conv (and optionally Linear) layers whose shape fits the grouping."""
        selected = []
        for name, mod in model.named_modules():
            if name in self.skip_layers:
                continue
            cfg = self.per_layer_overrides.get(name, self.config)
            if isinstance(mod, Conv2d) and not mod.depthwise:
                if compatible_d(mod.weight.shape, cfg.d, cfg.strategy):
                    selected.append((name, mod))
            elif self.include_linear and isinstance(mod, Linear):
                if compatible_d(mod.weight.shape, cfg.d, cfg.strategy):
                    selected.append((name, mod))
        return selected

    # -- stage-sized building blocks -------------------------------------------
    # Each of these is one named stage of the declarative pipeline
    # (repro.pipeline.stages); compress() is their canonical composition.

    def layer_config(self, name: str) -> LayerCompressionConfig:
        """Effective config of one layer (override or the global default)."""
        return self.per_layer_overrides.get(name, self.config)

    def group_layer(self, weight: np.ndarray, cfg: LayerCompressionConfig) -> np.ndarray:
        """``group`` stage for one weight tensor: (N_G, d) subvectors."""
        return group_weight(weight, cfg.d, cfg.strategy)

    def prune_grouped(self, grouped: np.ndarray, cfg: LayerCompressionConfig
                      ) -> Tuple[np.ndarray, np.ndarray]:
        """``prune`` stage for one grouped layer: (mask, pruned data)."""
        if cfg.prune:
            mask = nm_prune_mask(grouped, cfg.n_keep, cfg.m)
            return mask, apply_mask(grouped, mask)
        return np.ones_like(grouped, dtype=bool), grouped

    def prepare_layers(self, targets) -> Dict[str, Tuple]:
        """Group + prune every target: ``{name: (cfg, grouped, pruned, mask)}``."""
        prepared = {}
        for name, mod in targets:
            cfg = self.layer_config(name)
            grouped = self.group_layer(mod.weight.value, cfg)
            mask, pruned = self.prune_grouped(grouped, cfg)
            prepared[name] = (cfg, grouped, pruned, mask)
        return prepared

    def _layer_seed(self, name: str, cfg: LayerCompressionConfig) -> int:
        """Deterministic clustering seed for one layer.

        By default every layer uses ``cfg.seed`` verbatim (the seed
        implementation's behaviour, and invariant under execution order).
        With ``decorrelate_seeds`` the layer name is mixed in so layers do
        not all draw the same init indices — still a pure function of
        (config, name), so the parallel and sequential paths are identical.
        """
        if self.decorrelate_seeds:
            return (cfg.seed + zlib.crc32(name.encode("utf-8"))) % (2**32)
        return cfg.seed

    def _cluster(self, data: np.ndarray, mask: np.ndarray,
                 cfg: LayerCompressionConfig, seed: Optional[int] = None):
        seed = cfg.seed if seed is None else seed
        # single dispatch site: the crosslayer path runs the same task the
        # layer-wise pools do, under the caller's current precision policy
        return _cluster_layer_task((data, mask, cfg, seed,
                                    str(precision.compute_dtype()),
                                    precision.distance_block_bytes()))

    # -- public API ------------------------------------------------------------
    def compress(self, model: Module) -> CompressedModel:
        """Compress every eligible layer and return the compressed model.

        This runs the canonical stage composition ``group -> prune ->
        cluster -> quantize`` of :mod:`repro.pipeline` — the declarative
        pipeline and this imperative API are the same code path, so a JSON
        :class:`~repro.pipeline.config.PipelineConfig` describing this
        compressor reproduces the result bit-identically.
        """
        # imported lazily: repro.pipeline depends on repro.core
        from repro.pipeline.runner import run_compression_stages

        return run_compression_stages(self, model)

    def export_compressed_model(self, model: Module, mode: str = "auto",
                                cost_model=None) -> CompressedModel:
        """Compress ``model`` and convert it in place to compressed modules.

        Every compressed Conv2d/Linear is replaced by its decode-free
        counterpart (:mod:`repro.nn.compressed`), so subsequent forwards
        serve directly from ``(codebook, assignments, mask)`` instead of a
        reconstructed dense weight.  ``mode`` and ``cost_model`` configure
        the per-layer execution-path selection.  Returns the
        :class:`CompressedModel` (whose layer states the new modules share).
        """
        # imported lazily: repro.nn.compressed depends on repro.core
        from repro.nn.compressed import swap_to_compressed

        compressed = self.compress(model)
        swap_to_compressed(model, compressed, mode=mode, cost_model=cost_model)
        return compressed

    def _effective_workers(self, num_layers: int) -> int:
        """Worker count actually worth using: parallelism beyond the CPUs
        this process may run on (or the layer count) only adds contention —
        the root cause of thread pools *losing* to sequential runs."""
        if not self.workers:
            return 1
        return max(1, min(self.workers, num_layers, _available_cpus()))

    def _choose_backend(self, tasks) -> str:
        if self.parallel_backend != "auto":
            return self.parallel_backend
        # never auto-select processes under a spawn start method: spawned
        # workers re-import __main__, which breaks unguarded user scripts
        # that were fine with the historical thread pool (explicitly
        # requesting parallel_backend="process" remains available).
        # allow_none probing keeps the caller free to set_start_method()
        # later; None means unset, whose platform default leads
        # get_all_start_methods().
        start_method = multiprocessing.get_start_method(allow_none=True)
        if start_method is None:
            start_method = multiprocessing.get_all_start_methods()[0]
        if start_method != "fork":
            return "thread"
        work = sum(task[0].shape[0] * task[2].max_kmeans_iterations
                   for task in tasks)
        return "process" if work >= _PROCESS_BACKEND_WORK_THRESHOLD else "thread"

    def cluster_layerwise(self, targets, prepared,
                          subset: Optional[Iterable[str]] = None) -> Dict[str, "object"]:
        """``cluster`` stage, layerwise: independent k-means per layer,
        optionally across a worker pool.

        Per-layer runs share no state and use deterministic per-layer seeds
        (:meth:`_layer_seed`), so every parallel path — and any ``subset``
        of layers, which is how the pipeline's artifact cache re-clusters
        only invalidated layers — is bit-identical to a sequential full
        run.  Three backends:

        * ``"thread"`` — cheap, parallel only in the GIL-releasing BLAS
          and bincount portions of the clustering kernels;
        * ``"process"`` — a fork-based pool with the caller's precision
          policy shipped to each worker, parallel across the whole kernel;
        * ``"auto"`` — processes for coarse work, threads for small runs
          where fork/pickle overhead would dominate.

        Layers are scheduled largest-first so one big trailing layer does
        not serialise the tail of the pool (classic makespan reduction),
        and the worker count is capped at the CPUs actually available.
        Returns ``{layer name: KMeansResult}``.
        """
        wanted = None if subset is None else set(subset)
        names = [name for name, _ in targets if wanted is None or name in wanted]
        dtype_name = str(precision.compute_dtype())
        block_bytes = precision.distance_block_bytes()
        tasks = []
        for name in names:
            cfg, _, pruned, mask = prepared[name]
            tasks.append((pruned, mask, cfg, self._layer_seed(name, cfg),
                          dtype_name, block_bytes))

        workers = self._effective_workers(len(names))
        if workers > 1:
            order = sorted(range(len(tasks)),
                           key=lambda i: tasks[i][0].shape[0], reverse=True)
            backend = self._choose_backend(tasks)
            pool_cls = (ProcessPoolExecutor if backend == "process"
                        else ThreadPoolExecutor)
            results: List = [None] * len(tasks)
            with pool_cls(max_workers=workers) as pool:
                futures = {i: pool.submit(_cluster_layer_task, tasks[i])
                           for i in order}
                for i, future in futures.items():
                    results[i] = future.result()
        else:
            results = [_cluster_layer_task(task) for task in tasks]
        return dict(zip(names, results))

    def stack_prepared(self, targets, prepared):
        """Concatenate every layer's pruned data and mask for crosslayer
        clustering: ``(stacked, stacked_mask, boundaries)`` with boundaries
        the ``(name, start, end)`` row ranges of each layer."""
        base_cfg = self.config
        all_pruned = []
        all_masks = []
        boundaries = []
        offset = 0
        for name, _ in targets:
            cfg, _, pruned, mask = prepared[name]
            if cfg.d != base_cfg.d:
                raise ValueError("crosslayer clustering requires a single d for all layers")
            all_pruned.append(pruned)
            all_masks.append(mask)
            boundaries.append((name, offset, offset + pruned.shape[0]))
            offset += pruned.shape[0]
        return (np.concatenate(all_pruned, axis=0),
                np.concatenate(all_masks, axis=0), boundaries)

    def cluster_crosslayer(self, targets, prepared, stacked=None,
                           stacked_mask=None):
        """``cluster`` stage, crosslayer: one shared codebook for all layers.

        ``stacked``/``stacked_mask`` may be passed when the caller already
        built them (e.g. to hash for the artifact cache), avoiding a second
        concatenation of the whole compressible weight set.  Returns
        ``(KMeansResult, boundaries)``.
        """
        if stacked is None or stacked_mask is None:
            stacked, stacked_mask, boundaries = self.stack_prepared(targets, prepared)
        else:
            offset = 0
            boundaries = []
            for name, _ in targets:
                end = offset + prepared[name][2].shape[0]
                boundaries.append((name, offset, end))
                offset = end
        return self._cluster(stacked, stacked_mask, self.config), boundaries

    def assemble_layerwise(self, targets, prepared, results) -> Dict[str, CompressedLayer]:
        """Build per-layer :class:`CompressedLayer` states from clustering
        results (codebooks still unquantized — that is the next stage)."""
        layers: Dict[str, CompressedLayer] = {}
        for name, mod in targets:
            cfg, grouped, _, mask = prepared[name]
            result = results[name]
            layers[name] = CompressedLayer(
                name=name, weight_shape=mod.weight.shape, config=cfg,
                codebook=Codebook(result.codewords), assignments=result.assignments,
                mask=mask, original_grouped=grouped,
            )
        return layers

    def assemble_crosslayer(self, targets, prepared, result) -> Dict[str, CompressedLayer]:
        """Split one shared clustering result back into per-layer states
        (all sharing a single, still-unquantized codebook object)."""
        codebook = Codebook(result.codewords)
        layers: Dict[str, CompressedLayer] = {}
        offset = 0
        for name, mod in targets:
            cfg, grouped, pruned, mask = prepared[name]
            end = offset + pruned.shape[0]
            layers[name] = CompressedLayer(
                name=name, weight_shape=mod.weight.shape, config=cfg,
                codebook=codebook, assignments=result.assignments[offset:end],
                mask=mask, original_grouped=grouped,
            )
            offset = end
        return layers

    def quantize_codebooks(self, compressed: CompressedModel) -> int:
        """``quantize`` stage: int8(+LSQ) quantize every distinct codebook.

        A no-op when the compressor was built with ``quantize_codebook=False``.
        The crosslayer codebook is shared, so it is quantized once with the
        global config's bits (per-layer bits apply in the layerwise case).
        Returns the number of codebooks quantized.
        """
        if not self.quantize_codebook:
            return 0
        seen = set()
        for state in compressed:
            key = id(state.codebook)
            if key in seen:
                continue
            seen.add(key)
            bits = (self.config.codebook_bits if compressed.crosslayer
                    else state.config.codebook_bits)
            state.codebook.quantize_(bits)
        return len(seen)

    # -- convenience constructors ---------------------------------------------
    @classmethod
    def ablation_case(cls, case: str, config: LayerCompressionConfig, **kwargs) -> "MVQCompressor":
        """Compressor configured as one of Table 3's cases A/B/C/D."""
        case = case.upper()
        if case == "A":
            cfg = replace(config, prune=False, use_masked_kmeans=False, store_mask=False)
        elif case == "B":
            cfg = replace(config, prune=True, use_masked_kmeans=False, store_mask=False)
        elif case == "C":
            cfg = replace(config, prune=True, use_masked_kmeans=False, store_mask=True)
        elif case == "D":
            cfg = replace(config, prune=True, use_masked_kmeans=True, store_mask=True)
        else:
            raise ValueError(f"unknown ablation case {case!r}; expected A, B, C or D")
        return cls(cfg, **kwargs)
