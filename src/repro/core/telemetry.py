"""Zero-dependency tracing + metrics for the whole stack.

One process-global :class:`Tracer` (installed with :func:`enable` /
:func:`tracing`) collects **hierarchical spans** — context-manager or
decorator API, monotonic ``perf_counter`` timestamps, a thread-local
parent stack, explicit attributes — plus a process-global
**counter/gauge registry** and **instant events** (fault injections,
retries, quarantines).  Finished records land in a bounded in-memory
buffer and export two ways:

* **Chrome trace-event JSON** (:meth:`Tracer.export_chrome`) — loadable
  in Perfetto / ``chrome://tracing``, one track per thread and one
  process group per worker process;
* **JSONL** (:meth:`Tracer.export_jsonl`) — one record per line for
  ad-hoc grepping and downstream tooling.

Disabled (the default) the instrumentation follows the same guarded
fast path as :func:`repro.core.faults.fault_point`: one module-global
load and an ``is None`` test, returning the shared no-op span — no
allocation, gated by ``benchmarks/perf/bench_telemetry``.  Hot call
sites that want to attach attributes should branch on
:func:`active_tracer` so the attribute dict is never built while
tracing is off::

    tracer = telemetry.active_tracer()
    with tracer.span("serve.batch", {"size": n}) if tracer else telemetry.NOOP:
        ...

Cross-process traces: a worker process enables its own tracer, records
spans against its own ``perf_counter`` clock and ships the drained
records over the existing IPC channel; the parent fits a clock offset
from the request/reply windows it observed (:func:`fit_clock_offset`)
and merges the corrected records (:meth:`Tracer.merge`) so a sharded
request renders as one tree across processes — each parent-side IPC
window is guaranteed to enclose its worker-side span.
"""

from __future__ import annotations

import functools
import itertools
import json
import os
import threading
import time
from collections import deque
from contextlib import contextmanager
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

__all__ = [
    "NOOP",
    "SPAN_POINTS",
    "EVENT_POINTS",
    "Span",
    "Tracer",
    "active_tracer",
    "counter_add",
    "current_span",
    "disable",
    "enable",
    "enabled",
    "event",
    "fit_clock_offset",
    "format_summary",
    "gauge_set",
    "quantile",
    "record_span",
    "register_event_point",
    "register_span_point",
    "span",
    "timed_span",
    "traced",
    "tracing",
    "validate_chrome_trace",
]


# ---------------------------------------------------------------------------
# quantiles (the one shared interpolated-percentile implementation)
# ---------------------------------------------------------------------------

def quantile(values: Sequence[float], q: float) -> float:
    """The ``q``-quantile (``q`` in [0, 1]) by linear interpolation.

    Matches ``np.percentile(values, q * 100)`` exactly (same
    lower+frac*(upper-lower) interpolation over the sorted data) without
    paying an array conversion for a handful of floats — this is the one
    quantile implementation shared by :mod:`repro.serve.metrics` and the
    benchmark harness.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"q must be in [0, 1], got {q}")
    if not values:
        return 0.0
    data = sorted(values)
    if len(data) == 1:
        return float(data[0])
    pos = (len(data) - 1) * q
    lo = int(pos)
    hi = min(lo + 1, len(data) - 1)
    frac = pos - lo
    return float(data[lo] * (1.0 - frac) + data[hi] * frac)


# ---------------------------------------------------------------------------
# the span/event point registries (documentary, like faults.FAULT_POINTS)
# ---------------------------------------------------------------------------

#: span name (or pattern) -> what the span measures.  Purely documentary —
#: span() does not validate against it on the hot path — but the README
#: "Observability" table and tests are generated from it.
SPAN_POINTS: Dict[str, str] = {}

#: instant-event name -> what firing it means.
EVENT_POINTS: Dict[str, str] = {}


def register_span_point(name: str, description: str) -> str:
    SPAN_POINTS[name] = description
    return name


def register_event_point(name: str, description: str) -> str:
    EVENT_POINTS[name] = description
    return name


register_span_point("pipeline.stage.<name>",
                    "one pipeline stage (group/prune/cluster/...); stage "
                    "event detail is attached as span attributes")
register_span_point("pipeline.cluster.kmeans",
                    "the fresh (non-cached) k-means work of the cluster "
                    "stage, with the clustered layer list")
register_span_point("pipeline.serve_eval.forward",
                    "the compressed-domain batched forward of serve_eval — "
                    "the stage report's throughput derives from this span")
register_span_point("serve.request",
                    "one request, enqueue to completion, on the submitting "
                    "thread's track")
register_span_point("serve.request.queue_wait",
                    "enqueue until a worker popped the request's batch")
register_span_point("serve.request.execute",
                    "batch pop until the request's result was set")
register_span_point("serve.batch",
                    "one coalesced batch on a worker thread: assembly + "
                    "forward + scatter")
register_span_point("serve.batch.assemble",
                    "stacking the batch's request payloads")
register_span_point("serve.forward",
                    "the replica forward pass of one batch")
register_span_point("serve.worker.ipc.forward",
                    "parent-side window of one forward shipped to a process "
                    "worker (encloses the worker-side span)")
register_span_point("serve.worker.forward",
                    "worker-process-side forward, recorded in the worker "
                    "and merged clock-offset-corrected into the parent "
                    "trace")
register_span_point("explore.candidate",
                    "one candidate evaluation (attrs: wave, fidelity, "
                    "attempts)")

register_event_point("fault.injected",
                     "an armed fault_point fired (attrs: point, kind, tag)")
register_event_point("serve.shed",
                     "a submission was rejected under the overload policy")
register_event_point("serve.timeout", "a request missed its deadline")
register_event_point("serve.retry", "a failed request was re-queued")
register_event_point("serve.quarantine", "a replica was benched")
register_event_point("serve.restart",
                     "a quarantined replica re-warmed and re-admitted "
                     "itself")
register_event_point("serve.degrade",
                     "a replica fell back to dense execution after an "
                     "engine fault")


# ---------------------------------------------------------------------------
# spans
# ---------------------------------------------------------------------------

class Span:
    """One live span; use as a context manager (or via :func:`traced`)."""

    __slots__ = ("name", "attrs", "start", "end", "span_id", "parent_id",
                 "tid", "thread", "_tracer")

    def __init__(self, tracer: "Tracer", name: str,
                 attrs: Optional[Dict[str, Any]] = None):
        self.name = name
        self.attrs = attrs if attrs is not None else {}
        self.start = 0.0
        self.end = 0.0
        self.span_id = next(tracer._ids)
        self.parent_id: Optional[int] = None
        self.tid = 0
        self.thread = ""
        self._tracer = tracer

    def set_attribute(self, key: str, value: Any) -> None:
        self.attrs[key] = value

    @property
    def duration_s(self) -> float:
        return self.end - self.start

    def __enter__(self) -> "Span":
        current = threading.current_thread()
        self.tid = current.ident or 0
        self.thread = current.name
        stack = self._tracer._stack()
        if stack:
            self.parent_id = stack[-1].span_id
        stack.append(self)
        self.start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.end = time.perf_counter()
        stack = self._tracer._stack()
        if stack and stack[-1] is self:
            stack.pop()
        elif self in stack:  # exited out of order; never corrupt the stack
            stack.remove(self)
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self._tracer._finish(self)
        return False


class _NoopSpan:
    """The shared do-nothing span returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set_attribute(self, key: str, value: Any) -> None:
        pass

    @property
    def duration_s(self) -> float:
        return 0.0


#: the singleton no-op span — ``span()`` returns it with no allocation
#: whenever tracing is disabled
NOOP = _NoopSpan()


class _Stopwatch:
    """A measuring-but-not-recording span for :func:`timed_span`.

    Call sites that *need* the duration (e.g. a stage report's
    throughput) get the same measurement whether tracing is on or off —
    that is what keeps reports and traces from ever disagreeing.
    """

    __slots__ = ("start", "end")

    def __init__(self):
        self.start = 0.0
        self.end = 0.0

    def __enter__(self) -> "_Stopwatch":
        self.start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        self.end = time.perf_counter()
        return False

    def set_attribute(self, key: str, value: Any) -> None:
        pass

    @property
    def duration_s(self) -> float:
        return self.end - self.start


# ---------------------------------------------------------------------------
# the tracer
# ---------------------------------------------------------------------------

class Tracer:
    """Process-global trace collector: spans, events, counters, gauges.

    Finished records are plain dicts in one bounded deque (oldest
    dropped first; ``dropped`` counts the loss), so a long chaos run
    cannot grow memory without bound.  All record timestamps are raw
    ``time.perf_counter()`` seconds; exporters rebase onto the tracer's
    epoch so Chrome timestamps start near zero.
    """

    def __init__(self, buffer_size: int = 65536,
                 process_name: Optional[str] = None):
        if buffer_size < 1:
            raise ValueError("buffer_size must be >= 1")
        self.pid = os.getpid()
        self.process_name = process_name or "main"
        self.epoch = time.perf_counter()
        self.buffer_size = int(buffer_size)
        self._buffer: deque = deque(maxlen=self.buffer_size)
        self._appended = 0
        self._ids = itertools.count(1)
        self._local = threading.local()
        self._lock = threading.Lock()
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        self._process_names: Dict[int, str] = {self.pid: self.process_name}

    # -- recording ------------------------------------------------------------
    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def span(self, name: str, attrs: Optional[Dict[str, Any]] = None) -> Span:
        return Span(self, name, attrs)

    def current_span(self) -> Optional[Span]:
        stack = self._stack()
        return stack[-1] if stack else None

    def _append(self, record: Dict[str, Any]) -> None:
        with self._lock:
            self._buffer.append(record)
            self._appended += 1

    def _finish(self, span: Span) -> None:
        self._append({
            "ph": "X", "name": span.name, "ts": span.start,
            "dur": span.end - span.start, "pid": self.pid, "tid": span.tid,
            "thread": span.thread, "id": span.span_id,
            "parent": span.parent_id, "args": span.attrs,
        })

    def record_span(self, name: str, start: float, end: float,
                    tid: Optional[int] = None, thread: Optional[str] = None,
                    attrs: Optional[Dict[str, Any]] = None,
                    parent: Optional[int] = None) -> None:
        """Record a span with explicit start/end ``perf_counter`` times.

        For phases reconstructed after the fact — e.g. a request's
        queue-wait, known only once a worker pops its batch.  ``tid``
        defaults to the calling thread.
        """
        current = threading.current_thread()
        self._append({
            "ph": "X", "name": name, "ts": float(start),
            "dur": max(0.0, float(end) - float(start)), "pid": self.pid,
            "tid": int(tid) if tid is not None else (current.ident or 0),
            "thread": thread if thread is not None else current.name,
            "id": next(self._ids), "parent": parent,
            "args": attrs if attrs is not None else {},
        })

    def event(self, name: str, attrs: Optional[Dict[str, Any]] = None) -> None:
        current = threading.current_thread()
        self._append({
            "ph": "i", "name": name, "ts": time.perf_counter(),
            "pid": self.pid, "tid": current.ident or 0,
            "thread": current.name,
            "args": attrs if attrs is not None else {},
        })

    def counter_add(self, name: str, value: float = 1) -> float:
        with self._lock:
            total = self._counters.get(name, 0) + value
            self._counters[name] = total
        return total

    def gauge_set(self, name: str, value: float) -> None:
        with self._lock:
            self._gauges[name] = value

    @property
    def dropped(self) -> int:
        with self._lock:
            return self._appended - len(self._buffer)

    # -- cross-process merge ----------------------------------------------------
    def drain(self) -> List[Dict[str, Any]]:
        """Remove and return every buffered record (worker-side shipping)."""
        with self._lock:
            records = list(self._buffer)
            self._buffer.clear()
        return records

    def merge(self, records: Sequence[Dict[str, Any]],
              clock_offset_s: float = 0.0,
              process_name: Optional[str] = None) -> int:
        """Append records from another process, shifted onto this clock.

        ``clock_offset_s`` maps the sender's ``perf_counter`` domain into
        ours (``local_ts = remote_ts + offset``); fit it with
        :func:`fit_clock_offset`.  Records keep their own ``pid`` so the
        exporters render one track group per worker process.
        """
        merged = 0
        for record in records:
            record = dict(record)
            record["ts"] = float(record["ts"]) + clock_offset_s
            # parent links do not survive the process boundary
            record["parent"] = None
            if process_name is not None:
                self._process_names.setdefault(int(record["pid"]),
                                               process_name)
            self._append(record)
            merged += 1
        return merged

    # -- export -----------------------------------------------------------------
    def records(self) -> List[Dict[str, Any]]:
        with self._lock:
            return list(self._buffer)

    def chrome_trace(self) -> Dict[str, Any]:
        """The Chrome trace-event JSON dict (complete "X" events, µs)."""
        events: List[Dict[str, Any]] = []
        tracks: Dict[Tuple[int, int], str] = {}
        for record in sorted(self.records(), key=lambda r: r["ts"]):
            tracks.setdefault((record["pid"], record["tid"]),
                              record.get("thread", ""))
            out = {
                "name": record["name"],
                "ph": record["ph"],
                "ts": round((record["ts"] - self.epoch) * 1e6, 3),
                "pid": record["pid"],
                "tid": record["tid"],
                "args": record.get("args", {}),
            }
            if record["ph"] == "X":
                out["dur"] = round(record["dur"] * 1e6, 3)
            if record["ph"] == "i":
                out["s"] = "t"  # instant scope: thread
            events.append(out)
        meta: List[Dict[str, Any]] = []
        for pid in sorted({pid for pid, _ in tracks}):
            meta.append({"ph": "M", "name": "process_name", "pid": pid,
                         "tid": 0, "args": {"name": self._process_names.get(
                             pid, f"pid {pid}")}})
        for (pid, tid), thread in sorted(tracks.items()):
            meta.append({"ph": "M", "name": "thread_name", "pid": pid,
                         "tid": tid, "args": {"name": thread or str(tid)}})
        return {"traceEvents": meta + events, "displayTimeUnit": "ms"}

    def export_chrome(self, path: Union[str, Path]) -> None:
        Path(path).write_text(json.dumps(self.chrome_trace()) + "\n")

    def export_jsonl(self, path: Union[str, Path]) -> None:
        """One JSON record per line, raw perf_counter seconds, plus a
        final ``summary`` line with the counter/gauge registry."""
        lines = [json.dumps(record, default=str)
                 for record in self.records()]
        with self._lock:
            tail = {"ph": "summary", "counters": dict(self._counters),
                    "gauges": dict(self._gauges),
                    "dropped": self._appended - len(self._buffer)}
        lines.append(json.dumps(tail, default=str))
        Path(path).write_text("\n".join(lines) + "\n")

    # -- summary ---------------------------------------------------------------
    def summary(self, top: int = 12) -> Dict[str, Any]:
        """Span tree aggregated by name (inclusive/exclusive ms) + top
        counters — the ``telemetry`` section of the CLI run reports."""
        records = self.records()
        spans = [r for r in records if r["ph"] == "X"]
        by_id = {r["id"]: r for r in spans if r.get("id") is not None}
        agg: Dict[str, Dict[str, Any]] = {}
        child_total: Dict[str, float] = {}
        parent_of: Dict[str, Optional[str]] = {}
        for record in spans:
            name = record["name"]
            stats = agg.setdefault(name, {"count": 0, "total_ms": 0.0,
                                          "max_ms": 0.0})
            dur_ms = record["dur"] * 1e3
            stats["count"] += 1
            stats["total_ms"] += dur_ms
            stats["max_ms"] = max(stats["max_ms"], dur_ms)
            parent = by_id.get(record.get("parent"))
            if parent is not None and parent["name"] != name:
                parent_of.setdefault(name, parent["name"])
                child_total[parent["name"]] = (
                    child_total.get(parent["name"], 0.0) + dur_ms)
            else:
                parent_of.setdefault(name, None)
        for name, stats in agg.items():
            stats["exclusive_ms"] = max(
                0.0, stats["total_ms"] - child_total.get(name, 0.0))
            stats["parent"] = parent_of.get(name)
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            dropped = self._appended - len(self._buffer)
        top_counters = dict(sorted(counters.items(),
                                   key=lambda kv: -abs(kv[1]))[:top])
        return {
            "spans": agg,
            "events": sum(1 for r in records if r["ph"] == "i"),
            "counters": top_counters,
            "gauges": gauges,
            "records": len(records),
            "dropped": dropped,
        }


def format_summary(summary: Dict[str, Any],
                   prefix: str = "[telemetry]") -> List[str]:
    """Render :meth:`Tracer.summary` as indented span-tree text lines."""
    spans = summary.get("spans", {})
    lines = [f"{prefix} {summary.get('records', 0)} records "
             f"({summary.get('events', 0)} events, "
             f"{summary.get('dropped', 0)} dropped)"]
    if spans:
        lines.append(f"{prefix} span tree (count, inclusive / exclusive ms):")
        children: Dict[Optional[str], List[str]] = {}
        for name, stats in spans.items():
            children.setdefault(stats.get("parent"), []).append(name)

        def walk(name: str, depth: int, seen: set) -> None:
            if name in seen:
                return
            seen.add(name)
            stats = spans[name]
            lines.append(
                f"{prefix}   {'  ' * depth}{name:<{max(1, 40 - 2 * depth)}s}"
                f" {stats['count']:>5d}x {stats['total_ms']:>10.2f} /"
                f" {stats['exclusive_ms']:>10.2f}")
            for child in sorted(children.get(name, [])):
                walk(child, depth + 1, seen)

        seen: set = set()
        for root in sorted(children.get(None, [])):
            walk(root, 0, seen)
        for name in spans:  # orphans whose parent never finished
            walk(name, 0, seen)
    counters = summary.get("counters", {})
    if counters:
        lines.append(f"{prefix} top counters:")
        for name, value in sorted(counters.items(), key=lambda kv: -abs(kv[1])):
            lines.append(f"{prefix}   {name:<44s} {value:g}")
    for name, value in sorted(summary.get("gauges", {}).items()):
        lines.append(f"{prefix}   gauge {name:<38s} {value:g}")
    return lines


# ---------------------------------------------------------------------------
# clock-offset fitting (cross-process merge)
# ---------------------------------------------------------------------------

def fit_clock_offset(windows: Sequence[Tuple[float, float, float, float]]
                     ) -> Optional[float]:
    """Fit the child→parent clock offset from enclosing request windows.

    Each window is ``(parent_t0, parent_t1, child_t0, child_t1)``: the
    parent observed the request leave at ``parent_t0`` and the reply
    arrive at ``parent_t1`` (its clock), while the child measured the
    same work as ``[child_t0, child_t1]`` (its clock).  Causality bounds
    the offset: ``parent_t0 <= child_t0 + off`` and ``child_t1 + off <=
    parent_t1``.  The midpoint of the intersection of those feasible
    intervals is returned — by construction every corrected child span
    lands strictly inside its parent window.  Returns ``None`` with no
    windows; an (impossible on one host) empty intersection falls back
    to the midpoint compromise.
    """
    if not windows:
        return None
    lo = max(p0 - c0 for p0, _, c0, _ in windows)
    hi = min(p1 - c1 for _, p1, _, c1 in windows)
    return (lo + hi) / 2.0


# ---------------------------------------------------------------------------
# the module-global fast path (mirrors faults._ACTIVE)
# ---------------------------------------------------------------------------

#: the installed tracer.  One process-wide slot (not thread-local): worker
#: threads the enabling test never owns must record into the same trace.
_ACTIVE: Optional[Tracer] = None


def enable(buffer_size: int = 65536,
           process_name: Optional[str] = None) -> Tracer:
    """Install (and return) a fresh process-global tracer."""
    global _ACTIVE
    _ACTIVE = Tracer(buffer_size=buffer_size, process_name=process_name)
    return _ACTIVE


def disable() -> Optional[Tracer]:
    """Uninstall the tracer; returns it (records stay readable)."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = None
    return previous


def enabled() -> bool:
    return _ACTIVE is not None


def active_tracer() -> Optional[Tracer]:
    return _ACTIVE


@contextmanager
def tracing(buffer_size: int = 65536,
            process_name: Optional[str] = None) -> Iterator[Tracer]:
    """Enable tracing for the duration of the ``with`` block (tests)."""
    global _ACTIVE
    previous = _ACTIVE
    tracer = Tracer(buffer_size=buffer_size, process_name=process_name)
    _ACTIVE = tracer
    try:
        yield tracer
    finally:
        _ACTIVE = previous


def span(name: str, **attrs: Any) -> Union[Span, _NoopSpan]:
    """Start a span (context manager).  Disabled: returns the shared
    no-op span — one global load, one ``is None`` test, no allocation."""
    tracer = _ACTIVE
    if tracer is None:
        return NOOP
    return tracer.span(name, attrs)


def timed_span(name: str, **attrs: Any) -> Union[Span, _Stopwatch]:
    """A span that *always* measures wall time (``duration_s``), and is
    additionally recorded when tracing is on — for call sites whose
    report needs the duration regardless (stage timing, serve_eval
    throughput), so reports and traces share one measurement."""
    tracer = _ACTIVE
    if tracer is None:
        return _Stopwatch()
    return tracer.span(name, attrs)


def current_span() -> Optional[Span]:
    tracer = _ACTIVE
    if tracer is None:
        return None
    return tracer.current_span()


def event(name: str, **attrs: Any) -> None:
    tracer = _ACTIVE
    if tracer is None:
        return
    tracer.event(name, attrs)


def counter_add(name: str, value: float = 1) -> None:
    tracer = _ACTIVE
    if tracer is None:
        return
    tracer.counter_add(name, value)


def gauge_set(name: str, value: float) -> None:
    tracer = _ACTIVE
    if tracer is None:
        return
    tracer.gauge_set(name, value)


def record_span(name: str, start: float, end: float, **kwargs: Any) -> None:
    tracer = _ACTIVE
    if tracer is None:
        return
    tracer.record_span(name, start, end, **kwargs)


def traced(name: Optional[str] = None) -> Callable:
    """Decorator: wrap every call of the function in a span.

    Disabled, the wrapper costs one global load and an ``is None`` test
    on top of the call itself.
    """
    def decorator(fn: Callable) -> Callable:
        label = name if name is not None else fn.__qualname__

        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            tracer = _ACTIVE
            if tracer is None:
                return fn(*args, **kwargs)
            with tracer.span(label):
                return fn(*args, **kwargs)
        return wrapper
    return decorator


# ---------------------------------------------------------------------------
# Chrome trace-event schema validation (CI trace-smoke + tests)
# ---------------------------------------------------------------------------

def validate_chrome_trace(data: Any) -> List[str]:
    """Validate a Chrome trace-event JSON dict; returns a list of errors.

    Checks the invariants Perfetto / ``chrome://tracing`` rely on:
    ``traceEvents`` is a list; every event has a string ``name``, a known
    ``ph``, integer ``pid``/``tid``; non-metadata events carry numeric,
    non-negative ``ts`` in non-decreasing order; complete ``X`` events
    carry a non-negative ``dur``; ``B``/``E`` events are balanced per
    ``(pid, tid)`` track.
    """
    errors: List[str] = []
    if not isinstance(data, dict) or not isinstance(
            data.get("traceEvents"), list):
        return ["trace must be a dict with a 'traceEvents' list"]
    last_ts: Optional[float] = None
    open_begins: Dict[Tuple[int, int], List[str]] = {}
    for index, ev in enumerate(data["traceEvents"]):
        where = f"event {index}"
        if not isinstance(ev, dict):
            errors.append(f"{where}: not an object")
            continue
        ph = ev.get("ph")
        if ph not in ("X", "B", "E", "i", "I", "M", "C"):
            errors.append(f"{where}: unknown ph {ph!r}")
            continue
        if not isinstance(ev.get("name"), str) or not ev["name"]:
            errors.append(f"{where}: missing/empty name")
        for key in ("pid", "tid"):
            if not isinstance(ev.get(key), int):
                errors.append(f"{where} ({ev.get('name')}): missing {key}")
        if ph == "M":
            continue
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)):
            errors.append(f"{where} ({ev.get('name')}): missing ts")
            continue
        if ts < 0:
            errors.append(f"{where} ({ev.get('name')}): negative ts {ts}")
        if last_ts is not None and ts < last_ts:
            errors.append(f"{where} ({ev.get('name')}): ts {ts} not "
                          f"monotonic (previous {last_ts})")
        last_ts = ts
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                errors.append(f"{where} ({ev.get('name')}): X event needs "
                              f"a non-negative dur, got {dur!r}")
        elif ph == "B":
            open_begins.setdefault((ev.get("pid"), ev.get("tid")),
                                   []).append(ev["name"])
        elif ph == "E":
            stack = open_begins.get((ev.get("pid"), ev.get("tid")))
            if not stack:
                errors.append(f"{where} ({ev.get('name')}): E without B")
            else:
                stack.pop()
    for (pid, tid), stack in open_begins.items():
        if stack:
            errors.append(f"track ({pid}, {tid}): unmatched B events "
                          f"{stack}")
    return errors
