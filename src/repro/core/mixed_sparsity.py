"""Mixed layer-wise N:M sparsity search (DominoSearch-style).

The paper trains classification models with a single uniform N:M pattern
(SR-STE) but cites DominoSearch [34] for finding *mixed* layer-wise N:M
schemes, and its Section 6.2 discussion — "for models with high redundancy we
seek the highest possible pruning rate while maintaining accuracy" — is a
per-layer trade-off.  This module provides that search: for every prunable
layer it measures the masked clustering/pruning error at each candidate N and
picks the sparsest pattern whose error stays within a tolerance of the
densest candidate, subject to a global sparsity target.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.compressor import LayerCompressionConfig, MVQCompressor
from repro.core.grouping import GroupingStrategy, group_weight
from repro.core.pruning import apply_mask, nm_prune_mask
from repro.nn.module import Module


@dataclass
class LayerSparsityChoice:
    """Chosen N:M pattern for one layer and the evidence behind it."""

    layer: str
    n_keep: int
    m: int
    relative_error: float      # pruning error / weight energy
    num_weights: int

    @property
    def sparsity(self) -> float:
        return 1.0 - self.n_keep / self.m


def layer_pruning_error(weight: np.ndarray, n_keep: int, m: int, d: int,
                        strategy: GroupingStrategy = GroupingStrategy.OUTPUT) -> float:
    """Relative energy removed by N:M pruning this layer.

    ``sum(pruned^2) / sum(weight^2)`` — the fraction of the layer's weight
    energy that the mask discards; a cheap, training-free sensitivity proxy.
    """
    grouped = group_weight(weight, d, strategy)
    mask = nm_prune_mask(grouped, n_keep, m)
    pruned = grouped - apply_mask(grouped, mask)
    total = float(np.sum(grouped**2))
    if total == 0.0:
        return 0.0
    return float(np.sum(pruned**2)) / total


class MixedSparsitySearch:
    """Pick a per-layer N (of N:M) under a global sparsity target.

    Parameters
    ----------
    candidates:
        The allowed N values, e.g. ``(6, 5, 4, 3)`` for N:16 patterns.
    m:
        Block size M shared by all layers.
    d:
        Subvector length used for grouping (must be a multiple of M).
    error_tolerance:
        A layer may move to a sparser pattern only while its relative pruning
        error stays below this threshold.
    target_sparsity:
        Stop sparsifying once the weighted-average sparsity reaches this value
        (``None`` = sparsify as far as the tolerance allows).
    """

    def __init__(self, candidates: Sequence[int] = (6, 5, 4, 3), m: int = 16, d: int = 16,
                 error_tolerance: float = 0.15,
                 target_sparsity: Optional[float] = None,
                 strategy: GroupingStrategy = GroupingStrategy.OUTPUT):
        if not candidates:
            raise ValueError("need at least one candidate N")
        if any(not 0 < n <= m for n in candidates):
            raise ValueError("every candidate N must satisfy 0 < N <= M")
        self.candidates = sorted(candidates, reverse=True)   # densest first
        self.m = m
        self.d = d
        self.error_tolerance = error_tolerance
        self.target_sparsity = target_sparsity
        self.strategy = strategy

    def _prunable_layers(self, model: Module):
        probe = MVQCompressor(LayerCompressionConfig(
            k=2, d=self.d, n_keep=self.candidates[0], m=self.m, strategy=self.strategy))
        return probe.compressible_layers(model)

    def search(self, model: Module) -> Dict[str, LayerSparsityChoice]:
        """Assign each prunable layer the sparsest tolerable N:M pattern."""
        layers = self._prunable_layers(model)
        if not layers:
            raise ValueError("model has no layers compatible with the requested grouping")

        choices: Dict[str, LayerSparsityChoice] = {}
        # per layer: precompute the error of each candidate
        errors: Dict[str, Dict[int, float]] = {}
        for name, mod in layers:
            errors[name] = {
                n: layer_pruning_error(mod.weight.value, n, self.m, self.d, self.strategy)
                for n in self.candidates
            }
            densest = self.candidates[0]
            choices[name] = LayerSparsityChoice(
                layer=name, n_keep=densest, m=self.m,
                relative_error=errors[name][densest],
                num_weights=int(mod.weight.value.size),
            )

        # greedily sparsify the layer whose next step costs the least error,
        # until the tolerance or the global target is hit
        def overall_sparsity() -> float:
            total = sum(c.num_weights for c in choices.values())
            pruned = sum(c.num_weights * c.sparsity for c in choices.values())
            return pruned / total

        while True:
            if self.target_sparsity is not None and overall_sparsity() >= self.target_sparsity:
                break
            best_name = None
            best_cost = None
            for name, choice in choices.items():
                idx = self.candidates.index(choice.n_keep)
                if idx + 1 >= len(self.candidates):
                    continue
                next_n = self.candidates[idx + 1]
                next_error = errors[name][next_n]
                if next_error > self.error_tolerance:
                    continue
                cost = next_error - choice.relative_error
                if best_cost is None or cost < best_cost:
                    best_cost = cost
                    best_name = name
            if best_name is None:
                break
            current = choices[best_name]
            idx = self.candidates.index(current.n_keep)
            next_n = self.candidates[idx + 1]
            choices[best_name] = LayerSparsityChoice(
                layer=best_name, n_keep=next_n, m=self.m,
                relative_error=errors[best_name][next_n],
                num_weights=current.num_weights,
            )
        return choices

    def to_layer_overrides(self, choices: Dict[str, LayerSparsityChoice],
                           base: LayerCompressionConfig) -> Dict[str, LayerCompressionConfig]:
        """Convert a search result into per-layer MVQCompressor overrides."""
        from dataclasses import replace

        return {
            name: replace(base, n_keep=choice.n_keep, m=choice.m, d=self.d,
                          strategy=self.strategy)
            for name, choice in choices.items()
        }


def overall_sparsity(choices: Dict[str, LayerSparsityChoice]) -> float:
    """Weight-weighted average sparsity of a mixed N:M assignment."""
    total = sum(c.num_weights for c in choices.values())
    if total == 0:
        return 0.0
    return sum(c.num_weights * c.sparsity for c in choices.values()) / total
