"""Clustering-error metrics used throughout the evaluation.

The paper distinguishes *Total SSE* (clustering error over all weights) from
*Mask SSE* (error over the kept/important weights only); Table 3 shows the
latter is what tracks accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np


def total_sse(original: np.ndarray, reconstructed: np.ndarray) -> float:
    """Sum of squared errors over every weight."""
    original = np.asarray(original, dtype=np.float64)
    reconstructed = np.asarray(reconstructed, dtype=np.float64)
    if original.shape != reconstructed.shape:
        raise ValueError("shape mismatch between original and reconstruction")
    return float(np.sum((original - reconstructed) ** 2))


def masked_sse(original: np.ndarray, reconstructed: np.ndarray, mask: np.ndarray) -> float:
    """Sum of squared errors restricted to unpruned (kept) weights."""
    mask = np.asarray(mask, dtype=bool)
    if mask.shape != np.asarray(original).shape:
        raise ValueError("mask shape must match the weights")
    diff = (np.asarray(original) - np.asarray(reconstructed)) * mask
    return float(np.sum(diff**2))


@dataclass
class ClusteringReport:
    """Summary of one clustering run, in the units Table 3 reports."""

    total_sse: float
    mask_sse: float
    num_subvectors: int
    num_weights: int
    sparsity: float

    @property
    def mse_per_weight(self) -> float:
        return self.total_sse / max(self.num_weights, 1)


def clustering_report(original_grouped: np.ndarray, reconstructed_grouped: np.ndarray,
                      mask: Optional[np.ndarray] = None) -> ClusteringReport:
    """Build a :class:`ClusteringReport` from grouped weights and a keep-mask."""
    if mask is None:
        mask = np.ones_like(original_grouped, dtype=bool)
    return ClusteringReport(
        total_sse=total_sse(original_grouped, reconstructed_grouped),
        mask_sse=masked_sse(original_grouped, reconstructed_grouped, mask),
        num_subvectors=original_grouped.shape[0],
        num_weights=int(original_grouped.size),
        sparsity=float(1.0 - np.asarray(mask, dtype=bool).mean()),
    )
