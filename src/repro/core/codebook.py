"""Codebook container and symmetric 8-bit codebook quantization (Section 4.5).

The paper applies symmetric uniform quantization (Eq. 5) to the codebook so
the accelerator works on int8 codewords, with the scale ``s_w`` learned LSQ
style (one scale per codebook).  :class:`LSQScale` implements the learned
step size with the straight-through gradient from the LSQ paper;
:func:`fit_scale_mse` offers a simpler MSE-optimal initialisation used when
no fine-tuning pass follows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np


def assignment_dtype(k: int) -> np.dtype:
    """Narrowest integer dtype that can index a ``k``-entry codebook.

    With the paper's k <= 256 operating point assignments are plain uint8 —
    an 8x memory/bandwidth saving over the historical int64 storage, and
    the width the integer/LUT inference path and the shared-memory serving
    arena account for.
    """
    if k <= 2 ** 8:
        return np.dtype(np.uint8)
    if k <= 2 ** 16:
        return np.dtype(np.uint16)
    return np.dtype(np.int64)


def quantize_symmetric(values: np.ndarray, scale: float, bits: int = 8) -> np.ndarray:
    """Symmetric uniform quantization (Eq. 5): scale * clamp(round(v / scale))."""
    if scale <= 0:
        raise ValueError("scale must be positive")
    if bits < 2:
        raise ValueError("need at least 2 quantization bits")
    q_min = -(2 ** (bits - 1))
    q_max = 2 ** (bits - 1) - 1
    levels = np.clip(np.round(values / scale), q_min, q_max)
    return scale * levels


def quantize_to_int(values: np.ndarray, scale: float, bits: int = 8) -> np.ndarray:
    """Integer levels of the symmetric quantizer (what the accelerator stores)."""
    if scale <= 0:
        raise ValueError("scale must be positive")
    q_min = -(2 ** (bits - 1))
    q_max = 2 ** (bits - 1) - 1
    return np.clip(np.round(values / scale), q_min, q_max).astype(np.int32)


def fit_scale_mse(values: np.ndarray, bits: int = 8, num_candidates: int = 60) -> float:
    """Scale minimising quantization MSE over a simple candidate sweep."""
    max_abs = float(np.max(np.abs(values)))
    if max_abs == 0.0:
        return 1.0
    q_max = 2 ** (bits - 1) - 1
    best_scale = max_abs / q_max
    best_err = np.inf
    for factor in np.linspace(0.3, 1.2, num_candidates):
        scale = factor * max_abs / q_max
        if scale <= 0:
            continue
        err = float(np.mean((values - quantize_symmetric(values, scale, bits)) ** 2))
        if err < best_err:
            best_err = err
            best_scale = scale
    return best_scale


class LSQScale:
    """Learned step size (LSQ) for symmetric quantization.

    Holds a single positive scale and exposes ``quantize`` (fake-quantized
    values for the forward pass) plus ``grad`` (the LSQ straight-through
    gradient of the loss w.r.t. the scale, given the upstream gradient).
    """

    def __init__(self, values: np.ndarray, bits: int = 8):
        self.bits = bits
        self.q_min = -(2 ** (bits - 1))
        self.q_max = 2 ** (bits - 1) - 1
        # LSQ initialisation: 2 * mean(|v|) / sqrt(q_max)
        mean_abs = float(np.mean(np.abs(values)))
        self.scale = max(2.0 * mean_abs / np.sqrt(self.q_max), 1e-8)
        # gradient scale factor g = 1 / sqrt(numel * q_max)
        self._grad_scale = 1.0 / np.sqrt(values.size * self.q_max)

    def quantize(self, values: np.ndarray) -> np.ndarray:
        return quantize_symmetric(values, self.scale, self.bits)

    def grad(self, values: np.ndarray, upstream: np.ndarray) -> float:
        """LSQ gradient of the loss w.r.t. the scale."""
        v_s = values / self.scale
        below = v_s <= self.q_min
        above = v_s >= self.q_max
        middle = ~(below | above)
        local = np.where(below, self.q_min,
                         np.where(above, self.q_max, np.round(v_s) - v_s))
        return float(np.sum(upstream * local) * self._grad_scale)

    def step(self, values: np.ndarray, upstream: np.ndarray, lr: float) -> None:
        """One SGD step on the scale."""
        self.scale = max(self.scale - lr * self.grad(values, upstream), 1e-8)


@dataclass
class Codebook:
    """A codebook of ``k`` codewords of length ``d`` plus its quantizer state."""

    codewords: np.ndarray
    bits: Optional[int] = None
    lsq: Optional[LSQScale] = field(default=None, repr=False)

    def __post_init__(self):
        self.codewords = np.asarray(self.codewords, dtype=np.float64)
        if self.codewords.ndim != 2:
            raise ValueError("codewords must be a (k, d) matrix")

    @property
    def k(self) -> int:
        return self.codewords.shape[0]

    @property
    def d(self) -> int:
        return self.codewords.shape[1]

    def quantize_(self, bits: int = 8, use_lsq: bool = True) -> "Codebook":
        """Quantize the codebook in place (Section 4.5) and remember the scale."""
        self.bits = bits
        if use_lsq:
            self.lsq = LSQScale(self.codewords, bits)
            scale = self.lsq.scale
        else:
            scale = fit_scale_mse(self.codewords, bits)
        self.codewords = quantize_symmetric(self.codewords, scale, bits)
        return self

    def effective_codewords(self) -> np.ndarray:
        """Codewords as used in the forward pass (fake-quantized if enabled)."""
        if self.bits is None:
            return self.codewords
        scale = self.lsq.scale if self.lsq is not None else fit_scale_mse(self.codewords, self.bits)
        return quantize_symmetric(self.codewords, scale, self.bits)

    def lookup(self, assignments: np.ndarray) -> np.ndarray:
        """Decoded subvectors for an assignment vector."""
        return self.effective_codewords()[assignments]

    def storage_bits(self, qc: Optional[int] = None) -> int:
        """Storage cost b_c = k * d * q_c (Eq. 7)."""
        qc = qc if qc is not None else (self.bits or 32)
        return self.k * self.d * qc
