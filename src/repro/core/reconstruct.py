"""Weight reconstruction from (codebook, assignments, mask) — Fig. 5 forward path."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.core.codebook import Codebook
from repro.core.grouping import GroupingStrategy, ungroup_weight


def reconstruct_grouped(codebook: Codebook, assignments: np.ndarray,
                        mask: Optional[np.ndarray] = None) -> np.ndarray:
    """Grouped (N_G, d) reconstruction: codeword lookup, then bit-select by mask."""
    decoded = codebook.lookup(np.asarray(assignments, dtype=np.int64))
    if mask is not None:
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != decoded.shape:
            raise ValueError("mask shape must match decoded subvectors")
        decoded = decoded * mask
    return decoded


def reconstruct_weight(codebook: Codebook, assignments: np.ndarray,
                       weight_shape: Tuple[int, ...], d: int,
                       mask: Optional[np.ndarray] = None,
                       strategy: GroupingStrategy = GroupingStrategy.OUTPUT) -> np.ndarray:
    """Full weight tensor reconstruction in the original layout."""
    grouped = reconstruct_grouped(codebook, assignments, mask)
    return ungroup_weight(grouped, weight_shape, d, strategy)
