"""Weight reconstruction from (codebook, assignments, mask) — Fig. 5 forward path."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.core.codebook import Codebook
from repro.core.grouping import GroupingStrategy, ungroup_weight


def reconstruct_grouped(codebook: Codebook, assignments: np.ndarray,
                        mask: Optional[np.ndarray] = None) -> np.ndarray:
    """Grouped (N_G, d) reconstruction: codeword lookup, then bit-select by mask."""
    decoded = codebook.lookup(np.asarray(assignments, dtype=np.int64))
    if mask is not None:
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != decoded.shape:
            raise ValueError("mask shape must match decoded subvectors")
        decoded = decoded * mask
    return decoded


def effective_subvector_table(codebook: Codebook, assignments: np.ndarray,
                              mask: Optional[np.ndarray] = None
                              ) -> Tuple[np.ndarray, np.ndarray]:
    """Deduplicated table of the subvector values a layer can decode to.

    Returns ``(table, index)`` with ``table`` of shape ``(U, d)`` and
    ``index`` of shape ``(N_G,)`` such that ``table[index]`` equals
    :func:`reconstruct_grouped`.  Without a mask every codeword decodes to
    itself (``U == k``); with an N:M mask each *(codeword, mask pattern)*
    pair that actually occurs becomes one table row, so ``U`` stays far
    below ``N_G`` (at most ``k`` times the number of distinct mask
    patterns in use).  Compressed-domain inference computes activation
    products against this table once and reuses them across every
    subvector with the same entry — the product-reuse idea of the paper's
    accelerator datapath.
    """
    assignments = np.asarray(assignments, dtype=np.int64)
    codewords = codebook.effective_codewords()
    if mask is None:
        return codewords.copy(), assignments.copy()
    mask = np.asarray(mask, dtype=bool)
    if mask.shape != (assignments.shape[0], codewords.shape[1]):
        raise ValueError("mask shape must match (N_G, d)")
    d = mask.shape[1]
    if d <= 48:
        # one integer key per (assignment, mask pattern) pair
        pattern = mask @ (1 << np.arange(d, dtype=np.int64))
        keys = assignments * (1 << d) + pattern
        unique_keys, index = np.unique(keys, return_inverse=True)
        table = codewords[unique_keys >> d]
        table = table * (((unique_keys & ((1 << d) - 1))[:, None]
                          >> np.arange(d)) & 1).astype(bool)
    else:  # subvectors too long for a packed integer key: row-wise unique
        pairs = np.column_stack([assignments, mask.astype(np.int64)])
        unique_rows, index = np.unique(pairs, axis=0, return_inverse=True)
        table = codewords[unique_rows[:, 0]] * unique_rows[:, 1:].astype(bool)
    return table, index.reshape(-1).astype(np.int64)


def reconstruct_weight(codebook: Codebook, assignments: np.ndarray,
                       weight_shape: Tuple[int, ...], d: int,
                       mask: Optional[np.ndarray] = None,
                       strategy: GroupingStrategy = GroupingStrategy.OUTPUT) -> np.ndarray:
    """Full weight tensor reconstruction in the original layout."""
    grouped = reconstruct_grouped(codebook, assignments, mask)
    return ungroup_weight(grouped, weight_shape, d, strategy)
