"""Deterministic, seeded fault injection for robustness testing.

Production code is instrumented with *named fault points* — one-line
:func:`fault_point` calls at the places where real systems fail (a replica
forward pass, an artifact-store disk commit, a candidate evaluation).  With
no plan installed a fault point is a single ``is None`` check, so shipping
the instrumentation costs nothing; tests, benchmarks and chaos CI jobs
install a :class:`FaultPlan` that injects exceptions, delays or payload
corruption at those points with configured probability.

Determinism is the whole design: every injection decision is a pure
function of ``(plan seed, fault-point name, visit index, rule index)`` via
SHA-256, never of wall-clock time or a shared RNG stream.  Re-running the
same workload under the same plan reproduces the same fault decisions
bit-for-bit — which is what lets CI *assert* on chaos outcomes instead of
merely hoping.  (Across threads the assignment of visit indices to
individual requests follows scheduling order, but the decision *sequence*
per point is fixed, so aggregate behaviour — how many faults fire, and on
which visit numbers — is reproducible.)

Typical use::

    plan = FaultPlan([
        FaultRule("serve.replica.forward", probability=0.1),           # crash
        FaultRule("serve.replica.forward", probability=0.05,
                  error="engine"),                                     # engine fault
        FaultRule("artifacts.store.write", probability=0.2,
                  kind="corrupt"),                                     # bad bytes
    ], seed=7)
    with plan.active():
        run_workload()
    plan.summary()        # {"visits": {...}, "injections": {...}, ...}

Error *tags* decouple the framework from the layers it tests: a rule names
a tag (``"fault"``, ``"engine"``, ...) and the owning layer registers the
exception type for it via :func:`register_error_type` — core never imports
serve.
"""

from __future__ import annotations

import fnmatch
import hashlib
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, List, Mapping, Optional, Sequence

from repro.core import telemetry

FAULT_KINDS = ("error", "delay", "corrupt")


class InjectedFault(RuntimeError):
    """The generic exception an armed ``error`` fault point raises."""

    def __init__(self, point: str, tag: str = "fault",
                 message: Optional[str] = None):
        super().__init__(message or f"injected fault at {point!r} (tag={tag})")
        self.point = point
        self.tag = tag


#: error tag -> factory(point) -> exception.  Layers register their own typed
#: faults here (e.g. repro.serve registers "engine" -> EngineFault) so a plan
#: can trigger layer-specific failure handling without core importing them.
_ERROR_TYPES: Dict[str, Callable[[str], BaseException]] = {}


def register_error_type(tag: str,
                        factory: Callable[[str], BaseException]) -> None:
    """Map an error tag to an exception factory taking the fault-point name."""
    _ERROR_TYPES[tag] = factory


def make_error(tag: str, point: str) -> BaseException:
    factory = _ERROR_TYPES.get(tag)
    if factory is not None:
        return factory(point)
    return InjectedFault(point, tag)


#: the registry of instrumented fault points (name -> what failing there
#: simulates).  Purely documentary — fault_point() does not validate against
#: it on the hot path — but the README table and tests are generated from it,
#: and registering keeps chaos plans discoverable.
FAULT_POINTS: Dict[str, str] = {}


def register_fault_point(name: str, description: str) -> str:
    FAULT_POINTS[name] = description
    return name


register_fault_point("serve.replica.forward",
                     "a model replica's batched forward pass crashing, "
                     "raising an engine fault, or stalling")
register_fault_point("serve.replica.warmup",
                     "the re-warm forward of a quarantined replica failing")
register_fault_point("serve.worker.spawn",
                     "a serving worker process failing to spawn or to "
                     "re-attach to the shared-memory arena")
register_fault_point("serve.worker.ipc",
                     "the pipe to a serving worker process breaking, or the "
                     "worker dying mid-request")
register_fault_point("artifacts.store.write",
                     "a process killed mid-commit, or bytes corrupted on the "
                     "way to disk")
register_fault_point("artifacts.store.read",
                     "on-disk artifact bytes corrupted or truncated before "
                     "deserialization")
register_fault_point("explore.candidate.eval",
                     "a design-space candidate's pipeline evaluation dying")


@dataclass(frozen=True)
class FaultRule:
    """One injection rule: where, how often, and what happens.

    ``point`` is an ``fnmatch`` pattern over fault-point names
    (``"serve.replica.*"`` arms both forward and warmup).  ``kind`` picks the
    effect: ``"error"`` raises the exception registered for ``error`` (tag),
    ``"delay"`` sleeps ``delay_ms``, ``"corrupt"`` deterministically mangles
    the payload offered at the point.  ``max_injections`` caps how many times
    this rule may fire (useful for "fail twice, then recover" scripts).
    """

    point: str
    probability: float = 1.0
    kind: str = "error"
    error: str = "fault"
    delay_ms: float = 0.0
    max_injections: Optional[int] = None

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"kind must be one of {FAULT_KINDS}, got {self.kind!r}")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(
                f"probability must be in [0, 1], got {self.probability}")
        if self.delay_ms < 0:
            raise ValueError(f"delay_ms must be >= 0, got {self.delay_ms}")
        if self.max_injections is not None and self.max_injections < 0:
            raise ValueError("max_injections must be >= 0")

    def to_dict(self) -> Dict[str, Any]:
        return {"point": self.point, "probability": self.probability,
                "kind": self.kind, "error": self.error,
                "delay_ms": self.delay_ms,
                "max_injections": self.max_injections}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultRule":
        known = {f: data[f] for f in ("point", "probability", "kind", "error",
                                      "delay_ms", "max_injections")
                 if f in data}
        unknown = set(data) - set(known)
        if unknown:
            raise ValueError(f"unknown FaultRule fields: {sorted(unknown)}")
        return cls(**known)


def _corrupt_bytes(payload: bytes, salt: int) -> bytes:
    """Deterministically flip a few bytes of ``payload`` (never a no-op)."""
    if not payload:
        return b"\xff"
    mangled = bytearray(payload)
    for i in range(3):
        offset = (salt >> (8 * i)) % len(mangled)
        mangled[offset] ^= 0x5A
    # guarantee the result differs even if the xors collided
    if bytes(mangled) == payload:
        mangled[salt % len(mangled)] ^= 0xFF
    return bytes(mangled)


class FaultPlan:
    """A seeded set of :class:`FaultRule`\\ s plus the visit/injection ledger.

    Thread-safe: the visit counters are lock-protected, so one plan may be
    installed while a multi-worker server is serving.  Install with
    :meth:`active` (context manager) or :func:`install_plan`.
    """

    def __init__(self, rules: Sequence[FaultRule], seed: int = 0):
        self.rules: List[FaultRule] = list(rules)
        self.seed = int(seed)
        self._lock = threading.Lock()
        self._visits: Dict[str, int] = {}
        self._injections: Dict[str, int] = {}
        self._rule_fired: List[int] = [0] * len(self.rules)

    # -- construction / serialization ----------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {"seed": self.seed,
                "rules": [rule.to_dict() for rule in self.rules]}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultPlan":
        return cls([FaultRule.from_dict(r) for r in data.get("rules", [])],
                   seed=data.get("seed", 0))

    # -- the deterministic draw ------------------------------------------------
    def _draw(self, point: str, visit: int, rule_index: int) -> float:
        digest = hashlib.sha256(
            f"{self.seed}:{point}:{visit}:{rule_index}".encode()).digest()
        return int.from_bytes(digest[:8], "big") / 2.0 ** 64

    def _decide(self, point: str) -> Optional[tuple]:
        """Pick the firing rule (if any) for this visit; returns
        ``(rule, salt)`` where ``salt`` seeds payload corruption."""
        with self._lock:
            visit = self._visits.get(point, 0)
            self._visits[point] = visit + 1
            for index, rule in enumerate(self.rules):
                if not fnmatch.fnmatch(point, rule.point):
                    continue
                if (rule.max_injections is not None
                        and self._rule_fired[index] >= rule.max_injections):
                    continue
                if self._draw(point, visit, index) < rule.probability:
                    self._rule_fired[index] += 1
                    self._injections[point] = self._injections.get(point, 0) + 1
                    salt = int.from_bytes(hashlib.sha256(
                        f"salt:{self.seed}:{point}:{visit}".encode()
                    ).digest()[:8], "big")
                    return rule, salt
        return None

    def visit(self, point: str, payload: Any = None) -> Any:
        """One pass through a fault point; the instrumentation entry point."""
        fired = self._decide(point)
        if fired is None:
            return payload
        rule, salt = fired
        # every firing is visible in the trace, making chaos runs diagnosable
        telemetry.event("fault.injected", point=point, kind=rule.kind,
                        tag=rule.error)
        telemetry.counter_add(f"faults.injected.{point}")
        if rule.kind == "delay":
            time.sleep(rule.delay_ms / 1e3)
            return payload
        if rule.kind == "corrupt":
            if isinstance(payload, (bytes, bytearray)):
                return _corrupt_bytes(bytes(payload), salt)
            if payload is None:
                raise TypeError(
                    f"fault point {point!r} offers no payload to corrupt")
            import numpy as np

            if isinstance(payload, np.ndarray):
                raw = _corrupt_bytes(payload.tobytes(), salt)
                return np.frombuffer(raw, dtype=payload.dtype).reshape(
                    payload.shape).copy()
            raise TypeError(f"cannot corrupt payload of type "
                            f"{type(payload).__name__} at {point!r}")
        raise make_error(rule.error, point)

    # -- introspection ---------------------------------------------------------
    def summary(self) -> Dict[str, Any]:
        """JSON-able ledger: per-point visit and injection counts."""
        with self._lock:
            return {"seed": self.seed,
                    "visits": dict(sorted(self._visits.items())),
                    "injections": dict(sorted(self._injections.items())),
                    "total_injections": sum(self._injections.values())}

    def injections_at(self, point: str) -> int:
        with self._lock:
            return self._injections.get(point, 0)

    def reset(self) -> None:
        with self._lock:
            self._visits.clear()
            self._injections.clear()
            self._rule_fired = [0] * len(self.rules)

    # -- installation ----------------------------------------------------------
    @contextmanager
    def active(self) -> Iterator["FaultPlan"]:
        """Install this plan for the duration of the ``with`` block."""
        previous = install_plan(self)
        try:
            yield self
        finally:
            install_plan(previous)


#: the installed plan.  One process-wide slot (not thread-local): the serving
#: tier's faults must hit worker threads the installing test never owns.
_ACTIVE: Optional[FaultPlan] = None


def install_plan(plan: Optional[FaultPlan]) -> Optional[FaultPlan]:
    """Install ``plan`` (or ``None`` to disarm); returns the previous plan."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = plan
    return previous


def active_plan() -> Optional[FaultPlan]:
    return _ACTIVE


def fault_point(name: str, payload: Any = None) -> Any:
    """Pass through an instrumented fault point.

    Disabled (no plan installed) this is one global load and an ``is None``
    test — cheap enough for per-batch hot paths.  Armed, the installed
    plan's matching rule may raise, sleep, or return a corrupted copy of
    ``payload``; otherwise ``payload`` comes back unchanged.
    """
    plan = _ACTIVE
    if plan is None:
        return payload
    return plan.visit(name, payload)
