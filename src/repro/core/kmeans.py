"""Common (unmasked) k-means vector clustering — the paper's Preliminaries.

Used directly for the conventional-VQ ablation cases (A, B, C of Table 3)
and as the shared machinery the masked variant builds on.

Performance notes
-----------------
The hot loops are written for throughput on large layers:

* **Assignment** is a single fused GEMM: the score ``||c||^2 - 2 x.c`` is
  computed as ``[x, 1] @ [-2c, ||c||^2]^T`` so one matrix product produces
  the argmin operand directly, and rows are processed in blocks sized by
  :func:`repro.core.precision.distance_block_bytes` so the ``(N_G, k)``
  score matrix never exceeds the budget.
* **Update** replaces ``np.add.at`` scatter-adds with a single flattened
  ``np.bincount(weights=...)`` segment sum (an order of magnitude faster;
  bincount also accumulates in float64 regardless of the compute dtype).
* The dense math runs in :func:`repro.core.precision.compute_dtype`
  (float32 or float64); SSE and segment sums accumulate in float64.

Beyond the paper's random init, ``init="kmeans++"`` selects seeds by D^2
sampling, and ``minibatch=<batch size>`` switches to streaming mini-batch
updates for layers too large for full Lloyd iterations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core import precision


@dataclass
class KMeansResult:
    """Output of a vector clustering run."""

    codewords: np.ndarray      # (k, d)
    assignments: np.ndarray    # (N_G,) int
    sse: float                 # final sum of squared errors
    iterations: int


def _init_codewords(data: np.ndarray, k: int, rng: np.random.Generator) -> np.ndarray:
    """Paper's initialisation: randomly select k subvectors as codewords."""
    n = data.shape[0]
    if k >= n:
        # degenerate but legal: every subvector can be its own codeword
        reps = int(np.ceil(k / n))
        pool = np.tile(np.arange(n), reps)[:k]
        return data[pool].copy()
    idx = rng.choice(n, size=k, replace=False)
    return data[idx].copy()


def _kmeanspp_init(data: np.ndarray, k: int, rng: np.random.Generator,
                   mask: Optional[np.ndarray] = None) -> np.ndarray:
    """k-means++ (D^2 sampling) initialisation, optionally mask-aware.

    With a mask, the distance from subvector ``x`` to candidate centre ``c``
    is the masked distance ``||x - c o bm||^2`` so pruned coordinates do not
    influence seeding.
    """
    n, d = data.shape
    if k >= n:
        return _init_codewords(data, k, rng)
    codewords = np.empty((k, d), dtype=data.dtype)
    codewords[0] = data[rng.integers(n)]

    def dist_to(c: np.ndarray) -> np.ndarray:
        if mask is None:
            diff = data - c
        else:
            diff = data - c * mask
        return np.einsum("nd,nd->n", diff, diff, dtype=np.float64)

    d2 = dist_to(codewords[0])
    for j in range(1, k):
        total = d2.sum()
        if total <= 0.0:
            # all remaining points coincide with chosen centres: fall back
            codewords[j:] = _init_codewords(data, k - j, rng)
            break
        idx = rng.choice(n, p=d2 / total)
        codewords[j] = data[idx]
        d2 = np.minimum(d2, dist_to(codewords[j]))
    return codewords


def _choose_init(data: np.ndarray, k: int, rng: np.random.Generator, init: str,
                 mask: Optional[np.ndarray] = None) -> np.ndarray:
    if init == "random":
        return _init_codewords(data, k, rng)
    if init == "kmeans++":
        return _kmeanspp_init(data, k, rng, mask=mask)
    raise ValueError(f"unknown init {init!r}; expected 'random' or 'kmeans++'")


def segment_sums(assignments: np.ndarray, values: np.ndarray, k: int) -> np.ndarray:
    """Per-cluster column sums of ``values`` (N, d) -> (k, d).

    One flattened ``np.bincount`` call replaces the ``np.add.at``
    scatter-add; bincount accumulates in float64 whatever the input dtype.
    """
    n, d = values.shape
    idx = assignments * d
    idx = (idx[:, None] + np.arange(d)).ravel()
    return np.bincount(idx, weights=values.reshape(-1), minlength=k * d).reshape(k, d)


def _blocked_argmin(aug: np.ndarray, scorer: np.ndarray,
                    block_bytes: Optional[int]) -> np.ndarray:
    """``argmin(aug @ scorer, axis=1)`` computed in row blocks.

    ``scorer`` is the (d_aug, k) fused codeword matrix; blocks are sized so
    one (rows, k) score matrix stays within the distance budget.
    """
    n = aug.shape[0]
    k = scorer.shape[1]
    rows = precision.block_rows(k, aug.dtype.itemsize, block_bytes)
    if rows >= n:
        return np.argmin(aug @ scorer, axis=1)
    out = np.empty(n, dtype=np.int64)
    for start in range(0, n, rows):
        stop = min(start + rows, n)
        out[start:stop] = np.argmin(aug[start:stop] @ scorer, axis=1)
    return out


def _augment_ones(data: np.ndarray) -> np.ndarray:
    """``[x, 1]`` rows for the fused assignment GEMM."""
    n, d = data.shape
    aug = np.empty((n, d + 1), dtype=data.dtype)
    aug[:, :d] = data
    aug[:, d] = 1.0
    return aug


def _scorer_ones(codewords: np.ndarray, dtype: np.dtype) -> np.ndarray:
    """Fused ``[-2c, ||c||^2]^T`` codeword matrix for ``[x, 1]`` rows."""
    k, d = codewords.shape
    scorer = np.empty((d + 1, k), dtype=dtype)
    scorer[:d] = -2.0 * codewords.T
    scorer[d] = np.einsum("kd,kd->k", codewords, codewords)
    return scorer


def assign_to_nearest(data: np.ndarray, codewords: np.ndarray,
                      block_bytes: Optional[int] = None) -> np.ndarray:
    """Index of the nearest codeword (squared Euclidean) for every subvector.

    ``||x - c||^2 = ||x||^2 - 2 x.c + ||c||^2``; the ``||x||^2`` term is
    constant per row, and the rest is one fused blocked GEMM.
    """
    dt = np.result_type(data, codewords)
    data = np.ascontiguousarray(data, dtype=dt)
    return _blocked_argmin(_augment_ones(data), _scorer_ones(codewords, dt),
                           block_bytes)


def update_codewords(data: np.ndarray, assignments: np.ndarray, k: int,
                     previous: np.ndarray) -> np.ndarray:
    """Mean of assigned subvectors; empty clusters keep their previous codeword."""
    sums = segment_sums(assignments, data, k)
    counts = np.bincount(assignments, minlength=k).astype(np.float64)
    empty = counts == 0
    counts[empty] = 1.0
    updated = (sums / counts[:, None]).astype(data.dtype)
    updated[empty] = previous[empty]
    return updated


def _minibatch_lloyd(data: np.ndarray, codewords: np.ndarray, k: int,
                     batch: int, max_iterations: int,
                     rng: np.random.Generator,
                     block_bytes: Optional[int]) -> np.ndarray:
    """Streaming mini-batch k-means: each codeword is the running mean of
    every batch sample ever assigned to it (exact streaming average)."""
    n = data.shape[0]
    batch = min(batch, n)
    dt = data.dtype
    sums = np.zeros((k, data.shape[1]), dtype=np.float64)
    counts = np.zeros(k, dtype=np.float64)
    for _ in range(max_iterations):
        rows = data[rng.integers(0, n, size=batch)]
        assignments = _blocked_argmin(_augment_ones(rows),
                                      _scorer_ones(codewords, dt), block_bytes)
        sums += segment_sums(assignments, rows, k)
        counts += np.bincount(assignments, minlength=k)
        seen = counts > 0
        codewords[seen] = (sums[seen] / counts[seen, None]).astype(dt)
    return codewords


def kmeans(
    data: np.ndarray,
    k: int,
    max_iterations: int = 100,
    change_threshold: float = 1e-3,
    seed: int = 0,
    init_codewords: Optional[np.ndarray] = None,
    init: str = "random",
    minibatch: Optional[int] = None,
    block_bytes: Optional[int] = None,
) -> KMeansResult:
    """Lloyd's k-means with the paper's stopping rule.

    Iterates until the fraction of subvectors changing assignment falls below
    ``change_threshold`` (the paper uses 0.1% of the total) or
    ``max_iterations`` is hit.  With ``max_iterations=0`` no update step runs
    and the result is the assignment of the data to the *initial* codewords
    (``iterations == 0``) — useful for evaluating an init or a frozen
    codebook.

    ``init`` selects random subvector sampling (the paper) or ``"kmeans++"``
    D^2 sampling; ``minibatch=<batch>`` switches to streaming mini-batch
    updates (``max_iterations`` batches, then one full assignment pass);
    ``block_bytes`` overrides the global distance-block budget.
    """
    data = precision.as_compute(data)
    if data.ndim != 2:
        raise ValueError("data must be a 2D (N_G, d) matrix")
    if k < 1:
        raise ValueError("k must be >= 1")
    if max_iterations < 0:
        raise ValueError("max_iterations must be >= 0")
    rng = np.random.default_rng(seed)
    codewords = (
        np.array(init_codewords, dtype=data.dtype, copy=True)
        if init_codewords is not None
        else _choose_init(data, k, rng, init)
    )
    if codewords.shape != (k, data.shape[1]):
        raise ValueError(f"initial codewords must have shape {(k, data.shape[1])}")

    aug = _augment_ones(data)
    dt = data.dtype

    iterations = 0
    if minibatch is not None and max_iterations > 0:
        codewords = _minibatch_lloyd(data, codewords, k, minibatch,
                                     max_iterations, rng, block_bytes)
        iterations = max_iterations
        assignments = _blocked_argmin(aug, _scorer_ones(codewords, dt), block_bytes)
    else:
        assignments = _blocked_argmin(aug, _scorer_ones(codewords, dt), block_bytes)
        for iterations in range(1, max_iterations + 1):
            codewords = update_codewords(data, assignments, k, codewords)
            new_assignments = _blocked_argmin(aug, _scorer_ones(codewords, dt),
                                              block_bytes)
            changed = np.count_nonzero(new_assignments != assignments)
            assignments = new_assignments
            if changed <= change_threshold * data.shape[0]:
                break

    residual = (data - codewords[assignments]).astype(np.float64, copy=False)
    sse = float(np.einsum("nd,nd->", residual, residual))
    return KMeansResult(codewords=codewords, assignments=assignments,
                        sse=sse, iterations=iterations)
