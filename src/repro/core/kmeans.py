"""Common (unmasked) k-means vector clustering — the paper's Preliminaries.

Used directly for the conventional-VQ ablation cases (A, B, C of Table 3)
and as the shared machinery the masked variant builds on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np


@dataclass
class KMeansResult:
    """Output of a vector clustering run."""

    codewords: np.ndarray      # (k, d)
    assignments: np.ndarray    # (N_G,) int
    sse: float                 # final sum of squared errors
    iterations: int


def _init_codewords(data: np.ndarray, k: int, rng: np.random.Generator) -> np.ndarray:
    """Paper's initialisation: randomly select k subvectors as codewords."""
    n = data.shape[0]
    if k >= n:
        # degenerate but legal: every subvector can be its own codeword
        reps = int(np.ceil(k / n))
        pool = np.tile(np.arange(n), reps)[:k]
        return data[pool].copy()
    idx = rng.choice(n, size=k, replace=False)
    return data[idx].copy()


def assign_to_nearest(data: np.ndarray, codewords: np.ndarray) -> np.ndarray:
    """Index of the nearest codeword (squared Euclidean) for every subvector."""
    # ||x - c||^2 = ||x||^2 - 2 x.c + ||c||^2 ; the ||x||^2 term is constant per row
    cross = data @ codewords.T
    c_norm = np.einsum("kd,kd->k", codewords, codewords)
    return np.argmin(c_norm[None, :] - 2.0 * cross, axis=1)


def update_codewords(data: np.ndarray, assignments: np.ndarray, k: int,
                     previous: np.ndarray) -> np.ndarray:
    """Mean of assigned subvectors; empty clusters keep their previous codeword."""
    d = data.shape[1]
    sums = np.zeros((k, d))
    np.add.at(sums, assignments, data)
    counts = np.bincount(assignments, minlength=k).astype(float)
    empty = counts == 0
    counts[empty] = 1.0
    updated = sums / counts[:, None]
    updated[empty] = previous[empty]
    return updated


def kmeans(
    data: np.ndarray,
    k: int,
    max_iterations: int = 100,
    change_threshold: float = 1e-3,
    seed: int = 0,
    init_codewords: Optional[np.ndarray] = None,
) -> KMeansResult:
    """Lloyd's k-means with the paper's stopping rule.

    Iterates until the fraction of subvectors changing assignment falls below
    ``change_threshold`` (the paper uses 0.1% of the total) or
    ``max_iterations`` is hit.
    """
    data = np.asarray(data, dtype=np.float64)
    if data.ndim != 2:
        raise ValueError("data must be a 2D (N_G, d) matrix")
    if k < 1:
        raise ValueError("k must be >= 1")
    rng = np.random.default_rng(seed)
    codewords = (
        np.array(init_codewords, dtype=np.float64, copy=True)
        if init_codewords is not None
        else _init_codewords(data, k, rng)
    )
    if codewords.shape != (k, data.shape[1]):
        raise ValueError(f"initial codewords must have shape {(k, data.shape[1])}")

    assignments = assign_to_nearest(data, codewords)
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        codewords = update_codewords(data, assignments, k, codewords)
        new_assignments = assign_to_nearest(data, codewords)
        changed = np.count_nonzero(new_assignments != assignments)
        assignments = new_assignments
        if changed <= change_threshold * data.shape[0]:
            break

    residual = data - codewords[assignments]
    sse = float(np.sum(residual**2))
    return KMeansResult(codewords=codewords, assignments=assignments,
                        sse=sse, iterations=iterations)
