"""Global numeric policy for the compression engine and the nn substrate.

Two knobs, both process-wide:

* **Compute dtype** — ``float32`` or ``float64``.  The clustering kernels and
  the nn forward/backward run their dense linear algebra in this dtype;
  float32 halves memory bandwidth on every GEMM and argmin scan.
  Accumulation-sensitive reductions (segment sums, SSE, batch-norm statistics,
  loss values) always accumulate in float64 regardless of the policy — see
  :func:`accum_dtype`.
* **Distance block budget** — the maximum number of bytes a single
  ``(rows, k)`` distance/score block may occupy during k-means assignment.
  Keeps the working set cache-resident and bounds peak memory on large
  layers; the ``(N_G, k)`` matrix is never materialised beyond one block.

Defaults come from the environment (``REPRO_COMPUTE_DTYPE``,
``REPRO_DISTANCE_BLOCK_BYTES``) so benchmark runs can flip the policy
without code changes.  Use :func:`precision` as a context manager for
scoped overrides::

    with precision("float32"):
        result = masked_kmeans(data, mask, k=256)

This module intentionally imports nothing from the rest of the package so
that both :mod:`repro.core` and :mod:`repro.nn` can depend on it without
creating an import cycle.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Optional, Union

import numpy as np

DTypeLike = Union[str, type, np.dtype]

_ALLOWED = (np.dtype(np.float32), np.dtype(np.float64))

#: Default ceiling for one (rows, k) score block: 64 MiB.
DEFAULT_DISTANCE_BLOCK_BYTES = 64 << 20


def _as_compute_dtype(dtype: DTypeLike) -> np.dtype:
    dt = np.dtype(dtype)
    if dt not in _ALLOWED:
        raise ValueError(
            f"compute dtype must be float32 or float64, got {dt!r}"
        )
    return dt


_compute_dtype = _as_compute_dtype(os.environ.get("REPRO_COMPUTE_DTYPE", "float64"))
_block_bytes = max(1 << 16, int(os.environ.get(
    "REPRO_DISTANCE_BLOCK_BYTES", str(DEFAULT_DISTANCE_BLOCK_BYTES))))


def compute_dtype() -> np.dtype:
    """The dtype dense compute (GEMMs, distance scans) runs in."""
    return _compute_dtype


def accum_dtype() -> np.dtype:
    """The dtype reductions accumulate in — always float64."""
    return np.dtype(np.float64)


def set_compute_dtype(dtype: DTypeLike) -> np.dtype:
    """Set the global compute dtype; returns the previous one."""
    global _compute_dtype
    previous = _compute_dtype
    _compute_dtype = _as_compute_dtype(dtype)
    return previous


def distance_block_bytes() -> int:
    """Memory budget (bytes) for one (rows, k) distance block."""
    return _block_bytes


def set_distance_block_bytes(n: int) -> int:
    """Set the distance block budget; returns the previous value."""
    global _block_bytes
    if n < 1:
        raise ValueError("distance block budget must be positive")
    previous = _block_bytes
    _block_bytes = int(n)
    return previous


@contextmanager
def precision(dtype: Optional[DTypeLike] = None,
              block_bytes: Optional[int] = None):
    """Scoped override of the compute dtype and/or distance block budget."""
    prev_dtype = prev_block = None
    try:
        # apply inside the try so a rejected second knob (e.g. a valid dtype
        # but block_bytes=0) still restores whatever was already switched
        if dtype is not None:
            prev_dtype = set_compute_dtype(dtype)
        if block_bytes is not None:
            prev_block = set_distance_block_bytes(block_bytes)
        yield
    finally:
        if prev_dtype is not None:
            set_compute_dtype(prev_dtype)
        if prev_block is not None:
            set_distance_block_bytes(prev_block)


def as_compute(array: np.ndarray) -> np.ndarray:
    """``array`` cast (contiguously) to the current compute dtype."""
    return np.ascontiguousarray(array, dtype=_compute_dtype)


def block_rows(k: int, itemsize: int, budget: Optional[int] = None) -> int:
    """Rows per assignment block so a (rows, k) score matrix fits the budget."""
    budget = _block_bytes if budget is None else max(1, int(budget))
    return max(1, budget // max(1, k * itemsize))
