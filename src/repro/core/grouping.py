"""Weight grouping strategies (Section 4.3, Fig. 3 of the paper).

A 4D convolution weight ``(C_out, C_in, kh, kw)`` is reshaped into a 2D
matrix of subvectors of length ``d`` along one of three dimensions:

* ``KERNEL``  — subvectors are kernel planes, ``d = kh * kw``;
* ``OUTPUT``  — subvectors span ``d`` consecutive output channels at a fixed
  (input-channel, kernel-position); the paper's choice, giving
  ``(C_out / d * C_in * kh * kw)`` subvectors;
* ``INPUT``   — subvectors span ``d`` consecutive input channels.

2D (linear) weights are treated as 1x1 convolutions.
"""

from __future__ import annotations

import enum
from typing import Tuple

import numpy as np


class GroupingStrategy(enum.Enum):
    KERNEL = "kernel"
    OUTPUT = "output"
    INPUT = "input"


def _as_4d(weight: np.ndarray) -> Tuple[np.ndarray, Tuple[int, ...]]:
    """View linear weights (out, in) as (out, in, 1, 1) convolutions."""
    original_shape = weight.shape
    if weight.ndim == 2:
        weight = weight[:, :, None, None]
    elif weight.ndim != 4:
        raise ValueError(f"expected 2D or 4D weight, got shape {original_shape}")
    return weight, original_shape


def grouped_shape(weight_shape: Tuple[int, ...], d: int,
                  strategy: GroupingStrategy = GroupingStrategy.OUTPUT) -> Tuple[int, int]:
    """Shape (N_G, d) of the grouped matrix for a weight of ``weight_shape``."""
    if len(weight_shape) == 2:
        weight_shape = (*weight_shape, 1, 1)
    c_out, c_in, kh, kw = weight_shape
    if strategy is GroupingStrategy.KERNEL:
        if d != kh * kw:
            raise ValueError(f"kernel-wise grouping requires d == kh*kw ({kh*kw}), got {d}")
        return c_out * c_in, d
    if strategy is GroupingStrategy.OUTPUT:
        if c_out % d != 0:
            raise ValueError(f"output-wise grouping requires C_out ({c_out}) divisible by d ({d})")
        return (c_out // d) * c_in * kh * kw, d
    if strategy is GroupingStrategy.INPUT:
        if c_in % d != 0:
            raise ValueError(f"input-wise grouping requires C_in ({c_in}) divisible by d ({d})")
        return c_out * (c_in // d) * kh * kw, d
    raise ValueError(f"unknown grouping strategy {strategy}")


def group_weight(weight: np.ndarray, d: int,
                 strategy: GroupingStrategy = GroupingStrategy.OUTPUT) -> np.ndarray:
    """Reshape a weight tensor into a (N_G, d) matrix of subvectors."""
    weight, _ = _as_4d(weight)
    c_out, c_in, kh, kw = weight.shape
    grouped_shape(weight.shape, d, strategy)  # validates divisibility

    if strategy is GroupingStrategy.KERNEL:
        return weight.reshape(c_out * c_in, kh * kw)
    if strategy is GroupingStrategy.OUTPUT:
        # (C_out, C_in, kh, kw) -> (C_out/d, d, C_in, kh, kw) -> (C_out/d, C_in, kh, kw, d)
        w = weight.reshape(c_out // d, d, c_in, kh, kw)
        return w.transpose(0, 2, 3, 4, 1).reshape(-1, d)
    # INPUT
    w = weight.reshape(c_out, c_in // d, d, kh, kw)
    return w.transpose(0, 1, 3, 4, 2).reshape(-1, d)


def ungroup_weight(grouped: np.ndarray, weight_shape: Tuple[int, ...], d: int,
                   strategy: GroupingStrategy = GroupingStrategy.OUTPUT) -> np.ndarray:
    """Inverse of :func:`group_weight`: restore the original weight tensor."""
    original_shape = weight_shape
    if len(weight_shape) == 2:
        weight_shape = (*weight_shape, 1, 1)
    c_out, c_in, kh, kw = weight_shape
    expected = grouped_shape(weight_shape, d, strategy)
    if grouped.shape != expected:
        raise ValueError(f"grouped matrix has shape {grouped.shape}, expected {expected}")

    if strategy is GroupingStrategy.KERNEL:
        weight = grouped.reshape(c_out, c_in, kh, kw)
    elif strategy is GroupingStrategy.OUTPUT:
        w = grouped.reshape(c_out // d, c_in, kh, kw, d)
        weight = w.transpose(0, 4, 1, 2, 3).reshape(c_out, c_in, kh, kw)
    else:  # INPUT
        w = grouped.reshape(c_out, c_in // d, kh, kw, d)
        weight = w.transpose(0, 1, 4, 2, 3).reshape(c_out, c_in, kh, kw)

    return weight.reshape(original_shape)


def compatible_d(weight_shape: Tuple[int, ...], d: int,
                 strategy: GroupingStrategy = GroupingStrategy.OUTPUT) -> bool:
    """Whether a weight of ``weight_shape`` can be grouped with length ``d``."""
    try:
        grouped_shape(weight_shape, d, strategy)
        return True
    except ValueError:
        return False
