"""Codebook fine-tuning with masked gradients (Section 4.6, Fig. 5).

During fine-tuning the network's compressed weights are a pure function of
(codebook, assignments, mask): the forward pass uses the reconstructed
weights, and on the backward pass the gradient that lands on each weight
subvector is routed back to its codeword.  Following Eq. 6, the codeword
gradient is the *masked average* of its subvector gradients,

    grad(c_i) = sum_p (dL/dv_p o n_p) / sum_p n_p,

so pruned positions contribute neither to the numerator nor the denominator.
The codewords are then stepped by any optimizer (SGD/Adam/AdamW), and the
LSQ scale of a quantized codebook receives its straight-through update.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Type

import numpy as np

from repro.core.compressor import CompressedModel
from repro.core.codebook import Codebook
from repro.core.grouping import group_weight
from repro.nn.module import Module
from repro.nn.optim import Adam, Optimizer
from repro.nn.tensor import Parameter


class CodebookFinetuner:
    """Keeps a :class:`CompressedModel` and its codebooks in sync while training.

    Usage with :class:`repro.nn.train.Trainer`::

        finetuner = CodebookFinetuner(compressed, lr=1e-3)
        trainer = Trainer(model, loss, optimizer, hook=finetuner.step)

    ``step`` reads the weight gradients accumulated by the model's backward
    pass, converts them to masked codeword gradients, steps the codebook
    optimizer and LSQ scales, and rewrites the reconstructed weights into the
    network so the next forward pass sees the updated codebooks.
    """

    def __init__(self, compressed: CompressedModel, lr: float = 1e-3,
                 optimizer_cls: Type[Optimizer] = Adam,
                 update_lsq_scale: bool = True, lsq_lr: float = 1e-4,
                 **optimizer_kwargs):
        self.compressed = compressed
        self.update_lsq_scale = update_lsq_scale
        self.lsq_lr = lsq_lr

        # one Parameter per distinct codebook (layerwise: one per layer;
        # crosslayer: a single shared parameter)
        self._codebook_params: Dict[int, Parameter] = {}
        self._codebooks: Dict[int, Codebook] = {}
        for state in compressed:
            key = id(state.codebook)
            if key not in self._codebook_params:
                self._codebook_params[key] = Parameter(
                    state.codebook.codewords.copy(), name=f"codebook_{len(self._codebook_params)}"
                )
                self._codebooks[key] = state.codebook
        self.optimizer = optimizer_cls(list(self._codebook_params.values()), lr=lr,
                                       **optimizer_kwargs)
        self._modules = dict(compressed.model.named_modules())
        self.sync_model()

    # -- forward-path synchronisation -----------------------------------------
    def sync_model(self) -> None:
        """Write reconstructed weights (from current codebooks) into the model."""
        for key, param in self._codebook_params.items():
            self._codebooks[key].codewords = param.value
        self.compressed.apply_to_model()

    # -- backward-path: masked codebook gradients ------------------------------
    def accumulate_codebook_gradients(self) -> None:
        """Convert layer weight gradients into masked codeword gradients (Eq. 6)."""
        for param in self._codebook_params.values():
            param.zero_grad()

        grad_sums: Dict[int, np.ndarray] = {
            key: np.zeros_like(param.value) for key, param in self._codebook_params.items()
        }
        count_sums: Dict[int, np.ndarray] = {
            key: np.zeros_like(param.value) for key, param in self._codebook_params.items()
        }

        for state in self.compressed:
            module = self._modules[state.name]
            weight_grad = module.weight.grad
            grouped_grad = group_weight(weight_grad, state.config.d, state.config.strategy)
            mask = state.mask if state.mask is not None else np.ones_like(grouped_grad, dtype=bool)
            masked_grad = grouped_grad * mask

            key = id(state.codebook)
            np.add.at(grad_sums[key], state.assignments, masked_grad)
            np.add.at(count_sums[key], state.assignments, mask.astype(float))

        for key, param in self._codebook_params.items():
            counts = np.maximum(count_sums[key], 1.0)
            param.accumulate_grad(grad_sums[key] / counts)

    def _update_lsq_scales(self) -> None:
        for key, param in self._codebook_params.items():
            codebook = self._codebooks[key]
            if codebook.lsq is not None:
                codebook.lsq.step(param.value, param.grad, self.lsq_lr)

    # -- the trainer hook -------------------------------------------------------
    def step(self) -> None:
        """Full fine-tuning step: grads -> optimizer -> LSQ scale -> resync."""
        self.accumulate_codebook_gradients()
        if self.update_lsq_scale:
            self._update_lsq_scales()
        self.optimizer.step()
        self.sync_model()

    # -- introspection ------------------------------------------------------------
    def codebook_parameters(self) -> List[Parameter]:
        return list(self._codebook_params.values())


def finetune_compressed_model(compressed: CompressedModel, dataset, loss_fn,
                              model_optimizer: Optimizer, epochs: int = 1,
                              batch_size: int = 32, codebook_lr: float = 1e-3,
                              val_set=None):
    """Convenience wrapper: fine-tune codebooks (and uncompressed params) jointly.

    Returns the :class:`repro.nn.train.TrainHistory` of the run.
    """
    from repro.nn.train import Trainer

    finetuner = CodebookFinetuner(compressed, lr=codebook_lr)
    trainer = Trainer(compressed.model, loss_fn, model_optimizer,
                      batch_size=batch_size, hook=finetuner.step)
    return trainer.fit(dataset, epochs=epochs, val_set=val_set)
