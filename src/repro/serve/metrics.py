"""Serving metrics: latency percentiles, throughput, batch-size histogram.

Every :class:`~repro.serve.server.ModelServer` worker records into one
:class:`ServingMetrics` per model.  The recorder is deliberately dumb and
lock-protected — it appends raw per-request latencies and per-batch sizes —
and all statistics (p50/p95, samples/s, the batch histogram) are derived at
report time, so recording stays cheap on the hot path and the report is
always consistent with itself.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, List, Optional

from repro.core.telemetry import quantile


def percentile(values: List[float], q: float) -> float:
    """The ``q``-th percentile (0-100) by linear interpolation.

    A thin wrapper over :func:`repro.core.telemetry.quantile` (stdlib-only,
    so the serve package keeps no hard numpy dependency on the metrics
    path) — the one shared quantile implementation of the codebase.
    """
    return quantile(values, q / 100.0)


class ServingMetrics:
    """Thread-safe accumulator for one served model.

    Records three request outcomes (``completed`` / ``shed`` / ``failed``)
    plus, for completed requests, the queue-wait and total latency, and for
    every executed batch its size.  ``snapshot()`` turns the raw samples
    into the JSON stats report the server exposes.
    """

    def __init__(self, window: int = 4096):
        # keep at most `window` latency samples (newest wins) so a
        # long-running server's stats report stays O(window), not O(traffic)
        self.window = int(window)
        self._lock = threading.Lock()
        self._started = time.perf_counter()
        self._latencies: List[float] = []
        self._queue_waits: List[float] = []
        self._batch_sizes: Dict[int, int] = {}
        self.completed = 0
        self.shed = 0
        self.failed = 0
        self.batches = 0
        # fault-handling outcomes (see repro.serve.errors for the taxonomy)
        self.timeouts = 0
        self.retries = 0
        self.replica_failures = 0
        self.quarantines = 0
        self.restarts = 0
        self.degraded_serves = 0

    # -- recording (hot path) -------------------------------------------------
    def record_batch(self, size: int) -> None:
        with self._lock:
            self.batches += 1
            self._batch_sizes[size] = self._batch_sizes.get(size, 0) + 1

    def record_request(self, latency_s: float, queue_wait_s: float) -> None:
        with self._lock:
            self.completed += 1
            self._latencies.append(float(latency_s))
            self._queue_waits.append(float(queue_wait_s))
            if len(self._latencies) > self.window:
                del self._latencies[: -self.window]
                del self._queue_waits[: -self.window]

    def record_shed(self) -> None:
        with self._lock:
            self.shed += 1

    def record_failure(self) -> None:
        with self._lock:
            self.failed += 1

    def record_timeout(self) -> None:
        """A request's deadline elapsed before a replica completed it."""
        with self._lock:
            self.timeouts += 1

    def record_retry(self) -> None:
        """A failed request was re-queued for another attempt."""
        with self._lock:
            self.retries += 1

    def record_replica_failure(self) -> None:
        """One replica batch execution raised (before retry routing)."""
        with self._lock:
            self.replica_failures += 1

    def record_quarantine(self) -> None:
        """A replica crossed its consecutive-failure limit and was benched."""
        with self._lock:
            self.quarantines += 1

    def record_restart(self) -> None:
        """A quarantined replica re-warmed successfully and was re-admitted."""
        with self._lock:
            self.restarts += 1

    def record_degraded(self, requests: int = 1) -> None:
        """Requests served via the dense fallback after an engine fault."""
        with self._lock:
            self.degraded_serves += requests

    # -- reporting ------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """JSON-able stats: counts, latency percentiles, throughput, histogram."""
        with self._lock:
            latencies = list(self._latencies)
            waits = list(self._queue_waits)
            sizes = dict(self._batch_sizes)
            completed, shed, failed = self.completed, self.shed, self.failed
            batches = self.batches
            faults = {
                "timeouts": self.timeouts,
                "retries": self.retries,
                "replica_failures": self.replica_failures,
                "quarantines": self.quarantines,
                "restarts": self.restarts,
                "degraded_serves": self.degraded_serves,
            }
        elapsed = max(time.perf_counter() - self._started, 1e-9)
        mean_batch = (sum(size * count for size, count in sizes.items())
                      / max(batches, 1))
        return {
            "requests_completed": completed,
            "requests_shed": shed,
            "requests_failed": failed,
            "batches_executed": batches,
            "throughput_rps": completed / elapsed,
            "latency_ms": {
                "p50": percentile(latencies, 50) * 1e3,
                "p95": percentile(latencies, 95) * 1e3,
                "p99": percentile(latencies, 99) * 1e3,
                "max": max(latencies) * 1e3 if latencies else 0.0,
                "mean": (sum(latencies) / len(latencies) * 1e3
                         if latencies else 0.0),
            },
            "queue_wait_ms": {
                "p50": percentile(waits, 50) * 1e3,
                "p95": percentile(waits, 95) * 1e3,
                "p99": percentile(waits, 99) * 1e3,
            },
            "batch_size_histogram": {str(k): v for k, v in sorted(sizes.items())},
            "mean_batch_size": mean_batch,
            "window_seconds": elapsed,
            "faults": faults,
        }

    def stats(self) -> Dict[str, Any]:
        """The compact per-model breakdown: latency percentiles (p50/p95/p99)
        and throughput, without histograms or fault ledgers.

        A stable sub-view of :meth:`snapshot` for dashboards and the CLI's
        final stats line — one model, five numbers.
        """
        snap = self.snapshot()
        return {
            "requests_completed": snap["requests_completed"],
            "throughput_rps": snap["throughput_rps"],
            "latency_ms": dict(snap["latency_ms"]),
            "queue_wait_ms": dict(snap["queue_wait_ms"]),
        }


class StatsRegistry:
    """Per-model metrics plus a merged server-level report."""

    def __init__(self):
        self._metrics: Dict[str, ServingMetrics] = {}
        self._info: Dict[str, Dict[str, Any]] = {}
        self._lock = threading.Lock()

    def set_info(self, name: str, info: Dict[str, Any]) -> None:
        """Attach static per-model serving info — e.g. the per-layer engine
        report (resolved execution mode, LUT table bytes) — surfaced under
        ``report()["engines"]``."""
        with self._lock:
            self._info[name] = dict(info)

    def for_model(self, name: str, window: Optional[int] = None) -> ServingMetrics:
        with self._lock:
            if name not in self._metrics:
                self._metrics[name] = (ServingMetrics(window)
                                       if window is not None else ServingMetrics())
            return self._metrics[name]

    def report(self) -> Dict[str, Any]:
        with self._lock:
            items = list(self._metrics.items())
            info = {name: dict(data) for name, data in self._info.items()}
        models = {name: metrics.snapshot() for name, metrics in items}
        return {
            "models": models,
            # per-model {layer: engine stats} — resolved mode per layer
            # (dense/centroid/lut/lut_quant), LUT table bytes, widths
            "engines": {name: data.get("engines", {})
                        for name, data in info.items()},
            # the per-model latency/throughput breakdown, keyed for clients
            # that only want the headline numbers per model
            "breakdown": {
                name: {
                    "requests_completed": snap["requests_completed"],
                    "throughput_rps": snap["throughput_rps"],
                    "latency_ms": dict(snap["latency_ms"]),
                    "queue_wait_ms": dict(snap["queue_wait_ms"]),
                }
                for name, snap in models.items()
            },
            "total_completed": sum(m["requests_completed"] for m in models.values()),
            "total_shed": sum(m["requests_shed"] for m in models.values()),
        }
