"""Build ready-to-serve models from scenarios and ``.npz`` artifacts.

Two sources, one output shape: a :class:`LoadedModel` — N independent model
replicas with the decode-free compressed-domain modules already swapped in
(one replica per worker thread; engines and im2col buffers are not
thread-safe) plus the metadata the server and CLI report.

* :func:`load_scenario` runs a PR-3 scenario's compression stages
  (``group → prune → cluster → quantize``, warm-cacheable through the
  pipeline's :class:`~repro.pipeline.artifacts.ArtifactStore`) and serves
  the result.
* :func:`load_npz` rebuilds a :class:`~repro.core.compressor.CompressedModel`
  from a serialized ``.npz`` manifest against a model-zoo architecture.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.nn.module import Module
from repro.serve.batcher import BatchPolicy
from repro.serve.errors import ManifestError

#: keys of a scenario's ``serving`` section mapped onto BatchPolicy fields
_POLICY_KEYS = ("max_batch_size", "max_wait_ms", "max_queue_size", "overload",
                "pad_to_full_batch")


def policy_from_spec(spec: Optional[Dict[str, Any]] = None,
                     **overrides: Any) -> BatchPolicy:
    """A :class:`BatchPolicy` from a scenario's ``serving`` section.

    ``overrides`` (e.g. CLI flags) win over the spec; unknown spec keys
    (``workers``, ``mode``) are ignored here — they configure the loader,
    not the batcher.
    """
    merged: Dict[str, Any] = {}
    for key in _POLICY_KEYS:
        if spec and key in spec:
            merged[key] = spec[key]
        if key in overrides and overrides[key] is not None:
            merged[key] = overrides[key]
    return BatchPolicy(**merged)


@dataclass
class LoadedModel:
    """Everything the server needs to register one model."""

    name: str
    replicas: List[Module]
    compressed: Any                      # repro.core.compressor.CompressedModel
    input_shape: Tuple[int, ...]
    serving_spec: Dict[str, Any] = field(default_factory=dict)
    meta: Dict[str, Any] = field(default_factory=dict)

    def policy(self, **overrides: Any) -> BatchPolicy:
        return policy_from_spec(self.serving_spec, **overrides)

    def register_with(self, server, policy: Optional[BatchPolicy] = None,
                      fault_policy: Optional[Any] = None,
                      **policy_overrides: Any) -> None:
        server.register(self.name, self.replicas,
                        policy=policy or self.policy(**policy_overrides),
                        fault_policy=fault_policy,
                        input_shape=self.input_shape)


def _replicate(model: Module, build_fresh, count: int, compressed,
               mode: str) -> List[Module]:
    """``count`` independent serving replicas of one compressed model.

    The first replica is the live model itself; extra replicas are fresh
    architecture builds that copy its state dict (so trained/fine-tuned
    non-compressed parameters — biases, batch-norm — survive) and then get
    their own compressed-module swap.
    """
    from repro.nn.compressed import swap_to_compressed

    replicas = [model]
    for _ in range(max(0, count - 1)):
        fresh = build_fresh()
        fresh.load_state_dict(model.state_dict())
        replicas.append(fresh)
    for replica in replicas:
        swap_to_compressed(replica, compressed, mode=mode)
        replica.eval()
    return replicas


def load_scenario(name: str, mode: str = "auto", replicas: int = 1,
                  cache_dir: Optional[str] = None) -> LoadedModel:
    """Compress a registered scenario's model and prepare it for serving.

    Runs the four core compression stages (cluster results come from the
    artifact cache when ``cache_dir`` is warm), then swaps the decode-free
    modules into ``replicas`` independent copies.
    """
    from repro.pipeline.config import CORE_STAGES
    from repro.pipeline.scenarios import get_scenario, run_scenario

    scenario = get_scenario(name)
    result = run_scenario(scenario, stages=CORE_STAGES, cache_dir=cache_dir)
    compressed = result.compressed
    models = _replicate(compressed.model, scenario.build_model, replicas,
                        compressed, mode)
    serving_spec = dict(scenario.pipeline.get("serving", {}) or {})
    return LoadedModel(
        name=scenario.name,
        replicas=models,
        compressed=compressed,
        input_shape=tuple(scenario.input_shape),
        serving_spec=serving_spec,
        meta={
            "source": "scenario",
            "model": scenario.model,
            "mode": mode,
            "compression_ratio": float(compressed.compression_ratio()),
            "sparsity": float(compressed.sparsity()),
            "layers": len(compressed),
            "cluster_status": next(
                (e["status"] for e in result.events if e["stage"] == "cluster"),
                None),
        },
    )


def verify_npz(path: Any) -> Dict[str, Any]:
    """Pre-flight check of a compressed-model ``.npz`` archive.

    Raises :class:`~repro.serve.errors.ManifestError` — naming the file and
    the first bad array — when the archive is missing, truncated, corrupted
    (zip CRC / zlib failure while decompressing a member) or internally
    inconsistent (manifest referencing arrays that are not there).  Returns
    the parsed manifest on success.

    ``np.load`` decompresses members lazily, so without this check a
    truncated deploy artifact surfaces as a bare ``zlib.error`` from deep
    inside the first forward-time codebook access; here it fails at load
    time with a diagnosable, typed message.
    """
    path = Path(path)
    if not path.exists():
        raise ManifestError(path, "file does not exist")
    try:
        data = np.load(path)
    except Exception as error:
        raise ManifestError(
            path, f"not a readable npz archive: {error}") from error
    with data:
        arrays = {}
        for name in data.files:
            try:
                arrays[name] = data[name]
            except Exception as error:
                raise ManifestError(
                    path, f"truncated or corrupted entry: {error}",
                    array=name) from error
        if "__manifest__" not in arrays:
            raise ManifestError(path, "missing the __manifest__ array "
                                      "(not a compressed-model archive?)")
        try:
            manifest = json.loads(
                bytes(arrays["__manifest__"].tolist()).decode("utf-8"))
        except Exception as error:
            raise ManifestError(path, f"unreadable manifest JSON: {error}",
                                array="__manifest__") from error
        for layer, info in manifest.get("layers", {}).items():
            safe = layer.replace(".", "__")
            expected = [info.get("codebook"), f"{safe}__assignments"]
            if info.get("config", {}).get("store_mask", True):
                expected.append(f"{safe}__mask_codes")
            for name in expected:
                if name not in arrays:
                    raise ManifestError(
                        path, f"manifest references layer {layer!r} but the "
                              "archive lacks its array", array=name)
    return manifest


def load_npz(path: str, model: str, mode: str = "auto", replicas: int = 1,
             model_kwargs: Optional[Dict[str, Any]] = None,
             input_shape: Tuple[int, ...] = (3, 16, 16),
             name: Optional[str] = None) -> LoadedModel:
    """Serve a serialized ``.npz`` compressed-model manifest.

    ``model`` names a :data:`repro.nn.models.MODEL_ZOO` architecture the
    archive was produced from (the archive carries assignments, masks and
    codebooks; the architecture — and its non-compressed parameters — come
    from the zoo build).
    """
    from repro.core.serialization import load_compressed_model
    from repro.nn.models import get_model_factory

    kwargs = dict(model_kwargs or {})
    factory = get_model_factory(model)
    verify_npz(path)

    def build_fresh() -> Module:
        return factory(**kwargs)

    live = build_fresh()
    try:
        compressed = load_compressed_model(live, path)
    except KeyError as error:
        # the archive is internally consistent (verify_npz passed) but does
        # not fit this architecture — still a deploy-artifact problem, so
        # still the typed manifest error
        raise ManifestError(
            path, f"archive does not match the {model!r} architecture: "
                  f"{error}") from error
    models = _replicate(live, build_fresh, replicas, compressed, mode)
    return LoadedModel(
        name=name or f"{model}@{path}",
        replicas=models,
        compressed=compressed,
        input_shape=tuple(input_shape),
        meta={
            "source": "npz",
            "path": str(path),
            "model": model,
            "mode": mode,
            "compression_ratio": float(compressed.compression_ratio()),
            "sparsity": float(compressed.sparsity()),
            "layers": len(compressed),
        },
    )
