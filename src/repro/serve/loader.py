"""Build ready-to-serve models from scenarios and ``.npz`` artifacts.

Two sources, one output shape: a :class:`LoadedModel` — N independent model
replicas with the decode-free compressed-domain modules already swapped in
(one replica per worker thread; engines and im2col buffers are not
thread-safe) plus the metadata the server and CLI report.

* :func:`load_scenario` runs a PR-3 scenario's compression stages
  (``group → prune → cluster → quantize``, warm-cacheable through the
  pipeline's :class:`~repro.pipeline.artifacts.ArtifactStore`) and serves
  the result.
* :func:`load_npz` rebuilds a :class:`~repro.core.compressor.CompressedModel`
  from a serialized ``.npz`` manifest against a model-zoo architecture.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.nn.module import Module
from repro.serve.batcher import BatchPolicy
from repro.serve.errors import ManifestError

#: keys of a scenario's ``serving`` section mapped onto BatchPolicy fields
_POLICY_KEYS = ("max_batch_size", "max_wait_ms", "max_queue_size", "overload",
                "pad_to_full_batch")


def policy_from_spec(spec: Optional[Dict[str, Any]] = None,
                     **overrides: Any) -> BatchPolicy:
    """A :class:`BatchPolicy` from a scenario's ``serving`` section.

    ``overrides`` (e.g. CLI flags) win over the spec; unknown spec keys
    (``workers``, ``mode``) are ignored here — they configure the loader,
    not the batcher.
    """
    merged: Dict[str, Any] = {}
    for key in _POLICY_KEYS:
        if spec and key in spec:
            merged[key] = spec[key]
        if key in overrides and overrides[key] is not None:
            merged[key] = overrides[key]
    return BatchPolicy(**merged)


@dataclass
class LoadedModel:
    """Everything the server needs to register one model."""

    name: str
    replicas: List[Module]
    compressed: Any                      # repro.core.compressor.CompressedModel
    input_shape: Tuple[int, ...]
    serving_spec: Dict[str, Any] = field(default_factory=dict)
    meta: Dict[str, Any] = field(default_factory=dict)
    #: spawn-safe recipe for rebuilding the bare architecture in a worker
    #: process — ``("scenario", name)`` or ``("zoo", model, kwargs)``
    builder_spec: Optional[Tuple] = None

    def policy(self, **overrides: Any) -> BatchPolicy:
        return policy_from_spec(self.serving_spec, **overrides)

    def register_with(self, server, policy: Optional[BatchPolicy] = None,
                      fault_policy: Optional[Any] = None,
                      **policy_overrides: Any) -> None:
        server.register(self.name, self.replicas,
                        policy=policy or self.policy(**policy_overrides),
                        fault_policy=fault_policy,
                        input_shape=self.input_shape)

    def process_pool(self, workers: int = 2, **kwargs: Any):
        """A :class:`~repro.serve.sharded.ProcessReplicaPool` for this model.

        Worker processes rebuild the architecture from :attr:`builder_spec`
        and attach the shared-memory arena for all compressed/model state;
        register the pool's ``.replicas`` exactly like thread replicas.
        """
        from repro.serve.sharded import ProcessReplicaPool

        if self.builder_spec is None:
            raise ValueError(
                f"model {self.name!r} has no spawn-safe builder spec; "
                "process workers need a scenario or model-zoo source")
        kwargs.setdefault("max_batch_size", self.policy().max_batch_size)
        if kwargs.get("mode") is None:
            kwargs["mode"] = self.meta.get("mode", "auto")
        return ProcessReplicaPool(self.compressed, self.builder_spec,
                                  self.input_shape, workers=workers,
                                  model=self.replicas[0], **kwargs)


def _shared_view(array: np.ndarray) -> np.ndarray:
    view = np.asarray(array).view()
    view.flags.writeable = False
    return view


def adopt_state_views(model: Module, state: Dict[str, np.ndarray],
                      strict: bool = True) -> Dict[str, np.ndarray]:
    """Rebind ``model``'s parameters and buffers to read-only views of the
    arrays in ``state`` (keyed by state-dict name).

    This is the zero-copy counterpart of ``load_state_dict``: instead of
    copying values *into* the model's own arrays, the model's parameters
    are pointed *at* the shared arrays — one physical copy of model state
    no matter how many replicas adopt it.  The views are read-only, which
    is safe for serving (eval-mode forwards never write parameters or
    buffers — BatchNorm only updates running stats in training mode, and
    it rebinds rather than writes in place even then).  Gradients are
    re-zeroed private arrays, so the rare introspection path that touches
    ``.grad`` cannot write through to shared state.

    Used by both sharding tiers: thread replicas adopt views over the
    primary replica's arrays; worker processes adopt views over the
    shared-memory arena.  Returns the adopted ``{name: view}`` map.
    """
    adopted: Dict[str, np.ndarray] = {}
    for name, param in model.named_parameters():
        if name not in state:
            if strict:
                raise KeyError(f"no shared array for parameter {name!r}")
            continue
        view = _shared_view(state[name])
        if view.shape != param.value.shape:
            raise ValueError(
                f"shared array for {name!r} has shape {view.shape}, "
                f"model expects {param.value.shape}")
        param.value = view
        param.grad = np.zeros_like(view)
        adopted[name] = view
    for mod_name, module in model.named_modules():
        prefix = f"{mod_name}." if mod_name else ""
        for attr in module._buffer_names:
            name = f"{prefix}{attr}"
            if name not in state:
                if strict:
                    raise KeyError(f"no shared array for buffer {name!r}")
                continue
            view = _shared_view(state[name])
            setattr(module, attr, view)
            adopted[name] = view
    return adopted


def _backing_array(array: np.ndarray) -> np.ndarray:
    """Walk ``.base`` links to the array that owns the storage."""
    base = array
    while isinstance(base.base, np.ndarray):
        base = base.base
    return base


def replica_state_report(replicas: List[Module]) -> Dict[str, Any]:
    """``nbytes`` accounting of model state across replicas.

    ``total_bytes`` counts every replica's parameters, buffers and
    compressed-engine arrays as if each held its own copy; ``unique_bytes``
    counts each distinct backing buffer once.  Deduplicated replicas show
    ``total ≈ N x unique``; the dedup test asserts exactly that.
    """
    total = 0
    unique: Dict[int, int] = {}

    def visit(array: Optional[np.ndarray]) -> None:
        nonlocal total
        if array is None:
            return
        array = np.asarray(array)
        total += array.nbytes
        backing = _backing_array(array)
        unique[id(backing)] = max(backing.nbytes, array.nbytes)

    for replica in replicas:
        for _, param in replica.named_parameters():
            visit(param.value)
        for _, buf in replica.named_buffers():
            visit(buf)
        for _, module in replica.named_modules():
            engine = getattr(module, "engine", None)
            if engine is None:
                continue
            visit(engine.codebook.codewords)
            visit(engine.assignments)
            visit(engine.mask)
    unique_bytes = sum(unique.values())
    return {"replicas": len(replicas), "total_bytes": int(total),
            "unique_bytes": int(unique_bytes),
            "dedup_ratio": float(total / max(unique_bytes, 1))}


def _replicate(model: Module, build_fresh, count: int, compressed,
               mode: str, act_levels: Optional[int] = None) -> List[Module]:
    """``count`` independent serving replicas of one compressed model.

    The first replica is the live model itself; extra replicas are fresh
    architecture builds whose parameters and buffers are rebound to
    read-only *views* of the primary's arrays (so trained/fine-tuned
    non-compressed state — biases, batch-norm — survives without a
    per-replica state-dict copy), then get their own compressed-module
    swap.  What stays per-replica is exactly the state that is not
    thread-safe to share — engine chunk scratch and im2col buffers; the
    raw compressed arrays, the engines' derived tables/caches, and every
    parameter hold one physical copy across all replicas (the thread-mode
    mirror of the process tier's shared-memory arena).
    """
    from repro.nn.compressed import swap_to_compressed

    replicas = [model]
    shared_state = {name: p.value for name, p in model.named_parameters()}
    shared_state.update(
        {name: np.asarray(buf) for name, buf in model.named_buffers()})
    for _ in range(max(0, count - 1)):
        fresh = build_fresh()
        adopt_state_views(fresh, shared_state)
        replicas.append(fresh)
    primary_swapped = None
    for replica in replicas:
        swapped = swap_to_compressed(replica, compressed, mode=mode)
        if act_levels is not None:
            for module in swapped.values():
                module.engine.act_levels = int(act_levels)
        if primary_swapped is None:
            primary_swapped = swapped
        else:
            for name, module in swapped.items():
                source = primary_swapped[name]
                module.engine.share_tables_with(source.engine)
                # from_layer copies the bias; point it back at one copy
                if module.bias is not None:
                    module.bias.value = _shared_view(source.bias.value)
                    module.bias.grad = np.zeros_like(module.bias.value)
        replica.eval()
    return replicas


def load_scenario(name: str, mode: Optional[str] = None, replicas: int = 1,
                  cache_dir: Optional[str] = None,
                  act_levels: Optional[int] = None) -> LoadedModel:
    """Compress a registered scenario's model and prepare it for serving.

    Runs the four core compression stages (cluster results come from the
    artifact cache when ``cache_dir`` is warm), then swaps the decode-free
    modules into ``replicas`` independent copies.  ``mode`` and
    ``act_levels`` default to the scenario serving section's ``engine_mode``
    / ``act_levels`` keys, so a scenario can pin the LUT fast path (or the
    quantized-activation variant) declaratively; explicit arguments win.
    """
    from repro.pipeline.config import CORE_STAGES
    from repro.pipeline.scenarios import get_scenario, run_scenario

    scenario = get_scenario(name)
    result = run_scenario(scenario, stages=CORE_STAGES, cache_dir=cache_dir)
    compressed = result.compressed
    serving_spec = dict(scenario.pipeline.get("serving", {}) or {})
    if mode is None:
        mode = str(serving_spec.get("engine_mode", "auto"))
    if act_levels is None and serving_spec.get("act_levels") is not None:
        act_levels = int(serving_spec["act_levels"])
    models = _replicate(compressed.model, scenario.build_model, replicas,
                        compressed, mode, act_levels=act_levels)
    return LoadedModel(
        name=scenario.name,
        replicas=models,
        compressed=compressed,
        input_shape=tuple(scenario.effective_input_shape()),
        serving_spec=serving_spec,
        builder_spec=("scenario", scenario.name),
        meta={
            "source": "scenario",
            "model": scenario.model,
            "mode": mode,
            "compression_ratio": float(compressed.compression_ratio()),
            "sparsity": float(compressed.sparsity()),
            "layers": len(compressed),
            "cluster_status": next(
                (e["status"] for e in result.events if e["stage"] == "cluster"),
                None),
        },
    )


def verify_npz(path: Any) -> Dict[str, Any]:
    """Pre-flight check of a compressed-model ``.npz`` archive.

    Raises :class:`~repro.serve.errors.ManifestError` — naming the file and
    the first bad array — when the archive is missing, truncated, corrupted
    (zip CRC / zlib failure while decompressing a member) or internally
    inconsistent (manifest referencing arrays that are not there).  Returns
    the parsed manifest on success.

    ``np.load`` decompresses members lazily, so without this check a
    truncated deploy artifact surfaces as a bare ``zlib.error`` from deep
    inside the first forward-time codebook access; here it fails at load
    time with a diagnosable, typed message.
    """
    path = Path(path)
    if not path.exists():
        raise ManifestError(path, "file does not exist")
    try:
        data = np.load(path)
    except Exception as error:
        raise ManifestError(
            path, f"not a readable npz archive: {error}") from error
    with data:
        arrays = {}
        for name in data.files:
            try:
                arrays[name] = data[name]
            except Exception as error:
                raise ManifestError(
                    path, f"truncated or corrupted entry: {error}",
                    array=name) from error
        if "__manifest__" not in arrays:
            raise ManifestError(path, "missing the __manifest__ array "
                                      "(not a compressed-model archive?)")
        try:
            manifest = json.loads(
                bytes(arrays["__manifest__"].tolist()).decode("utf-8"))
        except Exception as error:
            raise ManifestError(path, f"unreadable manifest JSON: {error}",
                                array="__manifest__") from error
        for layer, info in manifest.get("layers", {}).items():
            safe = layer.replace(".", "__")
            expected = [info.get("codebook"), f"{safe}__assignments"]
            if info.get("config", {}).get("store_mask", True):
                expected.append(f"{safe}__mask_codes")
            for name in expected:
                if name not in arrays:
                    raise ManifestError(
                        path, f"manifest references layer {layer!r} but the "
                              "archive lacks its array", array=name)
    return manifest


def load_npz(path: str, model: str, mode: Optional[str] = None,
             replicas: int = 1,
             model_kwargs: Optional[Dict[str, Any]] = None,
             input_shape: Tuple[int, ...] = (3, 16, 16),
             name: Optional[str] = None,
             act_levels: Optional[int] = None) -> LoadedModel:
    """Serve a serialized ``.npz`` compressed-model manifest.

    ``model`` names a :data:`repro.nn.models.MODEL_ZOO` architecture the
    archive was produced from (the archive carries assignments, masks and
    codebooks; the architecture — and its non-compressed parameters — come
    from the zoo build).
    """
    from repro.core.serialization import load_compressed_model
    from repro.nn.models import get_model_factory

    kwargs = dict(model_kwargs or {})
    factory = get_model_factory(model)
    verify_npz(path)
    if mode is None:
        mode = "auto"

    def build_fresh() -> Module:
        return factory(**kwargs)

    live = build_fresh()
    try:
        compressed = load_compressed_model(live, path)
    except KeyError as error:
        # the archive is internally consistent (verify_npz passed) but does
        # not fit this architecture — still a deploy-artifact problem, so
        # still the typed manifest error
        raise ManifestError(
            path, f"archive does not match the {model!r} architecture: "
                  f"{error}") from error
    models = _replicate(live, build_fresh, replicas, compressed, mode,
                        act_levels=act_levels)
    return LoadedModel(
        name=name or f"{model}@{path}",
        replicas=models,
        compressed=compressed,
        input_shape=tuple(input_shape),
        builder_spec=("zoo", model, dict(kwargs)),
        meta={
            "source": "npz",
            "path": str(path),
            "model": model,
            "mode": mode,
            "compression_ratio": float(compressed.compression_ratio()),
            "sparsity": float(compressed.sparsity()),
            "layers": len(compressed),
        },
    )
