"""Dynamic request batching: a thread-safe queue that coalesces requests.

:class:`DynamicBatcher` is the server's admission + coalescing core.
Clients :meth:`~DynamicBatcher.submit` single requests and get a
:class:`Request` handle back; a worker thread repeatedly calls
:meth:`~DynamicBatcher.next_batch`, which blocks until work exists and then
coalesces up to ``max_batch_size`` requests — flushing earlier once the
*oldest* queued request has waited ``max_wait_ms`` (bounded staleness: the
wait clock starts at enqueue, not at coalesce start).

Overload is explicit: the queue is bounded by ``max_queue_size`` and the
``overload`` policy picks what an over-limit ``submit`` does — ``"shed"``
raises :class:`ServerOverloaded` immediately (load-shedding; the caller
sees the rejection instead of unbounded latency), ``"block"`` applies
backpressure by making the producer wait for queue space.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, List, Optional

from repro.core import telemetry

# the batcher's failure modes live in the serving error taxonomy; re-exported
# here because they are raised from this module's API
from repro.serve.errors import ServerClosed, ServerOverloaded

OVERLOAD_POLICIES = ("shed", "block")


@dataclass(frozen=True)
class BatchPolicy:
    """Knobs of the dynamic batcher.

    ``max_batch_size``
        Upper bound on coalesced batch size (and, with
        ``pad_to_full_batch``, the canonical forward shape).
    ``max_wait_ms``
        How long the oldest queued request may wait for co-travellers
        before the batch is flushed partially filled.
    ``max_queue_size``
        Admission bound; queue depth beyond the in-flight batch.
    ``overload``
        ``"shed"`` rejects over-limit submissions with
        :class:`ServerOverloaded`; ``"block"`` makes submitters wait.
    ``pad_to_full_batch``
        Zero-pad every executed batch up to ``max_batch_size`` so all
        forwards share one shape — compressed convolutions keep their
        persistent im2col buffers *and* outputs are bit-identical no matter
        how requests were coalesced (see ``repro.nn.serve``).
    """

    max_batch_size: int = 8
    max_wait_ms: float = 2.0
    max_queue_size: int = 256
    overload: str = "shed"
    pad_to_full_batch: bool = True

    def __post_init__(self):
        if self.max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if self.max_wait_ms < 0:
            raise ValueError("max_wait_ms must be >= 0")
        if self.max_queue_size < 1:
            raise ValueError("max_queue_size must be >= 1")
        if self.overload not in OVERLOAD_POLICIES:
            raise ValueError(
                f"overload must be one of {OVERLOAD_POLICIES}, got {self.overload!r}")


_request_ids = itertools.count()


class Request:
    """One in-flight request: payload in, future-style result out.

    ``attempts`` counts executions that failed (the retry path bumps it);
    ``deadline`` is the absolute ``perf_counter`` instant after which the
    server resolves the request with a timeout instead of executing it.
    """

    __slots__ = ("id", "payload", "enqueued_at", "completed_at", "attempts",
                 "deadline", "trace_tid", "_event", "_result", "_error")

    def __init__(self, payload: Any, request_id: Optional[Any] = None):
        self.id = next(_request_ids) if request_id is None else request_id
        self.payload = payload
        self.enqueued_at = time.perf_counter()
        self.completed_at: Optional[float] = None
        self.attempts = 0
        self.deadline: Optional[float] = None
        # the submitting thread's id, so the request span lands on the
        # client's track in the trace (only stamped while tracing is on)
        self.trace_tid: Optional[int] = (
            threading.get_ident() if telemetry.enabled() else None)
        self._event = threading.Event()
        self._result: Any = None
        self._error: Optional[BaseException] = None

    def expired(self, now: Optional[float] = None) -> bool:
        if self.deadline is None:
            return False
        return (time.perf_counter() if now is None else now) >= self.deadline

    def done(self) -> bool:
        return self._event.is_set()

    def set_result(self, value: Any) -> None:
        self._result = value
        self.completed_at = time.perf_counter()
        self._event.set()

    def set_exception(self, error: BaseException) -> None:
        self._error = error
        self.completed_at = time.perf_counter()
        self._event.set()

    def result(self, timeout: Optional[float] = None) -> Any:
        """Block until the batch containing this request has executed."""
        if not self._event.wait(timeout):
            raise TimeoutError(f"request {self.id} not completed within {timeout}s")
        if self._error is not None:
            raise self._error
        return self._result

    @property
    def latency_s(self) -> Optional[float]:
        if self.completed_at is None:
            return None
        return self.completed_at - self.enqueued_at


class DynamicBatcher:
    """Bounded FIFO request queue with max-batch / max-wait coalescing."""

    def __init__(self, policy: Optional[BatchPolicy] = None):
        self.policy = policy or BatchPolicy()
        self._queue: Deque[Request] = deque()
        self._cond = threading.Condition()
        self._closed = False
        self._pending_retries = 0

    # -- producer side --------------------------------------------------------
    def submit(self, payload: Any, request_id: Optional[Any] = None,
               timeout: Optional[float] = None,
               deadline_s: Optional[float] = None) -> Request:
        """Enqueue one request; returns its :class:`Request` handle.

        Under the ``"shed"`` policy a full queue raises
        :class:`ServerOverloaded`; under ``"block"`` the call waits for
        space (``timeout`` bounds that wait).  ``deadline_s`` starts the
        request's wall-clock budget at admission: once it elapses the server
        resolves the request with a timeout error instead of (re-)executing
        it.
        """
        request = Request(payload, request_id)
        deadline = None if timeout is None else time.perf_counter() + timeout
        with self._cond:
            if self._closed:
                raise ServerClosed("batcher is closed")
            while len(self._queue) >= self.policy.max_queue_size:
                if self.policy.overload == "shed":
                    raise ServerOverloaded(
                        f"queue full ({self.policy.max_queue_size} requests)")
                remaining = (None if deadline is None
                             else deadline - time.perf_counter())
                if remaining is not None and remaining <= 0:
                    raise ServerOverloaded(
                        f"queue still full after blocking {timeout}s")
                if not self._cond.wait(remaining):
                    raise ServerOverloaded(
                        f"queue still full after blocking {timeout}s")
                if self._closed:
                    raise ServerClosed("batcher closed while waiting for space")
            # stamp enqueue time *inside* the lock so queue-wait metrics do
            # not count time spent blocked on admission
            request.enqueued_at = time.perf_counter()
            if deadline_s is not None:
                request.deadline = request.enqueued_at + deadline_s
            self._queue.append(request)
            self._cond.notify_all()
        return request

    # -- retry side ------------------------------------------------------------
    def requeue(self, requests: List[Request]) -> None:
        """Push failed requests back to the *front* of the queue (they are
        the oldest work) — ignoring admission bounds and the closed flag, so
        retries still land while a drain shutdown is completing."""
        with self._cond:
            for request in reversed(requests):
                self._queue.appendleft(request)
            self._cond.notify_all()

    def requeue_later(self, request: Request, delay_s: float) -> None:
        """Requeue after a backoff delay (a daemon timer re-admits it).

        The pending-retry count keeps ``next_batch`` from telling workers
        the queue is drained while a retry is still in its backoff window —
        the hole that would otherwise let a drain shutdown strand a retried
        request forever.
        """
        with self._cond:
            self._pending_retries += 1

        def _land():
            with self._cond:
                self._pending_retries -= 1
                self._queue.appendleft(request)
                self._cond.notify_all()

        timer = threading.Timer(max(0.0, delay_s), _land)
        timer.daemon = True
        timer.start()

    def fail_expired(self, now: Optional[float] = None) -> List[Request]:
        """Remove and return every queued request whose deadline has passed.

        The caller resolves them (typed timeout error + metrics); pulling
        them here keeps deadline enforcement alive even when every replica
        is quarantined and nothing is popping batches.
        """
        now = time.perf_counter() if now is None else now
        with self._cond:
            expired = [r for r in self._queue if r.expired(now)]
            if expired:
                self._queue = deque(r for r in self._queue
                                    if not r.expired(now))
                self._cond.notify_all()
        return expired

    # -- consumer side --------------------------------------------------------
    def next_batch(self) -> Optional[List[Request]]:
        """Block until requests exist, coalesce, and pop one FIFO batch.

        Returns ``None`` once the batcher is closed *and* drained — the
        worker's signal to exit.  "Drained" includes retries still in their
        backoff window: a worker never exits while a requeue timer is about
        to re-admit work.  A batch is released as soon as either
        ``max_batch_size`` requests are queued or the oldest one has waited
        ``max_wait_ms``.
        """
        policy = self.policy
        max_wait_s = policy.max_wait_ms / 1e3
        with self._cond:
            while True:
                while not self._queue:
                    if self._closed and self._pending_retries == 0:
                        return None
                    self._cond.wait(0.05 if self._closed else None)
                while len(self._queue) and not self._closed:
                    if len(self._queue) >= policy.max_batch_size:
                        break
                    # anchor the flush deadline to the current oldest request
                    # (another worker of the same pool may pop the head while
                    # we wait, so re-read it every wake-up)
                    deadline = self._queue[0].enqueued_at + max_wait_s
                    remaining = deadline - time.perf_counter()
                    if remaining <= 0:
                        break
                    self._cond.wait(remaining)
                if not self._queue:
                    continue  # drained by another worker; wait again
                batch = [self._queue.popleft()
                         for _ in range(min(policy.max_batch_size,
                                            len(self._queue)))]
                self._cond.notify_all()  # wake producers blocked on admission
                return batch

    # -- lifecycle ------------------------------------------------------------
    def close(self) -> None:
        """Stop admitting requests; queued work may still be drained."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    @property
    def closed(self) -> bool:
        return self._closed

    def qsize(self) -> int:
        with self._cond:
            return len(self._queue)

    @property
    def pending_retries(self) -> int:
        with self._cond:
            return self._pending_retries
