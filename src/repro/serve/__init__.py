"""``repro.serve`` — dynamic-batching model serving for compressed inference.

The serving layer over the decode-free compressed-domain engine:

* :class:`~repro.serve.batcher.DynamicBatcher` — thread-safe bounded
  request queue with max-batch-size / max-wait coalescing and an explicit
  shed-or-block overload policy.
* :class:`~repro.serve.server.ModelServer` — multi-model registry with
  per-model worker pools, canonical-shape (bit-stable) batch execution and
  p50/p95 latency + throughput + batch-histogram stats.
* :mod:`~repro.serve.loader` — builds serving replicas from the pipeline
  scenario registry or serialized ``.npz`` manifests.
* ``python -m repro.serve`` — JSONL serving over stdin/stdout or TCP.
"""

from repro.serve.batcher import (
    BatchPolicy,
    DynamicBatcher,
    Request,
    ServerClosed,
    ServerOverloaded,
)
from repro.serve.loader import LoadedModel, load_npz, load_scenario, policy_from_spec
from repro.serve.metrics import ServingMetrics, StatsRegistry, percentile
from repro.serve.server import ModelServer

__all__ = [
    "BatchPolicy",
    "DynamicBatcher",
    "LoadedModel",
    "ModelServer",
    "Request",
    "ServerClosed",
    "ServerOverloaded",
    "ServingMetrics",
    "StatsRegistry",
    "load_npz",
    "load_scenario",
    "percentile",
    "policy_from_spec",
]
