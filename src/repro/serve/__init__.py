"""``repro.serve`` — dynamic-batching model serving for compressed inference.

The serving layer over the decode-free compressed-domain engine:

* :class:`~repro.serve.batcher.DynamicBatcher` — thread-safe bounded
  request queue with max-batch-size / max-wait coalescing and an explicit
  shed-or-block overload policy.
* :class:`~repro.serve.server.ModelServer` — multi-model registry with
  per-model worker pools, canonical-shape (bit-stable) batch execution and
  p50/p95 latency + throughput + batch-histogram stats.
* :mod:`~repro.serve.errors` — the typed error taxonomy every failed
  request resolves with (stable ``code`` per failure mode).
* :class:`~repro.serve.server.FaultPolicy` — per-model retries/backoff,
  deadlines, replica quarantine + re-warm, and graceful degradation to the
  dense reconstruct path on engine faults.
* :mod:`~repro.serve.loader` — builds serving replicas from the pipeline
  scenario registry or serialized ``.npz`` manifests.
* ``python -m repro.serve`` — JSONL serving over stdin/stdout or TCP.
"""

from repro.serve.batcher import BatchPolicy, DynamicBatcher, Request
from repro.serve.errors import (
    ERROR_TAXONOMY,
    EngineFault,
    ManifestError,
    ReplicaUnavailable,
    RequestFailed,
    RequestTimeout,
    ServerClosed,
    ServerOverloaded,
    ServingError,
    error_payload,
)
from repro.serve.loader import (
    LoadedModel,
    load_npz,
    load_scenario,
    policy_from_spec,
    verify_npz,
)
from repro.serve.metrics import ServingMetrics, StatsRegistry, percentile
from repro.serve.server import FaultPolicy, ModelServer, serving_chaos_plan

__all__ = [
    "BatchPolicy",
    "DynamicBatcher",
    "ERROR_TAXONOMY",
    "EngineFault",
    "FaultPolicy",
    "LoadedModel",
    "ManifestError",
    "ModelServer",
    "ReplicaUnavailable",
    "Request",
    "RequestFailed",
    "RequestTimeout",
    "ServerClosed",
    "ServerOverloaded",
    "ServingError",
    "ServingMetrics",
    "StatsRegistry",
    "error_payload",
    "load_npz",
    "load_scenario",
    "percentile",
    "policy_from_spec",
    "serving_chaos_plan",
    "verify_npz",
]
