"""``repro.serve`` — dynamic-batching model serving for compressed inference.

The serving layer over the decode-free compressed-domain engine:

* :class:`~repro.serve.batcher.DynamicBatcher` — thread-safe bounded
  request queue with max-batch-size / max-wait coalescing and an explicit
  shed-or-block overload policy.
* :class:`~repro.serve.server.ModelServer` — multi-model registry with
  per-model worker pools, canonical-shape (bit-stable) batch execution and
  p50/p95 latency + throughput + batch-histogram stats.
* :mod:`~repro.serve.errors` — the typed error taxonomy every failed
  request resolves with (stable ``code`` per failure mode).
* :class:`~repro.serve.server.FaultPolicy` — per-model retries/backoff,
  deadlines, replica quarantine + re-warm, and graceful degradation to the
  dense reconstruct path on engine faults.
* :mod:`~repro.serve.loader` — builds serving replicas from the pipeline
  scenario registry or serialized ``.npz`` manifests (replicas share one
  physical copy of model state via read-only views).
* :mod:`~repro.serve.shm` + :mod:`~repro.serve.sharded` — the sharded
  multi-process tier: a refcounted shared-memory arena holding one copy of
  all compressed/model state, and :class:`~repro.serve.sharded.
  ProcessReplicaPool` worker processes that map it zero-copy behind the
  same ``ModelServer`` API.
* ``python -m repro.serve`` — JSONL serving over stdin/stdout or TCP.
"""

from repro.serve.batcher import BatchPolicy, DynamicBatcher, Request
from repro.serve.errors import (
    ERROR_TAXONOMY,
    ArenaError,
    EngineFault,
    ManifestError,
    ReplicaUnavailable,
    RequestFailed,
    RequestTimeout,
    ServerClosed,
    ServerOverloaded,
    ServingError,
    WorkerFault,
    error_payload,
)
from repro.serve.loader import (
    LoadedModel,
    adopt_state_views,
    load_npz,
    load_scenario,
    policy_from_spec,
    replica_state_report,
    verify_npz,
)
from repro.serve.metrics import ServingMetrics, StatsRegistry, percentile
from repro.serve.server import FaultPolicy, ModelServer, serving_chaos_plan
from repro.serve.sharded import (
    ProcessReplica,
    ProcessReplicaPool,
    worker_chaos_plan,
)
from repro.serve.shm import ShmArena

__all__ = [
    "ArenaError",
    "BatchPolicy",
    "DynamicBatcher",
    "ERROR_TAXONOMY",
    "EngineFault",
    "FaultPolicy",
    "LoadedModel",
    "ManifestError",
    "ModelServer",
    "ProcessReplica",
    "ProcessReplicaPool",
    "ReplicaUnavailable",
    "Request",
    "RequestFailed",
    "RequestTimeout",
    "ServerClosed",
    "ServerOverloaded",
    "ServingError",
    "ServingMetrics",
    "ShmArena",
    "StatsRegistry",
    "WorkerFault",
    "adopt_state_views",
    "error_payload",
    "load_npz",
    "load_scenario",
    "percentile",
    "policy_from_spec",
    "replica_state_report",
    "serving_chaos_plan",
    "verify_npz",
    "worker_chaos_plan",
]
