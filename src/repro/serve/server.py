"""The dynamic-batching model server over compressed-domain inference.

:class:`ModelServer` holds a registry of named models, each with its own
:class:`~repro.serve.batcher.DynamicBatcher`, batching policy, worker pool
and :class:`~repro.serve.metrics.ServingMetrics`.  Workers pull coalesced
batches off the queue, stack the request payloads, forward them at the
canonical padded batch shape (:func:`repro.nn.serve.forward_padded`) and
scatter the output rows back to the per-request futures.

Models are served from the compressed-domain modules of
:mod:`repro.nn.compressed` (the loader swaps them in), so a running server
never materialises dense weights per request — batching amortises the
remaining per-call Python/layer overhead across coalesced requests, which
is where the >=1.5x throughput over single-image serving comes from.

Worker pools: a model registered with ``replicas=[m1, m2]`` gets one worker
thread per replica, all draining the same queue.  Replicas must be
independent model objects — the engines' caches and im2col buffers are not
thread-safe, so a model instance is never shared between workers.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.nn.module import Module
from repro.nn.serve import forward_padded, prepare_for_serving
from repro.serve.batcher import (
    BatchPolicy,
    DynamicBatcher,
    Request,
    ServerClosed,
    ServerOverloaded,
)
from repro.serve.metrics import ServingMetrics, StatsRegistry


class _ModelEntry:
    """Internal registry record: queue + replicas + workers + metrics."""

    def __init__(self, name: str, replicas: Sequence[Module],
                 policy: BatchPolicy,
                 metrics: Optional[ServingMetrics] = None,
                 input_shape: Optional[Tuple[int, ...]] = None,
                 dtype=np.float64):
        self.name = name
        self.replicas = list(replicas)
        self.policy = policy
        self.metrics = metrics
        self.input_shape = None if input_shape is None else tuple(input_shape)
        self.dtype = np.dtype(dtype)
        self.batcher = DynamicBatcher(policy)
        self.threads: List[threading.Thread] = []


class ModelServer:
    """Multi-model, dynamically-batching inference server.

    >>> server = ModelServer()
    >>> server.register("resnet", model, input_shape=(3, 16, 16),
    ...                 policy=BatchPolicy(max_batch_size=8, max_wait_ms=2.0))
    >>> with server:                      # starts workers, joins on exit
    ...     out = server.predict("resnet", image)          # blocking
    ...     handle = server.submit("resnet", image)        # async
    ...     out2 = handle.result(timeout=5.0)
    >>> server.stats_report()["models"]["resnet"]["latency_ms"]["p95"]
    """

    def __init__(self, policy: Optional[BatchPolicy] = None,
                 stats_window: int = 4096):
        self.default_policy = policy or BatchPolicy()
        self.stats_window = stats_window
        self._entries: Dict[str, _ModelEntry] = {}
        self._stats = StatsRegistry()
        self._lock = threading.Lock()
        self._started = False
        self._closed = False
        self._drain = True  # False during a no-drain shutdown: workers fail
                            # popped batches instead of executing them

    # -- registry -------------------------------------------------------------
    def register(self, name: str, model: Union[Module, Sequence[Module]],
                 policy: Optional[BatchPolicy] = None,
                 input_shape: Optional[Tuple[int, ...]] = None,
                 dtype=np.float64, warmup: bool = True) -> None:
        """Add a model (or a list of replicas — one worker thread each).

        ``input_shape`` enables submit-time shape validation and, together
        with ``warmup``, pre-builds every replica's serving caches at the
        canonical batch shape before the first request lands.
        """
        replicas = [model] if isinstance(model, Module) else list(model)
        if not replicas:
            raise ValueError("register needs at least one model replica")
        if len(set(map(id, replicas))) != len(replicas):
            raise ValueError("replicas must be distinct model objects "
                             "(engines/buffers are not thread-safe)")
        with self._lock:
            if self._closed:
                raise ServerClosed("server is shut down")
            if name in self._entries:
                raise ValueError(f"model {name!r} is already registered")
        # warm *before* publishing the entry: a replica that cannot forward
        # at the canonical shape must fail this call, not linger as a
        # registered model whose queue no worker ever drains
        entry = _ModelEntry(name, replicas, policy or self.default_policy,
                            input_shape=input_shape, dtype=dtype)
        if warmup and entry.input_shape is not None:
            for replica in entry.replicas:
                prepare_for_serving(replica, entry.input_shape,
                                    entry.policy.max_batch_size, entry.dtype)
        else:
            for replica in entry.replicas:
                replica.eval()
        with self._lock:
            if self._closed:
                raise ServerClosed("server is shut down")
            if name in self._entries:
                raise ValueError(f"model {name!r} is already registered")
            entry.metrics = self._stats.for_model(name, self.stats_window)
            self._entries[name] = entry
            if self._started:
                self._start_entry(entry)

    def models(self) -> List[str]:
        with self._lock:
            return sorted(self._entries)

    def _entry(self, name: Optional[str]) -> _ModelEntry:
        with self._lock:
            if name is None:
                if len(self._entries) != 1:
                    raise KeyError(
                        "model name required when serving "
                        f"{len(self._entries)} models: {sorted(self._entries)}")
                return next(iter(self._entries.values()))
            try:
                return self._entries[name]
            except KeyError:
                raise KeyError(f"unknown model {name!r}; registered: "
                               f"{sorted(self._entries)}") from None

    # -- lifecycle ------------------------------------------------------------
    def _start_entry(self, entry: _ModelEntry) -> None:
        for index, replica in enumerate(entry.replicas):
            thread = threading.Thread(
                target=self._worker_loop, args=(entry, replica),
                name=f"serve-{entry.name}-{index}", daemon=True)
            entry.threads.append(thread)
            thread.start()

    def start(self) -> "ModelServer":
        with self._lock:
            if self._closed:
                raise ServerClosed("server is shut down")
            if not self._started:
                self._started = True
                for entry in self._entries.values():
                    self._start_entry(entry)
        return self

    def shutdown(self, drain: bool = True, timeout: Optional[float] = 30.0) -> None:
        """Stop admission and join the workers.

        ``drain=True`` lets queued requests finish; ``drain=False`` fails
        every still-queued request with :class:`ServerClosed` (a batch a
        worker already popped for execution still completes — "queued"
        requests are the deterministic set here, not in-flight ones).
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._drain = drain
            entries = list(self._entries.values())
        for entry in entries:
            entry.batcher.close()
        if not drain:
            # workers woken by close() observe _drain=False and fail their
            # batches too, so this loop and the workers never both execute
            # the same request — whoever pops it fails it
            for entry in entries:
                while True:
                    batch = entry.batcher.next_batch()
                    if not batch:
                        break
                    for request in batch:
                        request.set_exception(ServerClosed("server shut down"))
        for entry in entries:
            for thread in entry.threads:
                thread.join(timeout)

    def __enter__(self) -> "ModelServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.shutdown()

    # -- request path ---------------------------------------------------------
    def submit(self, name: Optional[str], x: np.ndarray,
               timeout: Optional[float] = None) -> Request:
        """Enqueue one request; returns its future-style handle.

        ``name=None`` routes to the only registered model.  Raises
        :class:`~repro.serve.batcher.ServerOverloaded` when the queue is
        full under the shed policy (``timeout`` bounds the wait under the
        block policy).
        """
        entry = self._entry(name)
        payload = np.asarray(x, dtype=entry.dtype)
        if entry.input_shape is not None and payload.shape != entry.input_shape:
            raise ValueError(
                f"model {entry.name!r} expects input shape {entry.input_shape}, "
                f"got {payload.shape}")
        try:
            return entry.batcher.submit(payload, timeout=timeout)
        except ServerOverloaded:
            entry.metrics.record_shed()
            raise

    def predict(self, name: Optional[str], x: np.ndarray,
                timeout: Optional[float] = 60.0) -> np.ndarray:
        """Blocking single-request convenience wrapper around :meth:`submit`."""
        return self.submit(name, x).result(timeout)

    def predict_many(self, name: Optional[str], inputs: np.ndarray,
                     timeout: Optional[float] = 60.0) -> np.ndarray:
        """Submit every row of ``inputs`` and gather outputs in order.

        This is the client-side fan-out that gives the batcher something to
        coalesce — all requests are enqueued before the first result is
        awaited.
        """
        handles = [self.submit(name, row) for row in np.asarray(inputs)]
        return np.stack([handle.result(timeout) for handle in handles])

    # -- worker ---------------------------------------------------------------
    def _worker_loop(self, entry: _ModelEntry, model: Module) -> None:
        while True:
            batch = entry.batcher.next_batch()
            if batch is None:
                return
            if not self._drain:  # no-drain shutdown: fail, don't execute
                for request in batch:
                    request.set_exception(ServerClosed("server shut down"))
                continue
            self._execute(entry, model, batch)

    def _execute(self, entry: _ModelEntry, model: Module,
                 batch: List[Request]) -> None:
        started = time.perf_counter()
        try:
            stacked = np.stack([request.payload for request in batch])
            if entry.policy.pad_to_full_batch:
                outputs = forward_padded(model, stacked,
                                         entry.policy.max_batch_size)
            else:
                outputs = np.asarray(model.forward(stacked))
        except Exception as error:  # noqa: BLE001 - failures propagate per request
            for request in batch:
                entry.metrics.record_failure()
                request.set_exception(error)
            return
        entry.metrics.record_batch(len(batch))
        for row, request in enumerate(batch):
            request.set_result(outputs[row])
            entry.metrics.record_request(
                latency_s=request.completed_at - request.enqueued_at,
                queue_wait_s=started - request.enqueued_at)

    # -- stats ----------------------------------------------------------------
    def stats_report(self) -> Dict[str, Any]:
        """JSON-able server stats: per-model latency/throughput/batch mix."""
        report = self._stats.report()
        with self._lock:
            report["queues"] = {name: entry.batcher.qsize()
                                for name, entry in self._entries.items()}
            report["policies"] = {
                name: {
                    "max_batch_size": entry.policy.max_batch_size,
                    "max_wait_ms": entry.policy.max_wait_ms,
                    "max_queue_size": entry.policy.max_queue_size,
                    "overload": entry.policy.overload,
                    "workers": len(entry.replicas),
                }
                for name, entry in self._entries.items()
            }
        return report
