"""The dynamic-batching model server over compressed-domain inference.

:class:`ModelServer` holds a registry of named models, each with its own
:class:`~repro.serve.batcher.DynamicBatcher`, batching policy, worker pool
and :class:`~repro.serve.metrics.ServingMetrics`.  Workers pull coalesced
batches off the queue, stack the request payloads, forward them at the
canonical padded batch shape (:func:`repro.nn.serve.forward_padded`) and
scatter the output rows back to the per-request futures.

Models are served from the compressed-domain modules of
:mod:`repro.nn.compressed` (the loader swaps them in), so a running server
never materialises dense weights per request — batching amortises the
remaining per-call Python/layer overhead across coalesced requests, which
is where the >=1.5x throughput over single-image serving comes from.

Worker pools: a model registered with ``replicas=[m1, m2]`` gets one worker
thread per replica, all draining the same queue.  Replicas must be
independent model objects — the engines' caches and im2col buffers are not
thread-safe, so a model instance is never shared between workers.

Failure handling (see :mod:`repro.serve.errors` for the taxonomy) is
governed by a per-model :class:`FaultPolicy`:

* **deadlines** — a request admitted with a deadline is resolved with
  :class:`~repro.serve.errors.RequestTimeout` once it elapses, whether the
  request is still queued, mid-retry, or waiting out a quarantine.
* **retry with backoff** — a failed batch puts its requests back at the
  front of the queue after an exponential backoff; with multiple replicas
  the retry is naturally picked up by a *different* (healthy) worker.  The
  budget is bounded: a request is resolved with
  :class:`~repro.serve.errors.RequestFailed` after ``max_retries``
  re-executions.
* **quarantine / re-warm** — a replica failing ``quarantine_after``
  consecutive batches is benched: its worker stops taking work, waits
  ``rewarm_after_ms``, re-warms the model with a synthetic forward and
  re-admits itself (counted as a restart).  While benched it keeps expiring
  deadlined requests so nothing hangs even with *every* replica benched.
* **graceful degradation** — an :class:`~repro.serve.errors.EngineFault`
  (the compressed centroid engine failing) flips the replica's engines to
  the dense reconstruct path — bit-identical outputs, slower — and re-runs
  the batch instead of failing it.

All of it is instrumented with the ``serve.replica.*`` fault points of
:mod:`repro.core.faults`, so a seeded :class:`FaultPlan` can drive every
one of these paths deterministically (the chaos CI gate does exactly that).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core import telemetry
from repro.core.faults import FaultPlan, FaultRule, fault_point
from repro.nn.module import Module
from repro.nn.serve import forward_padded, prepare_for_serving
from repro.serve.batcher import BatchPolicy, DynamicBatcher, Request
from repro.serve.errors import (
    EngineFault,
    ReplicaUnavailable,
    RequestFailed,
    RequestTimeout,
    ServerClosed,
    ServerOverloaded,
)
from repro.serve.metrics import ServingMetrics, StatsRegistry


@dataclass(frozen=True)
class FaultPolicy:
    """Per-model failure-handling knobs.

    ``max_retries``
        Re-executions granted to a request after its first failed attempt;
        past the budget it resolves with :class:`RequestFailed`.
    ``backoff_initial_ms`` / ``backoff_multiplier``
        Exponential backoff between retry attempts.
    ``deadline_ms``
        Per-request wall-clock budget from admission; ``None`` disables
        deadlines (requests then only resolve by success, retry exhaustion
        or shutdown).
    ``quarantine_after``
        Consecutive failed batches before a replica is benched; ``0``
        disables quarantine.
    ``rewarm_after_ms``
        How long a benched replica sits out before re-warming.
    ``degrade_on_engine_fault``
        On :class:`EngineFault`, switch the replica's compressed engines to
        the dense reconstruct path and re-run the batch (bit-identical
        outputs) instead of counting a failure.
    ``reject_when_unavailable``
        With every replica quarantined, reject new submissions with
        :class:`ReplicaUnavailable` instead of queueing them until a
        re-warm (deadlines still bound the queued wait either way).
    """

    max_retries: int = 2
    backoff_initial_ms: float = 2.0
    backoff_multiplier: float = 2.0
    deadline_ms: Optional[float] = None
    quarantine_after: int = 3
    rewarm_after_ms: float = 50.0
    degrade_on_engine_fault: bool = True
    reject_when_unavailable: bool = False

    def __post_init__(self):
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.backoff_initial_ms < 0:
            raise ValueError("backoff_initial_ms must be >= 0")
        if self.backoff_multiplier < 1.0:
            raise ValueError("backoff_multiplier must be >= 1")
        if self.deadline_ms is not None and self.deadline_ms <= 0:
            raise ValueError("deadline_ms must be positive (or None)")
        if self.quarantine_after < 0:
            raise ValueError("quarantine_after must be >= 0")
        if self.rewarm_after_ms < 0:
            raise ValueError("rewarm_after_ms must be >= 0")

    def backoff_s(self, attempt: int) -> float:
        """Backoff before retry number ``attempt`` (1-based)."""
        return (self.backoff_initial_ms / 1e3
                * self.backoff_multiplier ** max(0, attempt - 1))


class _ReplicaState:
    """Supervision record of one replica: health + failure streak."""

    def __init__(self, model: Module, index: int):
        self.model = model
        self.index = index
        self.consecutive_failures = 0
        self.healthy = True
        self.degraded = False


#: serving_stats keys surfaced per layer in the server's engine report
_ENGINE_STAT_KEYS = ("mode", "last_mode", "assignments_dtype",
                     "lut_table_bytes", "table_size")


def replica_engine_stats(replica: Module) -> Dict[str, Any]:
    """Per-layer compressed-engine stats of one serving replica.

    Thread replicas are walked in-process; process-replica proxies (which
    expose ``info()``) report from inside their worker, so the modes shown
    are the ones actually pinned in the serving process.  Models without
    compressed engines yield ``{}``.
    """
    info_fn = getattr(replica, "info", None)
    if callable(info_fn):
        try:
            return dict(info_fn().get("engines", {}))
        except Exception:  # noqa: BLE001 - stats must never take a server down
            return {}
    engines: Dict[str, Any] = {}
    for name, module in replica.named_modules():
        engine = getattr(module, "engine", None)
        if engine is None:
            continue
        stats = engine.serving_stats()
        engines[name] = {key: stats[key] for key in _ENGINE_STAT_KEYS}
    return engines


class _ModelEntry:
    """Internal registry record: queue + replicas + workers + metrics."""

    def __init__(self, name: str, replicas: Sequence[Module],
                 policy: BatchPolicy,
                 fault_policy: FaultPolicy,
                 metrics: Optional[ServingMetrics] = None,
                 input_shape: Optional[Tuple[int, ...]] = None,
                 dtype=np.float64):
        self.name = name
        self.policy = policy
        self.fault_policy = fault_policy
        self.metrics = metrics
        self.input_shape = None if input_shape is None else tuple(input_shape)
        self.dtype = np.dtype(dtype)
        self.batcher = DynamicBatcher(policy)
        self.threads: List[threading.Thread] = []
        self.replica_states = [_ReplicaState(m, i)
                               for i, m in enumerate(replicas)]
        self.health_lock = threading.Lock()

    @property
    def replicas(self) -> List[Module]:
        return [state.model for state in self.replica_states]

    def healthy_replicas(self) -> int:
        with self.health_lock:
            return sum(1 for s in self.replica_states if s.healthy)


def serving_chaos_plan(rate: float, seed: int = 0,
                       delay_ms: float = 2.0) -> FaultPlan:
    """The canonical chaos mix for the serving tier.

    ``rate`` is the total per-forward injection probability, split across
    replica crashes (1/2), engine faults that exercise the dense-degradation
    path (1/4) and slow forwards (1/4).  Used by the chaos CI gate, the
    fault-mode serving benchmark and ``python -m repro.serve --faults``.
    """
    if not 0.0 <= rate <= 1.0:
        raise ValueError(f"fault rate must be in [0, 1], got {rate}")
    return FaultPlan([
        FaultRule("serve.replica.forward", probability=rate / 2),
        FaultRule("serve.replica.forward", probability=rate / 4,
                  error="engine"),
        FaultRule("serve.replica.forward", probability=rate / 4,
                  kind="delay", delay_ms=delay_ms),
    ], seed=seed)


class ModelServer:
    """Multi-model, dynamically-batching inference server.

    >>> server = ModelServer()
    >>> server.register("resnet", model, input_shape=(3, 16, 16),
    ...                 policy=BatchPolicy(max_batch_size=8, max_wait_ms=2.0),
    ...                 fault_policy=FaultPolicy(max_retries=3,
    ...                                          deadline_ms=500.0))
    >>> with server:                      # starts workers, joins on exit
    ...     out = server.predict("resnet", image)          # blocking
    ...     handle = server.submit("resnet", image)        # async
    ...     out2 = handle.result(timeout=5.0)
    >>> server.stats_report()["models"]["resnet"]["latency_ms"]["p95"]
    """

    def __init__(self, policy: Optional[BatchPolicy] = None,
                 fault_policy: Optional[FaultPolicy] = None,
                 stats_window: int = 4096):
        self.default_policy = policy or BatchPolicy()
        self.default_fault_policy = fault_policy or FaultPolicy()
        self.stats_window = stats_window
        self._entries: Dict[str, _ModelEntry] = {}
        self._stats = StatsRegistry()
        self._lock = threading.Lock()
        self._started = False
        self._closed = False
        self._closing = threading.Event()  # cuts re-warm waits short
        self._drain = True  # False during a no-drain shutdown: workers fail
                            # popped batches instead of executing them

    # -- registry -------------------------------------------------------------
    def register(self, name: str, model: Union[Module, Sequence[Module]],
                 policy: Optional[BatchPolicy] = None,
                 fault_policy: Optional[FaultPolicy] = None,
                 input_shape: Optional[Tuple[int, ...]] = None,
                 dtype=np.float64, warmup: bool = True) -> None:
        """Add a model (or a list of replicas — one worker thread each).

        ``input_shape`` enables submit-time shape validation and, together
        with ``warmup``, pre-builds every replica's serving caches at the
        canonical batch shape before the first request lands.
        ``fault_policy`` overrides the server-wide retry/deadline/quarantine
        defaults for this model.
        """
        replicas = [model] if isinstance(model, Module) else list(model)
        if not replicas:
            raise ValueError("register needs at least one model replica")
        if len(set(map(id, replicas))) != len(replicas):
            raise ValueError("replicas must be distinct model objects "
                             "(engines/buffers are not thread-safe)")
        with self._lock:
            if self._closed:
                raise ServerClosed("server is shut down")
            if name in self._entries:
                raise ValueError(f"model {name!r} is already registered")
        # warm *before* publishing the entry: a replica that cannot forward
        # at the canonical shape must fail this call, not linger as a
        # registered model whose queue no worker ever drains
        entry = _ModelEntry(name, replicas, policy or self.default_policy,
                            fault_policy or self.default_fault_policy,
                            input_shape=input_shape, dtype=dtype)
        if warmup and entry.input_shape is not None:
            for replica in entry.replicas:
                prepare_for_serving(replica, entry.input_shape,
                                    entry.policy.max_batch_size, entry.dtype)
        else:
            for replica in entry.replicas:
                replica.eval()
        with self._lock:
            if self._closed:
                raise ServerClosed("server is shut down")
            if name in self._entries:
                raise ValueError(f"model {name!r} is already registered")
            entry.metrics = self._stats.for_model(name, self.stats_window)
            self._entries[name] = entry
            if self._started:
                self._start_entry(entry)

    def models(self) -> List[str]:
        with self._lock:
            return sorted(self._entries)

    def _entry(self, name: Optional[str]) -> _ModelEntry:
        with self._lock:
            if name is None:
                if len(self._entries) != 1:
                    raise KeyError(
                        "model name required when serving "
                        f"{len(self._entries)} models: {sorted(self._entries)}")
                return next(iter(self._entries.values()))
            try:
                return self._entries[name]
            except KeyError:
                raise KeyError(f"unknown model {name!r}; registered: "
                               f"{sorted(self._entries)}") from None

    # -- lifecycle ------------------------------------------------------------
    def _start_entry(self, entry: _ModelEntry) -> None:
        for state in entry.replica_states:
            thread = threading.Thread(
                target=self._worker_loop, args=(entry, state),
                name=f"serve-{entry.name}-{state.index}", daemon=True)
            entry.threads.append(thread)
            thread.start()

    def start(self) -> "ModelServer":
        with self._lock:
            if self._closed:
                raise ServerClosed("server is shut down")
            if not self._started:
                self._started = True
                for entry in self._entries.values():
                    self._start_entry(entry)
        return self

    def shutdown(self, drain: bool = True, timeout: Optional[float] = 30.0) -> None:
        """Stop admission and join the workers.

        ``drain=True`` lets queued requests finish — including requests in
        retry backoff and replicas mid-quarantine (the re-warm wait is cut
        short); every queued request resolves with a result or a typed
        error.  ``drain=False`` fails every still-queued request with
        :class:`ServerClosed` (a batch a worker already popped for execution
        still completes — "queued" requests are the deterministic set here,
        not in-flight ones).
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._drain = drain
            entries = list(self._entries.values())
        self._closing.set()
        for entry in entries:
            entry.batcher.close()
        if not drain:
            # workers woken by close() observe _drain=False and fail their
            # batches too, so this loop and the workers never both execute
            # the same request — whoever pops it fails it
            for entry in entries:
                while True:
                    batch = entry.batcher.next_batch()
                    if not batch:
                        break
                    for request in batch:
                        request.set_exception(ServerClosed("server shut down"))
        for entry in entries:
            for thread in entry.threads:
                thread.join(timeout)

    def __enter__(self) -> "ModelServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.shutdown()

    # -- request path ---------------------------------------------------------
    def submit(self, name: Optional[str], x: np.ndarray,
               timeout: Optional[float] = None,
               deadline_ms: Optional[float] = None) -> Request:
        """Enqueue one request; returns its future-style handle.

        ``name=None`` routes to the only registered model.  Raises
        :class:`~repro.serve.errors.ServerOverloaded` when the queue is
        full under the shed policy (``timeout`` bounds the wait under the
        block policy).  ``deadline_ms`` overrides the model's fault-policy
        deadline for this request.
        """
        entry = self._entry(name)
        payload = np.asarray(x, dtype=entry.dtype)
        if entry.input_shape is not None and payload.shape != entry.input_shape:
            raise ValueError(
                f"model {entry.name!r} expects input shape {entry.input_shape}, "
                f"got {payload.shape}")
        if (entry.fault_policy.reject_when_unavailable
                and entry.healthy_replicas() == 0):
            entry.metrics.record_shed()
            telemetry.event("serve.shed", model=entry.name,
                            reason="replicas_unavailable")
            raise ReplicaUnavailable(
                f"model {entry.name!r}: all {len(entry.replica_states)} "
                "replicas are quarantined")
        if deadline_ms is None:
            deadline_ms = entry.fault_policy.deadline_ms
        deadline_s = None if deadline_ms is None else deadline_ms / 1e3
        try:
            return entry.batcher.submit(payload, timeout=timeout,
                                        deadline_s=deadline_s)
        except ServerOverloaded:
            entry.metrics.record_shed()
            telemetry.event("serve.shed", model=entry.name,
                            reason="queue_full")
            raise

    def predict(self, name: Optional[str], x: np.ndarray,
                timeout: Optional[float] = 60.0) -> np.ndarray:
        """Blocking single-request convenience wrapper around :meth:`submit`."""
        return self.submit(name, x).result(timeout)

    def predict_many(self, name: Optional[str], inputs: np.ndarray,
                     timeout: Optional[float] = 60.0) -> np.ndarray:
        """Submit every row of ``inputs`` and gather outputs in order.

        This is the client-side fan-out that gives the batcher something to
        coalesce — all requests are enqueued before the first result is
        awaited.
        """
        handles = [self.submit(name, row) for row in np.asarray(inputs)]
        return np.stack([handle.result(timeout) for handle in handles])

    # -- worker ---------------------------------------------------------------
    def _worker_loop(self, entry: _ModelEntry, state: _ReplicaState) -> None:
        while True:
            batch = entry.batcher.next_batch()
            if batch is None:
                return
            if not self._drain:  # no-drain shutdown: fail, don't execute
                for request in batch:
                    request.set_exception(ServerClosed("server shut down"))
                continue
            live = self._drop_expired(entry, batch)
            if not live:
                continue
            if self._execute(entry, state, live):
                state.consecutive_failures = 0
            elif (entry.fault_policy.quarantine_after > 0
                  and state.consecutive_failures
                  >= entry.fault_policy.quarantine_after):
                self._quarantine_and_rewarm(entry, state)

    def _drop_expired(self, entry: _ModelEntry,
                      batch: List[Request]) -> List[Request]:
        """Resolve deadline-expired requests; return the still-live rest."""
        now = time.perf_counter()
        live = []
        for request in batch:
            if request.expired(now):
                entry.metrics.record_timeout()
                telemetry.event("serve.timeout", model=entry.name,
                                request=request.id, phase="queued")
                request.set_exception(RequestTimeout(
                    f"request {request.id} missed its deadline after "
                    f"{now - request.enqueued_at:.3f}s "
                    f"({request.attempts} failed attempts)"))
            else:
                live.append(request)
        return live

    def _forward_replica(self, entry: _ModelEntry, state: _ReplicaState,
                         stacked: np.ndarray) -> np.ndarray:
        fault_point("serve.replica.forward")
        if entry.policy.pad_to_full_batch:
            return forward_padded(state.model, stacked,
                                  entry.policy.max_batch_size)
        return np.asarray(state.model.forward(stacked))

    def _degrade(self, entry: _ModelEntry, state: _ReplicaState) -> None:
        """Pin every compressed engine of this replica to the dense
        reconstruct path.  Dense execution is bit-identical to the centroid
        engine (asserted by the compressed-inference tests), so degraded
        serves keep the server's bit-stability guarantee — they are just
        slower."""
        if state.degraded:
            return
        state.degraded = True
        telemetry.event("serve.degrade", model=entry.name,
                        replica=state.index)
        degrade = getattr(state.model, "degrade_to_dense", None)
        if degrade is not None:
            # process replicas (and any other proxy) own their degradation
            degrade()
            return
        for _, module in state.model.named_modules():
            engine = getattr(module, "engine", None)
            if engine is not None:
                engine.mode = "dense"

    def _execute(self, entry: _ModelEntry, state: _ReplicaState,
                 batch: List[Request]) -> bool:
        """Run one batch on one replica; resolve or re-route its requests.

        Returns ``True`` on success (results delivered), ``False`` when the
        batch failed and its requests were routed to retry / typed errors.
        """
        started = time.perf_counter()
        # hot path: branch on the tracer once so the disabled run never
        # allocates an attribute dict or a span object per batch
        tracer = telemetry.active_tracer()
        batch_span = (tracer.span("serve.batch",
                                  {"model": entry.name,
                                   "replica": state.index,
                                   "batch_size": len(batch)})
                      if tracer is not None else telemetry.NOOP)
        with batch_span:
            try:
                with (tracer.span("serve.batch.assemble")
                      if tracer is not None else telemetry.NOOP):
                    stacked = np.stack([request.payload for request in batch])
                forward_span = (tracer.span("serve.forward",
                                            {"replica": state.index})
                                if tracer is not None else telemetry.NOOP)
                try:
                    with forward_span:
                        outputs = self._forward_replica(entry, state, stacked)
                except EngineFault:
                    if not entry.fault_policy.degrade_on_engine_fault:
                        raise
                    self._degrade(entry, state)
                    with (tracer.span("serve.forward",
                                      {"replica": state.index,
                                       "degraded": True})
                          if tracer is not None else telemetry.NOOP):
                        outputs = self._forward_replica(entry, state, stacked)
                    entry.metrics.record_degraded(len(batch))
            except Exception as error:  # noqa: BLE001 - routed per request below
                self._handle_batch_failure(entry, state, batch, error)
                return False
            entry.metrics.record_batch(len(batch))
            for row, request in enumerate(batch):
                request.set_result(outputs[row])
                entry.metrics.record_request(
                    latency_s=request.completed_at - request.enqueued_at,
                    queue_wait_s=started - request.enqueued_at)
        if tracer is not None:
            tracer.counter_add("serve.batches")
            tracer.counter_add("serve.requests.completed", len(batch))
            for request in batch:
                # reconstruct the request's phases on the submitting
                # thread's track: enqueue -> queue-wait -> execute
                tid, thread = request.trace_tid, "client"
                if tid is None:
                    tid, thread = None, None
                tracer.record_span(
                    "serve.request", request.enqueued_at,
                    request.completed_at, tid=tid, thread=thread,
                    attrs={"id": request.id, "model": entry.name,
                           "attempts": request.attempts})
                tracer.record_span("serve.request.queue_wait",
                                   request.enqueued_at, started,
                                   tid=tid, thread=thread)
                tracer.record_span("serve.request.execute", started,
                                   request.completed_at, tid=tid,
                                   thread=thread)
        return True

    def _handle_batch_failure(self, entry: _ModelEntry, state: _ReplicaState,
                              batch: List[Request],
                              error: BaseException) -> None:
        """Route every request of a failed batch: retry, timeout, or fail."""
        policy = entry.fault_policy
        entry.metrics.record_replica_failure()
        state.consecutive_failures += 1
        now = time.perf_counter()
        for request in batch:
            request.attempts += 1
            if request.expired(now):
                entry.metrics.record_timeout()
                telemetry.event("serve.timeout", model=entry.name,
                                request=request.id, phase="retry",
                                attempts=request.attempts)
                request.set_exception(RequestTimeout(
                    f"request {request.id} missed its deadline during retry "
                    f"(attempt {request.attempts}: "
                    f"{type(error).__name__}: {error})"))
            elif request.attempts > policy.max_retries:
                entry.metrics.record_failure()
                telemetry.event("serve.failed", model=entry.name,
                                request=request.id,
                                attempts=request.attempts,
                                error=type(error).__name__)
                request.set_exception(RequestFailed(
                    f"request {request.id} failed after {request.attempts} "
                    f"attempts; last error: {type(error).__name__}: {error}",
                    cause=error, attempts=request.attempts))
            else:
                entry.metrics.record_retry()
                telemetry.event("serve.retry", model=entry.name,
                                request=request.id,
                                attempts=request.attempts,
                                error=type(error).__name__)
                entry.batcher.requeue_later(
                    request, policy.backoff_s(request.attempts))

    def _quarantine_and_rewarm(self, entry: _ModelEntry,
                               state: _ReplicaState) -> None:
        """Bench a repeatedly-failing replica, then re-warm and re-admit it.

        While benched, the worker keeps sweeping deadline-expired requests
        out of the queue so requests never hang even when every replica of
        the model is quarantined at once.  A shutdown cuts the bench wait
        short: the worker re-admits itself immediately and helps drain
        (bounded retries guarantee the drain still terminates if the fault
        persists).
        """
        policy = entry.fault_policy
        with entry.health_lock:
            state.healthy = False
        entry.metrics.record_quarantine()
        telemetry.event("serve.quarantine", model=entry.name,
                        replica=state.index,
                        consecutive_failures=state.consecutive_failures)
        rewarm_s = policy.rewarm_after_ms / 1e3
        while True:
            waited = 0.0
            while waited < rewarm_s and not self._closing.is_set():
                step = min(0.02, rewarm_s - waited)
                self._closing.wait(step)
                waited += step
                for request in entry.batcher.fail_expired():
                    entry.metrics.record_timeout()
                    request.set_exception(RequestTimeout(
                        f"request {request.id} missed its deadline while "
                        f"every healthy replica was busy or quarantined"))
            try:
                fault_point("serve.replica.warmup")
                if entry.input_shape is not None:
                    warm = np.zeros(
                        (entry.policy.max_batch_size, *entry.input_shape),
                        dtype=entry.dtype)
                    state.model.forward(warm)
            except Exception:  # noqa: BLE001 - stay benched, try again
                if self._closing.is_set():
                    break  # help drain regardless; retries bound the damage
                continue
            break
        with entry.health_lock:
            state.healthy = True
        state.consecutive_failures = 0
        entry.metrics.record_restart()
        telemetry.event("serve.restart", model=entry.name,
                        replica=state.index)

    # -- stats ----------------------------------------------------------------
    def health_report(self) -> Dict[str, Any]:
        """Per-model replica supervision state (healthy/degraded/streaks)."""
        with self._lock:
            entries = list(self._entries.items())
        report = {}
        for name, entry in entries:
            with entry.health_lock:
                report[name] = {
                    "replicas": [
                        {"index": s.index, "healthy": s.healthy,
                         "degraded": s.degraded,
                         "consecutive_failures": s.consecutive_failures}
                        for s in entry.replica_states
                    ],
                    "healthy": sum(1 for s in entry.replica_states
                                   if s.healthy),
                }
        return report

    def stats_report(self) -> Dict[str, Any]:
        """JSON-able server stats: per-model latency/throughput/batch mix
        plus the per-layer engine report (resolved mode, LUT table bytes)."""
        with self._lock:
            entries = list(self._entries.items())
        for name, entry in entries:
            engines = replica_engine_stats(entry.replicas[0])
            if engines:
                self._stats.set_info(name, {"engines": engines})
        report = self._stats.report()
        with self._lock:
            report["queues"] = {name: entry.batcher.qsize()
                                for name, entry in self._entries.items()}
            report["policies"] = {
                name: {
                    "max_batch_size": entry.policy.max_batch_size,
                    "max_wait_ms": entry.policy.max_wait_ms,
                    "max_queue_size": entry.policy.max_queue_size,
                    "overload": entry.policy.overload,
                    "workers": len(entry.replica_states),
                    "max_retries": entry.fault_policy.max_retries,
                    "deadline_ms": entry.fault_policy.deadline_ms,
                    "quarantine_after": entry.fault_policy.quarantine_after,
                }
                for name, entry in self._entries.items()
            }
        report["health"] = self.health_report()
        return report
