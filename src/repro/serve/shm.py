"""Zero-copy shared-memory arena for compressed-model serving state.

One :class:`ShmArena` holds every read-only array a serving worker needs —
deduplicated codebooks, assignments, masks and the non-compressed state
dict (see :func:`repro.core.serialization.serving_arrays`) — in a single
``multiprocessing.shared_memory`` segment.  N worker processes attach the
segment and build their models directly on views of it, so the model
exists **once** in physical memory no matter how many workers serve it:
the software mirror of the paper's accelerator keeping one copy of the
compressed tables that every compute unit reads.

Segment layout::

    [ magic | version | manifest_len | owner_pid | refcount ]   fixed header
    [ manifest JSON ]                                           array table
    [ 64-byte-aligned array payloads ... ]

The manifest records each array's name/dtype/shape/offset plus an arbitrary
JSON ``meta`` blob (the serving manifest), so ``attach()`` needs nothing but
the segment name.

Lifecycle guarantees:

* **refcounted attach/detach** — the header refcount is maintained under an
  ``flock`` on the ``/dev/shm`` file, so concurrent attaches from different
  processes stay consistent; ``refcount()`` is introspection for tests and
  supervision, not a deletion trigger.
* **guaranteed unlink** — the creating process unlinks on ``close()`` and
  again from an ``atexit`` hook, so a clean shutdown never leaks a segment.
  A SIGKILL'd *worker* cannot leak or destroy the segment either: attached
  handles are deliberately excluded from CPython's ``resource_tracker``
  (whose default behaviour would unlink the segment when any attaching
  process dies — exactly wrong for a shared arena).
* **stale-segment takeover** — if the creator itself was SIGKILL'd, the next
  ``create()`` under the same name finds the stale segment, checks the
  recorded owner pid is dead, unlinks it and re-creates.

Double-``close()`` is safe, and closing with live views outstanding (a
worker's engines keep views until process exit) degrades gracefully: the
mapping is released by process teardown instead.
"""

from __future__ import annotations

import atexit
import json
import os
import secrets
import struct
from contextlib import contextmanager
from typing import Any, Dict, Iterator, Optional

import numpy as np

try:  # POSIX only; the refcount falls back to best-effort without it
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None

from multiprocessing import shared_memory

from repro.serve.errors import ArenaError

_MAGIC = b"MVQARENA"
_VERSION = 1
#: header: magic(8) + version(u32) + manifest_len(u32) + owner_pid(u64) +
#: refcount(i64)
_HEADER = struct.Struct("<8sIIQq")
_REFCOUNT_OFFSET = _HEADER.size - 8
_ALIGN = 64


def _align(n: int) -> int:
    return (n + _ALIGN - 1) // _ALIGN * _ALIGN


def _pid_alive(pid: int) -> bool:
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - exists but not ours
        return True
    return True


def _untracked_attach(name: str) -> shared_memory.SharedMemory:
    """Attach a segment without registering it with the resource tracker.

    CPython's tracker registers *attaches* too, so a worker process dying
    (even cleanly) would unlink the shared segment under everyone else.
    Python 3.13 grew ``track=False`` for exactly this; older versions need
    the explicit unregister.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13
        # Suppress the tracker registration during attach rather than
        # unregistering afterwards: spawned workers share the parent's
        # tracker process (whose cache is a *set* per resource type), so an
        # attach-then-unregister from any worker would silently erase the
        # creator's own registration — the crash safety net.
        from multiprocessing import resource_tracker

        original = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original


@contextmanager
def _segment_lock(name: str) -> Iterator[bool]:
    """``flock`` on the segment's ``/dev/shm`` file (refcount atomicity)."""
    path = f"/dev/shm/{name}"
    if fcntl is None or not os.path.exists(path):
        yield False
        return
    fd = os.open(path, os.O_RDWR)
    try:
        fcntl.flock(fd, fcntl.LOCK_EX)
        yield True
    finally:
        os.close(fd)  # closing the fd releases the lock


#: arenas created by this process, for the atexit unlink sweep
_CREATED: Dict[str, "ShmArena"] = {}


def _atexit_unlink() -> None:  # pragma: no cover - exercised via subprocess
    for arena in list(_CREATED.values()):
        arena.close()


atexit.register(_atexit_unlink)


class ShmArena:
    """A named shared-memory segment of read-only numpy arrays + manifest."""

    def __init__(self, shm: shared_memory.SharedMemory, *, owner: bool):
        self._shm = shm
        self._owner = owner
        self._closed = False
        self._unlinked = False

        header = bytes(shm.buf[:_HEADER.size])
        magic, version, manifest_len, owner_pid, _ = _HEADER.unpack(header)
        if magic != _MAGIC:
            raise ArenaError(shm.name, "not an MVQ arena (bad magic)")
        if version != _VERSION:
            raise ArenaError(
                shm.name, f"arena version {version} != supported {_VERSION}")
        self.owner_pid = int(owner_pid)
        table = json.loads(
            bytes(shm.buf[_HEADER.size:_HEADER.size + manifest_len]))
        self.meta: Dict[str, Any] = table.get("meta", {})
        data_start = _align(_HEADER.size + manifest_len)
        self._entries = table["arrays"]
        self._views: Dict[str, np.ndarray] = {}
        for entry in self._entries:
            view = np.frombuffer(
                shm.buf, dtype=np.dtype(entry["dtype"]),
                count=int(np.prod(entry["shape"], dtype=np.int64)),
                offset=data_start + entry["offset"],
            ).reshape(entry["shape"])
            view.flags.writeable = False
            self._views[entry["name"]] = view

    # -- construction ---------------------------------------------------------
    @classmethod
    def create(cls, arrays: Dict[str, np.ndarray],
               meta: Optional[Dict[str, Any]] = None,
               name: Optional[str] = None) -> "ShmArena":
        """Serialize ``arrays`` (+ JSON ``meta``) into a new shared segment.

        An existing segment under the same explicit ``name`` is taken over
        only if its recorded owner process is dead (stale after a crash);
        a live owner makes this an :class:`ArenaError`.
        """
        name = name or f"mvq_{os.getpid():x}_{secrets.token_hex(4)}"
        entries = []
        offset = 0
        for key, array in arrays.items():
            array = np.ascontiguousarray(array)
            entries.append({"name": key, "dtype": array.dtype.str,
                            "shape": list(array.shape), "offset": offset})
            offset = _align(offset + array.nbytes)
        manifest = json.dumps({"arrays": entries, "meta": meta or {}},
                              sort_keys=True).encode("utf-8")
        data_start = _align(_HEADER.size + len(manifest))
        total = max(1, data_start + offset)

        try:
            shm = shared_memory.SharedMemory(name=name, create=True,
                                             size=total)
        except FileExistsError:
            cls._takeover_stale(name)
            shm = shared_memory.SharedMemory(name=name, create=True,
                                             size=total)

        shm.buf[:_HEADER.size] = _HEADER.pack(
            _MAGIC, _VERSION, len(manifest), os.getpid(), 1)
        shm.buf[_HEADER.size:_HEADER.size + len(manifest)] = manifest
        for entry, (key, array) in zip(entries, arrays.items()):
            array = np.ascontiguousarray(array)
            target = np.frombuffer(shm.buf, dtype=array.dtype,
                                   count=array.size,
                                   offset=data_start + entry["offset"])
            target[:] = array.reshape(-1)
            del target  # drop the exported buffer before any close()

        arena = cls(shm, owner=True)
        _CREATED[name] = arena
        return arena

    @staticmethod
    def _takeover_stale(name: str) -> None:
        """Unlink an existing segment iff its creator is dead."""
        try:
            stale = _untracked_attach(name)
        except FileNotFoundError:
            return  # raced with its own cleanup
        try:
            header = bytes(stale.buf[:_HEADER.size])
            magic = header[:8]
            owner_pid = _HEADER.unpack(header)[3] if magic == _MAGIC else 0
            if magic == _MAGIC and _pid_alive(int(owner_pid)):
                raise ArenaError(
                    name, f"segment exists and its owner (pid {owner_pid}) "
                          "is alive")
        finally:
            stale.close()
        stale.unlink()

    @classmethod
    def attach(cls, name: str) -> "ShmArena":
        """Attach an existing arena by name; bumps the refcount."""
        try:
            shm = _untracked_attach(name)
        except FileNotFoundError:
            raise ArenaError(name, "no such shared-memory segment "
                                   "(arena gone or never created)") from None
        arena = cls(shm, owner=False)
        arena._bump_refcount(+1)
        return arena

    # -- refcount -------------------------------------------------------------
    def _bump_refcount(self, delta: int) -> int:
        with _segment_lock(self.name):
            (count,) = struct.unpack_from("<q", self._shm.buf,
                                          _REFCOUNT_OFFSET)
            count = max(0, count + delta)
            struct.pack_into("<q", self._shm.buf, _REFCOUNT_OFFSET, count)
        return count

    def refcount(self) -> int:
        """Current attach count (creator counts as 1)."""
        (count,) = struct.unpack_from("<q", self._shm.buf, _REFCOUNT_OFFSET)
        return int(count)

    # -- access ---------------------------------------------------------------
    @property
    def name(self) -> str:
        return self._shm.name

    @property
    def nbytes(self) -> int:
        return self._shm.size

    @property
    def views(self) -> Dict[str, np.ndarray]:
        """Name -> read-only array view over the shared segment."""
        return dict(self._views)

    def owns(self, array: np.ndarray) -> bool:
        """Whether ``array``'s storage lives inside this segment."""
        if self._closed:
            return False
        probe = np.frombuffer(self._shm.buf, dtype=np.uint8)
        try:
            return bool(np.may_share_memory(array, probe))
        finally:
            del probe

    # -- teardown -------------------------------------------------------------
    def close(self) -> None:
        """Detach (drop the refcount); the creator also unlinks.

        Idempotent.  If live views are still referenced elsewhere (a serving
        model keeps engine views until process exit) the unmap is skipped —
        process teardown releases it — but the unlink still happens, so no
        ``/dev/shm`` entry outlives the owner's clean shutdown.
        """
        if self._closed:
            return
        self._closed = True
        try:
            self._bump_refcount(-1)
        except Exception:  # segment may already be gone under us
            pass
        self._views.clear()
        try:
            self._shm.close()
        except BufferError:
            # Outstanding numpy views still export the buffer.  Release the
            # fd and drop our handles — the mmap stays alive exactly as long
            # as the views do, and dies with them (or with the process).
            # This also keeps SharedMemory.__del__ from re-raising at exit.
            if getattr(self._shm, "_fd", -1) >= 0:
                os.close(self._shm._fd)
                self._shm._fd = -1
            self._shm._buf = None
            self._shm._mmap = None
        if self._owner:
            self.unlink()
        _CREATED.pop(self._shm.name, None)

    def unlink(self) -> None:
        """Remove the segment name (idempotent); attached views survive."""
        if self._unlinked:
            return
        self._unlinked = True
        try:
            self._shm.unlink()
        except FileNotFoundError:
            pass
        _CREATED.pop(self._shm.name, None)

    def __enter__(self) -> "ShmArena":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
