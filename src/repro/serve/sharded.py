"""Sharded multi-process serving: worker processes over one shared arena.

The thread-replica server (:mod:`repro.serve.server`) is capped by the GIL
— N worker threads buy overlap on BLAS-released sections but not N cores.
This module shards serving across *processes* while keeping model state
physical-copy-count at **one**:

* A :class:`ProcessReplicaPool` packs the compressed model's read-only
  arrays — deduplicated codebooks, assignments, masks, and the
  non-compressed parameters/buffers — into a single
  :class:`~repro.serve.shm.ShmArena`.
* Each worker process (:func:`_worker_main`, spawned via the portable
  ``spawn`` start method) attaches the arena, rebuilds the bare
  architecture from a picklable *builder spec*, swaps in the decode-free
  compressed modules directly over the shared views (``np.asarray`` at
  matching dtype is a no-op — zero bytes copied), adopts the shared
  parameters/buffers, and serves batches over a pipe.
* The parent-side :class:`ProcessReplica` is a :class:`~repro.nn.module.
  Module` proxy: ``forward(batch)`` ships the batch to the worker and
  returns its output bit-for-bit.  That makes a process replica a drop-in
  replica for :class:`~repro.serve.server.ModelServer` — the dynamic
  batcher, fault policy, retry/quarantine and drain machinery all apply
  unchanged, and per-worker private memory stays O(activations), not
  O(model).

Failure handling: a dead, hung or pipe-broken worker surfaces as a typed
:class:`~repro.serve.errors.WorkerFault` (never a hang — every receive is
a poll loop with liveness checks), the server's fault policy retries the
batch, and the next forward on that replica re-spawns the worker and
re-attaches it to the arena (re-applying dense degradation if the replica
had been degraded).  The ``serve.worker.spawn`` / ``serve.worker.ipc``
fault points let a seeded :class:`~repro.core.faults.FaultPlan` drive
these paths deterministically, and ``serve.replica.forward`` fires in the
*parent* thread, so existing chaos plans exercise process replicas
unmodified.

Spawn vs fork: ``spawn`` is the default (and the right choice) because
re-spawn happens from the server's worker threads — forking a threaded
process is undefined-behaviour territory — and because it is the only
start method portable across Linux/macOS.  Workers therefore import
:mod:`repro` afresh; model *state* never travels over the pipe, only the
arena name does.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import threading
import time
from types import SimpleNamespace
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core import telemetry
from repro.core.faults import fault_point
from repro.nn.module import Module
from repro.serve.errors import EngineFault, WorkerFault
from repro.serve.shm import ShmArena

__all__ = ["ProcessReplica", "ProcessReplicaPool", "worker_chaos_plan"]

#: globally unique forward sequence numbers (across replicas and pools), so
#: a traced worker-side span is unambiguously matched to the one parent-side
#: IPC window that observed it
_forward_seq = itertools.count(1)


# -- worker-process side -------------------------------------------------------

def _build_architecture(builder: Tuple) -> Module:
    """Rebuild a bare (uncompressed) model from a picklable builder spec.

    ``("zoo", name, kwargs)`` builds from :data:`repro.nn.models.MODEL_ZOO`;
    ``("scenario", name)`` from a registered pipeline scenario;
    ``("factory", fn, kwargs)`` calls a picklable factory directly.
    """
    kind = builder[0]
    if kind == "zoo":
        from repro.nn.models import get_model_factory

        return get_model_factory(builder[1])(**(builder[2] or {}))
    if kind == "scenario":
        from repro.pipeline.scenarios import get_scenario

        return get_scenario(builder[1]).build_model()
    if kind == "factory":
        return builder[1](**(builder[2] or {}))
    raise ValueError(f"unknown builder spec kind {kind!r}")


def _build_worker_model(spec: Dict[str, Any], arena: ShmArena) -> Module:
    """One serving-ready model built directly over the arena's views."""
    from repro.core.serialization import (
        DERIVED_PREFIX,
        STATE_PREFIX,
        layers_from_serving_arrays,
    )
    from repro.nn.compressed import swap_to_compressed
    from repro.nn.serve import prepare_for_serving
    from repro.serve.loader import adopt_state_views

    views = arena.views
    layer_views = {name: view for name, view in views.items()
                   if not name.startswith((STATE_PREFIX, DERIVED_PREFIX))}
    layers = layers_from_serving_arrays(arena.meta["serving"], layer_views)
    model = _build_architecture(spec["builder"])
    swapped = swap_to_compressed(model, SimpleNamespace(layers=layers),
                                 mode=spec["mode"])
    # adopt the warmed source engines' derived tables (effective-codeword
    # table, LUT routing tables, dtype caches) from the arena and pin each
    # engine to the mode the source resolved — a pinned "lut"/"lut_quant"
    # engine survives the spawn with zero table rebuilds
    for name, info in (arena.meta.get("derived") or {}).items():
        module = swapped.get(name)
        if module is None:
            continue
        prefix = f"{DERIVED_PREFIX}{name.replace('.', '__')}::"
        derived = {vn[len(prefix):]: view for vn, view in views.items()
                   if vn.startswith(prefix)}
        if derived:
            module.engine.adopt_derived(derived)
        module.engine.mode = info["mode"]
        module.engine.act_levels = int(info.get("act_levels",
                                                module.engine.act_levels))
    state = {name[len(STATE_PREFIX):]: view for name, view in views.items()
             if name.startswith(STATE_PREFIX)}
    adopt_state_views(model, state)
    return prepare_for_serving(model, tuple(spec["input_shape"]),
                               spec["max_batch_size"],
                               np.dtype(spec["dtype"]))


def _rss_bytes() -> Optional[int]:
    try:
        with open("/proc/self/status") as fh:
            for line in fh:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1]) * 1024
    except OSError:  # pragma: no cover - non-Linux
        pass
    return None


def _worker_info(model: Module, arena: ShmArena) -> Dict[str, Any]:
    """Memory accounting proving the zero-copy claim from inside the worker.

    Walks every parameter, buffer and compressed-engine array of the
    serving model and classifies its backing storage: inside the arena
    (``shared``) or private to this process.  ``private_state_bytes == 0``
    is the sharded tier's contract — model state maps the one shared copy.
    Engine-*derived* state (effective-codeword/LUT tables, dtype caches) is
    accounted separately: when the pool shipped it in the arena,
    ``derived_private_bytes == 0`` proves the worker adopted the warmed
    tables zero-copy instead of rebuilding them; what remains private is
    scratch (im2col buffers, activations), which is what raw ``rss_bytes``
    shows.
    """
    shared = 0
    private = 0
    derived_shared = 0
    derived_private = 0
    seen: set = set()

    def account(array: Optional[np.ndarray], derived: bool = False) -> None:
        nonlocal shared, private, derived_shared, derived_private
        if array is None:
            return
        array = np.asarray(array)
        key = (array.__array_interface__["data"][0], array.nbytes)
        if key in seen:
            return
        seen.add(key)
        owned = arena.owns(array)
        if derived:
            if owned:
                derived_shared += array.nbytes
            else:
                derived_private += array.nbytes
        elif owned:
            shared += array.nbytes
        else:
            private += array.nbytes

    modes: Dict[str, int] = {}
    engines: Dict[str, Dict[str, Any]] = {}
    for _, param in model.named_parameters():
        account(param.value)
    for _, buf in model.named_buffers():
        account(buf)
    for name, module in model.named_modules():
        engine = getattr(module, "engine", None)
        if engine is None:
            continue
        account(engine.codebook.codewords)
        account(engine.assignments)
        account(engine.mask)
        for arr in engine.derived_arrays().values():
            account(arr, derived=True)
        modes[engine.mode] = modes.get(engine.mode, 0) + 1
        stats = engine.serving_stats()
        engines[name] = {key: stats[key] for key in
                         ("mode", "last_mode", "assignments_dtype",
                          "lut_table_bytes", "table_size")}
    return {"pid": os.getpid(), "rss_bytes": _rss_bytes(),
            "arena_shared_bytes": int(shared),
            "private_state_bytes": int(private),
            "derived_shared_bytes": int(derived_shared),
            "derived_private_bytes": int(derived_private),
            "engine_modes": modes,
            "engines": engines}


def _worker_main(spec: Dict[str, Any], conn) -> None:
    """Entry point of one serving worker process.

    Protocol (one reply per request, in order):
    ``("forward", batch)`` -> ``("ok", outputs)`` | ``("err", type, msg,
    code)``; ``("degrade",)`` pins every engine dense; ``("info",)``
    returns :func:`_worker_info`; ``("stop",)`` exits the loop.  Start-up
    failures send ``("fatal", type, msg)`` instead of ``("ready", pid)``.
    """
    from repro.core.precision import (
        set_compute_dtype,
        set_distance_block_bytes,
    )

    arena = None
    try:
        try:
            if spec.get("trace"):
                # worker-local tracer: spans are recorded against this
                # process's perf_counter clock and shipped to the parent on
                # a ("trace",) request, which clock-offset-corrects and
                # merges them into the parent trace
                telemetry.enable(
                    process_name=f"serve-worker pid {os.getpid()}")
            set_compute_dtype(spec["compute_dtype"])
            set_distance_block_bytes(spec["distance_block_bytes"])
            arena = ShmArena.attach(spec["arena"])
            model = _build_worker_model(spec, arena)
        except Exception as error:  # noqa: BLE001 - reported to the parent
            try:
                conn.send(("fatal", type(error).__name__, str(error)))
            except OSError:
                pass
            return
        conn.send(("ready", os.getpid()))
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                return  # parent is gone; exit quietly
            op = message[0]
            if op == "forward":
                # the parent sends a sequence number while tracing, so the
                # worker-side span can be matched to the parent-side IPC
                # window when clock offsets are fitted
                seq = message[2] if len(message) > 2 else None
                tracer = telemetry.active_tracer()
                try:
                    if tracer is None:
                        outputs = np.asarray(model.forward(message[1]))
                    else:
                        with tracer.span(
                                "serve.worker.forward",
                                {"seq": seq,
                                 "batch": int(np.asarray(
                                     message[1]).shape[0])}):
                            outputs = np.asarray(model.forward(message[1]))
                    reply = ("ok", outputs)
                except Exception as error:  # noqa: BLE001 - shipped as data
                    reply = ("err", type(error).__name__, str(error),
                             getattr(error, "code", None))
            elif op == "trace":
                tracer = telemetry.active_tracer()
                reply = ("ok", tracer.drain() if tracer is not None else [])
            elif op == "degrade":
                for _, module in model.named_modules():
                    engine = getattr(module, "engine", None)
                    if engine is not None:
                        engine.mode = "dense"
                reply = ("ok", None)
            elif op == "info":
                reply = ("ok", _worker_info(model, arena))
            elif op == "stop":
                conn.send(("ok", None))
                return
            else:
                reply = ("err", "ValueError", f"unknown op {op!r}", None)
            try:
                conn.send(reply)
            except OSError:
                return
    finally:
        if arena is not None:
            arena.close()
        try:
            conn.close()
        except OSError:
            pass


# -- parent side ---------------------------------------------------------------

class ProcessReplica(Module):
    """Parent-side proxy for one serving worker process.

    Quacks like a model replica — ``forward(batch)`` returns the worker's
    output bit-for-bit — so :meth:`ModelServer.register` accepts a list of
    these exactly like thread replicas.  All pipe traffic is serialized
    under a per-replica lock (the server binds one worker thread per
    replica anyway; the lock guards stats/health probes from other
    threads).

    Liveness is never assumed: every receive polls with a timeout and
    checks the process, so a SIGKILL'd or hung worker surfaces as a typed
    :class:`WorkerFault` within the request timeout, and the next forward
    transparently re-spawns the worker and re-attaches it to the arena.
    """

    def __init__(self, pool: "ProcessReplicaPool", index: int):
        super().__init__()
        self.index = index
        self.pid: Optional[int] = None
        self.respawns = 0
        self._pool = pool
        self._lock = threading.RLock()
        self._proc = None
        self._conn = None
        self._ready = False
        self._degraded = False
        self._closed = False
        self._launched_once = False
        # tracing: the parent-side IPC windows (t0, t1) each traced forward
        # (keyed by its sequence number) was observed in, for clock-offset
        # fitting when the worker's spans are collected
        self._trace_windows: Dict[int, Tuple[float, float]] = {}

    # -- lifecycle -------------------------------------------------------------
    def _launch_locked(self) -> None:
        fault_point("serve.worker.spawn")
        ctx = self._pool._ctx
        parent_conn, child_conn = ctx.Pipe()
        proc = ctx.Process(target=_worker_main,
                           args=(self._pool.spec, child_conn),
                           name=f"serve-worker-{self.index}", daemon=True)
        proc.start()
        child_conn.close()
        self._proc, self._conn = proc, parent_conn
        self._ready = False
        if self._launched_once:
            self.respawns += 1
        self._launched_once = True

    def _await_ready_locked(self, timeout: float) -> None:
        deadline = time.monotonic() + timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                self._kill_locked()
                raise WorkerFault(
                    f"worker {self.index} did not come up within {timeout}s")
            if self._conn.poll(min(0.05, remaining)):
                try:
                    message = self._conn.recv()
                except (EOFError, OSError):
                    self._kill_locked()
                    raise WorkerFault(
                        f"worker {self.index} died during startup") from None
                if message[0] == "ready":
                    self._ready = True
                    self.pid = message[1]
                    if self._degraded:
                        # a degraded replica stays degraded across re-spawns
                        self._request_locked(("degrade",), timeout)
                    return
                if message[0] == "fatal":
                    self._kill_locked()
                    raise WorkerFault(
                        f"worker {self.index} failed to start: "
                        f"{message[1]}: {message[2]}")
            elif not self._proc.is_alive() and not self._conn.poll(0.05):
                code = self._proc.exitcode
                self._kill_locked()
                raise WorkerFault(
                    f"worker {self.index} died during startup "
                    f"(exitcode {code})")

    def _alive_locked(self) -> bool:
        return (self._conn is not None and self._proc is not None
                and self._proc.is_alive() and self._ready)

    def _ensure_alive_locked(self) -> None:
        if self._closed:
            raise WorkerFault(f"worker {self.index} pool is closed")
        if self._alive_locked():
            return
        self._kill_locked()
        self._launch_locked()
        self._await_ready_locked(self._pool.spawn_timeout_s)

    def _kill_locked(self) -> None:
        if self._proc is not None:
            if self._proc.is_alive():
                self._proc.kill()
            self._proc.join(1.0)
        if self._conn is not None:
            try:
                self._conn.close()
            except OSError:
                pass
        self._proc = None
        self._conn = None
        self._ready = False

    # -- request path ----------------------------------------------------------
    def _request_locked(self, message: Tuple, timeout: float) -> Any:
        try:
            self._conn.send(message)
        except (OSError, ValueError) as error:
            self._kill_locked()
            raise WorkerFault(
                f"worker {self.index}: pipe broke on send "
                f"({type(error).__name__})") from error
        deadline = time.monotonic() + timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                self._kill_locked()
                raise WorkerFault(
                    f"worker {self.index} did not answer within {timeout}s")
            try:
                if self._conn.poll(min(0.05, remaining)):
                    return self._conn.recv()
            except (EOFError, OSError) as error:
                self._kill_locked()
                raise WorkerFault(
                    f"worker {self.index} died mid-request "
                    f"({type(error).__name__})") from error
            if not self._proc.is_alive() and not self._conn.poll(0.05):
                code = self._proc.exitcode
                self._kill_locked()
                raise WorkerFault(
                    f"worker {self.index} died mid-request "
                    f"(exitcode {code})")

    def forward(self, x: np.ndarray) -> np.ndarray:
        with self._lock:
            self._ensure_alive_locked()
            fault_point("serve.worker.ipc")
            tracer = telemetry.active_tracer()
            if tracer is None:
                reply = self._request_locked(("forward", np.asarray(x)),
                                             self._pool.request_timeout_s)
            else:
                # the span *is* the parent-side window: send -> reply on
                # the parent clock, guaranteed to enclose the worker-side
                # forward span once the clock offset is fitted from it
                seq = next(_forward_seq)
                with tracer.span("serve.worker.ipc.forward",
                                 {"worker": self.index, "seq": seq}):
                    t0 = time.perf_counter()
                    reply = self._request_locked(
                        ("forward", np.asarray(x), seq),
                        self._pool.request_timeout_s)
                    t1 = time.perf_counter()
                self._trace_windows[seq] = (t0, t1)
        if reply[0] == "ok":
            return reply[1]
        _, type_name, message, code = reply
        if code == EngineFault.code:
            # re-raise as the typed engine fault so the server's graceful
            # dense-degradation path fires for process replicas too
            raise EngineFault(message)
        raise WorkerFault(f"worker {self.index} forward failed: "
                          f"{type_name}: {message}")

    def degrade_to_dense(self) -> None:
        """Pin the worker's engines dense; sticky across re-spawns.

        The server's ``_degrade`` calls this instead of walking our (empty)
        module tree.  An unreachable worker is fine — the flag is re-applied
        during the re-spawn handshake.
        """
        with self._lock:
            self._degraded = True
            if self._alive_locked():
                try:
                    self._request_locked(("degrade",),
                                         self._pool.request_timeout_s)
                except WorkerFault:
                    pass  # re-spawn will re-apply

    def info(self) -> Dict[str, Any]:
        """The worker's memory/mode report (spawning it if needed)."""
        with self._lock:
            self._ensure_alive_locked()
            reply = self._request_locked(("info",),
                                         self._pool.request_timeout_s)
        if reply[0] != "ok":
            raise WorkerFault(f"worker {self.index} info failed: {reply}")
        report = dict(reply[1])
        report["respawns"] = self.respawns
        return report

    def collect_trace(self) -> int:
        """Pull the worker's recorded spans into the parent trace.

        Drains the worker's trace buffer over the pipe, fits the
        worker->parent clock offset from the IPC windows observed around
        each forward (:func:`repro.core.telemetry.fit_clock_offset` — the
        fit guarantees every corrected worker span lands strictly inside
        its parent-side window), and merges the corrected records.  A dead
        worker, a broken pipe, or spans with no matched window drop the
        records cleanly — the parent trace is never corrupted.  Returns
        the number of records merged.
        """
        tracer = telemetry.active_tracer()
        if tracer is None:
            return 0
        with self._lock:
            if not self._alive_locked():
                self._trace_windows.clear()
                return 0  # SIGKILL'd worker: its partial spans are dropped
            try:
                reply = self._request_locked(
                    ("trace",), self._pool.request_timeout_s)
            except WorkerFault:
                self._trace_windows.clear()
                return 0
            windows = dict(self._trace_windows)
            self._trace_windows.clear()
        if reply[0] != "ok" or not reply[1]:
            return 0
        records = reply[1]
        matched = []
        for record in records:
            seq = (record.get("args") or {}).get("seq")
            window = windows.get(seq)
            if window is not None and record.get("ph") == "X":
                matched.append((window[0], window[1], record["ts"],
                                record["ts"] + record["dur"]))
        offset = telemetry.fit_clock_offset(matched)
        if offset is None:
            return 0  # no forward observed both sides: cannot place them
        return tracer.merge(records, clock_offset_s=offset,
                            process_name=f"serve-worker-{self.index}")

    def kill(self) -> None:
        """SIGKILL the worker (chaos/testing); next forward re-spawns it.

        Joins the corpse so the kill is observable the moment this returns
        — without it the next ``forward`` can race the still-dying process
        and surface a :class:`WorkerFault` instead of re-spawning.
        """
        with self._lock:
            if self._proc is not None and self._proc.is_alive():
                self._proc.kill()
                self._proc.join(5.0)

    def close(self, timeout: float = 5.0) -> None:
        with self._lock:
            self._closed = True
            if self._alive_locked():
                try:
                    self._request_locked(("stop",), timeout)
                except WorkerFault:
                    pass
            if self._proc is not None:
                self._proc.join(timeout)
            self._kill_locked()


class ProcessReplicaPool:
    """N worker processes serving one compressed model from one arena.

    Builds the shared-memory arena from the compressed model, spawns the
    workers (concurrently — all launched, then all awaited), and exposes
    ``.replicas`` — a list of :class:`ProcessReplica` proxies to register
    with a :class:`~repro.serve.server.ModelServer` exactly like thread
    replicas::

        pool = ProcessReplicaPool(compressed, ("zoo", "resnet18", {}),
                                  input_shape=(3, 16, 16), workers=4)
        with pool, ModelServer() as server:
            server.register("resnet18", pool.replicas,
                            input_shape=pool.input_shape)

    ``builder`` is the picklable architecture recipe workers rebuild from
    (see :func:`_build_architecture`); ``model`` optionally names the live
    (possibly fine-tuned) model whose non-compressed parameters/buffers go
    into the arena — it defaults to ``compressed.model``.

    ``close()`` stops the workers, then detaches *and unlinks* the arena;
    the arena additionally unlinks via ``atexit`` and survives worker
    SIGKILLs (see :mod:`repro.serve.shm`), so no ``/dev/shm`` segment
    leaks.
    """

    def __init__(self, compressed: Any, builder: Tuple,
                 input_shape: Sequence[int], workers: int = 2,
                 mode: str = "auto", max_batch_size: int = 8,
                 dtype=np.float64, start_method: str = "spawn",
                 spawn_timeout_s: float = 120.0,
                 request_timeout_s: float = 60.0,
                 model: Optional[Module] = None,
                 arena_name: Optional[str] = None):
        from repro.core.precision import compute_dtype, distance_block_bytes
        from repro.core.serialization import (
            STATE_PREFIX,
            derived_serving_arrays,
            serving_arrays,
            serving_state_arrays,
        )

        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.input_shape = tuple(input_shape)
        self.dtype = np.dtype(dtype)
        self.spawn_timeout_s = float(spawn_timeout_s)
        self.request_timeout_s = float(request_timeout_s)
        self._closed = False

        manifest, arrays = serving_arrays(compressed)
        state_source = model if model is not None else compressed.model
        # when the source is a live serving model (engines swapped in), warm
        # it at the serving shape so its engines resolve their modes and
        # build their tables, then ship that derived state in the arena —
        # workers adopt it zero-copy and inherit the pinned modes (including
        # "lut"/"lut_quant") instead of re-deriving anything
        derived_meta, derived = derived_serving_arrays(state_source,
                                                       compressed)
        if derived:
            from repro.nn.serve import prepare_for_serving

            prepare_for_serving(state_source, self.input_shape,
                                int(max_batch_size), self.dtype)
            derived_meta, derived = derived_serving_arrays(state_source,
                                                           compressed)
            arrays.update(derived)
        for key, value in serving_state_arrays(state_source,
                                               compressed).items():
            arrays[STATE_PREFIX + key] = value
        self.arena = ShmArena.create(arrays,
                                     meta={"serving": manifest,
                                           "derived": derived_meta},
                                     name=arena_name)
        self._ctx = multiprocessing.get_context(start_method)
        self.spec: Dict[str, Any] = {
            "arena": self.arena.name,
            "builder": builder,
            "mode": mode,
            "input_shape": self.input_shape,
            "max_batch_size": int(max_batch_size),
            "dtype": self.dtype.name,
            "compute_dtype": compute_dtype().name,
            "distance_block_bytes": distance_block_bytes(),
            # workers record their own spans when the parent is tracing at
            # pool-construction time (enable tracing before building pools)
            "trace": telemetry.enabled(),
        }
        self.replicas: List[ProcessReplica] = [
            ProcessReplica(self, index) for index in range(workers)]
        try:
            for replica in self.replicas:
                with replica._lock:
                    replica._launch_locked()
            for replica in self.replicas:
                with replica._lock:
                    replica._await_ready_locked(self.spawn_timeout_s)
        except BaseException:
            self.close()
            raise

    def register_with(self, server, name: str, policy=None,
                      fault_policy=None, **kwargs: Any) -> None:
        server.register(name, self.replicas, policy=policy,
                        fault_policy=fault_policy,
                        input_shape=self.input_shape, dtype=self.dtype,
                        **kwargs)

    def info(self) -> Dict[str, Any]:
        """Arena + per-worker memory/health report."""
        workers = []
        for replica in self.replicas:
            try:
                workers.append(replica.info())
            except WorkerFault as error:
                workers.append({"pid": replica.pid, "error": str(error),
                                "respawns": replica.respawns})
        return {
            "arena": {"name": self.arena.name,
                      "nbytes": int(self.arena.nbytes),
                      "refcount": int(self.arena.refcount())},
            "workers": workers,
            "respawns": sum(r.respawns for r in self.replicas),
        }

    def collect_traces(self) -> int:
        """Merge every live worker's spans into the parent trace."""
        return sum(replica.collect_trace() for replica in self.replicas)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self.spec.get("trace") and telemetry.enabled():
            # last chance to pull worker-side spans before the workers stop
            self.collect_traces()
        for replica in self.replicas:
            replica.close()
        self.arena.close()

    def __enter__(self) -> "ProcessReplicaPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def worker_chaos_plan(rate: float, seed: int = 0):
    """Chaos mix aimed at the process tier's own failure surface.

    Splits ``rate`` between spawn failures and mid-request pipe breaks
    (both raising :class:`WorkerFault` via the ``worker`` error tag), on
    top of which the generic ``serving_chaos_plan`` still applies — its
    ``serve.replica.forward`` point fires in the parent thread for process
    replicas too.
    """
    from repro.core.faults import FaultPlan, FaultRule

    if not 0.0 <= rate <= 1.0:
        raise ValueError(f"fault rate must be in [0, 1], got {rate}")
    return FaultPlan([
        FaultRule("serve.worker.ipc", probability=rate / 2, error="worker"),
        FaultRule("serve.worker.spawn", probability=rate / 2,
                  error="worker"),
    ], seed=seed)
