"""Command-line front end: ``python -m repro.serve``.

Loads one or more compressed models (scenario registry or ``.npz``
manifest), starts the dynamic-batching :class:`~repro.serve.server.ModelServer`
and speaks newline-delimited JSON over stdin/stdout (``--stdin-jsonl``,
the default) or a threaded TCP socket (``--port``).

Protocol (one JSON object per line)::

    {"id": 1, "model": "quickstart-resnet18", "input": [[...]]}
    {"id": 2, "synthetic": true, "seed": 7}        # random input, load-gen
    {"cmd": "stats"}                               # JSON stats report

Responses preserve input order::

    {"id": 1, "output": [...], "latency_ms": 3.1}
    {"id": 2, "error": "server overloaded", "shed": true}

Requests are submitted as soon as their line is read and only *awaited*
once a lookahead window fills, so a fast client (or the bundled load
generator) keeps the batcher's queue populated and gets coalesced batches
— piping one request at a time still works, it just serves at batch size 1.
"""

from __future__ import annotations

import argparse
import contextlib
import json
import socketserver
import sys
from collections import deque
from typing import Any, Dict, Optional, TextIO, Tuple

import numpy as np

from repro.core import telemetry
from repro.serve.errors import ManifestError, error_payload
from repro.serve.loader import load_npz, load_scenario
from repro.serve.server import FaultPolicy, ModelServer, serving_chaos_plan


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Dynamic-batching model server for compressed inference.")
    source = parser.add_argument_group("model sources")
    source.add_argument("--scenario", action="append", default=[],
                        metavar="NAME",
                        help="serve a pipeline scenario (repeatable for a "
                             "multi-model server)")
    source.add_argument("--npz", metavar="PATH",
                        help="serve a serialized compressed-model archive")
    source.add_argument("--model", metavar="ZOO_NAME",
                        help="model-zoo architecture of the --npz archive")
    source.add_argument("--cache-dir", default=None,
                        help="pipeline artifact cache (warm cluster cache "
                             "makes scenario loading near-instant)")
    batching = parser.add_argument_group("batching policy")
    batching.add_argument("--max-batch-size", type=int, default=None)
    batching.add_argument("--max-wait-ms", type=float, default=None)
    batching.add_argument("--max-queue-size", type=int, default=None)
    batching.add_argument("--overload", choices=("shed", "block"), default=None)
    batching.add_argument("--workers", type=int, default=1,
                          help="workers (= model replicas) per model")
    batching.add_argument("--worker-mode", choices=("thread", "process"),
                          default="thread",
                          help="thread replicas (default) or sharded worker "
                               "processes over a zero-copy shared-memory "
                               "arena (see README 'Sharded serving')")
    batching.add_argument("--engine-mode",
                          choices=("auto", "centroid", "dense", "lut",
                                   "lut_quant"),
                          default=None,
                          help="compressed-engine execution mode (default: "
                               "the scenario serving section's engine_mode, "
                               "else auto; lut_quant is the approximate "
                               "quantized-activation mode)")
    batching.add_argument("--act-levels", type=int, default=None,
                          metavar="N",
                          help="quantized-activation alphabet size per sign "
                               "for lut_quant engines (default 127)")
    robustness = parser.add_argument_group("robustness")
    robustness.add_argument("--max-retries", type=int, default=None,
                            help="retry budget per request after replica "
                                 "failures (default 2)")
    robustness.add_argument("--deadline-ms", type=float, default=None,
                            help="per-request deadline; expired requests "
                                 "resolve with a timeout error (default: none)")
    robustness.add_argument("--faults", type=float, default=0.0, metavar="RATE",
                            help="chaos session: inject replica faults at "
                                 "this probability (0 disables; see README "
                                 "'Robustness & fault injection')")
    robustness.add_argument("--fault-seed", type=int, default=0,
                            help="seed of the injected fault plan (same "
                                 "seed = identical chaos)")
    transport = parser.add_argument_group("transport")
    transport.add_argument("--stdin-jsonl", action="store_true",
                           help="serve JSONL over stdin/stdout (default)")
    transport.add_argument("--port", type=int, default=None,
                           help="serve JSONL over TCP on this port instead")
    transport.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--lookahead", type=int, default=None,
                        help="max in-flight requests per connection before "
                             "responses are awaited (default 4x batch size)")
    parser.add_argument("--stats", action="store_true",
                        help="print the final stats report to stderr")
    parser.add_argument("--trace", default=None, metavar="OUT.json",
                        help="record a trace of the serving session and "
                             "write it as Chrome trace-event JSON (open in "
                             "Perfetto or chrome://tracing); with process "
                             "workers their spans are merged into one tree; "
                             "OUT.jsonl is written too")
    return parser


def _response(request_id: Any, handle, timeout: float = 60.0) -> Dict[str, Any]:
    try:
        output = handle.result(timeout)
    except Exception as error:  # noqa: BLE001 - report per-request, keep serving
        return error_payload(error, request_id)
    return {"id": request_id,
            "output": np.asarray(output).tolist(),
            "latency_ms": round(handle.latency_s * 1e3, 3)}


class JsonlSession:
    """One JSONL request stream served with submit-ahead/await-later."""

    def __init__(self, server: ModelServer, default_model: Optional[str],
                 shapes: Dict[str, Tuple[int, ...]], lookahead: int = 32):
        self.server = server
        self.default_model = default_model
        self.shapes = shapes
        self.lookahead = max(1, lookahead)

    def _input_for(self, request: Dict[str, Any], model: Optional[str]) -> np.ndarray:
        if request.get("synthetic"):
            key = model if model is not None else self.default_model
            shape = self.shapes[key]
            rng = np.random.default_rng(int(request.get("seed", 0)))
            return rng.standard_normal(shape)
        return np.asarray(request["input"], dtype=np.float64)

    def run(self, lines, out: TextIO) -> None:
        pending: deque = deque()        # (request_id, handle) in arrival order

        def flush(everything: bool) -> None:
            while pending and (everything or pending[0][1].done()
                               or len(pending) >= self.lookahead):
                request_id, handle = pending.popleft()
                out.write(json.dumps(_response(request_id, handle)) + "\n")
            out.flush()

        def reject(payload: Dict[str, Any]) -> None:
            # errors are emitted in stream position: everything submitted
            # before the bad line is answered first, then the error object
            flush(True)
            out.write(json.dumps(payload) + "\n")
            out.flush()

        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                request = json.loads(line)
            except json.JSONDecodeError as error:
                reject({"error": f"bad json: {error}",
                        "error_type": "JSONDecodeError"})
                continue
            if not isinstance(request, dict):
                # a malformed-but-valid-JSON line (a bare list, string,
                # number...) must not tear down the session loop
                reject({"error": "request must be a JSON object, got "
                                 f"{type(request).__name__}",
                        "error_type": "BadRequest"})
                continue
            if request.get("cmd") == "stats":
                flush(True)  # stats reflect every request seen so far
                out.write(json.dumps(self.server.stats_report()) + "\n")
                out.flush()
                continue
            request_id = request.get("id")
            model = request.get("model", self.default_model)
            try:
                handle = self.server.submit(model, self._input_for(request, model))
            except Exception as error:  # noqa: BLE001 - any bad line answers
                # structured (overload carries shed:true, serving errors
                # their code) and the session keeps serving the stream
                reject(error_payload(error, request_id))
                continue
            pending.append((request_id, handle))
            flush(False)
        flush(True)


def _tcp_server(session: JsonlSession, host: str, port: int):
    class Handler(socketserver.StreamRequestHandler):
        def handle(self):
            reader = (raw.decode("utf-8") for raw in self.rfile)

            class _Out:
                def write(inner, text: str) -> None:
                    self.wfile.write(text.encode("utf-8"))

                def flush(inner) -> None:
                    self.wfile.flush()

            session.run(reader, _Out())

    class Server(socketserver.ThreadingTCPServer):
        allow_reuse_address = True
        daemon_threads = True

    return Server((host, port), Handler)


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if not args.scenario and not args.npz:
        parser.error("need at least one model: --scenario NAME or --npz PATH")
    if args.npz and not args.model:
        parser.error("--npz requires --model (the zoo architecture)")
    if args.stdin_jsonl and args.port is not None:
        parser.error("--stdin-jsonl and --port are mutually exclusive")

    # enable tracing before any pool is built: worker processes inherit the
    # trace flag through the pool spec at construction time
    tracer = telemetry.enable() if args.trace else None

    # in process mode the in-process model is only the arena's state source;
    # the serving replicas are worker processes built by the pool
    replicas_in_process = 1 if args.worker_mode == "process" else args.workers
    loaded = []
    try:
        for scenario_name in args.scenario:
            print(f"[serve] loading scenario {scenario_name!r} ...",
                  file=sys.stderr, flush=True)
            loaded.append(load_scenario(scenario_name, mode=args.engine_mode,
                                        replicas=replicas_in_process,
                                        cache_dir=args.cache_dir,
                                        act_levels=args.act_levels))
        if args.npz:
            print(f"[serve] loading archive {args.npz!r} ({args.model}) ...",
                  file=sys.stderr, flush=True)
            loaded.append(load_npz(args.npz, args.model, mode=args.engine_mode,
                                   replicas=replicas_in_process,
                                   act_levels=args.act_levels))
    except ManifestError as error:
        # a broken deploy artifact is an operator problem, not a traceback:
        # say which file (and array) and exit non-zero
        print(f"[serve] ERROR: {error}", file=sys.stderr)
        return 1

    fault_policy = None
    if args.max_retries is not None or args.deadline_ms is not None:
        fault_policy = FaultPolicy(
            max_retries=args.max_retries if args.max_retries is not None else 2,
            deadline_ms=args.deadline_ms)
    server = ModelServer()
    pools = []
    for model in loaded:
        if args.worker_mode == "process":
            policy = model.policy(
                max_batch_size=args.max_batch_size,
                max_wait_ms=args.max_wait_ms,
                max_queue_size=args.max_queue_size,
                overload=args.overload)
            pool = model.process_pool(workers=args.workers,
                                      mode=args.engine_mode,
                                      max_batch_size=policy.max_batch_size)
            pools.append(pool)
            pool.register_with(server, model.name, policy=policy,
                               fault_policy=fault_policy)
        else:
            model.register_with(
                server,
                fault_policy=fault_policy,
                max_batch_size=args.max_batch_size,
                max_wait_ms=args.max_wait_ms,
                max_queue_size=args.max_queue_size,
                overload=args.overload,
            )
        print(f"[serve] registered {model.name!r} "
              f"(CR {model.meta['compression_ratio']:.1f}x, "
              f"{model.meta['layers']} compressed layers, "
              f"{args.workers} {args.worker_mode} worker(s))",
              file=sys.stderr, flush=True)

    session = JsonlSession(
        server, default_model=loaded[0].name,
        shapes={m.name: m.input_shape for m in loaded},
        lookahead=args.lookahead or 4 * next(
            iter(server.stats_report()["policies"].values()))["max_batch_size"])

    plan = None
    chaos = contextlib.nullcontext()
    if args.faults > 0.0:
        plan = serving_chaos_plan(args.faults, seed=args.fault_seed)
        chaos = plan.active()
        print(f"[serve] chaos session: fault rate {args.faults} "
              f"(seed {args.fault_seed})", file=sys.stderr, flush=True)

    try:
        with server, chaos:
            if args.port is not None:
                tcp = _tcp_server(session, args.host, args.port)
                print(f"[serve] listening on {args.host}:{args.port}",
                      file=sys.stderr, flush=True)
                try:
                    tcp.serve_forever()
                except KeyboardInterrupt:
                    pass
                finally:
                    tcp.server_close()
            else:
                try:
                    session.run(sys.stdin, sys.stdout)
                except BrokenPipeError:
                    pass  # client closed the stream; shut down quietly
    finally:
        # worker processes outlive the server's drain, never its exit
        # (pool.close() pulls worker-side spans into the trace first)
        for pool in pools:
            pool.close()
    telemetry_summary = None
    if tracer is not None:
        telemetry_summary = tracer.summary()
        tracer.export_chrome(args.trace)
        from pathlib import Path
        tracer.export_jsonl(str(Path(args.trace).with_suffix(".jsonl")))
        telemetry.disable()
        for line in telemetry.format_summary(telemetry_summary,
                                             prefix="[serve]"):
            print(line, file=sys.stderr)
        print(f"[serve] wrote trace {args.trace} "
              f"(open at https://ui.perfetto.dev)", file=sys.stderr)
    if plan is not None:
        summary = plan.summary()
        print(f"[serve] injected faults: "
              f"{ {k: v for k, v in summary['injections'].items() if v} }",
              file=sys.stderr)
    if args.stats:
        report = server.stats_report()
        if telemetry_summary is not None:
            report["telemetry"] = telemetry_summary
        for name, line in report["breakdown"].items():
            lat = line["latency_ms"]
            print(f"[serve] {name}: {line['requests_completed']} requests, "
                  f"{line['throughput_rps']:.1f} req/s, latency p50 "
                  f"{lat['p50']:.2f} / p95 {lat['p95']:.2f} / "
                  f"p99 {lat['p99']:.2f} ms", file=sys.stderr)
            engines = report.get("engines", {}).get(name, {})
            if engines:
                modes: Dict[str, int] = {}
                lut_bytes = 0
                for stats in engines.values():
                    mode = stats.get("last_mode", stats.get("mode"))
                    modes[mode] = modes.get(mode, 0) + 1
                    lut_bytes += int(stats.get("lut_table_bytes", 0))
                mode_list = ", ".join(f"{mode} x{count}" for mode, count
                                      in sorted(modes.items()))
                print(f"[serve] {name}: engine modes [{mode_list}], "
                      f"LUT tables {lut_bytes / 1024:.1f} KiB",
                      file=sys.stderr)
        print(json.dumps(report, indent=2), file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
