"""The serving tier's error taxonomy.

Every way a request can fail maps to exactly one typed error with a stable
``code``, so clients (and the JSONL CLI) can branch on machine-readable
codes instead of parsing messages, and the chaos gate can assert that every
injected fault surfaced as *some* typed error rather than a hang::

    overloaded    queue full under the shed policy (request never admitted)
    closed        submitted to / drained out of a shut-down server
    timeout       the per-request deadline elapsed before a healthy replica
                  finished it
    failed        the request's retry budget ran out; carries the last cause
    unavailable   every replica of the model is quarantined and the fault
                  policy rejects rather than queues
    engine_fault  the compressed centroid engine faulted (triggers graceful
                  degradation to the dense reconstruct path when enabled)
    bad_manifest  a ``.npz`` model archive is truncated/corrupted; names the
                  file and the first bad array
    worker_fault  a serving worker *process* died or its pipe broke mid-
                  request (the pool re-spawns it; the batch is retried under
                  the normal fault policy)
    arena         the shared-memory arena is missing, corrupt, or owned by a
                  live process when takeover was attempted

:func:`error_payload` renders any exception as the structured JSON error
object the CLI emits.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.core.faults import register_error_type


class ServingError(RuntimeError):
    """Base of the serving error taxonomy; ``code`` is the wire-stable tag."""

    code = "serving_error"


class ServerOverloaded(ServingError):
    """Raised by ``submit`` when the queue is full under the shed policy."""

    code = "overloaded"


class ServerClosed(ServingError):
    """Raised when submitting to (or waiting on) a closed batcher/server."""

    code = "closed"


class RequestTimeout(ServingError, TimeoutError):
    """The request's deadline elapsed before any replica completed it."""

    code = "timeout"


class RequestFailed(ServingError):
    """The retry budget is exhausted; ``cause`` is the last replica error."""

    code = "failed"

    def __init__(self, message: str, cause: Optional[BaseException] = None,
                 attempts: int = 0):
        super().__init__(message)
        self.cause = cause
        self.attempts = attempts


class ReplicaUnavailable(ServingError):
    """All replicas of the model are quarantined (reject-when-unavailable)."""

    code = "unavailable"


class EngineFault(ServingError):
    """The compressed centroid engine failed mid-forward.

    The server treats this class specially: with
    ``FaultPolicy.degrade_on_engine_fault`` the replica is switched to the
    dense reconstruct path (bit-identical outputs, slower) and the batch is
    re-executed instead of failing.
    """

    code = "engine_fault"


class WorkerFault(ServingError):
    """A serving worker process died, hung past its deadline, or its pipe
    broke mid-request.

    Raised in the *parent*: the :class:`~repro.serve.sharded.ProcessReplica`
    proxy converts a dead/unresponsive worker into this typed error so the
    server's retry/quarantine machinery handles a process crash exactly like
    a thread-replica crash — and the pool re-spawns the worker behind it.
    """

    code = "worker_fault"


class ArenaError(ServingError):
    """A shared-memory arena operation failed.

    Covers attach-to-missing-segment, a corrupt or version-mismatched
    header, and attempted takeover of a segment whose owner is still alive.
    """

    code = "arena"

    def __init__(self, name: Any, message: str):
        super().__init__(f"shared-memory arena {str(name)!r}: {message}")
        self.arena_name = str(name)


class ManifestError(ServingError):
    """A ``.npz`` compressed-model archive failed to load.

    Names the archive and (when one array in particular is truncated or
    corrupted) the first bad array, so a broken deploy artifact is
    diagnosable from the message alone.
    """

    code = "bad_manifest"

    def __init__(self, path: Any, message: str, array: Optional[str] = None):
        detail = f"compressed-model archive {str(path)!r}: {message}"
        if array is not None:
            detail += f" (array {array!r})"
        super().__init__(detail)
        self.path = str(path)
        self.array = array


#: code -> (class, one-line meaning); the README taxonomy table renders this
ERROR_TAXONOMY: Dict[str, tuple] = {
    cls.code: (cls, cls.__doc__.strip().splitlines()[0])
    for cls in (ServerOverloaded, ServerClosed, RequestTimeout, RequestFailed,
                ReplicaUnavailable, EngineFault, WorkerFault, ArenaError,
                ManifestError)
}


def error_payload(error: BaseException,
                  request_id: Any = None) -> Dict[str, Any]:
    """The structured JSON error object for one failed request/line."""
    payload: Dict[str, Any] = {"error": str(error),
                               "error_type": type(error).__name__}
    if request_id is not None:
        payload["id"] = request_id
    if isinstance(error, ServingError):
        payload["code"] = error.code
    if isinstance(error, ServerOverloaded):
        payload["shed"] = True
    return payload


# a fault rule with error="engine" raises EngineFault at serving fault
# points, driving the same degradation path a real engine bug would
register_error_type("engine", lambda point: EngineFault(
    f"injected engine fault at {point!r}"))

# a fault rule with error="worker" simulates a worker process dying / a pipe
# breaking at the serve.worker.* fault points, driving re-spawn handling
register_error_type("worker", lambda point: WorkerFault(
    f"injected worker fault at {point!r}"))
