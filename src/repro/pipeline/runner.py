"""Pipeline runner: executes named stages over one model, with caching.

:class:`Pipeline` is the orchestration entry point — it builds the
:class:`~repro.core.compressor.MVQCompressor` a :class:`PipelineConfig`
describes, wires in an :class:`~repro.pipeline.artifacts.ArtifactStore`
and runs the configured stage list.  Stages may be composed out of order:
every stage's missing prerequisites are pulled in through the explicit
producer chains of :mod:`repro.pipeline.stages` (and each stage runs at
most once per pipeline run), so e.g. ``stages=["serve_eval"]`` against a
warm cluster cache serves without re-clustering anything.

:func:`run_compression_stages` is the canonical four-stage composition
``group -> prune -> cluster -> quantize`` that
:meth:`MVQCompressor.compress` itself executes — the imperative API and the
declarative pipeline are the same code path, which is what keeps their
outputs bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core import telemetry
from repro.core.compressor import CompressedModel, MVQCompressor
from repro.pipeline.artifacts import ArtifactStore
from repro.pipeline.config import CORE_STAGES, PipelineConfig
from repro.pipeline.stages import (
    PRODUCER_CHAINS,
    StageContext,
    get_stage,
)


def run_stage(ctx: StageContext, name: str) -> None:
    """Run one stage (once), ensuring its required artifacts exist first."""
    if name in ctx.completed:
        return
    stage = get_stage(name)
    for artifact in stage.requires:
        ensure_artifact(ctx, artifact)
    logged = len(ctx.events)
    with telemetry.timed_span(f"pipeline.stage.{name}") as sp:
        stage.func(ctx)
    ctx.completed.append(name)
    # one measurement drives both the trace and the stage report: every
    # event this stage logged gets the span's wall time, and the stage's
    # event detail rides along as span attributes
    for event in ctx.events[logged:]:
        event.setdefault("seconds", round(sp.duration_s, 6))
        for key, value in event.items():
            if key not in ("stage", "status") and isinstance(
                    value, (str, int, float, bool)):
                sp.set_attribute(key, value)


def ensure_artifact(ctx: StageContext, artifact: str) -> None:
    """Make ``artifact`` available by running its producer chain."""
    if artifact in ctx:
        return
    chain = PRODUCER_CHAINS.get(artifact)
    if chain is None:
        raise KeyError(f"no stage produces artifact {artifact!r}")
    for stage_name in chain:
        run_stage(ctx, stage_name)
    if artifact not in ctx:
        raise RuntimeError(
            f"producer chain {chain} did not yield artifact {artifact!r}")


def run_compression_stages(compressor: MVQCompressor, model,
                           store: Optional[ArtifactStore] = None,
                           events: Optional[List[Dict[str, Any]]] = None
                           ) -> CompressedModel:
    """The canonical ``group -> prune -> cluster -> quantize`` composition.

    This is what :meth:`MVQCompressor.compress` runs; ``store`` adds
    cluster-stage caching and ``events`` (a caller-owned list) receives the
    stage event log.
    """
    ctx = StageContext(model, compressor, store=store)
    if events is not None:
        ctx.events = events
    for name in CORE_STAGES:
        run_stage(ctx, name)
    return ctx["compressed"]


@dataclass
class PipelineResult:
    """Everything a pipeline run produced."""

    compressed: Optional[CompressedModel]
    events: List[Dict[str, Any]]
    artifacts: Dict[str, Any] = field(default_factory=dict)
    stages_run: Tuple[str, ...] = ()
    #: the live stage context — pass it back to :meth:`Pipeline.run` to
    #: continue the same run with more stages (no artifacts recomputed)
    context: Optional[Any] = field(default=None, repr=False, compare=False)

    def event_for(self, stage: str) -> Optional[Dict[str, Any]]:
        """The (last) event a stage logged, or ``None`` if it never ran."""
        for event in reversed(self.events):
            if event["stage"] == stage:
                return event
        return None

    def report(self) -> Dict[str, Any]:
        """JSON-able summary of the run."""
        summary: Dict[str, Any] = {
            "stages_run": list(self.stages_run),
            "events": self.events,
        }
        if self.compressed is not None:
            summary["compression_ratio"] = float(self.compressed.compression_ratio())
            summary["sparsity"] = float(self.compressed.sparsity())
            summary["layers"] = sorted(self.compressed.layers)
        for key in ("export", "serve_report", "accel_report", "finetune_report"):
            if key in self.artifacts:
                summary[key] = self.artifacts[key]
        return summary


class Pipeline:
    """Declarative, cached MVQ pipeline over one model."""

    def __init__(self, config: PipelineConfig,
                 store: Optional[ArtifactStore] = None,
                 workload: Optional[str] = None,
                 input_shape: Optional[Tuple[int, ...]] = None,
                 scenario: Optional[str] = None):
        self.config = config
        self.store = store if store is not None else ArtifactStore(config.cache_dir)
        self.workload = workload
        self.input_shape = input_shape
        self.scenario = scenario

    def context_for(self, model) -> StageContext:
        return StageContext(
            model,
            self.config.compressor_for(model),
            config=self.config,
            store=self.store,
            workload=self.workload,
            input_shape=self.input_shape,
            scenario=self.scenario,
        )

    def run(self, model, stages: Optional[Sequence[str]] = None,
            context: Optional[StageContext] = None) -> PipelineResult:
        """Execute the configured (or given) stage list over ``model``.

        Passing a previous result's ``context`` continues that run in place:
        artifacts it already produced are reused (stages run at most once per
        context), so e.g. ``run(model, stages=["finetune"], context=prev)``
        fine-tunes the already-clustered codebooks without any recompute.
        """
        names = tuple(stages if stages is not None else self.config.stages)
        for name in names:
            get_stage(name)  # validate the whole list before any work
        if context is not None and context.model is not model:
            raise ValueError(
                "context belongs to a different model; a continuation run "
                "must pass the same model object the context was built for")
        ctx = context if context is not None else self.context_for(model)
        for name in names:
            run_stage(ctx, name)
        return PipelineResult(
            compressed=ctx.artifacts.get("compressed"),
            events=ctx.events,
            artifacts=ctx.artifacts,
            stages_run=tuple(ctx.completed),
            context=ctx,
        )
