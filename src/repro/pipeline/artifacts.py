"""Content-hash artifact store backing the pipeline's stage cache.

Stage outputs are keyed by a stable SHA-256 digest of their *inputs* — the
raw layer data plus exactly the config fields the stage reads — so a re-run
with unchanged inputs is a cache hit and any relevant config change misses
(and therefore recomputes) only the stages downstream of it.  Clustering is
the expensive stage this exists for; the store itself is generic.

Artifacts live in memory, and optionally on disk (``cache_dir``) as pickles
so warm caches survive across processes (e.g. the CLI run twice).
"""

from __future__ import annotations

import enum
import hashlib
import os
import pickle
import threading
from pathlib import Path
from typing import Any, Dict, Optional, Union

import numpy as np

#: sentinel returned by :meth:`ArtifactStore.get` on a miss (``None`` is a
#: legal artifact value)
MISS = object()


def _feed(h: "hashlib._Hash", obj: Any) -> None:
    """Feed one (possibly nested) object into the hash, type-tagged so that
    e.g. the int 1 and the string "1" cannot collide."""
    if isinstance(obj, np.ndarray):
        arr = np.ascontiguousarray(obj)
        h.update(b"nd")
        h.update(str(arr.dtype).encode())
        h.update(str(arr.shape).encode())
        h.update(arr.tobytes())
    elif isinstance(obj, bytes):
        h.update(b"by")
        h.update(obj)
    elif isinstance(obj, str):
        h.update(b"st")
        h.update(obj.encode("utf-8"))
    elif isinstance(obj, bool):
        h.update(b"bo" + (b"1" if obj else b"0"))
    elif isinstance(obj, (int, np.integer)):
        h.update(b"in")
        h.update(str(int(obj)).encode())
    elif isinstance(obj, (float, np.floating)):
        h.update(b"fl")
        h.update(repr(float(obj)).encode())
    elif obj is None:
        h.update(b"no")
    elif isinstance(obj, enum.Enum):
        h.update(b"en")
        _feed(h, obj.value)
    elif isinstance(obj, dict):
        h.update(b"di")
        for key in sorted(obj):
            _feed(h, key)
            _feed(h, obj[key])
    elif isinstance(obj, (list, tuple)):
        h.update(b"li")
        for item in obj:
            _feed(h, item)
    else:
        raise TypeError(f"cannot hash object of type {type(obj).__name__}")


def stable_hash(*parts: Any) -> str:
    """Stable SHA-256 content hash over nested python/numpy structures."""
    h = hashlib.sha256()
    for part in parts:
        _feed(h, part)
    return h.hexdigest()


class ArtifactStore:
    """Two-level (memory, optional disk) store of stage artifacts.

    Keys are the content hashes of :func:`stable_hash`; values are arbitrary
    picklable objects.  A corrupt or unreadable disk entry counts as a miss
    — the pipeline recomputes and overwrites it.

    One store may be shared by concurrent pipeline runs (the parallel
    evaluator of :mod:`repro.explore` fans candidates across threads against
    a single store): the hit/miss counters are lock-protected and disk
    writes go through per-writer temp files followed by an atomic rename,
    so two threads producing the same key cannot corrupt each other.
    """

    def __init__(self, cache_dir: Optional[Union[str, Path]] = None):
        self._memory: Dict[str, Any] = {}
        self._lock = threading.Lock()
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        if self.cache_dir is not None:
            self.cache_dir.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0

    def _path(self, key: str) -> Path:
        return self.cache_dir / f"{key}.pkl"

    def _count(self, hit: bool) -> None:
        with self._lock:
            if hit:
                self.hits += 1
            else:
                self.misses += 1

    def get(self, key: str) -> Any:
        if key in self._memory:
            self._count(hit=True)
            return self._memory[key]
        if self.cache_dir is not None:
            path = self._path(key)
            if path.exists():
                try:
                    with path.open("rb") as fh:
                        value = pickle.load(fh)
                except Exception:
                    self._count(hit=False)
                    return MISS
                self._memory[key] = value
                self._count(hit=True)
                return value
        self._count(hit=False)
        return MISS

    def put(self, key: str, value: Any) -> None:
        self._memory[key] = value
        if self.cache_dir is not None:
            tmp = self._path(key).with_suffix(f".{os.getpid()}.{threading.get_ident()}.tmp")
            with tmp.open("wb") as fh:
                pickle.dump(value, fh, protocol=pickle.HIGHEST_PROTOCOL)
            tmp.replace(self._path(key))

    def stats(self) -> Dict[str, int]:
        """Snapshot of the hit/miss counters (e.g. for sweep reports)."""
        with self._lock:
            return {"hits": self.hits, "misses": self.misses}

    def __contains__(self, key: str) -> bool:
        if key in self._memory:
            return True
        return self.cache_dir is not None and self._path(key).exists()

    def __len__(self) -> int:
        keys = set(self._memory)
        if self.cache_dir is not None:
            keys.update(p.stem for p in self.cache_dir.glob("*.pkl"))
        return len(keys)
