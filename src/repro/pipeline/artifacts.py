"""Content-hash artifact store backing the pipeline's stage cache.

Stage outputs are keyed by a stable SHA-256 digest of their *inputs* — the
raw layer data plus exactly the config fields the stage reads — so a re-run
with unchanged inputs is a cache hit and any relevant config change misses
(and therefore recomputes) only the stages downstream of it.  Clustering is
the expensive stage this exists for; the store itself is generic.

Artifacts live in memory, and optionally on disk (``cache_dir``) as pickles
so warm caches survive across processes (e.g. the CLI run twice).

The disk tier is **crash-safe** and safe for concurrent multi-process
writers:

* every commit writes a temp file, ``fsync``\\ s it and atomically renames
  into place — a reader (or a re-run after a mid-write kill) only ever
  observes the old entry, the new entry, or a leftover ``*.tmp`` that is
  never read;
* each entry carries a SHA-256 digest of its pickle payload in a manifest
  sidecar (``manifest/<key>.json``); a digest mismatch (truncation, bit
  rot, torn write from a crashed process) is *detected*, the bad files are
  moved to ``quarantine/`` and the read is a miss — the pipeline then
  transparently recomputes and rewrites the entry;
* writers serialize per key through ``O_EXCL`` lock files with stale-lock
  takeover, so two processes producing the same key cannot interleave their
  pkl/manifest pairs.  Keys are content hashes of the inputs, so concurrent
  same-key writers are idempotent anyway — the lock only prevents a torn
  *pair*, not a wrong value.

The write and read paths are instrumented with the
``artifacts.store.write`` / ``artifacts.store.read`` fault points of
:mod:`repro.core.faults`; an injected ``corrupt`` rule mangles the payload
bytes exactly like a torn write would, and the digest check catches it.

These multi-process guarantees are load-bearing for the explorer's
``backend="process"`` mode: spawned evaluation workers share nothing but
``cache_dir``, so the disk tier *is* the cross-process result channel —
every worker's stage outputs land here and the next wave (in any process)
reads them back as cache hits.
"""

from __future__ import annotations

import enum
import hashlib
import json
import os
import pickle
import threading
import time
from pathlib import Path
from typing import Any, Dict, Optional, Union

import numpy as np

from repro.core import telemetry
from repro.core.faults import fault_point

#: sentinel returned by :meth:`ArtifactStore.get` on a miss (``None`` is a
#: legal artifact value)
MISS = object()

#: a lock file untouched for this long belongs to a dead writer
STALE_LOCK_S = 30.0


def _feed(h: "hashlib._Hash", obj: Any) -> None:
    """Feed one (possibly nested) object into the hash, type-tagged so that
    e.g. the int 1 and the string "1" cannot collide."""
    if isinstance(obj, np.ndarray):
        arr = np.ascontiguousarray(obj)
        h.update(b"nd")
        h.update(str(arr.dtype).encode())
        h.update(str(arr.shape).encode())
        h.update(arr.tobytes())
    elif isinstance(obj, bytes):
        h.update(b"by")
        h.update(obj)
    elif isinstance(obj, str):
        h.update(b"st")
        h.update(obj.encode("utf-8"))
    elif isinstance(obj, bool):
        h.update(b"bo" + (b"1" if obj else b"0"))
    elif isinstance(obj, (int, np.integer)):
        h.update(b"in")
        h.update(str(int(obj)).encode())
    elif isinstance(obj, (float, np.floating)):
        h.update(b"fl")
        h.update(repr(float(obj)).encode())
    elif obj is None:
        h.update(b"no")
    elif isinstance(obj, enum.Enum):
        h.update(b"en")
        _feed(h, obj.value)
    elif isinstance(obj, dict):
        h.update(b"di")
        for key in sorted(obj):
            _feed(h, key)
            _feed(h, obj[key])
    elif isinstance(obj, (list, tuple)):
        h.update(b"li")
        for item in obj:
            _feed(h, item)
    else:
        raise TypeError(f"cannot hash object of type {type(obj).__name__}")


def stable_hash(*parts: Any) -> str:
    """Stable SHA-256 content hash over nested python/numpy structures."""
    h = hashlib.sha256()
    for part in parts:
        _feed(h, part)
    return h.hexdigest()


def _atomic_write(path: Path, payload: bytes) -> None:
    """Temp file + fsync + rename: the entry appears complete or not at all."""
    tmp = path.with_suffix(
        f".{os.getpid()}.{threading.get_ident()}.tmp")
    with tmp.open("wb") as fh:
        fh.write(payload)
        fh.flush()
        os.fsync(fh.fileno())
    tmp.replace(path)


class _KeyLock:
    """``O_EXCL`` lock file with stale-lock takeover.

    The lock's *existence* is the lock; its content (pid) is diagnostic
    only.  A writer that dies mid-commit leaves the file behind — the next
    writer takes it over once its mtime is older than ``STALE_LOCK_S``
    (refreshing a healthy long write is the holder's job; our commits are
    milliseconds, so the default margin is enormous).
    """

    def __init__(self, path: Path, timeout_s: float = 60.0,
                 on_takeover=None):
        self.path = path
        self.timeout_s = timeout_s
        self.on_takeover = on_takeover

    def __enter__(self) -> "_KeyLock":
        deadline = time.monotonic() + self.timeout_s
        while True:
            try:
                fd = os.open(self.path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                try:
                    age = time.time() - self.path.stat().st_mtime
                except OSError:
                    continue  # holder released between open and stat; retry
                if age > STALE_LOCK_S:
                    # dead writer: steal by removing and re-contending; a
                    # race between stealers is fine — exactly one O_EXCL
                    # open wins the next round
                    try:
                        self.path.unlink()
                    except OSError:
                        pass
                    else:
                        if self.on_takeover is not None:
                            self.on_takeover()
                    continue
                if time.monotonic() >= deadline:
                    raise TimeoutError(
                        f"could not acquire artifact lock {self.path} "
                        f"within {self.timeout_s}s") from None
                time.sleep(0.005)
            else:
                os.write(fd, str(os.getpid()).encode())
                os.close(fd)
                return self

    def __exit__(self, *exc) -> None:
        try:
            self.path.unlink()
        except OSError:
            pass


class ArtifactStore:
    """Two-level (memory, optional disk) store of stage artifacts.

    Keys are the content hashes of :func:`stable_hash`; values are arbitrary
    picklable objects.  A corrupt, truncated or unreadable disk entry is
    detected via its manifest digest, moved to ``quarantine/`` and counted
    as a miss — the pipeline recomputes and overwrites it.

    One store may be shared by concurrent pipeline runs across threads
    *and* processes: counters are lock-protected, commits are atomic
    (temp + fsync + rename) and per-key ``O_EXCL`` lock files with
    stale-lock takeover serialize writers of the same key.
    """

    def __init__(self, cache_dir: Optional[Union[str, Path]] = None):
        self._memory: Dict[str, Any] = {}
        self._lock = threading.Lock()
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        if self.cache_dir is not None:
            self.cache_dir.mkdir(parents=True, exist_ok=True)
            (self.cache_dir / "manifest").mkdir(exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.corrupted = 0
        self.lock_takeovers = 0

    def _path(self, key: str) -> Path:
        return self.cache_dir / f"{key}.pkl"

    def _manifest_path(self, key: str) -> Path:
        return self.cache_dir / "manifest" / f"{key}.json"

    def _lock_path(self, key: str) -> Path:
        return self.cache_dir / f"{key}.lock"

    def _quarantine_dir(self) -> Path:
        path = self.cache_dir / "quarantine"
        path.mkdir(exist_ok=True)
        return path

    def _count(self, hit: bool) -> None:
        with self._lock:
            if hit:
                self.hits += 1
            else:
                self.misses += 1
        telemetry.counter_add(
            "artifacts.hits" if hit else "artifacts.misses")

    def _count_takeover(self) -> None:
        with self._lock:
            self.lock_takeovers += 1
        telemetry.counter_add("artifacts.lock_takeovers")
        telemetry.event("artifacts.lock_takeover")

    # -- read path ------------------------------------------------------------
    def _read_manifest(self, key: str) -> Optional[Dict[str, Any]]:
        path = self._manifest_path(key)
        try:
            manifest = json.loads(path.read_text())
        except (OSError, ValueError):
            return None
        if not isinstance(manifest, dict) or "digest" not in manifest:
            return None
        return manifest

    def _quarantine(self, key: str, reason: str) -> None:
        """Move a bad entry (pkl + manifest) out of the way of recompute."""
        qdir = self._quarantine_dir()
        stamp = f"{key}.{os.getpid()}"
        for src, suffix in ((self._path(key), "pkl"),
                            (self._manifest_path(key), "json")):
            if src.exists():
                try:
                    src.replace(qdir / f"{stamp}.{suffix}")
                except OSError:
                    pass  # another process already quarantined it
        with self._lock:
            self.corrupted += 1
        telemetry.counter_add("artifacts.quarantined")
        telemetry.event("artifacts.quarantine", key=key, reason=reason)

    def _load_disk(self, key: str) -> Any:
        path = self._path(key)
        try:
            raw = path.read_bytes()
        except OSError:
            return MISS
        raw = fault_point("artifacts.store.read", raw)
        manifest = self._read_manifest(key)
        if manifest is not None:
            if hashlib.sha256(raw).hexdigest() != manifest["digest"]:
                self._quarantine(key, "digest mismatch")
                return MISS
        try:
            return pickle.loads(raw)
        except Exception:
            # unpicklable despite a matching (or absent) manifest — a
            # pre-manifest legacy entry or a hash collision-grade anomaly;
            # either way: quarantine + miss + recompute
            self._quarantine(key, "unpicklable payload")
            return MISS

    def get(self, key: str) -> Any:
        if key in self._memory:
            self._count(hit=True)
            return self._memory[key]
        if self.cache_dir is not None:
            value = self._load_disk(key)
            if value is not MISS:
                self._memory[key] = value
                self._count(hit=True)
                return value
        self._count(hit=False)
        return MISS

    # -- write path -----------------------------------------------------------
    def put(self, key: str, value: Any) -> None:
        self._memory[key] = value
        if self.cache_dir is None:
            return
        payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        # digest the *good* payload before the fault point: an injected
        # corruption then mangles what hits the disk, and the manifest
        # digest catches it on read — exactly like a real torn write
        digest = hashlib.sha256(payload).hexdigest()
        payload = fault_point("artifacts.store.write", payload)
        manifest = json.dumps({"key": key, "digest": digest,
                               "size": len(payload),
                               "writer_pid": os.getpid()}).encode()
        with _KeyLock(self._lock_path(key), on_takeover=self._count_takeover):
            _atomic_write(self._path(key), payload)
            _atomic_write(self._manifest_path(key), manifest)

    # -- maintenance ----------------------------------------------------------
    def scrub(self) -> Dict[str, int]:
        """Verify every disk entry against its manifest digest.

        Corrupted or truncated entries are quarantined; entries without a
        manifest are left alone (legacy format — they still fail safe at
        read time via the unpickle guard).  Returns counts.
        """
        report = {"checked": 0, "ok": 0, "quarantined": 0, "unmanifested": 0}
        if self.cache_dir is None:
            return report
        for path in sorted(self.cache_dir.glob("*.pkl")):
            key = path.stem
            report["checked"] += 1
            manifest = self._read_manifest(key)
            if manifest is None:
                report["unmanifested"] += 1
                continue
            try:
                raw = path.read_bytes()
            except OSError:
                continue
            if hashlib.sha256(raw).hexdigest() == manifest["digest"]:
                report["ok"] += 1
            else:
                self._quarantine(key, "scrub digest mismatch")
                report["quarantined"] += 1
        return report

    def stats(self) -> Dict[str, int]:
        """Snapshot of the hit/miss/corruption counters (for sweep reports)."""
        with self._lock:
            return {"hits": self.hits, "misses": self.misses,
                    "corrupted": self.corrupted,
                    "quarantined": self.corrupted,
                    "lock_takeovers": self.lock_takeovers}

    def __contains__(self, key: str) -> bool:
        if key in self._memory:
            return True
        return self.cache_dir is not None and self._path(key).exists()

    def __len__(self) -> int:
        keys = set(self._memory)
        if self.cache_dir is not None:
            keys.update(p.stem for p in self.cache_dir.glob("*.pkl"))
        return len(keys)
