"""Scenario registry: named (model-zoo entry x compression config x workload).

A :class:`Scenario` binds everything one end-to-end run needs — which mini
model to build, the :class:`~repro.pipeline.config.PipelineConfig` to
compress it with, and which full-size accelerator workload the
``accel_eval`` stage should price the deployment on.  Scenarios make new
experiments *data*: registering one is a dict, not another copy of the
imperative glue.

``python -m repro.pipeline list-scenarios`` prints the registry;
``python -m repro.pipeline run --scenario NAME`` runs one.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.pipeline.artifacts import ArtifactStore
from repro.pipeline.config import DEFAULT_STAGES, PipelineConfig, _merge
from repro.pipeline.runner import Pipeline, PipelineResult
from repro.workloads.resolving import resolve


@dataclass(frozen=True)
class Scenario:
    """One named end-to-end configuration.

    The network comes from one of three sources, in precedence order:
    ``workload_spec`` (an inline declarative spec dict), ``workload_file``
    (a path to a spec JSON), or ``model`` (a name in the unified
    :mod:`repro.workloads` registry — model-zoo minis and spec-backed
    workloads alike).  When a spec drives the scenario it supplies the
    executable model, the input shape and — unless ``workload`` pins a
    different table — the accelerator workload, so one JSON file carries a
    network through compress → serve → accel_eval with no per-model Python.
    """

    name: str
    description: str
    model: str = "resnet18"                       # repro.workloads registry key
    model_kwargs: Mapping[str, Any] = field(default_factory=dict)
    pipeline: Mapping[str, Any] = field(default_factory=dict)
    workload: Optional[str] = None                # accelerator table key
    input_shape: Tuple[int, ...] = (3, 16, 16)
    #: path to a declarative workload spec JSON (repro.workloads schema)
    workload_file: Optional[str] = None
    #: inline declarative workload spec dict (wins over ``workload_file``)
    workload_spec: Optional[Mapping[str, Any]] = None

    def pipeline_config(self) -> PipelineConfig:
        return PipelineConfig.from_dict(dict(self.pipeline))

    def resolve_workload_spec(self):
        """The scenario's :class:`~repro.workloads.WorkloadSpec`, or None
        when the scenario names a registry model instead."""
        from repro.workloads import WorkloadSpec

        if self.workload_spec is not None:
            return WorkloadSpec.from_dict(self.workload_spec)
        if self.workload_file is not None:
            return WorkloadSpec.from_file(self.workload_file)
        return None

    def effective_input_shape(self) -> Tuple[int, ...]:
        spec = self.resolve_workload_spec()
        return tuple(spec.input_shape) if spec is not None else tuple(self.input_shape)

    def accel_workload(self) -> Optional[str]:
        """The accelerator workload name ``accel_eval`` should price,
        registering the scenario's spec so the name resolves."""
        if self.workload is not None:
            return self.workload
        spec = self.resolve_workload_spec()
        if spec is not None:
            from repro.workloads import register_spec

            register_spec(spec, source="user", overwrite=True)
            return spec.name
        return None

    def build_model(self):
        spec = self.resolve_workload_spec()
        if spec is not None:
            return spec.build_model(seed=int(dict(self.model_kwargs).get("seed", 0)))
        from repro.workloads.registry import model_factory

        return model_factory(self.model)(**dict(self.model_kwargs))

    def to_dict(self) -> Dict[str, Any]:
        data = {
            "name": self.name,
            "description": self.description,
            "model": self.model,
            "model_kwargs": dict(self.model_kwargs),
            "pipeline": dict(self.pipeline),
            "workload": self.workload,
            "input_shape": list(self.input_shape),
        }
        if self.workload_file is not None:
            data["workload_file"] = self.workload_file
        if self.workload_spec is not None:
            data["workload_spec"] = dict(self.workload_spec)
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Scenario":
        data = dict(data)
        if "input_shape" in data:
            data["input_shape"] = tuple(data["input_shape"])
        data.setdefault("name", "adhoc")
        data.setdefault("description", "ad-hoc scenario")
        return cls(**data)

    def with_overrides(self, *, pipeline: Optional[Mapping[str, Any]] = None,
                       **fields: Any) -> "Scenario":
        """A copy with dataclass fields replaced and ``pipeline`` deep-merged.

        ``pipeline`` merges *into* the existing pipeline dict (nested dicts
        recursively, the override winning), so sweep-generated variants — or
        tests pinning an ``export_path`` — change only the keys they name
        instead of hand-copying the whole scenario::

            scenario.with_overrides(name="quickstart-k64",
                                    pipeline={"base": {"k": 64}})
        """
        if pipeline is not None:
            fields["pipeline"] = _merge(self.pipeline, pipeline)
        if "input_shape" in fields:
            fields["input_shape"] = tuple(fields["input_shape"])
        return dataclasses.replace(self, **fields)


SCENARIOS: Dict[str, Scenario] = {}


def register_scenario(scenario: Scenario, overwrite: bool = False) -> Scenario:
    if scenario.name in SCENARIOS and not overwrite:
        raise ValueError(f"scenario {scenario.name!r} is already registered")
    SCENARIOS[scenario.name] = scenario
    return scenario


def get_scenario(name: str) -> Scenario:
    if name not in SCENARIOS and name.startswith("explore-"):
        # ``explore-*`` scenarios (the frontier best points of registered
        # search spaces) are registered lazily when repro.explore loads, so
        # e.g. the serve loader can name them without importing the
        # subsystem up front
        try:
            import repro.explore.spaces  # noqa: F401  (registers explore-*)
        except ModuleNotFoundError as error:
            # only tolerate the subsystem itself being absent; a real import
            # bug inside repro.explore must surface, not masquerade as
            # "unknown scenario"
            absent = ("repro", "repro.explore", "repro.explore.spaces")
            if error.name not in absent:
                raise
    return resolve(SCENARIOS, name, "scenario")


def list_scenarios() -> List[Scenario]:
    return [SCENARIOS[name] for name in sorted(SCENARIOS)]


def run_scenario(name_or_scenario, stages: Optional[Sequence[str]] = None,
                 store: Optional[ArtifactStore] = None,
                 cache_dir: Optional[str] = None) -> PipelineResult:
    """Build the scenario's model and run its pipeline end to end."""
    scenario = (name_or_scenario if isinstance(name_or_scenario, Scenario)
                else get_scenario(name_or_scenario))
    config = scenario.pipeline_config()
    if cache_dir is not None and store is None:
        store = ArtifactStore(cache_dir)
    pipeline = Pipeline(config, store=store, workload=scenario.accel_workload(),
                        input_shape=scenario.effective_input_shape(),
                        scenario=scenario.name)
    model = scenario.build_model()
    return pipeline.run(model, stages=stages)


# ---------------------------------------------------------------------------
# built-in scenarios
# ---------------------------------------------------------------------------

#: tiny-but-complete settings shared by the smoke scenarios: small codebooks
#: and few k-means iterations keep an end-to-end run in the seconds range
_TINY = {"k": 24, "max_kmeans_iterations": 10}

register_scenario(Scenario(
    name="quickstart-resnet18",
    description="Tiny ResNet-18 through the full MVQ flow: compress, export, "
                "compressed-domain serving and accelerator evaluation.",
    model="resnet18",
    model_kwargs={"num_classes": 5, "seed": 1},
    pipeline={
        "preset": "mvq",
        "base": dict(_TINY),
        "stages": list(DEFAULT_STAGES),
        "serve": {"batch_size": 4, "num_samples": 8},
        "accelerator": {"setting": "EWS-CMS", "array_size": 64},
        "serving": {"max_batch_size": 8, "max_wait_ms": 2.0,
                    "max_queue_size": 256, "overload": "shed"},
    },
    workload="resnet18",
))

register_scenario(Scenario(
    name="serving-resnet18",
    description="The quickstart ResNet-18 tuned for the online model server: "
                "larger coalesced batches, a deeper admission queue and "
                "blocking backpressure instead of load shedding.",
    model="resnet18",
    model_kwargs={"num_classes": 5, "seed": 1},
    pipeline={
        "preset": "mvq",
        "base": dict(_TINY),
        "stages": ["group", "prune", "cluster", "quantize"],
        "serving": {"max_batch_size": 16, "max_wait_ms": 5.0,
                    "max_queue_size": 1024, "overload": "block"},
    },
    workload="resnet18",
))

register_scenario(Scenario(
    name="resnet18-firstlast-overrides",
    description="Per-layer overrides: the stem keeps a larger codebook and "
                "milder pruning than the deeper stages (Table 3 style).",
    model="resnet18",
    model_kwargs={"num_classes": 5, "seed": 1},
    pipeline={
        "preset": "mvq",
        "base": dict(_TINY),
        "overrides": [
            {"pattern": "stem.*", "fields": {"k": 48, "n_keep": 4}},
            {"pattern": "stages.layers.3.*", "fields": {"k": 32}},
        ],
        "stages": list(DEFAULT_STAGES),
        "serve": {"batch_size": 4, "num_samples": 8},
    },
    workload="resnet18",
))

register_scenario(Scenario(
    name="mobilenet_v1-crosslayer",
    description="MobileNet-V1 with one codebook shared across all pointwise "
                "layers (the paper's crosslayer clustering).",
    model="mobilenet_v1",
    model_kwargs={"num_classes": 5, "seed": 1},
    pipeline={
        "preset": "mvq",
        "base": dict(_TINY),
        "crosslayer": True,
        "stages": list(DEFAULT_STAGES),
        "serve": {"batch_size": 4, "num_samples": 8},
    },
    workload="mobilenet_v1",
))

register_scenario(Scenario(
    name="vgg16-finetuned",
    description="VGG-16 mini with a short codebook fine-tuning pass between "
                "quantization and export.",
    model="vgg16",
    model_kwargs={"num_classes": 5, "seed": 1},
    pipeline={
        "preset": "mvq",
        "base": dict(_TINY),
        "data": {"num_samples": 96, "image_size": 16, "num_classes": 5},
        "finetune": {"epochs": 1, "lr": 0.02, "codebook_lr": 3e-3},
        "stages": list(DEFAULT_STAGES),
        "serve": {"batch_size": 4, "num_samples": 8},
    },
    workload="vgg16",
))

for _case in "abcd":
    register_scenario(Scenario(
        name=f"table3-case-{_case}-resnet18",
        description=f"Table 3 ablation case {_case.upper()} on the tiny "
                    "ResNet-18 (compression + serving + accelerator).",
        model="resnet18",
        model_kwargs={"num_classes": 5, "seed": 1},
        pipeline={
            "preset": f"table3_case_{_case}",
            "base": dict(_TINY),
            "stages": list(DEFAULT_STAGES),
            "serve": {"batch_size": 4, "num_samples": 8},
        },
        workload="resnet18",
    ))

# -- declarative-workload scenario families (spec-backed registry entries) ---

register_scenario(Scenario(
    name="transformer-block",
    description="Declarative transformer encoder block: the attention/MLP "
                "projections are MVQ-compressed (include_linear) and served "
                "on the integer/LUT engine; accel_eval prices the attention "
                "lowered to its four weight GEMMs.",
    model="transformer_block",
    model_kwargs={"seed": 1},
    pipeline={
        "preset": "mvq",
        "base": dict(_TINY),
        "include_linear": True,
        "stages": list(DEFAULT_STAGES),
        "serve": {"batch_size": 4, "num_samples": 8, "mode": "lut"},
        "accelerator": {"setting": "EWS-CMS", "array_size": 64},
        "serving": {"engine_mode": "lut", "max_batch_size": 8,
                    "max_wait_ms": 2.0, "max_queue_size": 256,
                    "overload": "shed"},
    },
    workload="transformer_block",
    input_shape=(64, 32),
))

register_scenario(Scenario(
    name="detection-simple",
    description="SimpleDetector (ResNet backbone, class + box heads) through "
                "compression, export and accelerator evaluation; its tuple "
                "output uses task-specific eval instead of serve_eval.",
    model="simple_detector",
    model_kwargs={"num_classes": 5, "seed": 1},
    pipeline={
        "preset": "mvq",
        "base": dict(_TINY),
        "stages": ["group", "prune", "cluster", "quantize", "export",
                   "accel_eval"],
        "accelerator": {"setting": "EWS-CMS", "array_size": 64},
    },
    workload="simple_detector",
))

register_scenario(Scenario(
    name="segmentation-deeplab",
    description="DeepLab-lite segmenter (MobileNet-V2 backbone) end to end: "
                "compress, export, serve the dense per-pixel logits and "
                "price the schema-derived accelerator table.",
    model="deeplab_lite",
    model_kwargs={"num_classes": 4, "seed": 1},
    pipeline={
        "preset": "mvq",
        "base": dict(_TINY),
        # the 4-class 1x1 classifier has fewer subvectors than the codebook
        # would need; keep it dense like the paper keeps final layers
        "skip_layers": ["classifier"],
        "stages": list(DEFAULT_STAGES),
        "serve": {"batch_size": 4, "num_samples": 8},
        "accelerator": {"setting": "EWS-CMS", "array_size": 64},
    },
    workload="deeplab_lite",
))

register_scenario(Scenario(
    name="stress-gemm-tower",
    description="Synthetic perf-harness stress shape: a tower of square "
                "GEMMs compressed with include_linear and served on the "
                "LUT engine.",
    model="stress_gemm_tower",
    model_kwargs={"seed": 1},
    pipeline={
        "preset": "mvq",
        "base": dict(_TINY),
        "include_linear": True,
        "stages": list(DEFAULT_STAGES),
        "serve": {"batch_size": 4, "num_samples": 8, "mode": "lut"},
        "accelerator": {"setting": "EWS-CMS", "array_size": 64},
    },
    workload="stress_gemm_tower",
    input_shape=(256,),
))
