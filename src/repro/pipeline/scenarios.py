"""Scenario registry: named (model-zoo entry x compression config x workload).

A :class:`Scenario` binds everything one end-to-end run needs — which mini
model to build, the :class:`~repro.pipeline.config.PipelineConfig` to
compress it with, and which full-size accelerator workload the
``accel_eval`` stage should price the deployment on.  Scenarios make new
experiments *data*: registering one is a dict, not another copy of the
imperative glue.

``python -m repro.pipeline list-scenarios`` prints the registry;
``python -m repro.pipeline run --scenario NAME`` runs one.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.pipeline.artifacts import ArtifactStore
from repro.pipeline.config import DEFAULT_STAGES, PipelineConfig, _merge
from repro.pipeline.runner import Pipeline, PipelineResult


@dataclass(frozen=True)
class Scenario:
    """One named end-to-end configuration."""

    name: str
    description: str
    model: str = "resnet18"                       # repro.nn.models.MODEL_ZOO key
    model_kwargs: Mapping[str, Any] = field(default_factory=dict)
    pipeline: Mapping[str, Any] = field(default_factory=dict)
    workload: Optional[str] = None                # repro.accelerator.workloads key
    input_shape: Tuple[int, ...] = (3, 16, 16)

    def pipeline_config(self) -> PipelineConfig:
        return PipelineConfig.from_dict(dict(self.pipeline))

    def build_model(self):
        from repro.nn.models import get_model_factory

        return get_model_factory(self.model)(**dict(self.model_kwargs))

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "description": self.description,
            "model": self.model,
            "model_kwargs": dict(self.model_kwargs),
            "pipeline": dict(self.pipeline),
            "workload": self.workload,
            "input_shape": list(self.input_shape),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Scenario":
        data = dict(data)
        if "input_shape" in data:
            data["input_shape"] = tuple(data["input_shape"])
        data.setdefault("name", "adhoc")
        data.setdefault("description", "ad-hoc scenario")
        return cls(**data)

    def with_overrides(self, *, pipeline: Optional[Mapping[str, Any]] = None,
                       **fields: Any) -> "Scenario":
        """A copy with dataclass fields replaced and ``pipeline`` deep-merged.

        ``pipeline`` merges *into* the existing pipeline dict (nested dicts
        recursively, the override winning), so sweep-generated variants — or
        tests pinning an ``export_path`` — change only the keys they name
        instead of hand-copying the whole scenario::

            scenario.with_overrides(name="quickstart-k64",
                                    pipeline={"base": {"k": 64}})
        """
        if pipeline is not None:
            fields["pipeline"] = _merge(self.pipeline, pipeline)
        if "input_shape" in fields:
            fields["input_shape"] = tuple(fields["input_shape"])
        return dataclasses.replace(self, **fields)


SCENARIOS: Dict[str, Scenario] = {}


def register_scenario(scenario: Scenario, overwrite: bool = False) -> Scenario:
    if scenario.name in SCENARIOS and not overwrite:
        raise ValueError(f"scenario {scenario.name!r} is already registered")
    SCENARIOS[scenario.name] = scenario
    return scenario


def get_scenario(name: str) -> Scenario:
    if name not in SCENARIOS and name.startswith("explore-"):
        # ``explore-*`` scenarios (the frontier best points of registered
        # search spaces) are registered lazily when repro.explore loads, so
        # e.g. the serve loader can name them without importing the
        # subsystem up front
        try:
            import repro.explore.spaces  # noqa: F401  (registers explore-*)
        except ModuleNotFoundError as error:
            # only tolerate the subsystem itself being absent; a real import
            # bug inside repro.explore must surface, not masquerade as
            # "unknown scenario"
            absent = ("repro", "repro.explore", "repro.explore.spaces")
            if error.name not in absent:
                raise
    try:
        return SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; available: {sorted(SCENARIOS)}") from None


def list_scenarios() -> List[Scenario]:
    return [SCENARIOS[name] for name in sorted(SCENARIOS)]


def run_scenario(name_or_scenario, stages: Optional[Sequence[str]] = None,
                 store: Optional[ArtifactStore] = None,
                 cache_dir: Optional[str] = None) -> PipelineResult:
    """Build the scenario's model and run its pipeline end to end."""
    scenario = (name_or_scenario if isinstance(name_or_scenario, Scenario)
                else get_scenario(name_or_scenario))
    config = scenario.pipeline_config()
    if cache_dir is not None and store is None:
        store = ArtifactStore(cache_dir)
    pipeline = Pipeline(config, store=store, workload=scenario.workload,
                        input_shape=scenario.input_shape, scenario=scenario.name)
    model = scenario.build_model()
    return pipeline.run(model, stages=stages)


# ---------------------------------------------------------------------------
# built-in scenarios
# ---------------------------------------------------------------------------

#: tiny-but-complete settings shared by the smoke scenarios: small codebooks
#: and few k-means iterations keep an end-to-end run in the seconds range
_TINY = {"k": 24, "max_kmeans_iterations": 10}

register_scenario(Scenario(
    name="quickstart-resnet18",
    description="Tiny ResNet-18 through the full MVQ flow: compress, export, "
                "compressed-domain serving and accelerator evaluation.",
    model="resnet18",
    model_kwargs={"num_classes": 5, "seed": 1},
    pipeline={
        "preset": "mvq",
        "base": dict(_TINY),
        "stages": list(DEFAULT_STAGES),
        "serve": {"batch_size": 4, "num_samples": 8},
        "accelerator": {"setting": "EWS-CMS", "array_size": 64},
        "serving": {"max_batch_size": 8, "max_wait_ms": 2.0,
                    "max_queue_size": 256, "overload": "shed"},
    },
    workload="resnet18",
))

register_scenario(Scenario(
    name="serving-resnet18",
    description="The quickstart ResNet-18 tuned for the online model server: "
                "larger coalesced batches, a deeper admission queue and "
                "blocking backpressure instead of load shedding.",
    model="resnet18",
    model_kwargs={"num_classes": 5, "seed": 1},
    pipeline={
        "preset": "mvq",
        "base": dict(_TINY),
        "stages": ["group", "prune", "cluster", "quantize"],
        "serving": {"max_batch_size": 16, "max_wait_ms": 5.0,
                    "max_queue_size": 1024, "overload": "block"},
    },
    workload="resnet18",
))

register_scenario(Scenario(
    name="resnet18-firstlast-overrides",
    description="Per-layer overrides: the stem keeps a larger codebook and "
                "milder pruning than the deeper stages (Table 3 style).",
    model="resnet18",
    model_kwargs={"num_classes": 5, "seed": 1},
    pipeline={
        "preset": "mvq",
        "base": dict(_TINY),
        "overrides": [
            {"pattern": "stem.*", "fields": {"k": 48, "n_keep": 4}},
            {"pattern": "stages.layers.3.*", "fields": {"k": 32}},
        ],
        "stages": list(DEFAULT_STAGES),
        "serve": {"batch_size": 4, "num_samples": 8},
    },
    workload="resnet18",
))

register_scenario(Scenario(
    name="mobilenet_v1-crosslayer",
    description="MobileNet-V1 with one codebook shared across all pointwise "
                "layers (the paper's crosslayer clustering).",
    model="mobilenet_v1",
    model_kwargs={"num_classes": 5, "seed": 1},
    pipeline={
        "preset": "mvq",
        "base": dict(_TINY),
        "crosslayer": True,
        "stages": list(DEFAULT_STAGES),
        "serve": {"batch_size": 4, "num_samples": 8},
    },
    workload="mobilenet_v1",
))

register_scenario(Scenario(
    name="vgg16-finetuned",
    description="VGG-16 mini with a short codebook fine-tuning pass between "
                "quantization and export.",
    model="vgg16",
    model_kwargs={"num_classes": 5, "seed": 1},
    pipeline={
        "preset": "mvq",
        "base": dict(_TINY),
        "data": {"num_samples": 96, "image_size": 16, "num_classes": 5},
        "finetune": {"epochs": 1, "lr": 0.02, "codebook_lr": 3e-3},
        "stages": list(DEFAULT_STAGES),
        "serve": {"batch_size": 4, "num_samples": 8},
    },
    workload="vgg16",
))

for _case in "abcd":
    register_scenario(Scenario(
        name=f"table3-case-{_case}-resnet18",
        description=f"Table 3 ablation case {_case.upper()} on the tiny "
                    "ResNet-18 (compression + serving + accelerator).",
        model="resnet18",
        model_kwargs={"num_classes": 5, "seed": 1},
        pipeline={
            "preset": f"table3_case_{_case}",
            "base": dict(_TINY),
            "stages": list(DEFAULT_STAGES),
            "serve": {"batch_size": 4, "num_samples": 8},
        },
        workload="resnet18",
    ))
