"""Declarative, staged MVQ compression pipeline (config -> artifacts -> stages).

Public surface::

    from repro.pipeline import (
        PipelineConfig, LayerOverride, Pipeline, PipelineResult, ArtifactStore,
        Scenario, register_scenario, get_scenario, list_scenarios, run_scenario,
        register_stage, get_stage, available_stages,
    )

Exports resolve lazily so that importing one leaf module (e.g.
:mod:`repro.pipeline.config`, which :mod:`repro.core.serialization` reuses
for the layer-config schema) does not drag in the whole package.
"""

from __future__ import annotations

_EXPORTS = {
    "PipelineConfig": "repro.pipeline.config",
    "LayerOverride": "repro.pipeline.config",
    "PRESETS": "repro.pipeline.config",
    "CORE_STAGES": "repro.pipeline.config",
    "DEFAULT_STAGES": "repro.pipeline.config",
    "layer_config_to_dict": "repro.pipeline.config",
    "layer_config_from_dict": "repro.pipeline.config",
    "ArtifactStore": "repro.pipeline.artifacts",
    "stable_hash": "repro.pipeline.artifacts",
    "MISS": "repro.pipeline.artifacts",
    "StageContext": "repro.pipeline.stages",
    "StageInfo": "repro.pipeline.stages",
    "register_stage": "repro.pipeline.stages",
    "get_stage": "repro.pipeline.stages",
    "available_stages": "repro.pipeline.stages",
    "Pipeline": "repro.pipeline.runner",
    "PipelineResult": "repro.pipeline.runner",
    "run_compression_stages": "repro.pipeline.runner",
    "Scenario": "repro.pipeline.scenarios",
    "SCENARIOS": "repro.pipeline.scenarios",
    "register_scenario": "repro.pipeline.scenarios",
    "get_scenario": "repro.pipeline.scenarios",
    "list_scenarios": "repro.pipeline.scenarios",
    "run_scenario": "repro.pipeline.scenarios",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro.pipeline' has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
