"""The pipeline's named, composable stages (the paper's Fig. 2 flow).

Each stage is a function over a :class:`StageContext`: it reads the
artifacts it requires, writes the artifacts it provides and appends one
event (``run`` / ``cached`` / ``skipped``) to the context's event log.  The
registry maps stage names to :class:`StageInfo`; the canonical compression
composition (``group -> prune -> cluster -> quantize``) is what
:meth:`repro.core.compressor.MVQCompressor.compress` executes, and the
deployment stages (``finetune``, ``apply``, ``export``, ``serve_eval``,
``accel_eval``) extend it through serving and the accelerator models.

Only clustering is worth caching: the ``cluster`` stage keys every layer's
result by a content hash of its pruned data, mask, the clustering-relevant
config fields and the precision policy, so a warm re-run skips the k-means
entirely while a change to e.g. ``k`` re-clusters exactly the affected
layers (a ``codebook_bits`` change, which only the ``quantize`` stage
reads, leaves the cluster cache warm).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.core import precision, telemetry
from repro.core.compressor import CompressedModel, LayerCompressionConfig, MVQCompressor
from repro.pipeline.artifacts import MISS, ArtifactStore, stable_hash


@dataclass
class StageInfo:
    """Registry entry: the stage function plus its artifact contract."""

    name: str
    func: Callable[["StageContext"], None]
    requires: Tuple[str, ...] = ()
    provides: Tuple[str, ...] = ()
    description: str = ""


_REGISTRY: Dict[str, StageInfo] = {}

#: artifact name -> producer chain: the stages to run, in order, to make
#: the artifact available.  Lets a pipeline composed "out of order" (e.g.
#: ``stages=["serve_eval"]``) pull in its prerequisites explicitly instead
#: of recomputing them behind the caller's back — with a warm cluster cache
#: the chain is nearly free.
PRODUCER_CHAINS: Dict[str, Tuple[str, ...]] = {
    "targets": ("group",),
    "grouped": ("group",),
    "pruned": ("group", "prune"),
    "compressed": ("group", "prune", "cluster", "quantize"),
    "export": ("group", "prune", "cluster", "quantize", "export"),
    "serve_report": ("group", "prune", "cluster", "quantize", "serve_eval"),
    "accel_report": ("group", "prune", "cluster", "quantize", "accel_eval"),
}


def register_stage(name: str, requires: Tuple[str, ...] = (),
                   provides: Tuple[str, ...] = (), description: str = ""):
    """Decorator adding a stage function to the registry."""
    def decorator(func):
        _REGISTRY[name] = StageInfo(name, func, requires, provides, description)
        return func
    return decorator


def get_stage(name: str) -> StageInfo:
    from repro.workloads.resolving import resolve

    return resolve(_REGISTRY, name, "stage")


def available_stages() -> Dict[str, StageInfo]:
    return dict(_REGISTRY)


class StageContext:
    """Mutable state threaded through one pipeline run."""

    def __init__(self, model, compressor: MVQCompressor,
                 config=None, store: Optional[ArtifactStore] = None,
                 workload: Optional[str] = None,
                 input_shape: Optional[Tuple[int, ...]] = None,
                 scenario: Optional[str] = None):
        self.model = model
        self.compressor = compressor
        self.config = config                    # Optional[PipelineConfig]
        self.store = store
        self.workload = workload
        self.input_shape = input_shape
        self.scenario = scenario
        self.events: List[Dict[str, Any]] = []
        self.completed: List[str] = []
        self.artifacts: Dict[str, Any] = {}

    def __contains__(self, name: str) -> bool:
        return name in self.artifacts

    def __getitem__(self, name: str) -> Any:
        return self.artifacts[name]

    def __setitem__(self, name: str, value: Any) -> None:
        self.artifacts[name] = value

    def log(self, stage: str, status: str, **detail: Any) -> Dict[str, Any]:
        event = {"stage": stage, "status": status, **detail}
        self.events.append(event)
        return event

    def section(self, name: str) -> Dict[str, Any]:
        """One section of the PipelineConfig (empty dict when unset)."""
        if self.config is None:
            return {}
        return dict(getattr(self.config, name, None) or {})


# ---------------------------------------------------------------------------
# core compression stages (the canonical MVQCompressor.compress composition)
# ---------------------------------------------------------------------------

@register_stage("group", provides=("targets", "grouped"),
                 description="select compressible layers and group their weights "
                             "into subvectors")
def stage_group(ctx: StageContext) -> None:
    comp = ctx.compressor
    targets = comp.compressible_layers(ctx.model)
    if not targets:
        raise ValueError("no compressible layers found for the given configuration")
    grouped = {}
    for name, mod in targets:
        cfg = comp.layer_config(name)
        grouped[name] = comp.group_layer(mod.weight.value, cfg)
    ctx["targets"] = targets
    ctx["grouped"] = grouped
    ctx.log("group", "run", layers=len(targets))


@register_stage("prune", requires=("targets", "grouped"), provides=("pruned",),
                 description="N:M prune every grouped layer (mask + pruned data)")
def stage_prune(ctx: StageContext) -> None:
    comp = ctx.compressor
    pruned = {}
    for name, _ in ctx["targets"]:
        cfg = comp.layer_config(name)
        mask, data = comp.prune_grouped(ctx["grouped"][name], cfg)
        pruned[name] = (mask, data)
    ctx["pruned"] = pruned
    ctx.log("prune", "run", layers=len(pruned))


def _cluster_cache_key(pruned: np.ndarray, mask: np.ndarray,
                       cfg: LayerCompressionConfig, seed: int) -> str:
    """Content hash of everything the clustering kernel reads.

    ``d``/``strategy``/``prune`` parameters are not listed: they are already
    captured by the pruned data and mask bytes.  The precision policy is
    included because it changes float summation order, hence results.
    """
    return stable_hash(
        "cluster", 1, pruned, mask,
        cfg.k, cfg.max_kmeans_iterations, bool(cfg.use_masked_kmeans),
        int(seed), str(precision.compute_dtype()),
        precision.distance_block_bytes(),
    )


def _prepared_map(ctx: StageContext) -> Dict[str, tuple]:
    """(cfg, grouped, pruned, mask) per layer, the compressor's native form."""
    comp = ctx.compressor
    prepared = {}
    for name, _ in ctx["targets"]:
        mask, data = ctx["pruned"][name]
        prepared[name] = (comp.layer_config(name), ctx["grouped"][name], data, mask)
    return prepared


@register_stage("cluster", requires=("targets", "grouped", "pruned"),
                 provides=("compressed",),
                 description="(masked) k-means over every layer, with "
                             "content-hash caching of per-layer results")
def stage_cluster(ctx: StageContext) -> None:
    comp = ctx.compressor
    targets = ctx["targets"]
    prepared = _prepared_map(ctx)

    if comp.crosslayer:
        key = None
        result = MISS
        stacked = stacked_mask = None
        if ctx.store is not None:
            stacked, stacked_mask, _ = comp.stack_prepared(targets, prepared)
            key = _cluster_cache_key(stacked, stacked_mask, comp.config,
                                     comp.config.seed)
            result = ctx.store.get(key)
        cached = result is not MISS
        if not cached:
            result, _ = comp.cluster_crosslayer(targets, prepared,
                                                stacked=stacked,
                                                stacked_mask=stacked_mask)
            if ctx.store is not None:
                ctx.store.put(key, result)
        layers = comp.assemble_crosslayer(targets, prepared, result)
        ctx.log("cluster", "cached" if cached else "run", crosslayer=True)
    else:
        results: Dict[str, Any] = {}
        keys: Dict[str, str] = {}
        cached_names: List[str] = []
        fresh: List[str] = []
        for name, _ in targets:
            cfg = prepared[name][0]
            if ctx.store is None:
                fresh.append(name)
                continue
            keys[name] = _cluster_cache_key(
                prepared[name][2], prepared[name][3], cfg,
                comp._layer_seed(name, cfg))
            value = ctx.store.get(keys[name])
            if value is MISS:
                fresh.append(name)
            else:
                results[name] = value
                cached_names.append(name)
        if fresh:
            with telemetry.span("pipeline.cluster.kmeans",
                                layers=",".join(fresh)):
                new = comp.cluster_layerwise(targets, prepared, subset=fresh)
            results.update(new)
            if ctx.store is not None:
                for name in fresh:
                    ctx.store.put(keys[name], new[name])
        layers = comp.assemble_layerwise(targets, prepared, results)
        ctx.log("cluster", "run" if fresh else "cached",
                layers_clustered=fresh, layers_cached=cached_names)

    ctx["compressed"] = CompressedModel(ctx.model, layers,
                                        crosslayer=comp.crosslayer)


@register_stage("quantize", requires=("compressed",),
                 description="int8 (+LSQ) quantization of every distinct codebook")
def stage_quantize(ctx: StageContext) -> None:
    quantized = ctx.compressor.quantize_codebooks(ctx["compressed"])
    ctx.log("quantize", "run" if quantized else "skipped", codebooks=quantized)


# ---------------------------------------------------------------------------
# deployment stages
# ---------------------------------------------------------------------------

def _dataset_splits(ctx: StageContext):
    """Synthetic classification splits from the config's ``data`` section."""
    from repro.nn.data import SyntheticClassification, train_val_split

    spec = ctx.section("data")
    dataset = SyntheticClassification(
        num_samples=int(spec.get("num_samples", 96)),
        image_size=int(spec.get("image_size", 16)),
        num_classes=int(spec.get("num_classes", 5)),
        seed=int(spec.get("seed", 0)),
    )
    return train_val_split(dataset, val_fraction=float(spec.get("val_fraction", 0.25)))


@register_stage("finetune", requires=("compressed",),
                 description="codebook fine-tuning with masked gradients (Eq. 6)")
def stage_finetune(ctx: StageContext) -> None:
    spec = ctx.section("finetune")
    if not spec:
        ctx.log("finetune", "skipped", reason="no finetune section configured")
        return
    from repro.core.finetune import finetune_compressed_model
    from repro.nn import SGD, CrossEntropyLoss, evaluate_accuracy

    train_set, val_set = _dataset_splits(ctx)
    optimizer = SGD(ctx.model.parameters(), lr=float(spec.get("lr", 0.02)),
                    momentum=float(spec.get("momentum", 0.9)))
    finetune_compressed_model(
        ctx["compressed"], train_set, CrossEntropyLoss(), optimizer,
        epochs=int(spec.get("epochs", 2)),
        batch_size=int(spec.get("batch_size", 32)),
        codebook_lr=float(spec.get("codebook_lr", 3e-3)),
    )
    accuracy = evaluate_accuracy(ctx.model, val_set)
    ctx["finetune_report"] = {"val_accuracy": float(accuracy),
                              "epochs": int(spec.get("epochs", 2))}
    ctx.log("finetune", "run", val_accuracy=float(accuracy))


@register_stage("apply", requires=("compressed",),
                 description="write reconstructed dense weights back into the model")
def stage_apply(ctx: StageContext) -> None:
    ctx["compressed"].apply_to_model()
    ctx.log("apply", "run", layers=len(ctx["compressed"]))


@register_stage("export", requires=("compressed",), provides=("export",),
                 description="serialize (assignments, masks, codebooks) to .npz")
def stage_export(ctx: StageContext) -> None:
    from repro.core.serialization import (compressed_file_size_bytes,
                                          save_compressed_model)

    path = ctx.config.export_path if ctx.config is not None else None
    if path is None:
        base = (ctx.store.cache_dir if ctx.store is not None
                and ctx.store.cache_dir is not None else None)
        if base is None:
            # no export_path and no cache dir: write into a fresh temp dir
            # rather than silently dropping files into the process CWD
            import tempfile
            base = Path(tempfile.mkdtemp(prefix="repro-pipeline-"))
        path = str(Path(base) / f"{ctx.scenario or 'pipeline'}_compressed.npz")
    compressed = ctx["compressed"]
    save_compressed_model(compressed, path)
    ctx["export"] = {
        "path": str(path),
        "file_size_bytes": int(compressed_file_size_bytes(path)),
        "compression_ratio": float(compressed.compression_ratio()),
        "sparsity": float(compressed.sparsity()),
        "layers": len(compressed),
    }
    ctx.log("export", "run", path=str(path))


@register_stage("serve_eval", requires=("compressed",), provides=("serve_report",),
                 description="swap in compressed-domain modules and check batched "
                             "serving against the dense-reconstructed reference")
def stage_serve_eval(ctx: StageContext) -> None:
    from repro.nn.compressed import compressed_serving
    from repro.nn.serve import predict_batched

    spec = ctx.section("serve")
    batch_size = int(spec.get("batch_size", 8))
    num_samples = int(spec.get("num_samples", 2 * batch_size))
    mode = spec.get("mode", "auto")
    act_levels = spec.get("act_levels")
    # lut_quant trades exactness for speed; the stage fails if the deviation
    # from exact compressed serving exceeds this relative-error budget
    quant_budget = float(spec.get("quant_rel_err_budget", 0.05))
    input_shape = tuple(spec.get("input_shape", ctx.input_shape or (3, 16, 16)))

    rng = np.random.default_rng(int(spec.get("seed", 0)))
    inputs = rng.standard_normal((num_samples, *input_shape))

    compressed = ctx["compressed"]
    # outputs of the model's current dense weights — the uncompressed network
    # (post-finetune when that stage ran) the compression distorts away from
    original = predict_batched(ctx.model, inputs, batch_size=batch_size)
    # build the dense-reconstructed reference without mutating the model:
    # apply_to_model() overwrites the live weights, which would invalidate
    # the content-hash cluster cache on the next run of the same model
    modules = dict(ctx.model.named_modules())
    saved_weights = {name: modules[name].weight.value.copy()
                     for name in compressed.layers}
    compressed.apply_to_model()
    reference = predict_batched(ctx.model, inputs, batch_size=batch_size)
    for name, weight in saved_weights.items():
        modules[name].weight.copy_(weight)

    with compressed_serving(ctx.model, compressed, mode=mode) as swapped:
        if act_levels is not None:
            for module in swapped.values():
                module.engine.act_levels = int(act_levels)
        # timed_span measures whether tracing is on or off, so the stage
        # report's throughput and the trace always agree on this duration
        with telemetry.timed_span("pipeline.serve_eval.forward",
                                  batch_size=batch_size,
                                  num_samples=num_samples) as sp:
            outputs = predict_batched(ctx.model, inputs, batch_size=batch_size)
        seconds = sp.duration_s
        # resolved execution mode per layer (what `auto` actually picked)
        # and the footprint of any LUT routing tables that were built
        engine_modes: Dict[str, int] = {}
        lut_table_bytes = 0
        for module in swapped.values():
            stats = module.engine.serving_stats()
            resolved = stats.get("last_mode") or stats.get("mode")
            engine_modes[resolved] = engine_modes.get(resolved, 0) + 1
            lut_table_bytes += int(stats.get("lut_table_bytes", 0))
        # top-1 accuracy of the compressed model on the config's synthetic
        # validation split — the accuracy objective of repro.explore.  Only
        # measured when a ``data`` section is configured: its shape must
        # match the model, which the serve inputs alone cannot guarantee.
        val_accuracy = None
        if ctx.section("data"):
            from repro.nn import evaluate_accuracy
            _, val_set = _dataset_splits(ctx)
            val_accuracy = float(evaluate_accuracy(ctx.model, val_set,
                                                   batch_size=batch_size))

    max_abs_diff = float(np.max(np.abs(outputs - reference)))
    scale = float(np.max(np.abs(reference))) or 1.0
    rel_err = (float(np.linalg.norm(outputs - original))
               / max(float(np.linalg.norm(original)), 1e-12))
    # deviation from exact compressed serving (the dense-reconstructed
    # reference) — zero for exact modes, bounded for lut_quant
    rel_err_vs_exact = (float(np.linalg.norm(outputs - reference))
                        / max(float(np.linalg.norm(reference)), 1e-12))
    ctx["serve_report"] = {
        "batch_size": batch_size,
        "num_samples": num_samples,
        "mode": mode,
        "engine_modes": engine_modes,
        "lut_table_bytes": int(lut_table_bytes),
        "seconds": float(seconds),
        "throughput_sps": float(num_samples / max(seconds, 1e-12)),
        "max_abs_diff": max_abs_diff,
        "outputs_match": bool(max_abs_diff <= 1e-6 * scale + 1e-9),
        "rel_err_vs_uncompressed": rel_err,
        "rel_err_vs_exact": rel_err_vs_exact,
    }
    if val_accuracy is not None:
        ctx["serve_report"]["val_accuracy"] = val_accuracy
    if mode == "lut_quant":
        ctx["serve_report"]["quant_rel_err_budget"] = quant_budget
        ctx["serve_report"]["quant_within_budget"] = bool(
            rel_err_vs_exact <= quant_budget)
        if rel_err_vs_exact > quant_budget:
            raise ValueError(
                f"lut_quant serving deviates from exact compressed outputs "
                f"by rel err {rel_err_vs_exact:.4f} > budget "
                f"{quant_budget:.4f} (raise serve.quant_rel_err_budget or "
                f"serve.act_levels)")
    ctx.log("serve_eval", "run", max_abs_diff=max_abs_diff,
            outputs_match=ctx["serve_report"]["outputs_match"],
            engine_modes=engine_modes)


@register_stage("accel_eval", requires=("compressed",), provides=("accel_report",),
                 description="performance/energy evaluation on the accelerator "
                             "models for the scenario's workload")
def stage_accel_eval(ctx: StageContext) -> None:
    from repro.accelerator.comparison import mvq_rows
    from repro.accelerator.config import HardwareSetting, config_from_spec
    from repro.accelerator.performance import PerformanceModel
    from repro.accelerator.workloads import get_workload

    spec = ctx.section("accelerator")
    workload_name = spec.get("workload", ctx.workload)
    if workload_name is None:
        ctx.log("accel_eval", "skipped",
                reason="no accelerator workload configured")
        return

    setting = HardwareSetting(spec.get("setting", "EWS-CMS"))
    array_size = int(spec.get("array_size", 64))
    hw = config_from_spec(spec)
    derived_vq = False
    if spec.get("derive_vq", True) and ctx.compressor is not None:
        # project the compression config onto the hardware parameters when
        # the array constraints allow it; otherwise keep the paper's setting
        base = ctx.compressor.config
        try:
            from dataclasses import replace
            hw = replace(hw, codebook_size=base.k, subvector_length=base.d,
                         n_keep=base.n_keep, m_block=base.m,
                         codebook_bits=base.codebook_bits)
            derived_vq = True
        except ValueError:
            pass       # replace() raised before rebinding: hw is unchanged

    layers = get_workload(workload_name)()
    model = PerformanceModel()
    perf = model.evaluate(layers, hw, skip_depthwise=bool(spec.get("skip_depthwise", False)))
    efficiency = model.efficiency(layers, hw)
    breakdown = model.energy_model.breakdown(perf.analysis, hw)

    compression_ratio = float(ctx["compressed"].compression_ratio())
    table9 = mvq_rows(array_sizes=(array_size,), workload=workload_name,
                      compression_ratio=compression_ratio)[0]
    # TOPS/W is ops-per-joule / 1e12, so per-frame energy follows directly
    energy_mj = float(perf.analysis.total_ops / (efficiency * 1e12) * 1e3)
    ctx["accel_report"] = {
        "workload": workload_name,
        "setting": setting.value,
        "array_size": array_size,
        "derived_vq": derived_vq,
        "runtime_ms": float(perf.runtime_s * 1e3),
        "cycles": float(perf.cycles),
        "throughput_tops": float(perf.throughput_tops),
        "utilization": float(perf.utilization),
        "efficiency_tops_w": float(efficiency),
        "energy_mj_per_frame": energy_mj,
        "energy_breakdown": {k: float(v) for k, v in breakdown.as_dict().items()},
        "compression_ratio": compression_ratio,
        "table9_row": table9,
    }
    ctx.log("accel_eval", "run", workload=workload_name,
            efficiency_tops_w=float(efficiency))
