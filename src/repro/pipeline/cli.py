"""Command-line entry points of the pipeline.

::

    python -m repro.pipeline run cfg.json           # scenario-spec JSON file
    python -m repro.pipeline run --scenario NAME    # registered scenario
    python -m repro.pipeline list-scenarios
    python -m repro.pipeline list-stages

A JSON file may be either a full scenario spec (a dict with a ``pipeline``
key, plus ``model``/``workload``) or a bare :class:`PipelineConfig` dict —
the latter runs against ``--model`` (default ``resnet18``).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Optional, Sequence

import numpy as np

from repro.core import telemetry
from repro.pipeline.config import PipelineConfig
from repro.pipeline.runner import PipelineResult
from repro.pipeline.scenarios import Scenario, list_scenarios, run_scenario
from repro.pipeline.stages import available_stages


def _jsonable(value: Any) -> Any:
    """Recursively convert numpy scalars/arrays so json.dumps succeeds."""
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, (np.bool_,)):
        return bool(value)
    return value


#: pipeline used when a bare workload-spec JSON is run directly; the spec's
#: ``meta["pipeline"]`` dict overrides any of these keys
_SPEC_SMOKE_PIPELINE = {
    "preset": "mvq",
    "base": {"k": 24, "max_kmeans_iterations": 10},
    "include_linear": True,
    "stages": ["group", "prune", "cluster", "quantize", "export",
               "serve_eval", "accel_eval"],
    "serve": {"batch_size": 4, "num_samples": 8},
    "accelerator": {"setting": "EWS-CMS", "array_size": 64},
}


def _scenario_from_file(path: str, model: str) -> Scenario:
    data = json.loads(Path(path).read_text())
    if "layers" in data:
        # declarative workload spec: validate it, then wrap into a scenario
        # that builds the model AND the accelerator table from the spec
        from repro.workloads import WorkloadSpec

        spec = WorkloadSpec.from_dict(data)
        pipeline = dict(_SPEC_SMOKE_PIPELINE)
        pipeline.update(spec.meta.get("pipeline", {}))
        return Scenario(name=spec.name,
                        description=spec.description or f"workload file {path}",
                        model=spec.name, workload_spec=data, pipeline=pipeline)
    if "pipeline" in data:
        return Scenario.from_dict(data)
    # bare PipelineConfig dict: validate it, then wrap into an ad-hoc scenario
    PipelineConfig.from_dict(data)
    return Scenario(name=Path(path).stem, description=f"config file {path}",
                    model=model, model_kwargs={"num_classes": 5, "seed": 1},
                    pipeline=data)


def _print_result(result: PipelineResult) -> None:
    for event in result.events:
        detail = {k: v for k, v in event.items() if k not in ("stage", "status")}
        line = f"[pipeline] {event['stage']:<10s} {event['status']}"
        if detail:
            line += "  " + json.dumps(_jsonable(detail), default=str)
        print(line)
    if result.compressed is not None:
        print(f"[pipeline] compression ratio: "
              f"{result.compressed.compression_ratio():.1f}x  "
              f"sparsity: {result.compressed.sparsity():.0%}")
    serve = result.artifacts.get("serve_report")
    if serve:
        print(f"[pipeline] serving: {serve['throughput_sps']:.1f} samples/s, "
              f"max |diff| vs dense reference {serve['max_abs_diff']:.2e}")
    accel = result.artifacts.get("accel_report")
    if accel:
        print(f"[pipeline] accelerator ({accel['workload']}, {accel['setting']}-"
              f"{accel['array_size']}): {accel['runtime_ms']:.2f} ms/frame, "
              f"{accel['efficiency_tops_w']:.2f} TOPS/W")


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.pipeline",
        description="Declarative MVQ compression pipeline")
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="run a pipeline from a JSON config or "
                                       "a registered scenario")
    run_p.add_argument("config", nargs="?", default=None,
                       help="JSON file: a scenario spec or a PipelineConfig dict")
    run_p.add_argument("--scenario", default=None,
                       help="name of a registered scenario")
    run_p.add_argument("--model", default="resnet18",
                       help="model-zoo entry for bare PipelineConfig files")
    run_p.add_argument("--stages", default=None,
                       help="comma-separated stage list overriding the config")
    run_p.add_argument("--cache-dir", default=None,
                       help="artifact cache directory (warm re-runs skip "
                            "clustering)")
    run_p.add_argument("--output", default=None,
                       help="write the JSON run report to this path")
    run_p.add_argument("--trace", default=None, metavar="OUT.json",
                       help="record a trace of the run and write it as "
                            "Chrome trace-event JSON (open in Perfetto or "
                            "chrome://tracing); OUT.jsonl is written too")

    sub.add_parser("list-scenarios", help="print the scenario registry")
    sub.add_parser("list-stages", help="print the stage registry")

    args = parser.parse_args(argv)

    if args.command == "list-scenarios":
        for scenario in list_scenarios():
            print(f"{scenario.name:<32s} model={scenario.model:<14s} "
                  f"workload={scenario.workload or '-':<14s} "
                  f"{scenario.description}")
        return 0

    if args.command == "list-stages":
        for name, info in sorted(available_stages().items()):
            requires = ",".join(info.requires) or "-"
            print(f"{name:<12s} requires: {requires:<28s} {info.description}")
        return 0

    if (args.config is None) == (args.scenario is None):
        print("run: provide exactly one of a config file or --scenario",
              file=sys.stderr)
        return 2

    scenario = (args.scenario if args.scenario is not None
                else _scenario_from_file(args.config, args.model))
    stages = args.stages.split(",") if args.stages else None
    tracer = telemetry.enable() if args.trace else None
    result = run_scenario(scenario, stages=stages, cache_dir=args.cache_dir)
    _print_result(result)

    store = getattr(result.context, "store", None)
    store_stats = store.stats() if store is not None else None
    if store_stats is not None:
        print("[pipeline] artifact store: "
              f"{store_stats['hits']} hits, {store_stats['misses']} misses, "
              f"{store_stats['quarantined']} quarantined, "
              f"{store_stats['lock_takeovers']} lock takeovers")

    summary = None
    if tracer is not None:
        summary = tracer.summary()
        tracer.export_chrome(args.trace)
        tracer.export_jsonl(str(Path(args.trace).with_suffix(".jsonl")))
        telemetry.disable()
        for line in telemetry.format_summary(summary, prefix="[pipeline]"):
            print(line)
        print(f"[pipeline] wrote trace {args.trace} "
              f"(open at https://ui.perfetto.dev)")

    if args.output:
        report = _jsonable(result.report())
        if store_stats is not None:
            report["artifact_store"] = store_stats
        if summary is not None:
            report["telemetry"] = _jsonable(summary)
        Path(args.output).write_text(json.dumps(report, indent=2, sort_keys=True)
                                     + "\n")
        print(f"[pipeline] wrote {args.output}")
    return 0
