"""Declarative configuration for the staged MVQ pipeline.

:class:`PipelineConfig` is the JSON/dict-loadable description of one
compression run: a global :class:`LayerCompressionConfig` (``base``) plus an
ordered list of per-layer-pattern overrides, the compressor runtime knobs
(crosslayer, workers, parallel backend, ...), the stage list to execute and
the evaluation/caching sections the downstream stages read.

The layer-config wire schema itself (:func:`layer_config_to_dict` /
:func:`layer_config_from_dict`) lives next to the dataclass in
:mod:`repro.core.compressor` and is re-exported here — one source of truth
shared with the ``.npz`` manifest of :mod:`repro.core.serialization`, so the
archive format and the pipeline schema cannot drift apart.  Archives written
before ``max_kmeans_iterations`` / ``seed`` were part of the manifest still
load: missing fields fall back to the dataclass defaults.

Named presets cover the paper's Table 3 ablation cases::

    PipelineConfig.from_dict({"preset": "table3_case_b", "base": {"k": 64}})
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from pathlib import Path
from typing import Any, Dict, Iterable, Mapping, Optional, Tuple, Union

from repro.core.compressor import (
    LayerCompressionConfig,
    MVQCompressor,
    layer_config_from_dict,
    layer_config_to_dict,
)
from repro.core.grouping import GroupingStrategy

#: the canonical compression composition — ``MVQCompressor.compress`` runs
#: exactly these four stages in this order
CORE_STAGES: Tuple[str, ...] = ("group", "prune", "cluster", "quantize")

#: default stage list of a full scenario run (``finetune`` is a no-op unless
#: the ``finetune`` section is configured)
DEFAULT_STAGES: Tuple[str, ...] = CORE_STAGES + (
    "finetune", "export", "serve_eval", "accel_eval")

_LAYER_FIELDS = {f.name: f for f in dataclasses.fields(LayerCompressionConfig)}


@dataclass(frozen=True)
class LayerOverride:
    """One per-layer-pattern override: fields applied to layers whose dotted
    name matches ``pattern`` (``fnmatch`` syntax, e.g. ``"stages.*.conv1"``).
    Later overrides win when several patterns match the same layer."""

    pattern: str
    fields: Mapping[str, Any]

    def __post_init__(self):
        # validate eagerly so a bad override fails at config-build time
        unknown = set(self.fields) - set(_LAYER_FIELDS)
        if unknown:
            raise ValueError(
                f"override {self.pattern!r} sets unknown fields {sorted(unknown)}")

    def matches(self, layer_name: str) -> bool:
        return fnmatchcase(layer_name, self.pattern)

    def to_dict(self) -> Dict[str, Any]:
        fields = dict(self.fields)
        if isinstance(fields.get("strategy"), GroupingStrategy):
            fields["strategy"] = fields["strategy"].value
        return {"pattern": self.pattern, "fields": fields}


#: Named presets.  Table 3's ablation cases A-D toggle the
#: prune/use_masked_kmeans/store_mask switches exactly as
#: :meth:`MVQCompressor.ablation_case` does; ``mvq`` is an alias of case D.
PRESETS: Dict[str, Dict[str, Any]] = {
    "table3_case_a": {"base": {"prune": False, "use_masked_kmeans": False,
                               "store_mask": False}},
    "table3_case_b": {"base": {"prune": True, "use_masked_kmeans": False,
                               "store_mask": False}},
    "table3_case_c": {"base": {"prune": True, "use_masked_kmeans": False,
                               "store_mask": True}},
    "table3_case_d": {"base": {"prune": True, "use_masked_kmeans": True,
                               "store_mask": True}},
    "mvq": {"base": {"prune": True, "use_masked_kmeans": True,
                     "store_mask": True}},
}


def _merge(base: Mapping[str, Any], update: Mapping[str, Any]) -> Dict[str, Any]:
    """Shallow-recursive dict merge (``update`` wins, nested dicts merged)."""
    merged = dict(base)
    for key, value in update.items():
        if (key in merged and isinstance(merged[key], Mapping)
                and isinstance(value, Mapping)):
            merged[key] = _merge(merged[key], value)
        else:
            merged[key] = value
    return merged


@dataclass
class PipelineConfig:
    """Everything one pipeline run needs, loadable from JSON."""

    #: global compression defaults
    base: LayerCompressionConfig = field(default_factory=LayerCompressionConfig)
    #: ordered per-layer-pattern overrides on top of ``base``
    overrides: Tuple[LayerOverride, ...] = ()
    # -- compressor runtime knobs (mirror MVQCompressor's constructor) --------
    crosslayer: bool = False
    include_linear: bool = False
    quantize_codebook: bool = True
    skip_layers: Tuple[str, ...] = ()
    workers: Optional[int] = None
    decorrelate_seeds: bool = False
    parallel_backend: str = "auto"
    # -- orchestration ---------------------------------------------------------
    stages: Tuple[str, ...] = CORE_STAGES
    cache_dir: Optional[str] = None
    export_path: Optional[str] = None
    #: synthetic-dataset spec shared by ``finetune`` (and accuracy reporting)
    data: Dict[str, Any] = field(default_factory=dict)
    #: ``finetune`` stage spec (``None``/empty disables the stage)
    finetune: Optional[Dict[str, Any]] = None
    #: ``serve_eval`` stage spec (batch size, sample count, engine mode)
    serve: Dict[str, Any] = field(default_factory=dict)
    #: ``accel_eval`` stage spec (workload, hardware setting, array size)
    accelerator: Dict[str, Any] = field(default_factory=dict)
    #: online-serving defaults read by ``repro.serve`` (batching policy
    #: knobs: max_batch_size, max_wait_ms, max_queue_size, overload, ...)
    serving: Dict[str, Any] = field(default_factory=dict)
    #: design-space-exploration spec read by ``repro.explore`` (axes,
    #: strategy, budget, objectives); the rest of this config is the sweep's
    #: base pipeline.  Inert for plain pipeline runs.
    explore: Dict[str, Any] = field(default_factory=dict)

    # -- per-layer resolution --------------------------------------------------
    def resolve_layer_config(self, layer_name: str) -> LayerCompressionConfig:
        """The effective config of one layer: ``base`` + matching overrides."""
        cfg = self.base
        for override in self.overrides:
            if override.matches(layer_name):
                cfg = layer_config_from_dict(override.fields, base=cfg)
        return cfg

    def resolved_overrides(self, layer_names: Iterable[str]
                           ) -> Dict[str, LayerCompressionConfig]:
        """Exact-name override map for :class:`MVQCompressor` (only layers
        whose effective config differs from ``base``)."""
        resolved = {}
        for name in layer_names:
            cfg = self.resolve_layer_config(name)
            if cfg != self.base:
                resolved[name] = cfg
        return resolved

    def compressor_for(self, model) -> MVQCompressor:
        """The :class:`MVQCompressor` this config describes, with the layer
        patterns resolved against ``model``'s module names."""
        names = [name for name, _ in model.named_modules() if name]
        return MVQCompressor(
            self.base,
            per_layer_overrides=self.resolved_overrides(names),
            crosslayer=self.crosslayer,
            skip_layers=self.skip_layers,
            quantize_codebook=self.quantize_codebook,
            include_linear=self.include_linear,
            workers=self.workers,
            decorrelate_seeds=self.decorrelate_seeds,
            parallel_backend=self.parallel_backend,
        )

    # -- (de)serialization -----------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "base": layer_config_to_dict(self.base),
            "overrides": [o.to_dict() for o in self.overrides],
            "crosslayer": self.crosslayer,
            "include_linear": self.include_linear,
            "quantize_codebook": self.quantize_codebook,
            "skip_layers": list(self.skip_layers),
            "workers": self.workers,
            "decorrelate_seeds": self.decorrelate_seeds,
            "parallel_backend": self.parallel_backend,
            "stages": list(self.stages),
            "cache_dir": self.cache_dir,
            "export_path": self.export_path,
            "data": dict(self.data),
            "finetune": dict(self.finetune) if self.finetune else None,
            "serve": dict(self.serve),
            "accelerator": dict(self.accelerator),
            "serving": dict(self.serving),
            "explore": dict(self.explore),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PipelineConfig":
        data = dict(data)
        preset = data.pop("preset", None)
        if preset is not None:
            if preset not in PRESETS:
                raise ValueError(
                    f"unknown preset {preset!r}; available: {sorted(PRESETS)}")
            data = _merge(PRESETS[preset], data)

        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown PipelineConfig fields {sorted(unknown)}; "
                f"expected a subset of {sorted(known)}")

        kwargs: Dict[str, Any] = {}
        if "base" in data:
            kwargs["base"] = layer_config_from_dict(data["base"])
        if "overrides" in data:
            kwargs["overrides"] = tuple(
                o if isinstance(o, LayerOverride)
                else LayerOverride(o["pattern"], dict(o.get("fields", {})))
                for o in data["overrides"])
        for key in ("crosslayer", "include_linear", "quantize_codebook",
                    "workers", "decorrelate_seeds", "parallel_backend",
                    "cache_dir", "export_path"):
            if key in data:
                kwargs[key] = data[key]
        for key in ("skip_layers", "stages"):
            if key in data:
                kwargs[key] = tuple(data[key])
        for key in ("data", "serve", "accelerator", "serving", "explore"):
            if key in data and data[key] is not None:
                kwargs[key] = dict(data[key])
        if "finetune" in data:
            kwargs["finetune"] = dict(data["finetune"]) if data["finetune"] else None
        return cls(**kwargs)

    @classmethod
    def from_preset(cls, name: str, **overrides: Any) -> "PipelineConfig":
        return cls.from_dict({"preset": name, **overrides})

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "PipelineConfig":
        return cls.from_dict(json.loads(text))

    @classmethod
    def from_file(cls, path: Union[str, Path]) -> "PipelineConfig":
        return cls.from_json(Path(path).read_text())

    def save(self, path: Union[str, Path]) -> None:
        Path(path).write_text(self.to_json() + "\n")
