"""BGD baseline: "And the Bit Goes Down" — activation-weighted clustering.

BGD minimises the *output* reconstruction error rather than the weight
reconstruction error: subvectors that multiply high-energy input activations
matter more and are weighted accordingly during clustering.  We reproduce
that with an importance-weighted k-means where each subvector carries a
scalar weight derived from calibration activations (or from weight
magnitude when no activations are supplied).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Optional

import numpy as np

from repro.core.codebook import Codebook
from repro.core.compressor import (
    CompressedLayer,
    CompressedModel,
    LayerCompressionConfig,
    MVQCompressor,
)
from repro.core.grouping import group_weight
from repro.core.kmeans import KMeansResult, _init_codewords, assign_to_nearest
from repro.nn.layers import Conv2d
from repro.nn.module import Module


def weighted_kmeans(data: np.ndarray, weights: np.ndarray, k: int,
                    max_iterations: int = 60, change_threshold: float = 1e-3,
                    seed: int = 0) -> KMeansResult:
    """k-means where each subvector has an importance weight."""
    data = np.asarray(data, dtype=np.float64)
    weights = np.asarray(weights, dtype=np.float64).reshape(-1)
    if weights.shape[0] != data.shape[0]:
        raise ValueError("one importance weight per subvector is required")
    weights = np.maximum(weights, 1e-12)

    rng = np.random.default_rng(seed)
    codewords = _init_codewords(data, k, rng)
    assignments = assign_to_nearest(data, codewords)
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        sums = np.zeros_like(codewords)
        np.add.at(sums, assignments, data * weights[:, None])
        totals = np.zeros(k)
        np.add.at(totals, assignments, weights)
        empty = totals == 0
        totals[empty] = 1.0
        updated = sums / totals[:, None]
        updated[empty] = codewords[empty]
        codewords = updated

        new_assignments = assign_to_nearest(data, codewords)
        changed = np.count_nonzero(new_assignments != assignments)
        assignments = new_assignments
        if changed <= change_threshold * data.shape[0]:
            break

    residual = data - codewords[assignments]
    sse = float(np.sum(residual**2))
    return KMeansResult(codewords=codewords, assignments=assignments,
                        sse=sse, iterations=iterations)


class BGDCompressor:
    """Activation-weighted conventional VQ (no pruning, no masks)."""

    def __init__(self, config: LayerCompressionConfig,
                 calibration_batch: Optional[np.ndarray] = None,
                 quantize_codebook: bool = True):
        self.config = replace(config, prune=False, use_masked_kmeans=False, store_mask=False)
        self.calibration_batch = calibration_batch
        self.quantize_codebook = quantize_codebook

    def _layer_importance(self, model: Module, name: str, mod, grouped: np.ndarray) -> np.ndarray:
        """Per-subvector importance from calibration activations (or magnitudes)."""
        if self.calibration_batch is not None and isinstance(mod, Conv2d):
            # Run the calibration batch once so the layer cache holds its input
            # columns; the mean squared activation of the receptive fields is a
            # proxy for the output-error weighting in BGD.
            model.eval()
            model.forward(self.calibration_batch)
            model.train()
            cols, _ = mod._cache
            activation_energy = float(np.mean(cols**2)) + 1e-8
            base = np.full(grouped.shape[0], activation_energy)
            magnitude = np.linalg.norm(grouped, axis=1) + 1e-8
            return base * magnitude
        return np.linalg.norm(grouped, axis=1) + 1e-8

    def compress(self, model: Module) -> CompressedModel:
        selector = MVQCompressor(self.config, quantize_codebook=self.quantize_codebook)
        targets = selector.compressible_layers(model)
        if not targets:
            raise ValueError("no compressible layers found")

        layers: Dict[str, CompressedLayer] = {}
        for name, mod in targets:
            weight = mod.weight.value
            grouped = group_weight(weight, self.config.d, self.config.strategy)
            importance = self._layer_importance(model, name, mod, grouped)
            result = weighted_kmeans(grouped, importance, self.config.k,
                                     self.config.max_kmeans_iterations, seed=self.config.seed)
            codebook = Codebook(result.codewords)
            if self.quantize_codebook:
                codebook.quantize_(self.config.codebook_bits)
            layers[name] = CompressedLayer(
                name=name, weight_shape=weight.shape, config=self.config,
                codebook=codebook, assignments=result.assignments,
                mask=np.ones_like(grouped, dtype=bool), original_grouped=grouped,
            )
        return CompressedModel(model, layers, crosslayer=False)
