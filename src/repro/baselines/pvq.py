"""PvQ baseline: uniform low-bit scalar quantization.

The paper's Table 4/6 comparator for MobileNets, EfficientNet and DeepLab is
2-bit uniform quantization from "Pruning vs Quantization: which is better?".
We implement symmetric per-layer uniform quantization at an arbitrary bit
width with an MSE-fit scale, applied to every convolution weight.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.core.codebook import fit_scale_mse, quantize_symmetric
from repro.nn.layers import Conv2d, Linear
from repro.nn.module import Module


def uniform_quantize(weight: np.ndarray, bits: int) -> np.ndarray:
    """Symmetric uniform fake-quantization with an MSE-optimal scale."""
    if bits < 2:
        raise ValueError("uniform quantization needs at least 2 bits")
    scale = fit_scale_mse(weight, bits)
    return quantize_symmetric(weight, scale, bits)


class PvQQuantizer:
    """Per-layer uniform scalar quantizer over a whole model."""

    def __init__(self, bits: int = 2, include_linear: bool = False,
                 skip_layers: Optional[set] = None):
        if bits < 2:
            raise ValueError("uniform quantization needs at least 2 bits")
        self.bits = bits
        self.include_linear = include_linear
        self.skip_layers = skip_layers or set()
        self.original_weights: Dict[str, np.ndarray] = {}

    def quantizable_layers(self, model: Module):
        for name, mod in model.named_modules():
            if name in self.skip_layers:
                continue
            if isinstance(mod, Conv2d):
                yield name, mod
            elif self.include_linear and isinstance(mod, Linear):
                yield name, mod

    def apply(self, model: Module) -> Dict[str, float]:
        """Quantize every eligible layer in place; returns per-layer SSE."""
        sse: Dict[str, float] = {}
        for name, mod in self.quantizable_layers(model):
            original = mod.weight.value.copy()
            self.original_weights[name] = original
            quantized = uniform_quantize(original, self.bits)
            mod.weight.copy_(quantized)
            sse[name] = float(np.sum((original - quantized) ** 2))
        return sse

    def restore(self, model: Module) -> None:
        """Undo :meth:`apply` using the stored original weights."""
        modules = dict(model.named_modules())
        for name, original in self.original_weights.items():
            modules[name].weight.copy_(original)

    def compression_ratio(self, weight_bits: int = 32) -> float:
        """Storage ratio of full precision to ``bits`` per weight."""
        return weight_bits / self.bits
