"""Baseline compression methods the paper compares against.

* :mod:`repro.baselines.pqf` — "Permute, Quantize, Fine-tune" (Martinez et
  al., CVPR 2021): searches a channel permutation that makes subvectors more
  clusterable before running ordinary k-means.
* :mod:`repro.baselines.bgd` — "And the Bit Goes Down" (Stock et al., 2019):
  activation-weighted clustering minimising output reconstruction error.
* :mod:`repro.baselines.pvq` — uniform scalar quantization at very low bit
  width ("Pruning vs Quantization", Kuzmin et al., 2023), the 2-bit
  comparator used for MobileNets/EfficientNet in Table 4.
"""

from repro.baselines.pqf import PQFCompressor, permutation_search
from repro.baselines.bgd import BGDCompressor
from repro.baselines.pvq import PvQQuantizer, uniform_quantize

__all__ = [
    "PQFCompressor",
    "permutation_search",
    "BGDCompressor",
    "PvQQuantizer",
    "uniform_quantize",
]
