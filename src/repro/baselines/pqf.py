"""PQF baseline: Permute, Quantize and Fine-tune (conventional VQ + permutation).

PQF improves on plain product quantization by permuting the rows that are
grouped into subvectors so that co-clustered weights are statistically
similar, then running ordinary (unmasked) k-means.  Our re-implementation
keeps the two ingredients that matter for the comparison with MVQ:

* a greedy permutation search that reduces within-subvector variance, and
* conventional k-means over the permuted subvectors (no pruning, no mask).

Accuracy recovery uses the same codebook fine-tuning machinery as MVQ but
with an all-ones mask, which matches PQF's dense reconstruction.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.codebook import Codebook
from repro.core.compressor import (
    CompressedLayer,
    CompressedModel,
    LayerCompressionConfig,
    MVQCompressor,
)
from repro.core.grouping import GroupingStrategy, group_weight
from repro.core.kmeans import kmeans
from repro.nn.module import Module


def _within_subvector_variance(grouped: np.ndarray) -> float:
    """Mean variance of each subvector around its own mean — the quantity the
    permutation search tries to reduce (similar rows cluster better)."""
    return float(np.mean(np.var(grouped, axis=1)))


def permutation_search(weight: np.ndarray, d: int, num_iterations: int = 200,
                       seed: int = 0,
                       strategy: GroupingStrategy = GroupingStrategy.OUTPUT) -> np.ndarray:
    """Greedy search for an output-channel permutation lowering subvector variance.

    Random pairwise channel swaps are proposed and kept when they reduce the
    within-subvector variance of the grouped matrix.  Returns the permutation
    (an index array over output channels).
    """
    weight = np.asarray(weight)
    c_out = weight.shape[0]
    rng = np.random.default_rng(seed)
    perm = np.arange(c_out)

    def grouped_for(p: np.ndarray) -> np.ndarray:
        return group_weight(weight[p], d, strategy)

    best_score = _within_subvector_variance(grouped_for(perm))
    for _ in range(num_iterations):
        i, j = rng.integers(0, c_out, size=2)
        if i == j:
            continue
        candidate = perm.copy()
        candidate[i], candidate[j] = candidate[j], candidate[i]
        score = _within_subvector_variance(grouped_for(candidate))
        if score < best_score:
            best_score = score
            perm = candidate
    return perm


@dataclass
class PQFLayerState:
    """Permutation applied to a layer before clustering."""

    permutation: np.ndarray


class PQFCompressor:
    """Conventional VQ with permutation search (no pruning, no masks)."""

    def __init__(self, config: LayerCompressionConfig,
                 permutation_iterations: int = 200,
                 crosslayer: bool = False,
                 quantize_codebook: bool = True):
        # PQF never prunes and never stores a mask.
        self.config = replace(config, prune=False, use_masked_kmeans=False, store_mask=False)
        self.permutation_iterations = permutation_iterations
        self.crosslayer = crosslayer
        self.quantize_codebook = quantize_codebook
        self.permutations: Dict[str, PQFLayerState] = {}

    def compress(self, model: Module) -> CompressedModel:
        selector = MVQCompressor(self.config, crosslayer=self.crosslayer,
                                 quantize_codebook=self.quantize_codebook)
        targets = selector.compressible_layers(model)
        if not targets:
            raise ValueError("no compressible layers found")

        layers: Dict[str, CompressedLayer] = {}
        for name, mod in targets:
            weight = mod.weight.value
            perm = permutation_search(weight, self.config.d,
                                      self.permutation_iterations, seed=self.config.seed)
            self.permutations[name] = PQFLayerState(permutation=perm)
            permuted = weight[perm]
            grouped = group_weight(permuted, self.config.d, self.config.strategy)
            result = kmeans(grouped, self.config.k, self.config.max_kmeans_iterations,
                            seed=self.config.seed)
            codebook = Codebook(result.codewords)
            if self.quantize_codebook:
                codebook.quantize_(self.config.codebook_bits)
            layers[name] = _PQFCompressedLayer(
                name=name, weight_shape=weight.shape, config=self.config,
                codebook=codebook, assignments=result.assignments,
                mask=np.ones_like(grouped, dtype=bool), original_grouped=grouped,
                permutation=perm,
            )
        return CompressedModel(model, layers, crosslayer=False)


@dataclass
class _PQFCompressedLayer(CompressedLayer):
    """Compressed layer that undoes the channel permutation on reconstruction."""

    permutation: np.ndarray = None

    def reconstruct_weight(self) -> np.ndarray:
        permuted = super().reconstruct_weight()
        inverse = np.argsort(self.permutation)
        return permuted[inverse]
