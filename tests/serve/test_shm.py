"""Shared-memory arena lifecycle: refcounts, unlink guarantees, takeover."""

import os
import struct
import subprocess
import sys

import numpy as np
import pytest

from repro.serve import ArenaError, ShmArena


def _segment_exists(name: str) -> bool:
    return os.path.exists(f"/dev/shm/{name}")


@pytest.fixture()
def arrays():
    rng = np.random.default_rng(3)
    return {
        "codewords": rng.standard_normal((4, 8)),
        "assignments": rng.integers(0, 4, size=(2, 16), dtype=np.int64),
        "mask": rng.random(32) > 0.5,
    }


class TestRoundtrip:
    def test_views_bit_identical_and_read_only(self, arrays):
        with ShmArena.create(arrays, meta={"k": 4}) as arena:
            assert arena.meta == {"k": 4}
            for name, original in arrays.items():
                view = arena.views[name]
                assert view.dtype == original.dtype
                assert view.shape == original.shape
                assert np.array_equal(view, original)
                assert not view.flags.writeable
                with pytest.raises((ValueError, RuntimeError)):
                    view[...] = 0

    def test_attach_sees_identical_bits(self, arrays):
        with ShmArena.create(arrays) as arena:
            attached = ShmArena.attach(arena.name)
            try:
                for name, original in arrays.items():
                    assert np.array_equal(attached.views[name], original)
                assert attached.meta == arena.meta
            finally:
                attached.close()

    def test_owns_classifies_storage(self, arrays):
        with ShmArena.create(arrays) as arena:
            assert arena.owns(arena.views["codewords"])
            assert arena.owns(arena.views["codewords"][1:3])  # sub-view
            assert not arena.owns(np.zeros(4))
            assert not arena.owns(np.array(arena.views["mask"]))  # a copy

    def test_attach_unknown_name_is_typed_error(self):
        with pytest.raises(ArenaError):
            ShmArena.attach("mvq_does_not_exist")


class TestRefcountAndUnlink:
    def test_refcount_tracks_attach_detach(self, arrays):
        arena = ShmArena.create(arrays)
        try:
            assert arena.refcount() == 1
            attached = ShmArena.attach(arena.name)
            assert arena.refcount() == 2
            attached.close()
            assert arena.refcount() == 1
        finally:
            arena.close()

    def test_owner_close_unlinks_segment(self, arrays):
        arena = ShmArena.create(arrays)
        name = arena.name
        assert _segment_exists(name)
        arena.close()
        assert not _segment_exists(name)
        with pytest.raises(ArenaError):
            ShmArena.attach(name)

    def test_double_close_is_safe(self, arrays):
        arena = ShmArena.create(arrays)
        arena.close()
        arena.close()
        attached = ShmArena.create(arrays)
        attached.close()
        attached.unlink()  # unlink after close is also a no-op

    def test_close_with_live_views_still_unlinks(self, arrays):
        arena = ShmArena.create(arrays)
        name = arena.name
        view = arena.views["codewords"]      # outstanding buffer export
        expected = np.array(view)
        arena.close()
        assert not _segment_exists(name)
        # the mapping survives exactly as long as the view does
        assert np.array_equal(view, expected)


class TestCrashSafety:
    def test_sigkilled_attacher_does_not_destroy_segment(self, arrays):
        """A worker dying mid-attach must not unlink the arena under the
        creator (the resource-tracker trap this module exists to avoid)."""
        arena = ShmArena.create(arrays)
        name = arena.name
        try:
            script = (
                "import os, sys\n"
                "from repro.serve.shm import ShmArena\n"
                f"attached = ShmArena.attach({name!r})\n"
                "print('attached', flush=True)\n"
                "os.kill(os.getpid(), 9)\n"
            )
            proc = subprocess.run(
                [sys.executable, "-c", script], capture_output=True,
                text=True, timeout=60,
                env={**os.environ, "PYTHONPATH": "src"}, cwd=_repo_root())
            assert "attached" in proc.stdout, proc.stderr
            assert proc.returncode == -9
            assert _segment_exists(name)
            # the creator still reads its data and cleans up normally
            assert np.array_equal(arena.views["codewords"],
                                  arrays["codewords"])
        finally:
            arena.close()
        assert not _segment_exists(name)

    def test_stale_segment_takeover(self, arrays):
        name = f"mvq_test_stale_{os.getpid():x}"
        stale = ShmArena.create(arrays, name=name)
        # forge a dead owner pid in the header (magic 8 + version 4 +
        # manifest_len 4 -> owner_pid u64 at offset 16)
        struct.pack_into("<Q", stale._shm.buf, 16, _dead_pid())
        fresh = ShmArena.create({"other": np.arange(3.0)}, name=name)
        try:
            assert np.array_equal(fresh.views["other"], np.arange(3.0))
        finally:
            fresh.close()
            stale.close()
        assert not _segment_exists(name)

    def test_takeover_refused_while_owner_alive(self, arrays):
        name = f"mvq_test_alive_{os.getpid():x}"
        arena = ShmArena.create(arrays, name=name)
        try:
            with pytest.raises(ArenaError):
                ShmArena.create(arrays, name=name)
        finally:
            arena.close()
        assert not _segment_exists(name)


def _repo_root() -> str:
    return os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))))


def _dead_pid() -> int:
    """A pid that is certainly not a live process."""
    proc = subprocess.Popen([sys.executable, "-c", "pass"])
    proc.wait()
    return proc.pid
