"""Sharded process-worker serving: bit-exactness, re-spawn, zero-copy."""

import os
import threading

import numpy as np
import pytest

from repro.core import LayerCompressionConfig, MVQCompressor
from repro.core.faults import FaultPlan, FaultRule
from repro.nn import predict_batched
from repro.nn.compressed import swap_to_compressed
from repro.nn.models import resnet18_mini
from repro.serve import (
    BatchPolicy,
    FaultPolicy,
    ModelServer,
    ProcessReplicaPool,
    WorkerFault,
)

TINY = {"num_classes": 3, "seed": 1, "width": 8}
BUILDER = ("factory", resnet18_mini, dict(TINY))
SHAPE = (3, 8, 8)


def _tiny_compressed():
    cfg = LayerCompressionConfig(k=8, d=8, max_kmeans_iterations=2)
    compressed = MVQCompressor(cfg).compress(resnet18_mini(**TINY))
    replica = resnet18_mini(**TINY)
    swap_to_compressed(replica, compressed, mode="auto")
    replica.eval()
    return compressed, replica


@pytest.fixture(scope="module")
def compressed_pair():
    return _tiny_compressed()


@pytest.fixture(scope="module")
def pool(compressed_pair):
    compressed, _ = compressed_pair
    pool = ProcessReplicaPool(compressed, BUILDER, SHAPE, workers=2,
                              max_batch_size=4)
    yield pool
    pool.close()


@pytest.fixture(scope="module")
def requests():
    return np.random.default_rng(0).standard_normal((12, *SHAPE))


class TestBitExactness:
    def test_process_equals_thread_equals_solo(self, compressed_pair, pool,
                                               requests):
        _, thread_replica = compressed_pair
        reference = predict_batched(thread_replica, requests, batch_size=4)

        server = ModelServer()
        pool.register_with(server, "tiny",
                           policy=BatchPolicy(max_batch_size=4,
                                              max_wait_ms=2.0))
        with server:
            batched = server.predict_many("tiny", requests)
            solo = np.stack([server.predict("tiny", requests[i])
                             for i in range(3)])
        assert np.array_equal(batched, reference)
        assert np.array_equal(solo, batched[:3])

    def test_direct_forward_matches_reference(self, compressed_pair, pool,
                                              requests):
        _, thread_replica = compressed_pair
        batch = requests[:4]
        expected = np.asarray(thread_replica.forward(batch))
        got = pool.replicas[0].forward(batch)
        assert np.array_equal(got, expected)


class TestZeroCopy:
    def test_workers_map_one_shared_copy(self, pool):
        info = pool.info()
        assert info["arena"]["nbytes"] > 0
        # creator (1) + one attach per worker
        assert info["arena"]["refcount"] == 1 + len(pool.replicas)
        for worker in info["workers"]:
            assert worker["arena_shared_bytes"] > 0
            # every compressed/model-state byte resolves into the arena
            assert worker["private_state_bytes"] == 0

    def test_distinct_worker_processes(self, pool):
        pids = {replica.pid for replica in pool.replicas}
        assert len(pids) == len(pool.replicas)
        assert os.getpid() not in pids


class TestRespawn:
    def test_sigkilled_worker_respawns_transparently(self, compressed_pair,
                                                     requests):
        compressed, thread_replica = compressed_pair
        reference = predict_batched(thread_replica, requests, batch_size=4)
        with ProcessReplicaPool(compressed, BUILDER, SHAPE, workers=1,
                                max_batch_size=4) as pool:
            replica = pool.replicas[0]
            before = replica.pid
            assert np.array_equal(replica.forward(requests[:4]),
                                  reference[:4])
            replica.kill()
            # the next forward re-spawns, re-attaches and serves exact bits
            assert np.array_equal(replica.forward(requests[:4]),
                                  reference[:4])
            assert replica.respawns == 1
            assert replica.pid != before

    def test_kill_under_load_resolves_every_request(self, compressed_pair,
                                                    requests):
        compressed, thread_replica = compressed_pair
        reference = predict_batched(thread_replica, requests, batch_size=4)
        with ProcessReplicaPool(compressed, BUILDER, SHAPE, workers=2,
                                max_batch_size=4) as pool:
            server = ModelServer()
            pool.register_with(
                server, "tiny",
                policy=BatchPolicy(max_batch_size=4, max_wait_ms=2.0),
                fault_policy=FaultPolicy(max_retries=4,
                                         backoff_initial_ms=1.0))
            with server:
                handles = [server.submit("tiny", row) for row in requests]
                pool.replicas[0].kill()
                outputs = [h.result(timeout=120.0) for h in handles]
            for i, out in enumerate(outputs):
                assert np.array_equal(out, reference[i])

    def test_drain_resolves_pending_requests(self, compressed_pair, requests):
        compressed, _ = compressed_pair
        with ProcessReplicaPool(compressed, BUILDER, SHAPE, workers=2,
                                max_batch_size=4) as pool:
            server = ModelServer()
            pool.register_with(server, "tiny",
                               policy=BatchPolicy(max_batch_size=4,
                                                  max_wait_ms=5.0))
            server.start()
            handles = [server.submit("tiny", row) for row in requests]
            server.shutdown(drain=True)
            for handle in handles:
                assert handle.result(timeout=5.0).shape == (TINY["num_classes"],)

    def test_closed_pool_raises_typed_fault(self, compressed_pair):
        compressed, _ = compressed_pair
        pool = ProcessReplicaPool(compressed, BUILDER, SHAPE, workers=1,
                                  max_batch_size=4)
        pool.close()
        with pytest.raises(WorkerFault):
            pool.replicas[0].forward(np.zeros((1, *SHAPE)))


class TestFaultInjection:
    def test_ipc_fault_point_raises_worker_fault(self, pool, requests):
        plan = FaultPlan([FaultRule("serve.worker.ipc", probability=1.0,
                                    error="worker")], seed=0)
        with plan.active():
            with pytest.raises(WorkerFault):
                pool.replicas[0].forward(requests[:2])
        # the worker itself was never touched: the next forward just works
        assert pool.replicas[0].forward(requests[:2]).shape == (2, 3)

    def test_spawn_fault_point_raises_worker_fault(self, compressed_pair):
        compressed, _ = compressed_pair
        plan = FaultPlan([FaultRule("serve.worker.spawn", probability=1.0,
                                    error="worker")], seed=0)
        with plan.active():
            with pytest.raises(WorkerFault):
                ProcessReplicaPool(compressed, BUILDER, SHAPE, workers=1,
                                   max_batch_size=4)

    def test_degrade_is_sticky_across_respawn(self, compressed_pair):
        compressed, _ = compressed_pair
        with ProcessReplicaPool(compressed, BUILDER, SHAPE, workers=1,
                                max_batch_size=4) as pool:
            replica = pool.replicas[0]
            replica.degrade_to_dense()
            assert set(replica.info()["engine_modes"]) == {"dense"}
            replica.kill()
            # info() re-spawns; the degrade flag re-applies on handshake
            assert set(replica.info()["engine_modes"]) == {"dense"}
            assert replica.respawns >= 1


class TestArenaLifecycle:
    def test_pool_close_removes_arena(self, compressed_pair):
        compressed, _ = compressed_pair
        pool = ProcessReplicaPool(compressed, BUILDER, SHAPE, workers=1,
                                  max_batch_size=4)
        name = pool.arena.name
        assert os.path.exists(f"/dev/shm/{name}")
        pool.close()
        assert not os.path.exists(f"/dev/shm/{name}")

    def test_concurrent_forwards_from_many_threads(self, pool, requests):
        """The per-replica lock serializes pipe traffic safely."""
        results = [None] * 8
        expected = pool.replicas[0].forward(requests[:2])

        def hit(i):
            results[i] = pool.replicas[i % 2].forward(requests[:2])

        threads = [threading.Thread(target=hit, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        for out in results:
            assert np.array_equal(out, expected)


class TestLutDerivedZeroCopy:
    """A pinned LUT engine mode must survive the spawn trip: workers adopt
    the warmed routing tables from the arena (zero private derived bytes)
    and serve bits identical to the parent's thread replica."""

    def test_workers_adopt_lut_tables_zero_copy(self, requests):
        cfg = LayerCompressionConfig(k=8, d=8, max_kmeans_iterations=2)
        compressed = MVQCompressor(cfg).compress(resnet18_mini(**TINY))
        replica = resnet18_mini(**TINY)
        swap_to_compressed(replica, compressed, mode="lut")
        replica.eval()
        reference = predict_batched(replica, requests[:4], batch_size=4)
        with ProcessReplicaPool(compressed, BUILDER, SHAPE, workers=1,
                                max_batch_size=4, mode="lut",
                                model=replica) as pool:
            out = pool.replicas[0].forward(requests[:4])
            info = pool.replicas[0].info()
        assert np.array_equal(out, reference)
        # raw compressed/model state AND engine-derived tables both resolve
        # into the shared arena — nothing is rebuilt or copied per worker
        assert info["private_state_bytes"] == 0
        assert info["derived_private_bytes"] == 0
        assert info["derived_shared_bytes"] > 0
        assert set(info["engine_modes"]) == {"lut"}
        sample = next(iter(info["engines"].values()))
        assert sample["mode"] == "lut"
        assert sample["assignments_dtype"] == "uint8"
        assert sample["lut_table_bytes"] > 0
