"""Loader (scenario / .npz) and the JSONL CLI session."""

import io
import json

import numpy as np
import pytest

from repro.nn import predict_batched
from repro.serve import BatchPolicy, ModelServer, load_npz, load_scenario
from repro.serve.cli import JsonlSession, build_parser
from repro.serve.loader import policy_from_spec


class TestPolicyFromSpec:
    def test_spec_maps_onto_batch_policy(self):
        policy = policy_from_spec({"max_batch_size": 16, "max_wait_ms": 5.0,
                                   "overload": "block", "workers": 3})
        assert policy.max_batch_size == 16
        assert policy.overload == "block"  # unknown keys (workers) ignored

    def test_overrides_win_and_none_is_ignored(self):
        policy = policy_from_spec({"max_batch_size": 16},
                                  max_batch_size=4, max_wait_ms=None)
        assert policy.max_batch_size == 4
        assert policy.max_wait_ms == BatchPolicy().max_wait_ms


@pytest.fixture(scope="module")
def scenario_model(tmp_path_factory):
    cache = tmp_path_factory.mktemp("serve-cache")
    return load_scenario("serving-resnet18", replicas=2, cache_dir=str(cache))


class TestLoadScenario:
    def test_loaded_shape_and_meta(self, scenario_model):
        loaded = scenario_model
        assert loaded.name == "serving-resnet18"
        assert len(loaded.replicas) == 2
        assert loaded.replicas[0] is not loaded.replicas[1]
        assert loaded.input_shape == (3, 16, 16)
        assert loaded.meta["compression_ratio"] > 1.0
        assert loaded.meta["layers"] == len(loaded.compressed)

    def test_serving_spec_feeds_policy(self, scenario_model):
        policy = scenario_model.policy()
        assert policy.max_batch_size == 16
        assert policy.overload == "block"

    def test_replicas_serve_identically(self, scenario_model, rng):
        x = rng.normal(size=(6, 3, 16, 16))
        a = predict_batched(scenario_model.replicas[0], x, batch_size=4)
        b = predict_batched(scenario_model.replicas[1], x, batch_size=4)
        assert np.array_equal(a, b)

    def test_register_with_server_roundtrip(self, scenario_model, rng):
        server = ModelServer()
        scenario_model.register_with(server, max_batch_size=4, max_wait_ms=2.0)
        x = rng.normal(size=(8, 3, 16, 16))
        with server:
            out = server.predict_many("serving-resnet18", x)
        reference = predict_batched(scenario_model.replicas[0], x, batch_size=4)
        assert np.array_equal(out, reference)


class TestReplicaDedup:
    """Thread replicas share one physical copy of all read-only state."""

    def test_replicas_share_state_by_reference(self, scenario_model):
        from repro.serve import replica_state_report

        report = replica_state_report(scenario_model.replicas)
        assert report["replicas"] == 2
        assert report["total_bytes"] > 0
        # every param/buffer/engine table of replica 2 is a view of
        # replica 1's storage: unique bytes ~ one copy, not two
        assert report["unique_bytes"] * 2 == report["total_bytes"]
        assert report["dedup_ratio"] == pytest.approx(2.0)

    def test_shared_views_are_read_only(self, scenario_model):
        secondary = scenario_model.replicas[1]
        for name, param in secondary.named_parameters():
            if not param.value.flags.writeable:
                break
        else:
            pytest.fail("no read-only shared parameter found on replica 2")

    def test_adopt_state_views_strict_on_missing(self):
        from repro.nn.models import resnet18_mini
        from repro.serve import adopt_state_views

        model = resnet18_mini(num_classes=3, seed=0, width=8)
        with pytest.raises(KeyError):
            adopt_state_views(model, {})

    def test_process_pool_requires_builder_spec(self, scenario_model):
        import dataclasses

        broken = dataclasses.replace(scenario_model, builder_spec=None)
        with pytest.raises(ValueError):
            broken.process_pool()


class TestLoadNpz:
    def test_npz_roundtrip_matches_scenario_serving(self, tmp_path, rng):
        from repro.core.serialization import save_compressed_model
        from repro.nn.compressed import swap_to_compressed
        from repro.nn.models import get_model_factory
        from repro.pipeline.config import CORE_STAGES
        from repro.pipeline.scenarios import run_scenario

        result = run_scenario("serving-resnet18", stages=CORE_STAGES)
        path = tmp_path / "model.npz"
        save_compressed_model(result.compressed, path)

        loaded = load_npz(str(path), "resnet18",
                          model_kwargs={"num_classes": 5, "seed": 1},
                          name="from-npz")
        assert loaded.meta["source"] == "npz"

        reference_model = get_model_factory("resnet18")(num_classes=5, seed=1)
        from repro.core.serialization import load_compressed_model
        compressed = load_compressed_model(reference_model, str(path))
        swap_to_compressed(reference_model, compressed)
        reference_model.eval()

        x = rng.normal(size=(4, 3, 16, 16))
        out = predict_batched(loaded.replicas[0], x, batch_size=4)
        reference = predict_batched(reference_model, x, batch_size=4)
        assert np.array_equal(out, reference)

    def test_unknown_zoo_model(self, tmp_path):
        with pytest.raises(KeyError):
            load_npz(str(tmp_path / "x.npz"), "not-a-model")


def _compressed_stack():
    from repro.core import LayerCompressionConfig, MVQCompressor
    from repro.nn import Conv2d, Sequential

    model = Sequential(
        Conv2d(4, 8, 3, padding=1, rng=np.random.default_rng(0)),
        Conv2d(8, 8, 3, padding=1, rng=np.random.default_rng(1)),
    )
    cfg = LayerCompressionConfig(k=8, d=8, max_kmeans_iterations=5)
    MVQCompressor(cfg).export_compressed_model(model)
    model.eval()
    return model


class TestJsonlSession:
    INPUT_SHAPE = (4, 6, 6)

    def _session(self):
        server = ModelServer()
        server.register("stack", _compressed_stack(),
                        policy=BatchPolicy(max_batch_size=4, max_wait_ms=1.0),
                        input_shape=self.INPUT_SHAPE)
        session = JsonlSession(server, default_model="stack",
                               shapes={"stack": self.INPUT_SHAPE}, lookahead=8)
        return server, session

    def test_requests_answered_in_order(self, rng):
        server, session = self._session()
        x = rng.normal(size=(6, 4, 6, 6))
        lines = [json.dumps({"id": i, "input": x[i].tolist()})
                 for i in range(6)]
        out = io.StringIO()
        with server:
            session.run(lines, out)
        responses = [json.loads(line) for line in out.getvalue().splitlines()]
        assert [r["id"] for r in responses] == list(range(6))
        reference = predict_batched(_compressed_stack(), x, batch_size=4)
        for i, response in enumerate(responses):
            assert response["latency_ms"] >= 0
            np.testing.assert_array_equal(np.asarray(response["output"]),
                                          reference[i])

    def test_synthetic_stats_and_bad_lines(self):
        server, session = self._session()
        lines = [
            json.dumps({"id": 0, "synthetic": True, "seed": 3}),
            "this is not json",
            json.dumps({"id": 1, "input": [[0.0]]}),      # wrong shape
            json.dumps({"cmd": "stats"}),
        ]
        out = io.StringIO()
        with server:
            session.run(lines, out)
        responses = [json.loads(line) for line in out.getvalue().splitlines()]
        assert "output" in responses[0]
        assert "bad json" in responses[1]["error"]
        assert "expects input shape" in responses[2]["error"]
        assert responses[3]["models"]["stack"]["requests_completed"] == 1


class TestCliParser:
    def test_flags_parse(self):
        parser = build_parser()
        args = parser.parse_args([
            "--scenario", "serving-resnet18", "--scenario", "quickstart-resnet18",
            "--max-batch-size", "8", "--max-wait-ms", "3.5",
            "--overload", "block", "--engine-mode", "centroid",
            "--stdin-jsonl", "--stats"])
        assert args.scenario == ["serving-resnet18", "quickstart-resnet18"]
        assert args.max_batch_size == 8
        assert args.overload == "block"
        assert args.engine_mode == "centroid"

    def test_stdin_jsonl_and_port_are_mutually_exclusive(self, capsys):
        from repro.serve import cli

        with pytest.raises(SystemExit):
            cli.main(["--scenario", "serving-resnet18",
                      "--stdin-jsonl", "--port", "7070"])
        assert "mutually exclusive" in capsys.readouterr().err

    def test_cli_main_stdin_jsonl(self, monkeypatch, capsys, tmp_path):
        import sys

        from repro.serve import cli

        requests = "\n".join(
            json.dumps({"id": i, "synthetic": True, "seed": i})
            for i in range(5)) + "\n"
        monkeypatch.setattr(sys, "stdin", io.StringIO(requests))
        exit_code = cli.main(["--scenario", "serving-resnet18",
                              "--cache-dir", str(tmp_path / "cache"),
                              "--max-batch-size", "4", "--max-wait-ms", "1"])
        assert exit_code == 0
        captured = capsys.readouterr()
        responses = [json.loads(line) for line in captured.out.splitlines()]
        assert [r["id"] for r in responses] == list(range(5))
        assert all("output" in r for r in responses)
        assert "registered 'serving-resnet18'" in captured.err
