"""DynamicBatcher concurrency semantics: ordering, flush, shed, block."""

import threading
import time

import pytest

from repro.serve import (
    BatchPolicy,
    DynamicBatcher,
    ServerClosed,
    ServerOverloaded,
)


class TestBatchPolicy:
    def test_defaults_valid(self):
        policy = BatchPolicy()
        assert policy.max_batch_size >= 1
        assert policy.overload in ("shed", "block")

    @pytest.mark.parametrize("kwargs", [
        {"max_batch_size": 0},
        {"max_wait_ms": -1.0},
        {"max_queue_size": 0},
        {"overload": "explode"},
    ])
    def test_invalid_policy_rejected(self, kwargs):
        with pytest.raises(ValueError):
            BatchPolicy(**kwargs)


class TestCoalescing:
    def test_full_batch_released_without_waiting(self):
        batcher = DynamicBatcher(BatchPolicy(max_batch_size=4,
                                             max_wait_ms=10_000.0))
        handles = [batcher.submit(i) for i in range(4)]
        start = time.perf_counter()
        batch = batcher.next_batch()
        elapsed = time.perf_counter() - start
        assert [r.payload for r in batch] == [0, 1, 2, 3]
        assert elapsed < 1.0  # did not sit out the 10s max-wait
        assert all(h is r for h, r in zip(handles, batch))

    def test_max_wait_flushes_partial_batch(self):
        batcher = DynamicBatcher(BatchPolicy(max_batch_size=64,
                                             max_wait_ms=30.0))
        batcher.submit("a")
        batcher.submit("b")
        start = time.perf_counter()
        batch = batcher.next_batch()
        waited = time.perf_counter() - start
        assert [r.payload for r in batch] == ["a", "b"]
        # flushed by the max-wait clock: well before any 64-request batch
        # could have formed, but not instantly either
        assert waited < 5.0

    def test_oldest_request_anchors_the_wait_clock(self):
        batcher = DynamicBatcher(BatchPolicy(max_batch_size=64,
                                             max_wait_ms=80.0))
        batcher.submit("old")
        time.sleep(0.05)  # the oldest request has burned most of its budget
        batcher.submit("young")
        start = time.perf_counter()
        batch = batcher.next_batch()
        waited = time.perf_counter() - start
        assert [r.payload for r in batch] == ["old", "young"]
        # remaining budget was ~30ms, not a fresh 80ms from the second submit
        assert waited < 0.08

    def test_oversize_stream_split_into_fifo_batches(self):
        batcher = DynamicBatcher(BatchPolicy(max_batch_size=3, max_wait_ms=1.0))
        for i in range(8):
            batcher.submit(i)
        sizes, order = [], []
        while len(order) < 8:
            batch = batcher.next_batch()
            sizes.append(len(batch))
            order.extend(r.payload for r in batch)
        assert order == list(range(8))
        assert sizes == [3, 3, 2]


class TestInterleavedArrivals:
    def test_single_producer_fifo_under_concurrent_consumer(self):
        batcher = DynamicBatcher(BatchPolicy(max_batch_size=4, max_wait_ms=2.0))
        consumed = []
        done = threading.Event()

        def consumer():
            while True:
                batch = batcher.next_batch()
                if batch is None:
                    break
                consumed.extend(r.payload for r in batch)
            done.set()

        thread = threading.Thread(target=consumer)
        thread.start()
        for i in range(50):
            batcher.submit(i)
            if i % 7 == 0:
                time.sleep(0.003)  # interleave arrivals with in-flight batches
        batcher.close()
        assert done.wait(10.0)
        thread.join(5.0)
        assert consumed == list(range(50))

    def test_multi_producer_per_thread_order_preserved(self):
        batcher = DynamicBatcher(BatchPolicy(max_batch_size=5, max_wait_ms=2.0))
        consumed = []

        def consumer():
            while True:
                batch = batcher.next_batch()
                if batch is None:
                    return
                consumed.extend(r.payload for r in batch)

        consumer_thread = threading.Thread(target=consumer)
        consumer_thread.start()

        def producer(tag):
            for i in range(20):
                batcher.submit((tag, i))

        producers = [threading.Thread(target=producer, args=(t,))
                     for t in range(3)]
        for thread in producers:
            thread.start()
        for thread in producers:
            thread.join(10.0)
        batcher.close()
        consumer_thread.join(10.0)

        assert len(consumed) == 60
        for tag in range(3):
            mine = [i for (t, i) in consumed if t == tag]
            assert mine == list(range(20))  # FIFO within each producer


class TestOverload:
    def test_shed_policy_raises_when_queue_full(self):
        batcher = DynamicBatcher(BatchPolicy(max_batch_size=2, max_queue_size=3,
                                             overload="shed"))
        for i in range(3):
            batcher.submit(i)
        with pytest.raises(ServerOverloaded):
            batcher.submit(3)
        # draining one batch frees space again
        batch = batcher.next_batch()
        assert len(batch) == 2
        batcher.submit(3)
        assert batcher.qsize() == 2

    def test_block_policy_applies_backpressure(self):
        batcher = DynamicBatcher(BatchPolicy(max_batch_size=2, max_queue_size=2,
                                             max_wait_ms=1.0, overload="block"))
        batcher.submit(0)
        batcher.submit(1)
        unblocked_at = []

        def blocked_producer():
            batcher.submit(2)  # must wait for queue space
            unblocked_at.append(time.perf_counter())

        thread = threading.Thread(target=blocked_producer)
        thread.start()
        time.sleep(0.05)
        assert not unblocked_at  # still blocked while the queue is full
        drained_at = time.perf_counter()
        batcher.next_batch()
        thread.join(5.0)
        assert unblocked_at and unblocked_at[0] >= drained_at

    def test_block_policy_timeout(self):
        batcher = DynamicBatcher(BatchPolicy(max_batch_size=2, max_queue_size=1,
                                             overload="block"))
        batcher.submit(0)
        with pytest.raises(ServerOverloaded):
            batcher.submit(1, timeout=0.05)


class TestLifecycle:
    def test_submit_after_close_raises(self):
        batcher = DynamicBatcher()
        batcher.close()
        with pytest.raises(ServerClosed):
            batcher.submit("late")

    def test_close_drains_then_signals_none(self):
        batcher = DynamicBatcher(BatchPolicy(max_batch_size=8, max_wait_ms=1.0))
        batcher.submit("queued")
        batcher.close()
        batch = batcher.next_batch()
        assert [r.payload for r in batch] == ["queued"]
        assert batcher.next_batch() is None

    def test_request_result_timeout(self):
        batcher = DynamicBatcher()
        handle = batcher.submit("never-served")
        with pytest.raises(TimeoutError):
            handle.result(timeout=0.05)
