"""p99 percentiles, the compact stats() view and the per-model breakdown."""

from repro.serve import ServingMetrics, StatsRegistry


def _record_latencies(metrics, latencies_s):
    for latency in latencies_s:
        metrics.record_request(latency, queue_wait_s=latency / 10)


class TestP99:
    def test_snapshot_has_p99_for_latency_and_queue_wait(self):
        metrics = ServingMetrics()
        _record_latencies(metrics, [i / 1000 for i in range(1, 101)])
        snap = metrics.snapshot()
        assert snap["latency_ms"]["p50"] < snap["latency_ms"]["p95"]
        assert snap["latency_ms"]["p95"] < snap["latency_ms"]["p99"]
        assert snap["latency_ms"]["p99"] <= snap["latency_ms"]["max"]
        assert snap["queue_wait_ms"]["p95"] < snap["queue_wait_ms"]["p99"]

    def test_p99_interpolates_toward_the_tail(self):
        metrics = ServingMetrics()
        _record_latencies(metrics, [0.001] * 99 + [1.0])
        snap = metrics.snapshot()
        # one 1s outlier in 100 samples: p95 stays at the 1 ms floor, p99
        # starts interpolating toward the outlier (pos 98.01 -> ~11 ms)
        assert snap["latency_ms"]["p95"] < 2
        assert snap["latency_ms"]["p99"] > 5 * snap["latency_ms"]["p95"]


class TestStatsView:
    def test_stats_is_the_compact_subview(self):
        metrics = ServingMetrics()
        _record_latencies(metrics, [0.002, 0.004, 0.006])
        stats = metrics.stats()
        assert set(stats) == {"requests_completed", "throughput_rps",
                              "latency_ms", "queue_wait_ms"}
        assert stats["requests_completed"] == 3
        assert set(stats["latency_ms"]) >= {"p50", "p95", "p99"}

    def test_registry_report_breaks_down_per_model(self):
        registry = StatsRegistry()
        _record_latencies(registry.for_model("a"), [0.002, 0.004])
        _record_latencies(registry.for_model("b"), [0.008])
        report = registry.report()
        assert set(report["breakdown"]) == {"a", "b"}
        assert report["breakdown"]["a"]["requests_completed"] == 2
        assert report["breakdown"]["b"]["requests_completed"] == 1
        for line in report["breakdown"].values():
            assert "p99" in line["latency_ms"]
        assert report["total_completed"] == 3
