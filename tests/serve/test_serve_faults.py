"""Failure-hardened serving: retries, deadlines, quarantine, degradation.

Every test drives the server through a seeded :class:`FaultPlan`, so the
chaos it exercises is deterministic — the same faults fire at the same
visit indices on every run.
"""

import threading
import time

import numpy as np
import pytest

from repro.core import LayerCompressionConfig, MVQCompressor
from repro.core.faults import FaultPlan, FaultRule
from repro.nn import Conv2d, Sequential, predict_batched
from repro.serve import (
    BatchPolicy,
    EngineFault,
    FaultPolicy,
    ModelServer,
    ReplicaUnavailable,
    RequestFailed,
    RequestTimeout,
    ServerClosed,
    ServingError,
    error_payload,
    serving_chaos_plan,
)

INPUT_SHAPE = (4, 6, 6)
POLICY = BatchPolicy(max_batch_size=4, max_wait_ms=2.0)


def _compressed_stack(seed_a=0, seed_b=1):
    model = Sequential(
        Conv2d(4, 8, 3, padding=1, rng=np.random.default_rng(seed_a)),
        Conv2d(8, 8, 3, padding=1, rng=np.random.default_rng(seed_b)),
    )
    cfg = LayerCompressionConfig(k=8, d=8, max_kmeans_iterations=5)
    MVQCompressor(cfg).export_compressed_model(model)
    model.eval()
    return model


def _server(fault_policy, replicas=1, policy=POLICY):
    srv = ModelServer()
    srv.register("stack",
                 [_compressed_stack() for _ in range(replicas)]
                 if replicas > 1 else _compressed_stack(),
                 policy=policy, fault_policy=fault_policy,
                 input_shape=INPUT_SHAPE)
    return srv


class TestRetries:
    def test_transient_fault_is_retried_to_success(self, rng):
        # exactly the first two forwards fail; retries land on attempt 3
        plan = FaultPlan([FaultRule("serve.replica.forward",
                                    probability=1.0, max_injections=2)])
        srv = _server(FaultPolicy(max_retries=3, backoff_initial_ms=1.0))
        x = rng.normal(size=(4, *INPUT_SHAPE))
        with plan.active(), srv:
            out = srv.predict_many("stack", x)
        reference = predict_batched(_compressed_stack(), x, batch_size=4)
        assert np.array_equal(out, reference)
        faults = srv.stats_report()["models"]["stack"]["faults"]
        assert faults["replica_failures"] == 2
        assert faults["retries"] >= 1

    def test_retry_budget_exhaustion_is_typed_failure(self, rng):
        plan = FaultPlan([FaultRule("serve.replica.forward", probability=1.0)])
        srv = _server(FaultPolicy(max_retries=1, backoff_initial_ms=1.0,
                                  quarantine_after=0))
        with plan.active(), srv:
            handle = srv.submit("stack", rng.normal(size=INPUT_SHAPE))
            with pytest.raises(RequestFailed) as info:
                handle.result(timeout=10.0)
        assert info.value.attempts == 2  # initial try + 1 retry
        assert info.value.code == "failed"
        assert info.value.cause is not None
        assert srv.stats_report()["models"]["stack"]["requests_failed"] == 1

    def test_retry_reroutes_to_healthy_replica(self, rng):
        # every forward on the *first* visited replica thread fails is not
        # expressible per-replica, but with 2 replicas and a 2-injection
        # budget the retried batch must eventually execute cleanly
        plan = FaultPlan([FaultRule("serve.replica.forward",
                                    probability=1.0, max_injections=2)])
        srv = _server(FaultPolicy(max_retries=4, backoff_initial_ms=1.0),
                      replicas=2)
        x = rng.normal(size=(8, *INPUT_SHAPE))
        with plan.active(), srv:
            out = srv.predict_many("stack", x)
        reference = predict_batched(_compressed_stack(), x, batch_size=4)
        assert np.array_equal(out, reference)


class TestDeadlines:
    def test_queued_request_times_out(self, rng):
        # all forwards fail so the request burns its deadline in retries
        plan = FaultPlan([FaultRule("serve.replica.forward", probability=1.0)])
        srv = _server(FaultPolicy(max_retries=100, backoff_initial_ms=20.0,
                                  deadline_ms=60.0, quarantine_after=0))
        with plan.active(), srv:
            handle = srv.submit("stack", rng.normal(size=INPUT_SHAPE))
            with pytest.raises(RequestTimeout) as info:
                handle.result(timeout=10.0)
        assert info.value.code == "timeout"
        assert srv.stats_report()["models"]["stack"]["faults"]["timeouts"] == 1

    def test_deadline_override_per_request(self, rng):
        srv = _server(FaultPolicy(deadline_ms=None))
        with srv:
            handle = srv.submit("stack", rng.normal(size=INPUT_SHAPE),
                                deadline_ms=5000.0)
            assert handle.result(timeout=10.0).shape == (8, 6, 6)
        assert handle.deadline is not None


class TestQuarantine:
    def test_failing_replica_is_quarantined_and_readmitted(self, rng):
        # 3 consecutive batch failures trip quarantine; warmup succeeds so
        # the replica is re-admitted and later requests complete
        plan = FaultPlan([FaultRule("serve.replica.forward",
                                    probability=1.0, max_injections=3)])
        srv = _server(FaultPolicy(max_retries=5, backoff_initial_ms=1.0,
                                  quarantine_after=3, rewarm_after_ms=10.0))
        x = rng.normal(size=(4, *INPUT_SHAPE))
        with plan.active(), srv:
            out = srv.predict_many("stack", x)
            deadline = time.perf_counter() + 5.0
            while (srv.stats_report()["models"]["stack"]["faults"]["restarts"]
                   < 1 and time.perf_counter() < deadline):
                time.sleep(0.01)
        reference = predict_batched(_compressed_stack(), x, batch_size=4)
        assert np.array_equal(out, reference)
        faults = srv.stats_report()["models"]["stack"]["faults"]
        assert faults["quarantines"] == 1
        assert faults["restarts"] == 1
        health = srv.health_report()["stack"]
        assert health["healthy"] == 1

    def test_reject_when_unavailable(self, rng):
        plan = FaultPlan([FaultRule("serve.replica.forward", probability=1.0),
                          FaultRule("serve.replica.warmup", probability=1.0)])
        srv = _server(FaultPolicy(max_retries=0, backoff_initial_ms=1.0,
                                  quarantine_after=1, rewarm_after_ms=30.0,
                                  reject_when_unavailable=True))
        with plan.active(), srv:
            handle = srv.submit("stack", rng.normal(size=INPUT_SHAPE))
            with pytest.raises(RequestFailed):
                handle.result(timeout=10.0)
            deadline = time.perf_counter() + 5.0
            while (srv.health_report()["stack"]["healthy"] > 0
                   and time.perf_counter() < deadline):
                time.sleep(0.005)
            with pytest.raises(ReplicaUnavailable) as info:
                srv.submit("stack", rng.normal(size=INPUT_SHAPE))
        assert info.value.code == "unavailable"


class TestDegradation:
    def test_engine_fault_degrades_to_dense_bit_identically(self, rng):
        plan = FaultPlan([FaultRule("serve.replica.forward", probability=1.0,
                                    error="engine", max_injections=1)])
        srv = _server(FaultPolicy())
        x = rng.normal(size=(8, *INPUT_SHAPE))
        with plan.active(), srv:
            out = srv.predict_many("stack", x)
        # dense fallback must be bit-identical to the centroid engine
        reference = predict_batched(_compressed_stack(), x, batch_size=4)
        assert np.array_equal(out, reference)
        stats = srv.stats_report()["models"]["stack"]
        assert stats["faults"]["degraded_serves"] >= 1
        assert stats["faults"]["replica_failures"] == 0  # degraded, not failed
        health = srv.health_report()["stack"]["replicas"][0]
        assert health["degraded"] is True and health["healthy"] is True

    def test_degradation_disabled_counts_as_failure(self, rng):
        plan = FaultPlan([FaultRule("serve.replica.forward", probability=1.0,
                                    error="engine")])
        srv = _server(FaultPolicy(max_retries=0, quarantine_after=0,
                                  degrade_on_engine_fault=False))
        with plan.active(), srv:
            handle = srv.submit("stack", rng.normal(size=INPUT_SHAPE))
            with pytest.raises(RequestFailed) as info:
                handle.result(timeout=10.0)
        assert isinstance(info.value.cause, EngineFault)


class TestDrainUnderFault:
    def test_drain_resolves_every_request_with_quarantine_and_retries(self, rng):
        """The drain-under-fault guarantee: shutdown(drain=True) with a
        quarantined replica and requests mid-retry resolves *every* queued
        request — a result or a typed error — with no hangs."""
        plan = FaultPlan([
            FaultRule("serve.replica.forward", probability=0.6),
            FaultRule("serve.replica.warmup", probability=0.8),
        ], seed=13)
        srv = _server(FaultPolicy(max_retries=2, backoff_initial_ms=5.0,
                                  quarantine_after=2, rewarm_after_ms=500.0),
                      replicas=2)
        x = rng.normal(size=(24, *INPUT_SHAPE))
        with plan.active():
            srv.start()
            handles = [srv.submit("stack", row) for row in x]
            # let faults accumulate: at 60% failure some batch fails twice in
            # a row on one replica and trips its quarantine
            deadline = time.perf_counter() + 5.0
            while (srv.stats_report()["models"]["stack"]["faults"]["quarantines"]
                   < 1 and time.perf_counter() < deadline):
                time.sleep(0.005)
            start = time.perf_counter()
            srv.shutdown(drain=True, timeout=30.0)
            elapsed = time.perf_counter() - start
        assert elapsed < 20.0, "drain must not hang"
        reference = predict_batched(_compressed_stack(), x, batch_size=4)
        outcomes = {"ok": 0, "error": 0}
        for i, handle in enumerate(handles):
            assert handle.done(), f"request {i} left unresolved by drain"
            try:
                out = handle.result(timeout=0.0)
            except ServingError as error:
                # typed, structured, and renderable as a wire payload
                assert error.code in ("failed", "timeout", "closed")
                assert "code" in error_payload(error)
                outcomes["error"] += 1
            else:
                # successes stay bit-identical even under chaos
                assert np.array_equal(out, reference[i])
                outcomes["ok"] += 1
        assert outcomes["ok"] + outcomes["error"] == len(handles)
        faults = srv.stats_report()["models"]["stack"]["faults"]
        assert faults["quarantines"] >= 1
        assert faults["retries"] >= 1

    def test_no_drain_shutdown_fails_queued_requests(self, rng):
        plan = FaultPlan([FaultRule("serve.replica.forward", probability=1.0)])
        srv = _server(FaultPolicy(max_retries=50, backoff_initial_ms=50.0,
                                  quarantine_after=0))
        with plan.active():
            srv.start()
            handles = [srv.submit("stack", rng.normal(size=INPUT_SHAPE))
                       for _ in range(6)]
            time.sleep(0.05)  # let retries enter their backoff window
            srv.shutdown(drain=False, timeout=30.0)
        for handle in handles:
            with pytest.raises((ServerClosed, RequestFailed)):
                handle.result(timeout=10.0)


class TestChaosPlan:
    def test_serving_chaos_plan_is_reproducible(self, rng):
        x = rng.normal(size=(32, *INPUT_SHAPE))
        reference = predict_batched(_compressed_stack(), x, batch_size=4)
        summaries = []
        for _ in range(2):
            srv = _server(FaultPolicy(max_retries=4, backoff_initial_ms=1.0,
                                      rewarm_after_ms=10.0))
            plan = serving_chaos_plan(rate=0.3, seed=21)
            with plan.active(), srv:
                for i, handle in enumerate(
                        [srv.submit("stack", row) for row in x]):
                    try:
                        out = handle.result(timeout=30.0)
                    except ServingError:
                        continue
                    assert np.array_equal(out, reference[i])
            summaries.append(plan.summary()["injections"])
        # the injected counts are a pure function of (seed, point, visit)
        assert summaries[0] == summaries[1]
        assert sum(summaries[0].values()) >= 1

    def test_chaos_plan_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            serving_chaos_plan(rate=1.5)

    def test_fault_metrics_snapshot_keys(self, rng):
        srv = _server(FaultPolicy())
        with srv:
            srv.predict("stack", rng.normal(size=INPUT_SHAPE))
        faults = srv.stats_report()["models"]["stack"]["faults"]
        assert set(faults) == {"timeouts", "retries", "replica_failures",
                               "quarantines", "restarts", "degraded_serves"}
        assert all(v == 0 for v in faults.values())

    def test_policies_report_includes_fault_knobs(self, rng):
        srv = _server(FaultPolicy(max_retries=7, deadline_ms=1234.0,
                                  quarantine_after=5))
        with srv:
            policies = srv.stats_report()["policies"]["stack"]
        assert policies["max_retries"] == 7
        assert policies["deadline_ms"] == 1234.0
        assert policies["quarantine_after"] == 5


class TestFaultPolicyValidation:
    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            FaultPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            FaultPolicy(backoff_multiplier=0.5)
        with pytest.raises(ValueError):
            FaultPolicy(deadline_ms=0.0)

    def test_backoff_schedule_is_exponential(self):
        policy = FaultPolicy(backoff_initial_ms=2.0, backoff_multiplier=2.0)
        assert policy.backoff_s(1) == pytest.approx(0.002)
        assert policy.backoff_s(2) == pytest.approx(0.004)
        assert policy.backoff_s(3) == pytest.approx(0.008)
