"""Cross-process trace merging for the sharded serving tier.

Worker spans are recorded worker-side, shipped back over the existing IPC
channel, clock-offset-corrected, and merged so one sharded request renders
as a single Chrome-trace tree.  These tests pin the properties the merge
must keep: spans survive the spawn round-trip, corrected worker spans land
strictly inside the client-side IPC windows that bracket them, and a
SIGKILL'd worker's partial spans are dropped cleanly (never a corrupt
trace).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import LayerCompressionConfig, MVQCompressor, telemetry
from repro.nn.models import resnet18_mini
from repro.serve import BatchPolicy, ModelServer, ProcessReplicaPool

TINY = {"num_classes": 3, "seed": 1, "width": 8}
BUILDER = ("factory", resnet18_mini, dict(TINY))
SHAPE = (3, 8, 8)


def _tiny_compressed():
    cfg = LayerCompressionConfig(k=8, d=8, max_kmeans_iterations=2)
    return MVQCompressor(cfg).compress(resnet18_mini(**TINY))


@pytest.fixture(scope="module")
def compressed():
    return _tiny_compressed()


@pytest.fixture()
def tracer():
    """A live global tracer; pools built inside inherit trace=True."""
    tracer = telemetry.enable(process_name="test-client")
    yield tracer
    telemetry.disable()


def _spans(tracer, name=None):
    records = [r for r in tracer.records() if r["ph"] == "X"]
    if name is not None:
        records = [r for r in records if r["name"] == name]
    return records


class TestWorkerSpansSurviveSpawn:
    def test_forward_ships_worker_spans_back(self, compressed, tracer):
        pool = ProcessReplicaPool(compressed, BUILDER, SHAPE, workers=1,
                                  max_batch_size=4)
        try:
            assert pool.spec.get("trace") is True
            x = np.random.default_rng(0).standard_normal((2, *SHAPE))
            pool.replicas[0].forward(x)
            merged = pool.collect_traces()
        finally:
            pool.close()
        assert merged >= 1
        worker = _spans(tracer, "serve.worker.forward")
        assert len(worker) == 1
        # recorded in the worker process, merged into the client buffer
        assert worker[0]["pid"] != tracer.pid
        assert worker[0]["args"]["batch"] == 2

    def test_clock_offset_corrected_parent_encloses_child(self, compressed,
                                                          tracer):
        pool = ProcessReplicaPool(compressed, BUILDER, SHAPE, workers=2,
                                  max_batch_size=4)
        try:
            rng = np.random.default_rng(1)
            for _ in range(3):
                for replica in pool.replicas:
                    replica.forward(rng.standard_normal((2, *SHAPE)))
            pool.collect_traces()
        finally:
            pool.close()
        ipc = {r["args"]["seq"]: r
               for r in _spans(tracer, "serve.worker.ipc.forward")}
        worker = _spans(tracer, "serve.worker.forward")
        assert len(ipc) == 6 and len(worker) == 6
        for span in worker:
            window = ipc[span["args"]["seq"]]
            # strict enclosure: the corrected worker span sits inside the
            # client-side IPC window that carried it
            assert window["ts"] <= span["ts"]
            assert span["ts"] + span["dur"] <= window["ts"] + window["dur"]

    def test_merged_trace_validates(self, compressed, tracer):
        pool = ProcessReplicaPool(compressed, BUILDER, SHAPE, workers=2,
                                  max_batch_size=4)
        try:
            x = np.random.default_rng(2).standard_normal((4, *SHAPE))
            for replica in pool.replicas:
                replica.forward(x)
            pool.collect_traces()
        finally:
            pool.close()
        trace = tracer.chrome_trace()
        assert telemetry.validate_chrome_trace(trace) == []
        pids = {e["pid"] for e in trace["traceEvents"] if e["ph"] != "M"}
        assert len(pids) == 3  # client + 2 worker processes


class TestKilledWorker:
    def test_sigkilled_worker_spans_dropped_cleanly(self, compressed, tracer):
        pool = ProcessReplicaPool(compressed, BUILDER, SHAPE, workers=1,
                                  max_batch_size=4)
        try:
            replica = pool.replicas[0]
            replica.forward(
                np.random.default_rng(3).standard_normal((2, *SHAPE)))
            replica.kill()
            # the dead worker's buffered spans are unreachable: collect
            # must drop them cleanly, not raise or corrupt the trace
            merged = replica.collect_trace()
            assert merged == 0
        finally:
            pool.close()
        assert _spans(tracer, "serve.worker.forward") == []
        assert telemetry.validate_chrome_trace(tracer.chrome_trace()) == []


class TestEndToEndRequestTree:
    def test_single_request_renders_one_tree_across_processes(
            self, compressed, tracer):
        """The acceptance criterion: one traced request through the
        sharded tier spans the client thread, the batcher, and the worker
        process in a single validated Chrome trace."""
        pool = ProcessReplicaPool(compressed, BUILDER, SHAPE, workers=1,
                                  max_batch_size=4)
        server = ModelServer()
        pool.register_with(server, "tiny",
                           policy=BatchPolicy(max_batch_size=4,
                                              max_wait_ms=2.0))
        try:
            with server:
                x = np.random.default_rng(4).standard_normal(SHAPE)
                server.predict("tiny", x)
        finally:
            pool.close()  # flushes the worker's spans into the tracer

        names = {r["name"] for r in _spans(tracer)}
        assert {"serve.request", "serve.request.queue_wait",
                "serve.request.execute", "serve.batch",
                "serve.batch.assemble", "serve.forward",
                "serve.worker.ipc.forward",
                "serve.worker.forward"} <= names

        trace = tracer.chrome_trace()
        assert telemetry.validate_chrome_trace(trace) == []
        events = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        by_name = {e["name"]: e for e in events}
        # client thread, batcher thread, worker process are distinct tracks
        assert by_name["serve.request"]["tid"] != by_name["serve.batch"]["tid"]
        assert by_name["serve.worker.forward"]["pid"] != tracer.pid
        # queue-wait + execute tile the request window
        request = by_name["serve.request"]
        wait, execute = (by_name["serve.request.queue_wait"],
                         by_name["serve.request.execute"])
        assert request["ts"] <= wait["ts"]
        assert wait["ts"] + wait["dur"] <= execute["ts"] + 1e-3
        assert (execute["ts"] + execute["dur"]
                <= request["ts"] + request["dur"] + 1e-3)
        # the worker's forward lands inside the batch's forward window
        forward, worker = by_name["serve.forward"], by_name["serve.worker.forward"]
        assert forward["ts"] <= worker["ts"]
        assert worker["ts"] + worker["dur"] <= forward["ts"] + forward["dur"]
