"""Satellite robustness: malformed JSONL lines and broken ``.npz`` archives.

A bad input line must answer with a structured error object — never tear
down the session loop; a broken deploy artifact must fail loading with a
typed :class:`ManifestError` naming the file and the first bad array.
"""

import io
import json

import numpy as np
import pytest

from repro.core import LayerCompressionConfig, MVQCompressor
from repro.nn import Conv2d, Sequential
from repro.serve import BatchPolicy, ManifestError, ModelServer, verify_npz
from repro.serve.cli import JsonlSession

INPUT_SHAPE = (4, 6, 6)


def _compressed_stack():
    model = Sequential(
        Conv2d(4, 8, 3, padding=1, rng=np.random.default_rng(0)),
        Conv2d(8, 8, 3, padding=1, rng=np.random.default_rng(1)),
    )
    cfg = LayerCompressionConfig(k=8, d=8, max_kmeans_iterations=5)
    MVQCompressor(cfg).export_compressed_model(model)
    model.eval()
    return model


def _run_session(lines):
    server = ModelServer()
    server.register("stack", _compressed_stack(),
                    policy=BatchPolicy(max_batch_size=4, max_wait_ms=1.0),
                    input_shape=INPUT_SHAPE)
    session = JsonlSession(server, default_model="stack",
                           shapes={"stack": INPUT_SHAPE}, lookahead=8)
    out = io.StringIO()
    with server:
        session.run(lines, out)
    return [json.loads(line) for line in out.getvalue().splitlines()]


class TestMalformedJsonl:
    def test_non_dict_json_lines_get_structured_errors(self, rng):
        x = rng.normal(size=INPUT_SHAPE)
        lines = [
            "[1, 2, 3]",                        # valid JSON, not an object
            '"just a string"',
            "42",
            "null",
            json.dumps({"id": "ok", "input": x.tolist()}),  # loop survives
        ]
        responses = _run_session(lines)
        assert len(responses) == 5
        for bad in responses[:4]:
            assert bad["error_type"] == "BadRequest"
            assert "JSON object" in bad["error"]
        assert responses[4]["id"] == "ok"
        assert "output" in responses[4]

    def test_session_keeps_serving_after_every_error_shape(self, rng):
        x = rng.normal(size=INPUT_SHAPE)
        lines = [
            "{truncated json",
            json.dumps({"id": 1, "model": "no-such-model",
                        "input": x.tolist()}),
            json.dumps({"id": 2}),               # neither input nor synthetic
            json.dumps({"id": 3, "input": "not an array of numbers"}),
            json.dumps({"id": 4, "input": [[1.0]]}),        # wrong shape
            json.dumps({"id": 5, "input": x.tolist()}),
        ]
        responses = _run_session(lines)
        assert len(responses) == 6
        assert responses[0]["error_type"] == "JSONDecodeError"
        assert responses[1]["error_type"] == "KeyError"
        assert "no-such-model" in responses[1]["error"]
        for i in (2, 3, 4):
            assert "error" in responses[i]
            assert responses[i]["id"] == i
        assert "output" in responses[5] and responses[5]["id"] == 5

    def test_interleaved_errors_preserve_stream_order(self, rng):
        x = rng.normal(size=(4, *INPUT_SHAPE))
        lines = []
        for i in range(4):
            lines.append(json.dumps({"id": i, "input": x[i].tolist()}))
            lines.append("not json at all")
        responses = _run_session(lines)
        # errors are flushed in position: ok, error, ok, error, ...
        kinds = ["output" if "output" in r else "error" for r in responses]
        assert kinds == ["output", "error"] * 4


def _fake_archive(path, **arrays):
    manifest = {
        "crosslayer": False,
        "layers": {
            "conv1": {
                "weight_shape": [8, 4, 3, 3],
                "config": {"store_mask": False},
                "codebook": "codebook_0",
            }
        },
    }
    defaults = {
        "codebook_0": np.zeros((8, 8)),
        "conv1__assignments": np.zeros(16, dtype=np.int32),
        "__manifest__": np.frombuffer(
            json.dumps(manifest).encode("utf-8"), dtype=np.uint8).copy(),
    }
    defaults.update(arrays)
    np.savez_compressed(path, **{k: v for k, v in defaults.items()
                                 if v is not None})
    return path


class TestVerifyNpz:
    def test_good_archive_returns_manifest(self, tmp_path):
        path = _fake_archive(tmp_path / "ok.npz")
        manifest = verify_npz(path)
        assert "conv1" in manifest["layers"]

    def test_missing_file(self, tmp_path):
        with pytest.raises(ManifestError) as info:
            verify_npz(tmp_path / "nope.npz")
        assert info.value.code == "bad_manifest"
        assert "does not exist" in str(info.value)
        assert info.value.path.endswith("nope.npz")

    def test_garbage_file_is_not_an_archive(self, tmp_path):
        path = tmp_path / "garbage.npz"
        path.write_bytes(b"definitely not a zip archive")
        with pytest.raises(ManifestError) as info:
            verify_npz(path)
        assert "not a readable npz archive" in str(info.value)

    def test_truncated_archive(self, tmp_path):
        path = _fake_archive(tmp_path / "trunc.npz")
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 2])
        with pytest.raises(ManifestError) as info:
            verify_npz(path)
        assert info.value.path.endswith("trunc.npz")

    def test_corrupted_member_names_the_array(self, tmp_path):
        path = _fake_archive(tmp_path / "flip.npz")
        raw = bytearray(path.read_bytes())
        # mangle member data (zip metadata lives at both ends of the file)
        mid = len(raw) // 2
        for offset in range(mid, mid + 8):
            raw[offset] ^= 0xFF
        path.write_bytes(bytes(raw))
        with pytest.raises(ManifestError):
            verify_npz(path)

    def test_missing_manifest_array(self, tmp_path):
        path = tmp_path / "nomanifest.npz"
        np.savez_compressed(path, some_array=np.zeros(4))
        with pytest.raises(ManifestError) as info:
            verify_npz(path)
        assert "__manifest__" in str(info.value)

    def test_unparsable_manifest_json(self, tmp_path):
        path = _fake_archive(
            tmp_path / "badjson.npz",
            __manifest__=np.frombuffer(b"{broken", dtype=np.uint8).copy())
        with pytest.raises(ManifestError) as info:
            verify_npz(path)
        assert info.value.array == "__manifest__"

    def test_manifest_referencing_absent_array(self, tmp_path):
        path = _fake_archive(tmp_path / "inconsistent.npz",
                             conv1__assignments=None)
        with pytest.raises(ManifestError) as info:
            verify_npz(path)
        assert info.value.array == "conv1__assignments"
        assert "conv1" in str(info.value)


class TestCliManifestFailure:
    def test_broken_npz_exits_cleanly(self, tmp_path, capsys):
        from repro.serve import cli

        path = tmp_path / "broken.npz"
        path.write_bytes(b"torn deploy artifact")
        code = cli.main(["--npz", str(path), "--model", "resnet18"])
        assert code == 1
        err = capsys.readouterr().err
        assert "ERROR" in err
        assert "broken.npz" in err
