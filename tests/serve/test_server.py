"""ModelServer: bit-equality, concurrent clients, overload, stats, lifecycle."""

import threading

import numpy as np
import pytest

from repro.core import LayerCompressionConfig, MVQCompressor
from repro.nn import Conv2d, Sequential, predict_batched
from repro.serve import (
    BatchPolicy,
    ModelServer,
    ServerClosed,
    ServerOverloaded,
)

INPUT_SHAPE = (4, 6, 6)


def _compressed_stack(seed_a=0, seed_b=1):
    model = Sequential(
        Conv2d(4, 8, 3, padding=1, rng=np.random.default_rng(seed_a)),
        Conv2d(8, 8, 3, padding=1, rng=np.random.default_rng(seed_b)),
    )
    cfg = LayerCompressionConfig(k=8, d=8, max_kmeans_iterations=5)
    MVQCompressor(cfg).export_compressed_model(model)
    model.eval()
    return model


@pytest.fixture()
def server():
    srv = ModelServer()
    srv.register("stack", _compressed_stack(),
                 policy=BatchPolicy(max_batch_size=4, max_wait_ms=2.0),
                 input_shape=INPUT_SHAPE)
    with srv:
        yield srv


class TestBitEquality:
    def test_batched_equals_library_batched_inference(self, server, rng):
        x = rng.normal(size=(12, *INPUT_SHAPE))
        out = server.predict_many("stack", x)
        reference = predict_batched(_compressed_stack(), x, batch_size=4)
        assert np.array_equal(out, reference)

    def test_request_served_alone_matches_coalesced(self, server, rng):
        x = rng.normal(size=(8, *INPUT_SHAPE))
        coalesced = server.predict_many("stack", x)
        # one at a time: each forward still runs at the canonical padded
        # shape, so the bits cannot depend on who shared the batch
        solo = np.stack([server.predict("stack", row) for row in x])
        assert np.array_equal(solo, coalesced)

    def test_interleaved_concurrent_clients_get_their_own_rows(self, server, rng):
        x = rng.normal(size=(24, *INPUT_SHAPE))
        reference = predict_batched(_compressed_stack(), x, batch_size=4)
        results = {}
        lock = threading.Lock()

        def client(indices):
            for i in indices:
                out = server.predict("stack", x[i])
                with lock:
                    results[i] = out

        threads = [threading.Thread(target=client,
                                    args=(range(t, 24, 3),))
                   for t in range(3)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(30.0)
        assert sorted(results) == list(range(24))
        for i, out in results.items():
            # arbitrary coalescing across clients, identical bits per row
            assert np.array_equal(out, reference[i])


class TestRegistryAndValidation:
    def test_multi_model_routing(self, rng):
        srv = ModelServer()
        model_a, model_b = _compressed_stack(0, 1), _compressed_stack(2, 3)
        srv.register("a", model_a, input_shape=INPUT_SHAPE)
        srv.register("b", model_b, input_shape=INPUT_SHAPE)
        x = rng.normal(size=(6, *INPUT_SHAPE))
        with srv:
            out_a = srv.predict_many("a", x)
            out_b = srv.predict_many("b", x)
        ref_a = predict_batched(_compressed_stack(0, 1), x, batch_size=8)
        ref_b = predict_batched(_compressed_stack(2, 3), x, batch_size=8)
        assert np.array_equal(out_a, ref_a)
        assert np.array_equal(out_b, ref_b)
        with pytest.raises(KeyError):
            srv.submit("c", x[0])
        with pytest.raises(KeyError):
            srv.submit(None, x[0])  # ambiguous with two models

    def test_default_model_with_single_registration(self, server, rng):
        out = server.predict(None, rng.normal(size=INPUT_SHAPE))
        assert out.shape == (8, 6, 6)

    def test_shape_validation(self, server, rng):
        with pytest.raises(ValueError):
            server.submit("stack", rng.normal(size=(4, 5, 5)))

    def test_failed_warmup_leaves_nothing_registered(self):
        from repro.nn.module import Module

        class Unforwardable(Module):
            def forward(self, x):
                raise RuntimeError("cannot forward")

        srv = ModelServer()
        with pytest.raises(RuntimeError, match="cannot forward"):
            srv.register("broken", Unforwardable(), input_shape=INPUT_SHAPE)
        assert srv.models() == []  # the name is free again
        srv.register("broken", _compressed_stack(), input_shape=INPUT_SHAPE)
        assert srv.models() == ["broken"]
        srv.shutdown()

    def test_duplicate_and_shared_replicas_rejected(self):
        srv = ModelServer()
        model = _compressed_stack()
        srv.register("m", model, input_shape=INPUT_SHAPE)
        with pytest.raises(ValueError):
            srv.register("m", _compressed_stack(), input_shape=INPUT_SHAPE)
        with pytest.raises(ValueError):
            srv.register("twins", [model, model], input_shape=INPUT_SHAPE)


class TestOverloadAndStats:
    def test_bounded_queue_sheds_and_counts(self, rng):
        srv = ModelServer()
        srv.register("m", _compressed_stack(),
                     policy=BatchPolicy(max_batch_size=2, max_queue_size=3,
                                        overload="shed"),
                     input_shape=INPUT_SHAPE)
        # workers not started: the queue can only fill
        for _ in range(3):
            srv.submit("m", rng.normal(size=INPUT_SHAPE))
        with pytest.raises(ServerOverloaded):
            srv.submit("m", rng.normal(size=INPUT_SHAPE))
        report = srv.stats_report()
        assert report["models"]["m"]["requests_shed"] == 1
        assert report["queues"]["m"] == 3
        srv.shutdown(drain=False)

    def test_stats_report_shape(self, server, rng):
        x = rng.normal(size=(10, *INPUT_SHAPE))
        server.predict_many("stack", x)
        stats = server.stats_report()["models"]["stack"]
        assert stats["requests_completed"] == 10
        histogram = stats["batch_size_histogram"]
        assert sum(int(size) * count for size, count in histogram.items()) == 10
        assert stats["batches_executed"] == sum(histogram.values())
        assert stats["latency_ms"]["p95"] >= stats["latency_ms"]["p50"] >= 0.0
        assert stats["throughput_rps"] > 0
        policies = server.stats_report()["policies"]["stack"]
        assert policies["max_batch_size"] == 4

    def test_worker_failure_propagates_to_requests(self, rng):
        from repro.nn.module import Module

        class Exploding(Module):
            def forward(self, x):
                raise RuntimeError("boom")

        srv = ModelServer()
        srv.register("bad", Exploding(), warmup=False)
        with srv:
            handle = srv.submit("bad", rng.normal(size=INPUT_SHAPE))
            with pytest.raises(RuntimeError, match="boom"):
                handle.result(5.0)
        assert srv.stats_report()["models"]["bad"]["requests_failed"] == 1


class TestLifecycle:
    def test_shutdown_drains_queued_requests(self, rng):
        srv = ModelServer()
        srv.register("m", _compressed_stack(),
                     policy=BatchPolicy(max_batch_size=4, max_wait_ms=50.0),
                     input_shape=INPUT_SHAPE)
        srv.start()
        handles = [srv.submit("m", rng.normal(size=INPUT_SHAPE))
                   for _ in range(6)]
        srv.shutdown(drain=True)
        outs = [h.result(5.0) for h in handles]
        assert all(o.shape == (8, 6, 6) for o in outs)

    def test_submit_after_shutdown_raises(self, server, rng):
        server.shutdown()
        with pytest.raises(ServerClosed):
            server.submit("stack", rng.normal(size=INPUT_SHAPE))

    def test_no_drain_shutdown_with_live_workers_is_deterministic(self, rng):
        srv = ModelServer()
        # a batch larger than the burst + a long max-wait: the worker is
        # still coalescing when shutdown lands, so the whole burst is
        # deterministically queued (not in flight) at that moment
        srv.register("m", _compressed_stack(),
                     policy=BatchPolicy(max_batch_size=32,
                                        max_wait_ms=10_000.0,
                                        max_queue_size=64),
                     input_shape=INPUT_SHAPE)
        srv.start()
        handles = [srv.submit("m", rng.normal(size=INPUT_SHAPE))
                   for _ in range(10)]
        srv.shutdown(drain=False)
        # every request resolves promptly with ServerClosed — whichever of
        # the woken worker or shutdown's own drain loop pops it, neither
        # executes it — and nothing hangs for the 10s max-wait
        for handle in handles:
            with pytest.raises(ServerClosed):
                handle.result(5.0)

    def test_shutdown_without_drain_fails_pending(self, rng):
        srv = ModelServer()
        srv.register("m", _compressed_stack(),
                     policy=BatchPolicy(max_batch_size=4, max_wait_ms=50.0),
                     input_shape=INPUT_SHAPE)
        # never started: pending requests cannot complete, only fail fast
        handle = srv.submit("m", rng.normal(size=INPUT_SHAPE))
        srv.shutdown(drain=False)
        with pytest.raises(ServerClosed):
            handle.result(5.0)
