"""Tests for the PQF / BGD / PvQ baseline compressors."""

import numpy as np
import pytest

from repro.baselines import BGDCompressor, PQFCompressor, PvQQuantizer, permutation_search, uniform_quantize
from repro.baselines.bgd import weighted_kmeans
from repro.baselines.pqf import _within_subvector_variance
from repro.core import LayerCompressionConfig
from repro.core.grouping import group_weight
from repro.nn.models import resnet18_mini

CFG = LayerCompressionConfig(k=32, d=8, n_keep=2, m=8, max_kmeans_iterations=25)


class TestPQF:
    def test_permutation_is_valid(self, rng):
        weight = rng.normal(size=(16, 4, 3, 3))
        perm = permutation_search(weight, d=8, num_iterations=50)
        assert sorted(perm.tolist()) == list(range(16))

    def test_permutation_reduces_variance(self, rng):
        # construct a weight where a permutation obviously helps: interleaved scales
        weight = rng.normal(size=(16, 2, 1, 1))
        weight[::2] *= 10.0
        before = _within_subvector_variance(group_weight(weight, 8))
        perm = permutation_search(weight, d=8, num_iterations=400, seed=0)
        after = _within_subvector_variance(group_weight(weight[perm], 8))
        assert after <= before

    def test_compress_and_reconstruct_shapes(self):
        model = resnet18_mini(num_classes=5, seed=0)
        compressed = PQFCompressor(CFG, permutation_iterations=20).compress(model)
        modules = dict(model.named_modules())
        for name, state in compressed.layers.items():
            assert state.reconstruct_weight().shape == modules[name].weight.shape

    def test_no_mask_stored(self):
        model = resnet18_mini(num_classes=5, seed=0)
        compressed = PQFCompressor(CFG, permutation_iterations=10).compress(model)
        assert compressed.sparsity() == 0.0

    def test_reconstruction_undoes_permutation(self, rng):
        """Rows of the reconstruction correspond to the original channel order."""
        model = resnet18_mini(num_classes=5, seed=0)
        pqf = PQFCompressor(LayerCompressionConfig(k=512, d=8, max_kmeans_iterations=40),
                            permutation_iterations=30, quantize_codebook=False)
        compressed = pqf.compress(model)
        modules = dict(model.named_modules())
        # with k as large as the number of subvectors the reconstruction is near-exact,
        # so any row mix-up from the permutation would show up as a large error
        name, state = next(iter(compressed.layers.items()))
        err = np.abs(state.reconstruct_weight() - modules[name].weight.value).max()
        assert err < 0.2


class TestBGD:
    def test_weighted_kmeans_prioritises_heavy_points(self, rng):
        data = np.concatenate([np.full((50, 2), 0.0), np.full((3, 2), 10.0)])
        weights = np.concatenate([np.ones(50), np.full(3, 1000.0)])
        result = weighted_kmeans(data, weights, k=1, seed=0)
        # the single codeword must sit near the heavily weighted points
        assert result.codewords[0, 0] > 5.0

    def test_weight_length_mismatch_raises(self, rng):
        with pytest.raises(ValueError):
            weighted_kmeans(rng.normal(size=(10, 4)), np.ones(5), k=2)

    def test_compress_model(self, rng):
        model = resnet18_mini(num_classes=5, seed=0)
        calibration = rng.normal(size=(2, 3, 16, 16))
        compressed = BGDCompressor(CFG, calibration_batch=calibration).compress(model)
        assert len(compressed) > 0
        assert compressed.sparsity() == 0.0
        assert compressed.compression_ratio() > 5


class TestPvQ:
    def test_uniform_quantize_levels(self, rng):
        weight = rng.normal(size=(64,))
        quantized = uniform_quantize(weight, bits=2)
        assert len(np.unique(quantized)) <= 4

    def test_apply_and_restore(self):
        model = resnet18_mini(num_classes=5, seed=0)
        original = model.state_dict()
        quantizer = PvQQuantizer(bits=2)
        sse = quantizer.apply(model)
        assert all(v >= 0 for v in sse.values())
        quantizer.restore(model)
        restored = model.state_dict()
        assert all(np.allclose(original[k], restored[k]) for k in original)

    def test_two_bit_worse_than_eight_bit(self):
        model = resnet18_mini(num_classes=5, seed=0)
        sse2 = sum(PvQQuantizer(bits=2).apply(resnet18_mini(num_classes=5, seed=0)).values())
        sse8 = sum(PvQQuantizer(bits=8).apply(resnet18_mini(num_classes=5, seed=0)).values())
        assert sse2 > sse8 * 10

    def test_compression_ratio(self):
        assert PvQQuantizer(bits=2).compression_ratio() == 16.0
        assert PvQQuantizer(bits=4).compression_ratio(weight_bits=8) == 2.0

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            PvQQuantizer(bits=1)
        with pytest.raises(ValueError):
            uniform_quantize(np.ones(4), bits=1)


class TestMVQvsBaselinesSSE:
    def test_mvq_lower_masked_sse_than_pqf_at_matched_ratio(self, trained_model):
        """Table 5 shape: at a matched compression ratio MVQ's clustering error on
        the important (kept) weights is lower than PQF's."""
        from repro.core import MVQCompressor
        from repro.core.metrics import masked_sse
        from repro.core.pruning import nm_prune_mask

        mvq_cfg = LayerCompressionConfig(k=32, d=16, n_keep=4, m=16, max_kmeans_iterations=30)
        pqf_cfg = LayerCompressionConfig(k=64, d=8, max_kmeans_iterations=30)
        mvq = MVQCompressor(mvq_cfg).compress(trained_model)
        pqf = PQFCompressor(pqf_cfg, permutation_iterations=20).compress(trained_model)

        mvq_err = mvq.mask_sse()
        # evaluate PQF's error on the same "important weight" set (top 4-of-16)
        pqf_err = 0.0
        for state in pqf:
            grouped16 = group_weight(state.reconstruct_weight(), 16)
            original16 = group_weight(dict(trained_model.named_modules())[state.name].weight.value, 16)
            mask = nm_prune_mask(original16, 4, 16)
            pqf_err += masked_sse(original16, grouped16, mask)
        assert mvq_err < pqf_err
