"""Schema validation: bad specs fail at load time naming the field."""

from __future__ import annotations

import pytest

from repro.workloads import WorkloadSpec, WorkloadSpecError
from repro.workloads.specs import BUILTIN_SPECS


def _spec(layers, input_shape=(3, 8, 8), **kwargs):
    return WorkloadSpec(name="t", input_shape=input_shape, layers=layers,
                        **kwargs)


_CONV = {"name": "c1", "op": "conv",
         "dims": {"in_channels": 3, "out_channels": 8, "kernel_size": 3,
                  "padding": 1}}


class TestValidation:
    def test_unknown_op(self):
        with pytest.raises(WorkloadSpecError, match=r"layers\[0\].op.*unknown op"):
            _spec([{"name": "x", "op": "deconv", "dims": {}}])

    def test_unknown_dims_key(self):
        bad = dict(_CONV, dims=dict(_CONV["dims"], dilation=2))
        with pytest.raises(WorkloadSpecError,
                           match=r"layers\[0\].dims.*does not accept"):
            _spec([bad])

    def test_missing_required_dim(self):
        with pytest.raises(WorkloadSpecError,
                           match=r"layers\[0\].dims.kernel_size.*requires"):
            _spec([{"name": "c", "op": "conv",
                    "dims": {"in_channels": 3, "out_channels": 8}}])

    def test_channel_mismatch(self):
        bad = dict(_CONV, dims=dict(_CONV["dims"], in_channels=4))
        with pytest.raises(WorkloadSpecError,
                           match=r"dims.in_channels.*expects 4 input channels"):
            _spec([bad])

    def test_linear_feature_mismatch(self):
        with pytest.raises(WorkloadSpecError, match="expects 9 input features"):
            _spec([{"name": "fc", "op": "linear",
                    "dims": {"in_features": 9, "out_features": 2}}],
                  input_shape=(8,))

    def test_linear_rejects_feature_map(self):
        with pytest.raises(WorkloadSpecError, match="flatten"):
            _spec([{"name": "fc", "op": "linear",
                    "dims": {"in_features": 192, "out_features": 2}}])

    def test_residual_unsaved_tag(self):
        with pytest.raises(WorkloadSpecError,
                           match=r"dims.from.*unsaved tag 'skip'"):
            _spec([_CONV, {"name": "add", "op": "residual",
                           "dims": {"from": "skip"}}])

    def test_residual_shape_mismatch(self):
        down = {"name": "c2", "op": "conv",
                "dims": {"in_channels": 8, "out_channels": 8, "kernel_size": 3,
                         "stride": 2, "padding": 1}}
        with pytest.raises(WorkloadSpecError, match="adds tag 'skip' of shape"):
            _spec([dict(_CONV, save_as="skip"), down,
                   {"name": "add", "op": "residual", "dims": {"from": "skip"}}])

    def test_input_from_unsaved_tag(self):
        with pytest.raises(WorkloadSpecError,
                           match=r"input_from.*unsaved tag 'trunk'"):
            _spec([_CONV, dict(_CONV, name="c2", input_from="trunk",
                               dims=dict(_CONV["dims"], in_channels=8))])

    def test_duplicate_layer_name(self):
        second = dict(_CONV, dims=dict(_CONV["dims"], in_channels=8))
        with pytest.raises(WorkloadSpecError, match="duplicate layer name 'c1'"):
            _spec([_CONV, second])

    def test_reserved_input_tag(self):
        with pytest.raises(WorkloadSpecError, match="reserved tag"):
            _spec([dict(_CONV, save_as="input")])

    def test_attention_heads_must_divide(self):
        with pytest.raises(WorkloadSpecError,
                           match=r"num_heads 3 must divide embed_dim 32"):
            _spec([{"name": "attn", "op": "attention",
                    "dims": {"embed_dim": 32, "num_heads": 3}}],
                  input_shape=(16, 32))

    def test_error_carries_field_path(self):
        with pytest.raises(WorkloadSpecError) as info:
            _spec([{"name": "x", "op": "deconv"}])
        assert info.value.field == "layers[0].op"
        assert "layers[0].op" in str(info.value)


class TestSerialization:
    def test_unknown_layer_field(self):
        with pytest.raises(WorkloadSpecError, match="unknown layer fields"):
            WorkloadSpec.from_dict({"name": "t", "input_shape": [8],
                                    "layers": [{"name": "fc", "op": "linear",
                                                "units": 4}]})

    def test_unknown_spec_field(self):
        with pytest.raises(WorkloadSpecError, match="unknown workload fields"):
            WorkloadSpec.from_dict({"name": "t", "input_shape": [8],
                                    "layers": [], "optimizer": "sgd"})

    def test_missing_required_spec_field(self):
        with pytest.raises(WorkloadSpecError, match="input_shape"):
            WorkloadSpec.from_dict({"name": "t", "layers": []})

    def test_bad_json(self):
        with pytest.raises(WorkloadSpecError, match="not valid JSON"):
            WorkloadSpec.from_json("{not json")

    def test_missing_file(self, tmp_path):
        with pytest.raises(WorkloadSpecError, match="does not exist"):
            WorkloadSpec.from_file(tmp_path / "nope.json")

    @pytest.mark.parametrize("name", sorted(BUILTIN_SPECS))
    def test_builtin_round_trip(self, name):
        spec = BUILTIN_SPECS[name]()
        again = WorkloadSpec.from_json(spec.to_json())
        assert again == spec
        assert again.to_dict() == spec.to_dict()
        assert spec.macs() > 0 and spec.num_weights() > 0

    def test_save_load(self, tmp_path):
        spec = BUILTIN_SPECS["transformer_block"]()
        path = tmp_path / "tb.json"
        spec.save(path)
        assert WorkloadSpec.from_file(path) == spec


class TestLowering:
    def test_attention_lowers_to_four_gemms(self):
        spec = BUILTIN_SPECS["transformer_block"]()
        names = [s.name for s in spec.layer_shapes()]
        attn = [n for n in names if n.startswith("attn.")]
        assert attn == ["attn.q", "attn.k", "attn.v", "attn.out"]
        # 64 tokens map onto an 8x8 grid: per-GEMM macs = E*E*64
        q = next(s for s in spec.layer_shapes() if s.name == "attn.q")
        assert q.input_size == 8 and q.macs == 32 * 32 * 64

    def test_non_square_sequence_is_rejected_with_suggestion(self):
        spec = WorkloadSpec(name="t", input_shape=(60, 32), layers=[
            {"name": "attn", "op": "attention",
             "dims": {"embed_dim": 32, "num_heads": 4}}])
        with pytest.raises(WorkloadSpecError, match="49 or 64"):
            spec.layer_shapes()

    def test_parameter_free_ops_do_not_appear(self):
        spec = BUILTIN_SPECS["transformer_block"]()
        for shape in spec.layer_shapes():
            assert shape.num_weights > 0
