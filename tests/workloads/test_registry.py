"""Unified workload registry + bit-identical deprecation shims."""

from __future__ import annotations

import numpy as np
import pytest

from repro.accelerator.workloads import WORKLOADS, get_workload
from repro.nn.models import MODEL_ZOO, get_model_factory
from repro.workloads import (WorkloadEntry, WorkloadSpec, get_entry,
                             list_entries, model_factory, register,
                             register_spec, resolve, shape_factory,
                             spec_entries)


class TestResolve:
    def test_hit(self):
        assert resolve({"a": 1}, "a", "thing") == 1

    def test_miss_names_kind_and_choices(self):
        with pytest.raises(KeyError, match=r"unknown thing 'c'.*\['a', 'b'\]"):
            resolve({"b": 2, "a": 1}, "c", "thing")


class TestShims:
    @pytest.mark.parametrize("name", sorted(MODEL_ZOO))
    def test_model_shim_returns_the_same_object(self, name):
        assert get_model_factory(name) is MODEL_ZOO[name]

    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_workload_shim_returns_the_same_object(self, name):
        assert get_workload(name) is WORKLOADS[name]

    def test_model_shim_output_is_bit_identical(self):
        a = get_model_factory("resnet18")(num_classes=5, seed=1)
        b = MODEL_ZOO["resnet18"](num_classes=5, seed=1)
        sd_a, sd_b = a.state_dict(), b.state_dict()
        assert sd_a.keys() == sd_b.keys()
        for key in sd_a:
            assert np.array_equal(sd_a[key], sd_b[key])

    def test_workload_shim_output_is_bit_identical(self):
        assert get_workload("alexnet")() == WORKLOADS["alexnet"]()

    def test_shim_unknown_name(self):
        with pytest.raises(KeyError, match="unknown workload"):
            get_model_factory("resnet1234")
        with pytest.raises(KeyError, match="unknown workload"):
            get_workload("resnet1234")


class TestRegistry:
    def test_zoo_and_accel_views_are_merged(self):
        entry = get_entry("resnet18")
        assert entry.has_model and entry.has_shapes
        assert entry.model_factory is MODEL_ZOO["resnet18"]
        assert entry.shape_factory is WORKLOADS["resnet18"]

    def test_spec_entries_carry_both_factories(self):
        names = {e.name for e in spec_entries()}
        assert {"transformer_block", "simple_detector", "deeplab_lite",
                "stress_gemm_tower", "stress_conv_ladder"} <= names
        for entry in spec_entries():
            assert entry.has_model and entry.has_shapes

    def test_transformer_table_lowers_attention(self):
        names = [s.name for s in shape_factory("transformer_block")()]
        assert {"attn.q", "attn.k", "attn.v", "attn.out"} <= set(names)

    def test_detection_segmentation_have_tables_now(self):
        for name in ("simple_detector", "deeplab_lite"):
            table = shape_factory(name)()
            assert table and all(s.num_weights > 0 for s in table)

    def test_shadow_entries_keep_hand_written_models(self):
        from repro.nn.models import deeplab_lite_mini, simple_detector_mini

        assert get_entry("simple_detector").model_factory is simple_detector_mini
        assert get_entry("deeplab_lite").model_factory is deeplab_lite_mini

    def test_missing_side_errors_name_the_alternatives(self):
        register(WorkloadEntry(name="shapes-only-test",
                               shape_factory=lambda: []), overwrite=True)
        with pytest.raises(KeyError, match="no executable model factory"):
            model_factory("shapes-only-test")
        register(WorkloadEntry(name="model-only-test",
                               model_factory=lambda **kw: None), overwrite=True)
        with pytest.raises(KeyError, match="no accelerator layer table"):
            shape_factory("model-only-test")

    def test_register_refuses_silent_overwrite(self):
        spec = WorkloadSpec(name="resnet18", input_shape=(8,), layers=[
            {"name": "fc", "op": "linear",
             "dims": {"in_features": 8, "out_features": 2}}])
        with pytest.raises(ValueError, match="already registered"):
            register_spec(spec)

    def test_user_registered_spec_resolves_everywhere(self):
        spec = WorkloadSpec(name="user-spec-test", input_shape=(16,), layers=[
            {"name": "fc", "op": "linear",
             "dims": {"in_features": 16, "out_features": 4}}])
        register_spec(spec, source="user", overwrite=True)
        model = model_factory("user-spec-test")(seed=0)
        assert model.forward(np.zeros((2, 16))).shape == (2, 4)
        assert get_workload("user-spec-test")() == spec.layer_shapes()

    def test_list_entries_sorted(self):
        names = [e.name for e in list_entries()]
        assert names == sorted(names)
