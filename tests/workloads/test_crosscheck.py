"""Cross-validation: spec-derived accelerator tables vs the built models.

Every spec-backed registry entry must agree with :mod:`repro.nn.flops` on
the model its entry actually builds — for ``simple_detector`` and
``deeplab_lite`` that is the *hand-written* mini model, so the schema
mirror cannot drift from the real architecture silently.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.compressed import CompressedConv2d, CompressedLinear
from repro.nn.flops import count_flops, per_layer_flops
from repro.nn.layers import Conv2d, Linear
from repro.workloads.registry import spec_entries

_SPEC_ENTRIES = {e.name: e for e in spec_entries()}


def _weight_count(model) -> int:
    """Weights (no biases) of every layer the forward pass actually used,
    mirroring what a LayerShape table counts."""
    total = 0
    for _, mod in model.named_modules():
        if isinstance(mod, (Conv2d, CompressedConv2d, Linear, CompressedLinear)):
            if mod._cache is not None:
                total += int(np.prod(mod.weight.shape))
    return total


@pytest.mark.parametrize("name", sorted(_SPEC_ENTRIES))
def test_spec_table_matches_model_flops_and_params(name):
    entry = _SPEC_ENTRIES[name]
    spec = entry.spec
    model = entry.build_model(seed=0)

    flops = per_layer_flops(model, spec.input_shape)
    assert sum(flops.values()) == 2 * spec.macs() == sum(
        s.flops for s in spec.layer_shapes())
    assert _weight_count(model) == spec.num_weights()


def test_spec_built_and_hand_written_detector_agree():
    """The schema mirror and the hand-written SimpleDetector are the same
    network: identical per-layer MAC totals, not just the same sum."""
    entry = _SPEC_ENTRIES["simple_detector"]
    hand = entry.build_model(seed=0)                # hand-written mini
    spec_model = entry.spec.build_model(seed=0)     # built from the schema
    shape = entry.spec.input_shape
    assert count_flops(hand, shape) == count_flops(spec_model, shape)
    assert _weight_count(hand) == _weight_count(spec_model)


def test_attention_macs_count_all_four_projections():
    spec = _SPEC_ENTRIES["transformer_block"].spec
    attn = [s for s in spec.layer_shapes() if s.name.startswith("attn.")]
    seq, embed = spec.input_shape
    assert sum(s.macs for s in attn) == 4 * seq * embed * embed
