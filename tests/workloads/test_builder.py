"""SpecModel: specs build into executable repro.nn modules."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.layers import LayerNorm, MultiHeadAttention
from repro.workloads import SpecModel
from repro.workloads.specs import BUILTIN_SPECS


@pytest.mark.parametrize("name", sorted(BUILTIN_SPECS))
def test_forward_matches_spec_output_shape(name):
    spec = BUILTIN_SPECS[name]()
    model = spec.build_model(seed=1)
    rng = np.random.default_rng(0)
    x = rng.standard_normal((2, *spec.input_shape))
    out = model.forward(x)
    assert out.shape == (2, *spec.output_shape())
    assert np.all(np.isfinite(out))


def test_build_is_deterministic_per_seed():
    spec = BUILTIN_SPECS["transformer_block"]()
    a, b = spec.build_model(seed=3), spec.build_model(seed=3)
    other = spec.build_model(seed=4)
    x = np.random.default_rng(0).standard_normal((2, *spec.input_shape))
    assert np.array_equal(a.forward(x), b.forward(x))
    assert not np.array_equal(a.forward(x), other.forward(x))
    sd_a, sd_b = a.state_dict(), b.state_dict()
    assert sd_a.keys() == sd_b.keys()
    for key in sd_a:
        assert np.array_equal(sd_a[key], sd_b[key])


@pytest.mark.parametrize("name", ["transformer_block", "simple_detector",
                                  "deeplab_lite"])
def test_backward_reaches_the_input(name):
    """Residuals, branches and dead heads all route gradient correctly."""
    spec = BUILTIN_SPECS[name]()
    model = spec.build_model(seed=1)
    rng = np.random.default_rng(0)
    x = rng.standard_normal((2, *spec.input_shape))
    out = model.forward(x)
    grad = model.backward(np.ones_like(out))
    assert grad.shape == x.shape
    assert np.any(grad != 0) and np.all(np.isfinite(grad))


def _numeric_input_grad(module, x, loss_weights, eps=1e-6):
    grad = np.zeros_like(x)
    flat, gflat = x.ravel(), grad.ravel()
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        hi = float(np.sum(module.forward(x) * loss_weights))
        flat[i] = orig - eps
        lo = float(np.sum(module.forward(x) * loss_weights))
        flat[i] = orig
        gflat[i] = (hi - lo) / (2 * eps)
    return grad


@pytest.mark.parametrize("module_factory,shape", [
    (lambda: MultiHeadAttention(8, 2, rng=np.random.default_rng(7)), (1, 4, 8)),
    (lambda: LayerNorm(8), (2, 3, 8)),
])
def test_new_layers_match_numeric_gradients(module_factory, shape):
    module = module_factory()
    rng = np.random.default_rng(1)
    x = rng.standard_normal(shape)
    loss_weights = rng.standard_normal(shape)
    out = module.forward(x.copy())
    assert out.shape == shape
    analytic = module.backward(loss_weights)
    numeric = _numeric_input_grad(module, x.copy(), loss_weights)
    assert np.allclose(analytic, numeric, rtol=1e-5, atol=1e-7)


def test_spec_model_module_paths_are_compressible():
    """The MHA projections appear as Linear leaves the compressor can find."""
    from repro.nn.layers import Linear

    spec = BUILTIN_SPECS["transformer_block"]()
    model = spec.build_model(seed=1)
    assert isinstance(model, SpecModel)
    linear_paths = [name for name, mod in model.named_modules()
                    if isinstance(mod, Linear)]
    attn_projections = [p for p in linear_paths
                        if p.endswith((".q", ".k", ".v", ".out"))]
    assert len(attn_projections) == 4      # q/k/v/out of the one MHA block
    assert len(linear_paths) >= 7          # + mlp.up, mlp.down, head
