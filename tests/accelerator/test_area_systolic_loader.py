"""Tests for the area model, functional systolic tiles, weight loader and Table 9."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.accelerator.area import AreaModel, L1_AREA_MM2, L2_AREA_MM2, OTHERS_AREA_MM2
from repro.accelerator.comparison import (
    SOTA_ACCELERATORS,
    comparison_table,
    mvq_rows,
    normalize_efficiency,
)
from repro.accelerator.config import HardwareSetting, standard_setting
from repro.accelerator.systolic import (
    DenseTile,
    SparseTile,
    ZeroGatedPE,
    lzc_encode_mask,
    sparse_tile_matches_dense,
)
from repro.accelerator.weight_loader import AssignmentAwareWeightLoader, CodebookRegisterFile
from repro.core.codebook import Codebook
from repro.core.pruning import nm_prune_mask
from repro.core.storage import MaskLUT

PAPER_TABLE7 = {
    "WS": {16: 0.188, 32: 0.734, 64: 2.812},
    "EWS": {16: 0.36, 32: 1.14, 64: 4.236},
    "EWS-C/CM": {16: 0.650, 32: 1.505, 64: 4.776},
    "EWS-CMS": {16: 0.469, 32: 0.828, 64: 2.129},
}


class TestAreaModel:
    def test_table7_within_tolerance(self):
        """Synthesised areas of Table 7 are reproduced to within ~30%."""
        table = AreaModel().table7()
        for label, row in PAPER_TABLE7.items():
            for size, target in row.items():
                assert table[label][size] == pytest.approx(target, rel=0.30)

    def test_sparse_tile_reduces_array_area(self):
        """The headline claim: the CMS array is ~50-60% smaller than base EWS."""
        model = AreaModel()
        ews = model.array_area_mm2(standard_setting(HardwareSetting.EWS_BASE, 64))
        cms = model.array_area_mm2(standard_setting(HardwareSetting.EWS_CMS, 64))
        assert 0.35 < cms / ews < 0.65

    def test_accelerator_area_reduction_vs_ews(self):
        """Paper: EWS-CMS reduces accelerator area by ~55% at 64x64 (CRF included)."""
        model = AreaModel()
        ews = model.accelerator_area_mm2(standard_setting(HardwareSetting.EWS_BASE, 64))
        cms = model.accelerator_area_mm2(standard_setting(HardwareSetting.EWS_CMS, 64))
        assert (1 - cms / ews) == pytest.approx(0.55, abs=0.12)

    def test_crf_area_grows_with_read_ports(self):
        model = AreaModel()
        small = model.crf_area_mm2(standard_setting(HardwareSetting.EWS_CM, 16))
        large = model.crf_area_mm2(standard_setting(HardwareSetting.EWS_CM, 64))
        assert large > small

    def test_no_crf_for_baseline(self):
        model = AreaModel()
        assert model.crf_area_mm2(standard_setting(HardwareSetting.EWS_BASE, 64)) == 0.0
        assert model.loader_area_mm2(standard_setting(HardwareSetting.WS_BASE, 64)) == 0.0

    def test_breakdown_totals(self):
        model = AreaModel()
        cfg = standard_setting(HardwareSetting.EWS_CMS, 64)
        b = model.breakdown(cfg)
        assert b.total == pytest.approx(b.accelerator + b.l1 + b.l2 + b.others)
        assert b.l2 == L2_AREA_MM2
        assert b.l1 == L1_AREA_MM2[256]
        assert b.others == OTHERS_AREA_MM2[64]

    def test_area_scales_with_array_size(self):
        model = AreaModel()
        areas = [model.array_area_mm2(standard_setting(HardwareSetting.EWS_BASE, s))
                 for s in (16, 32, 64)]
        assert areas[1] == pytest.approx(4 * areas[0], rel=0.01)
        assert areas[2] == pytest.approx(4 * areas[1], rel=0.01)


class TestLZCEncoder:
    def test_positions_of_set_bits(self):
        assert lzc_encode_mask([True, False, True, False]) == [0, 2]
        assert lzc_encode_mask([False, False, False, True]) == [3]
        assert lzc_encode_mask([False, False]) == []

    @given(st.lists(st.booleans(), min_size=1, max_size=16))
    @settings(max_examples=40, deadline=None)
    def test_matches_flatnonzero_property(self, bits):
        assert lzc_encode_mask(bits) == list(np.flatnonzero(bits))


class TestSparseTile:
    def test_matches_dense_tile(self, rng):
        weights = rng.normal(size=16)
        mask = nm_prune_mask(weights.reshape(1, 16), 4, 16)[0]
        activations = rng.normal(size=10)
        assert sparse_tile_matches_dense(weights, mask, activations, q=4)

    def test_too_many_kept_weights_raises(self, rng):
        tile = SparseTile(d=8, q=2)
        with pytest.raises(ValueError):
            tile.load_weights(rng.normal(size=8), np.ones(8, dtype=bool))

    def test_compute_before_load_raises(self):
        with pytest.raises(RuntimeError):
            SparseTile(4, 2).compute(1.0)

    def test_multiplier_count(self):
        assert SparseTile(16, 4).num_multipliers == 4
        assert DenseTile(16).num_multipliers == 16

    @given(q=st.integers(1, 4))
    @settings(max_examples=20, deadline=None)
    def test_sparse_equals_dense_property(self, q):
        rng = np.random.default_rng(q)
        d = 8
        weights = rng.normal(size=d)
        mask = nm_prune_mask(np.abs(weights).reshape(1, d), q, d)[0]
        acts = rng.normal(size=5)
        assert sparse_tile_matches_dense(weights, mask, acts, q=q)


class TestZeroGatedPE:
    def test_gates_zero_operands(self):
        pe = ZeroGatedPE()
        assert pe.multiply(0.0, 5.0) == 0.0
        assert pe.multiply(3.0, 0.0) == 0.0
        assert pe.multiply(2.0, 4.0) == 8.0
        assert pe.gated_ops == 2 and pe.active_ops == 1
        assert pe.gating_rate == pytest.approx(2 / 3)

    def test_gating_rate_empty(self):
        assert ZeroGatedPE().gating_rate == 0.0


class TestWeightLoader:
    def _loader(self, array_size=64):
        cfg = standard_setting(HardwareSetting.EWS_CMS, array_size)
        rng = np.random.default_rng(0)
        codebook = Codebook(rng.normal(size=(cfg.codebook_size, cfg.subvector_length)))
        codebook.quantize_(8)
        return cfg, codebook, AssignmentAwareWeightLoader(cfg, codebook)

    def test_reconstruct_layer_matches_direct_lookup(self):
        cfg, codebook, loader = self._loader()
        rng = np.random.default_rng(1)
        assignments = rng.integers(0, cfg.codebook_size, size=100)
        mask = nm_prune_mask(rng.normal(size=(100, 16)), 4, 16)
        decoded = loader.reconstruct_layer(assignments, mask)
        expected = codebook.effective_codewords()[assignments] * mask
        assert np.allclose(decoded, expected)

    def test_reconstruct_row_uses_lut_masks(self):
        cfg, codebook, loader = self._loader()
        lut = MaskLUT(cfg.n_keep, cfg.m_block)
        rng = np.random.default_rng(2)
        indices = rng.integers(0, cfg.codebook_size, size=cfg.crf_read_ports)
        masks = nm_prune_mask(rng.normal(size=(cfg.crf_read_ports, 16)), 4, 16)
        codes = lut.encode_mask(masks)
        row = loader.reconstruct_row(indices, codes)
        expected = (codebook.effective_codewords()[indices] * masks).reshape(-1)
        assert np.allclose(row, expected)
        # exactly N/M of the reconstructed weights are non-zero
        assert np.count_nonzero(row) <= cfg.crf_read_ports * cfg.n_keep

    def test_crf_port_limit(self):
        cfg, codebook, loader = self._loader(array_size=16)
        with pytest.raises(ValueError):
            loader.crf.read(np.zeros(cfg.crf_read_ports + 1, dtype=int))

    def test_traffic_accounting(self):
        cfg, _, loader = self._loader()
        traffic = loader.traffic(num_weights=16_000)
        assert traffic.assignment_bits == 1000 * 9
        assert traffic.mask_bits == 1000 * 11
        assert traffic.total_bits > traffic.assignment_bits
        assert traffic.load_cycles(64) == pytest.approx(traffic.total_bits / 64)

    def test_crf_requires_port(self):
        with pytest.raises(ValueError):
            CodebookRegisterFile(Codebook(np.zeros((4, 4))), read_ports=0)


class TestComparisonTable:
    def test_normalization_direction(self):
        # a 16 nm design projected to 40 nm loses efficiency; a 65 nm one gains
        assert normalize_efficiency(10.0, 16) < 10.0
        assert normalize_efficiency(1.0, 65) > 1.0
        assert normalize_efficiency(3.0, 40) == 3.0
        with pytest.raises(ValueError):
            normalize_efficiency(1.0, 22)

    def test_table_contains_prior_work_and_mvq(self):
        rows = comparison_table()
        names = {r["name"] for r in rows}
        assert {"SparTen", "CGNet", "SPOTS", "S2TA", "MVQ-16", "MVQ-32", "MVQ-64"} <= names

    def test_mvq64_beats_prior_normalized_efficiency(self):
        """Table 9 headline: MVQ-64 has the best 40nm-normalised efficiency."""
        rows = comparison_table()
        mvq64 = next(r for r in rows if r["name"] == "MVQ-64")
        prior_best = max(r["normalized_efficiency"] for r in rows
                         if not str(r["name"]).startswith("MVQ"))
        assert mvq64["normalized_efficiency"] > prior_best * 1.5

    def test_mvq_rows_scale_with_array(self):
        rows = mvq_rows()
        eff = [r["efficiency_tops_w"] for r in rows]
        assert eff[0] < eff[1] < eff[2]
        assert rows[2]["peak_tops"] == pytest.approx(2.4576, rel=1e-6)

    def test_published_numbers_preserved(self):
        sparten = next(s for s in SOTA_ACCELERATORS if s.name == "SparTen")
        assert sparten.process_nm == 45
        assert sparten.efficiency_tops_w == 0.68
