"""Batched tile streams must be bit-identical to the scalar PE loop —
outputs, per-PE gating counters and latched operand registers alike."""

import numpy as np
import pytest

from repro.accelerator.energy import EnergyModel
from repro.accelerator.systolic import (
    DenseTile,
    SparseTile,
    StreamStats,
    lzc_encode_mask,
    sparse_stream_matches_dense,
    stream_gating_stats,
)
from repro.core.pruning import nm_prune_mask


def _workload(rng, s=23, t=17, d=16, q=4, weight_zeros=0.2, act_zeros=0.3):
    weights = rng.normal(size=(s, d))
    weights[rng.random(size=weights.shape) < weight_zeros] = 0.0
    mask = nm_prune_mask(np.abs(weights) + rng.random(weights.shape) * 0.01, q, d)
    acts = rng.normal(size=t)
    acts[rng.random(t) < act_zeros] = 0.0
    return weights, mask, acts


def _scalar_reference(weights, mask, acts, d, q):
    dense, sparse = DenseTile(d), SparseTile(d, q)
    dense_out, sparse_out = [], []
    for s in range(weights.shape[0]):
        sparse.load_weights(weights[s] * mask[s], mask[s])
        for t in range(acts.size):
            dense_out.append(dense.compute(weights[s] * mask[s], float(acts[t])))
            sparse_out.append(sparse.compute(float(acts[t])))
    shape = (weights.shape[0], acts.size, d)
    return (dense, np.array(dense_out).reshape(shape),
            sparse, np.array(sparse_out).reshape(shape))


def _pe_state(pe):
    return (pe.gated_ops, pe.active_ops, pe._held_weight, pe._held_input)


class TestStreamBitIdentical:
    def test_dense_stream_matches_scalar(self, rng):
        weights, mask, acts = _workload(rng)
        ref_tile, ref_out, _, _ = _scalar_reference(weights, mask, acts, 16, 4)
        tile = DenseTile(16)
        out = tile.compute_stream(weights * mask, acts)
        assert np.array_equal(out, ref_out)
        assert not np.any(np.signbit(out) != np.signbit(ref_out))
        assert [_pe_state(pe) for pe in tile.pes] == \
               [_pe_state(pe) for pe in ref_tile.pes]

    def test_sparse_stream_matches_scalar(self, rng):
        weights, mask, acts = _workload(rng)
        _, _, ref_tile, ref_out = _scalar_reference(weights, mask, acts, 16, 4)
        tile = SparseTile(16, 4)
        out = tile.compute_stream_array(weights * mask, mask, acts)
        assert np.array_equal(out, ref_out)
        assert not np.any(np.signbit(out) != np.signbit(ref_out))
        assert [_pe_state(pe) for pe in tile.pes] == \
               [_pe_state(pe) for pe in ref_tile.pes]
        # the WRF/MRF hold the last subvector, as after the scalar sequence
        np.testing.assert_array_equal(tile._mrf, ref_tile._mrf)
        np.testing.assert_array_equal(tile._wrf, ref_tile._wrf)

    def test_single_subvector_stream(self, rng):
        """(d,) weights stream one subvector against many activations."""
        weights = np.array([1.0, 0.0, -2.0, 3.0])
        acts = np.array([2.0, 0.0, -1.0])
        ref = DenseTile(4)
        expected = np.array([ref.compute(weights, float(a)) for a in acts])
        tile = DenseTile(4)
        out = tile.compute_stream(weights, acts)
        assert out.shape == (3, 4)
        assert np.array_equal(out, expected)
        assert [_pe_state(pe) for pe in tile.pes] == \
               [_pe_state(pe) for pe in ref.pes]

    def test_loaded_sparse_compute_stream(self, rng):
        weights, mask, acts = _workload(rng, s=1)
        ref = SparseTile(16, 4)
        ref.load_weights(weights[0] * mask[0], mask[0])
        expected = np.array([ref.compute(float(a)) for a in acts])
        tile = SparseTile(16, 4)
        tile.load_weights(weights[0] * mask[0], mask[0])
        out = tile.compute_stream(acts)
        assert np.array_equal(out, expected)
        assert [_pe_state(pe) for pe in tile.pes[:4]] == \
               [_pe_state(pe) for pe in ref.pes[:4]]

    def test_stream_before_load_raises(self):
        with pytest.raises(RuntimeError):
            SparseTile(4, 2).compute_stream(np.ones(3))

    def test_stream_array_respects_pe_budget(self, rng):
        weights = rng.normal(size=(4, 8))
        with pytest.raises(ValueError):
            SparseTile(8, 2).compute_stream_array(
                weights, np.ones((4, 8), dtype=bool), np.ones(3))


class TestGatingStats:
    def test_stats_match_scalar_counters(self, rng):
        weights, mask, acts = _workload(rng)
        dense_ref, _, sparse_ref, _ = _scalar_reference(weights, mask, acts, 16, 4)
        dense_stats, sparse_stats = stream_gating_stats(weights, mask, acts, 4)
        assert list(dense_stats.gated_per_pe) == [pe.gated_ops for pe in dense_ref.pes]
        assert list(dense_stats.active_per_pe) == [pe.active_ops for pe in dense_ref.pes]
        assert list(sparse_stats.gated_per_pe) == [pe.gated_ops for pe in sparse_ref.pes]
        assert list(sparse_stats.active_per_pe) == [pe.active_ops for pe in sparse_ref.pes]

    def test_sparse_gates_only_on_activations(self, rng):
        """With all kept weights non-zero, the sparse tile's gating rate is
        exactly the zero-activation fraction — the CMS claim."""
        weights = np.abs(rng.normal(size=(50, 16))) + 0.1
        mask = nm_prune_mask(weights, 4, 16)
        acts = rng.normal(size=40)
        acts[:10] = 0.0
        _, sparse_stats = stream_gating_stats(weights, mask, acts, 4)
        assert sparse_stats.gating_rate == pytest.approx(10 / 40)

    def test_stats_merge(self):
        a = StreamStats(np.array([1, 2]), np.array([3, 4]))
        b = StreamStats(np.array([5, 6]), np.array([7, 8]))
        merged = a.merge(b)
        assert merged.gated_ops == 14 and merged.active_ops == 22
        assert StreamStats(np.zeros(2, int), np.zeros(2, int)).gating_rate == 0.0

    def test_equivalence_checker_on_layer_scale(self, rng):
        weights = rng.normal(size=(600, 16))
        mask = nm_prune_mask(np.abs(weights), 4, 16)
        acts = rng.normal(size=32)
        acts[::5] = 0.0
        assert sparse_stream_matches_dense(weights, mask, acts, q=4, chunk=128)

    def test_equivalence_checker_clamps_chunk(self, rng):
        """chunk <= 0 must not degrade into vacuous empty-slice comparisons:
        an over-budget mask still raises, exactly as with a positive chunk."""
        weights = rng.normal(size=(8, 16))
        mask = nm_prune_mask(np.abs(weights), 4, 16)  # keeps 4 per subvector
        with pytest.raises(ValueError):
            sparse_stream_matches_dense(weights, mask, np.ones(3), q=1, chunk=0)


class TestLZCEncoder:
    def test_cascaded_lzc_semantics(self):
        """The vectorized encoder must still behave as the LZC cascade:
        each stage finds the first remaining set bit, XORs it out, and the
        stages report ascending positions."""
        rng = np.random.default_rng(0)
        for _ in range(50):
            mask = rng.random(12) < 0.4
            remaining = mask.copy()
            cascade = []
            while remaining.any():
                first = int(np.argmax(remaining))
                cascade.append(first)
                remaining[first] = False
            assert lzc_encode_mask(mask) == cascade

    def test_returns_plain_ints(self):
        positions = lzc_encode_mask([False, True, True])
        assert positions == [1, 2]
        assert all(type(p) is int for p in positions)


class TestEnergyHook:
    def test_measured_gating_overrides_heuristics(self, rng):
        from repro.accelerator.config import HardwareSetting, standard_setting
        from repro.accelerator.dataflow import analyze_network
        from repro.accelerator.workloads import LayerShape

        weights, mask, acts = _workload(rng, s=64, t=64)
        dense_stats, sparse_stats = stream_gating_stats(weights, mask, acts, 4)
        measured = EnergyModel.from_stream_stats(dense_stats, sparse_stats)
        assert measured.measured_gating["dense"] == dense_stats.gating_rate
        assert measured.measured_gating["sparse"] == sparse_stats.gating_rate

        layers = [LayerShape("conv", 16, 16, 8, 8, 3, 3)]
        config = standard_setting(HardwareSetting.EWS_CMS, 16)
        analysis = analyze_network(layers, config)
        heuristic = EnergyModel()
        got = measured.breakdown(analysis, config).mac
        want = heuristic.breakdown(analysis, config).mac
        # the sparse array's MAC energy now scales with the measured rate
        expected_ratio = ((1 - sparse_stats.gating_rate)
                          / (1 - heuristic.activation_zero_fraction))
        assert got / want == pytest.approx(expected_ratio)
