"""Tests for accelerator configuration and workload shape tables."""

import numpy as np
import pytest

from repro.accelerator.config import (
    AcceleratorConfig,
    ALL_SETTINGS,
    CompressionMode,
    Dataflow,
    HardwareSetting,
    standard_setting,
)
from repro.accelerator.workloads import (
    WORKLOADS,
    LayerShape,
    alexnet_layers,
    mobilenet_v1_layers,
    network_macs,
    network_weights,
    resnet18_layers,
    resnet50_layers,
    vgg16_layers,
)


class TestLayerShape:
    def test_output_size(self):
        layer = LayerShape("conv", 3, 64, 7, 224, stride=2, padding=3)
        assert layer.output_size == 112

    def test_macs_and_flops(self):
        layer = LayerShape("conv", 64, 128, 3, 56, stride=1, padding=1)
        assert layer.macs == 64 * 128 * 9 * 56 * 56
        assert layer.flops == 2 * layer.macs

    def test_depthwise_weights(self):
        layer = LayerShape("dw", 64, 64, 3, 56, padding=1, depthwise=True)
        assert layer.num_weights == 64 * 9
        assert layer.macs == 64 * 9 * 56 * 56


class TestWorkloadTables:
    """The shape tables must match the well-known full-size model statistics."""

    @pytest.mark.parametrize("name,gmacs,mparams", [
        ("resnet18", 1.81, 11.7),
        ("resnet50", 4.09, 25.5),
        ("vgg16", 15.5, 138.0),
        ("alexnet", 0.71, 61.0),
        ("mobilenet_v1", 0.57, 4.2),
    ])
    def test_macs_and_params_match_reference(self, name, gmacs, mparams):
        layers = WORKLOADS[name]()
        assert network_macs(layers) / 1e9 == pytest.approx(gmacs, rel=0.06)
        assert network_weights(layers) / 1e6 == pytest.approx(mparams, rel=0.06)

    def test_resnet18_flops_match_paper_table4(self):
        """Paper Table 4/3 quotes 1.81 GFLOPs-as-MACs for dense ResNet-18 and
        0.54G at 75% conv sparsity."""
        layers = resnet18_layers()
        conv_macs = sum(l.macs for l in layers if l.kernel_size > 1 or l.input_size > 1)
        assert network_macs(layers) / 1e9 == pytest.approx(1.81, rel=0.05)
        assert (network_macs(layers) - 0.75 * conv_macs) / 1e9 == pytest.approx(0.54, rel=0.2)

    def test_mobilenet_has_depthwise_layers(self):
        layers = mobilenet_v1_layers()
        assert any(l.depthwise for l in layers)
        assert any(not l.depthwise and l.kernel_size == 1 for l in layers)

    def test_feature_map_chaining(self):
        """Each layer's input size must equal the previous layer's output size
        within the plain sequential networks."""
        for layers in (vgg16_layers(),):
            conv_layers = [l for l in layers if l.input_size > 1]
            for prev, nxt in zip(conv_layers, conv_layers[1:]):
                assert nxt.input_size in (prev.output_size, prev.output_size // 2)


class TestAcceleratorConfig:
    def test_compression_ratio_ingredients(self):
        cfg = standard_setting(HardwareSetting.EWS_CMS)
        assert cfg.assignment_bits_per_subvector == 9        # log2(512)
        assert cfg.mask_bits_per_subvector == 11              # ceil(log2 C(16,4))
        assert cfg.weight_load_bits_per_weight == pytest.approx(20 / 16)

    def test_baseline_loads_full_weights(self):
        cfg = standard_setting(HardwareSetting.EWS_BASE)
        assert cfg.weight_load_bits_per_weight == 8.0
        assert not cfg.uses_vq

    def test_ews_c_no_mask(self):
        cfg = standard_setting(HardwareSetting.EWS_C)
        assert cfg.uses_vq and not cfg.uses_mask
        assert cfg.sparsity == 0.0
        assert cfg.weight_load_bits_per_weight == pytest.approx(10 / 8)

    def test_sparsity_and_q(self):
        cfg = standard_setting(HardwareSetting.EWS_CMS)
        assert cfg.sparsity == 0.75
        assert cfg.q_pes_per_group == 4
        assert cfg.crf_read_ports == 4

    def test_l1_size_follows_array_size(self):
        assert standard_setting(HardwareSetting.EWS_BASE, 16).l1_kib == 128
        assert standard_setting(HardwareSetting.EWS_BASE, 32).l1_kib == 256
        assert standard_setting(HardwareSetting.EWS_BASE, 64).l1_kib == 256

    def test_peak_tops(self):
        cfg = standard_setting(HardwareSetting.EWS_CMS, 64)
        assert cfg.peak_tops == pytest.approx(2.4576, rel=1e-6)

    def test_all_settings_constructible_for_all_sizes(self):
        for setting in ALL_SETTINGS:
            for size in (16, 32, 64):
                cfg = standard_setting(setting, array_size=size)
                assert cfg.array_size == size

    def test_invalid_configs_raise(self):
        with pytest.raises(ValueError):
            AcceleratorConfig(array_size=0)
        with pytest.raises(ValueError):
            AcceleratorConfig(subvector_length=12, m_block=8)
        with pytest.raises(ValueError):
            AcceleratorConfig(array_size=20, subvector_length=16,
                              compression=CompressionMode.CMS)

    def test_sweep_combinations_validated_up_front(self):
        """Bad buffer/array combinations fail at construction with the field
        named — not as arithmetic errors deep inside analyze_layer."""
        with pytest.raises(ValueError, match="l1_kib must be positive"):
            AcceleratorConfig(l1_kib=0)
        with pytest.raises(ValueError, match="dma_width_bits must be positive"):
            AcceleratorConfig(dma_width_bits=0)
        with pytest.raises(ValueError, match="l1_width_bits must be positive"):
            AcceleratorConfig(l1_width_bits=-8)
        with pytest.raises(ValueError, match="L2 must be at least as large"):
            AcceleratorConfig(l1_kib=256, l2_kib=128)
        with pytest.raises(ValueError, match="frequency_ghz must be positive"):
            AcceleratorConfig(frequency_ghz=0.0)
        with pytest.raises(ValueError, match="n_keep must be in"):
            AcceleratorConfig(n_keep=17, m_block=16, subvector_length=16)
        with pytest.raises(ValueError, match="codebook_size must be >= 2"):
            AcceleratorConfig(codebook_size=1)
        with pytest.raises(ValueError, match="cannot hold one"):
            AcceleratorConfig(array_size=512, l1_kib=128, l2_kib=2048,
                              compression=CompressionMode.NONE)

    def test_config_from_spec(self):
        from repro.accelerator.config import config_from_spec

        cfg = config_from_spec({"setting": "EWS-CM", "array_size": 32,
                                "l1_kib": 512, "frequency_ghz": 0.5,
                                "workload": "resnet18"})   # extras ignored
        assert cfg.compression is CompressionMode.CM
        assert cfg.array_size == 32
        assert cfg.l1_kib == 512
        assert cfg.frequency_ghz == 0.5
        assert config_from_spec({}).array_size == 64       # EWS-CMS default
        with pytest.raises(ValueError):                    # invalid combo
            config_from_spec({"array_size": 24})
        with pytest.raises(ValueError):                    # unknown setting
            config_from_spec({"setting": "NOPE"})
        dataflow = config_from_spec({"setting": "EWS-CMS", "dataflow": "ws"})
        assert dataflow.dataflow is Dataflow.WS

    def test_overrides(self):
        cfg = standard_setting(HardwareSetting.EWS_BASE, 32, frequency_ghz=0.5)
        assert cfg.frequency_ghz == 0.5
        assert cfg.with_array_size(16).array_size == 16
