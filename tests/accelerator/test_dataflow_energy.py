"""Tests for the dataflow access-count model, energy model and performance model."""

import numpy as np
import pytest

from repro.accelerator.config import (
    ALL_SETTINGS,
    AcceleratorConfig,
    CompressionMode,
    Dataflow,
    HardwareSetting,
    standard_setting,
)
from repro.accelerator.dataflow import AccessCounts, analyze_layer, analyze_network
from repro.accelerator.energy import ENERGY_COSTS, EnergyModel, data_access_reduction
from repro.accelerator.performance import PerformanceModel
from repro.accelerator.roofline import RooflineModel, roofline_sweep
from repro.accelerator.workloads import WORKLOADS, LayerShape

RN18 = WORKLOADS["resnet18"]()
CONV = LayerShape("conv", 256, 256, 3, 14, stride=1, padding=1)


class TestDataflowModel:
    def test_compute_cycles_lower_bound_is_mac_limited(self):
        cfg = standard_setting(HardwareSetting.EWS_BASE, 64)
        analysis = analyze_layer(CONV, cfg)
        ideal = CONV.macs / (64 * 64)
        assert analysis.compute_cycles >= ideal
        assert analysis.compute_cycles <= ideal * 1.5

    def test_ews_reduces_l1_traffic_vs_ws(self):
        ews = analyze_layer(CONV, standard_setting(HardwareSetting.EWS_BASE, 64))
        ws = analyze_layer(CONV, standard_setting(HardwareSetting.WS_BASE, 64))
        assert ews.access.l1_bytes < ws.access.l1_bytes
        # the reduction factor approaches A*D / B*D for the dominant psum term
        assert ws.access.l1_bytes / ews.access.l1_bytes > 3

    def test_ews_uses_arf_prf(self):
        ews = analyze_layer(CONV, standard_setting(HardwareSetting.EWS_BASE, 64))
        ws = analyze_layer(CONV, standard_setting(HardwareSetting.WS_BASE, 64))
        assert ews.access.arf_accesses > 0 and ews.access.prf_accesses > 0
        assert ws.access.arf_accesses == 0 and ws.access.prf_accesses == 0

    def test_compression_reduces_weight_traffic(self):
        base = analyze_layer(CONV, standard_setting(HardwareSetting.EWS_BASE, 64))
        cms = analyze_layer(CONV, standard_setting(HardwareSetting.EWS_CMS, 64))
        assert cms.access.dram_bytes < base.access.dram_bytes / 4
        assert cms.weight_load_cycles < base.weight_load_cycles / 4

    def test_sparse_array_skips_pruned_macs(self):
        cms = analyze_layer(CONV, standard_setting(HardwareSetting.EWS_CMS, 64))
        assert cms.access.effective_macs == pytest.approx(CONV.macs * 0.25)
        base = analyze_layer(CONV, standard_setting(HardwareSetting.EWS_BASE, 64))
        assert base.access.effective_macs == CONV.macs

    def test_weight_bound_layers_exist_at_64(self):
        """Fig. 18: the dense EWS design is weight-loading bound at 64x64."""
        cfg = standard_setting(HardwareSetting.EWS_BASE, 64)
        analysis = analyze_network(RN18, cfg)
        assert any(a.weight_bound for a in analysis.layers)
        cms = analyze_network(RN18, standard_setting(HardwareSetting.EWS_CMS, 64))
        assert cms.cycles < analysis.cycles

    def test_small_array_compute_bound(self):
        cfg = standard_setting(HardwareSetting.EWS_BASE, 16)
        analysis = analyze_network(RN18, cfg)
        weight_bound = sum(a.weight_bound for a in analysis.layers)
        assert weight_bound < len(analysis.layers) * 0.3

    def test_depthwise_maps_to_diagonal(self):
        dw = LayerShape("dw", 256, 256, 3, 14, padding=1, depthwise=True)
        cfg = standard_setting(HardwareSetting.EWS_BASE, 64)
        analysis = analyze_layer(dw, cfg)
        # only H diagonal PEs are active: cycles ~ macs / H, not macs / (H*L)
        assert analysis.compute_cycles >= dw.macs / 64

    def test_access_counts_addition(self):
        a = AccessCounts(dram_bytes=1, l1_bytes=2, effective_macs=3)
        b = AccessCounts(dram_bytes=10, l1_bytes=20, effective_macs=30)
        total = a + b
        assert total.dram_bytes == 11 and total.l1_bytes == 22 and total.effective_macs == 33

    def test_network_analysis_totals(self):
        cfg = standard_setting(HardwareSetting.EWS_BASE, 32)
        analysis = analyze_network(RN18, cfg)
        assert analysis.cycles == pytest.approx(sum(a.cycles for a in analysis.layers))
        assert analysis.total_ops == pytest.approx(2 * sum(l.macs for l in RN18))

    def test_skip_depthwise(self):
        mobilenet = WORKLOADS["mobilenet_v1"]()
        cfg = standard_setting(HardwareSetting.EWS_BASE, 32)
        full = analyze_network(mobilenet, cfg)
        pointwise_only = analyze_network(mobilenet, cfg, skip_depthwise=True)
        assert len(pointwise_only.layers) < len(full.layers)


class TestEnergyModel:
    def test_table8_costs(self):
        assert ENERGY_COSTS["dram"] == 200
        assert ENERGY_COSTS["l2"] == 15
        assert ENERGY_COSTS["l1"] == 6
        assert ENERGY_COSTS["prf"] == 0.22
        assert ENERGY_COSTS["arf"] == 0.11
        assert ENERGY_COSTS["wrf"] == 0.02
        assert ENERGY_COSTS["crf"] == 0.02

    def test_dram_dominates_data_access(self):
        """Fig. 14: DRAM access dominates the data-access energy."""
        model = EnergyModel()
        cfg = standard_setting(HardwareSetting.EWS_BASE, 64)
        analysis = analyze_network(RN18, cfg)
        by_level = model.data_access_by_level(analysis, cfg)
        assert by_level["dram"] > 0.5 * sum(by_level.values())

    def test_access_reduction_increases_with_array_size(self):
        """Fig. 15 shape for ResNet-18: larger arrays benefit more."""
        reductions = [
            data_access_reduction(RN18,
                                  standard_setting(HardwareSetting.EWS_BASE, size),
                                  standard_setting(HardwareSetting.EWS_CMS, size))
            for size in (16, 32, 64)
        ]
        assert all(r > 2.0 for r in reductions)
        assert reductions[0] < reductions[2]

    def test_access_reduction_in_paper_range(self):
        """Paper reports 2.9x / 3.6x / 4.1x for ResNet-18."""
        for size, target in ((16, 2.9), (32, 3.6), (64, 4.1)):
            r = data_access_reduction(RN18,
                                      standard_setting(HardwareSetting.EWS_BASE, size),
                                      standard_setting(HardwareSetting.EWS_CMS, size))
            assert r == pytest.approx(target, rel=0.25)

    def test_vgg_lower_reduction_due_to_dram_activations(self):
        """Section 7.3: VGG-16's large early feature maps live in DRAM, lowering
        its reduction ratio relative to ResNet-18."""
        vgg = WORKLOADS["vgg16"]()
        r_vgg = data_access_reduction(vgg, standard_setting(HardwareSetting.EWS_BASE, 32),
                                      standard_setting(HardwareSetting.EWS_CMS, 32))
        r_rn18 = data_access_reduction(RN18, standard_setting(HardwareSetting.EWS_BASE, 32),
                                       standard_setting(HardwareSetting.EWS_CMS, 32))
        assert r_vgg < r_rn18

    def test_power_breakdown_positive(self):
        model = EnergyModel()
        cfg = standard_setting(HardwareSetting.EWS_CMS, 64)
        analysis = analyze_network(RN18, cfg)
        power = model.power_breakdown_mw(analysis, cfg)
        assert set(power) == {"accel", "l1", "l2", "others"}
        assert all(v > 0 for v in power.values())

    def test_ws_l1_power_exceeds_ews(self):
        """Fig. 16: WS has much higher L1 power than EWS."""
        model = EnergyModel()
        ws_cfg = standard_setting(HardwareSetting.WS_BASE, 64)
        ews_cfg = standard_setting(HardwareSetting.EWS_BASE, 64)
        ws = model.power_breakdown_mw(analyze_network(RN18, ws_cfg), ws_cfg)
        ews = model.power_breakdown_mw(analyze_network(RN18, ews_cfg), ews_cfg)
        assert ws["l1"] > 2 * ews["l1"]

    def test_efficiency_excludes_dram_by_default(self):
        model = EnergyModel()
        cfg = standard_setting(HardwareSetting.EWS_BASE, 64)
        analysis = analyze_network(RN18, cfg)
        with_dram = model.efficiency_tops_per_watt(analysis, cfg, include_dram=True)
        without = model.efficiency_tops_per_watt(analysis, cfg)
        assert without > with_dram

    def test_breakdown_total_consistency(self):
        model = EnergyModel()
        cfg = standard_setting(HardwareSetting.EWS_CM, 32)
        analysis = analyze_network(RN18, cfg)
        b = model.breakdown(analysis, cfg)
        assert b.total == pytest.approx(b.on_chip_total + b.dram)
        assert b.accelerator <= b.on_chip_total


class TestPerformanceModel:
    def test_speedup_ordering_matches_fig17(self):
        """EWS-CMS > EWS >= 1 and EWS-CMS > WS-CMS relative to the WS baseline."""
        pm = PerformanceModel()
        base = standard_setting(HardwareSetting.WS_BASE, 64)
        speedups = {
            s.value: pm.speedup(RN18, standard_setting(s, 64), base)
            for s in (HardwareSetting.WS_CMS, HardwareSetting.EWS_BASE, HardwareSetting.EWS_CMS)
        }
        assert speedups["EWS"] > 1.0
        assert speedups["EWS-CMS"] > speedups["EWS"]
        assert speedups["EWS-CMS"] > 1.4
        assert speedups["WS-CMS"] > 1.0

    def test_efficiency_ordering_matches_fig19(self):
        """At every array size: EWS-CMS > EWS-CM >= EWS-C > EWS > WS."""
        pm = PerformanceModel()
        for size in (16, 32, 64):
            eff = {s.value: pm.efficiency(RN18, standard_setting(s, size)) for s in ALL_SETTINGS}
            assert eff["EWS-CMS"] > eff["EWS-CM"] >= eff["EWS-C"] > eff["EWS"] > eff["WS"]
            assert eff["WS-CMS"] > eff["WS"]

    def test_efficiency_improves_with_array_size(self):
        pm = PerformanceModel()
        eff = [pm.efficiency(RN18, standard_setting(HardwareSetting.EWS_CMS, s)) for s in (16, 32, 64)]
        assert eff[0] < eff[1] < eff[2]

    def test_ews_cms_vs_ews_gain_near_paper(self):
        """Paper: EWS-CMS boosts energy efficiency by ~2.3x over base EWS (64x64)."""
        pm = PerformanceModel()
        gain = (pm.efficiency(RN18, standard_setting(HardwareSetting.EWS_CMS, 64))
                / pm.efficiency(RN18, standard_setting(HardwareSetting.EWS_BASE, 64)))
        assert 1.8 < gain < 3.5

    def test_utilization_below_one(self):
        pm = PerformanceModel()
        perf = pm.evaluate(RN18, standard_setting(HardwareSetting.EWS_CMS, 64))
        assert 0 < perf.utilization <= 1.0
        assert perf.throughput_tops <= perf.config.peak_tops

    def test_setting_sweep_keys(self):
        pm = PerformanceModel()
        results = pm.setting_sweep(RN18, ALL_SETTINGS, array_size=32)
        assert set(results) == {s.value for s in ALL_SETTINGS}


class TestRoofline:
    def test_compression_increases_operational_intensity(self):
        base = RooflineModel(standard_setting(HardwareSetting.EWS_BASE, 64)).point(RN18, "base")
        cms = RooflineModel(standard_setting(HardwareSetting.EWS_CMS, 64)).point(RN18, "cms")
        assert cms.operational_intensity > 4 * base.operational_intensity

    def test_base_memory_bound_cms_compute_bound_at_64(self):
        base = RooflineModel(standard_setting(HardwareSetting.EWS_BASE, 64)).point(RN18)
        cms = RooflineModel(standard_setting(HardwareSetting.EWS_CMS, 64)).point(RN18)
        assert base.bound == "memory"
        assert cms.bound == "compute"

    def test_performance_under_roof(self):
        for size in (16, 32, 64):
            point = RooflineModel(standard_setting(HardwareSetting.EWS_BASE, size)).point(RN18)
            roof = min(point.peak_gops, point.operational_intensity * point.bandwidth_gbps)
            assert point.performance_gops <= roof * 1.001

    def test_sweep_labels(self):
        configs = [standard_setting(HardwareSetting.EWS_BASE, s) for s in (16, 32)]
        points = roofline_sweep(RN18, configs, labels=["a", "b"])
        assert [p.label for p in points] == ["a", "b"]
