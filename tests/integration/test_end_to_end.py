"""Integration tests spanning algorithm and accelerator layers."""

import numpy as np
import pytest

from repro.accelerator.config import HardwareSetting, standard_setting
from repro.accelerator.dataflow import analyze_network
from repro.accelerator.energy import EnergyModel
from repro.accelerator.performance import PerformanceModel
from repro.accelerator.weight_loader import AssignmentAwareWeightLoader
from repro.accelerator.workloads import WORKLOADS
from repro.core import (
    CodebookFinetuner,
    LayerCompressionConfig,
    MVQCompressor,
)
from repro.core.storage import MaskLUT
from repro.nn import CrossEntropyLoss, SGD, evaluate_accuracy
from repro.nn.models import resnet18_mini


class TestAlgorithmToHardware:
    """The compressed model produced by the algorithm side must be exactly
    representable and reconstructible by the hardware weight loader."""

    def test_weight_loader_reproduces_compressed_weights(self, trained_model):
        cfg = LayerCompressionConfig(k=64, d=16, n_keep=4, m=16, max_kmeans_iterations=25)
        compressed = MVQCompressor(cfg).compress(trained_model)

        hw_cfg = standard_setting(HardwareSetting.EWS_CMS, array_size=64,
                                  codebook_size=64)
        lut = MaskLUT(4, 16)
        for state in compressed:
            loader = AssignmentAwareWeightLoader(hw_cfg, state.codebook, lut)
            # software reconstruction
            sw = state.reconstruct_grouped()
            # hardware path: index -> CRF lookup -> LUT mask decode -> AND gate
            codes = lut.encode_mask(state.mask)
            hw = loader.reconstruct_layer(state.assignments, lut.decode_mask(codes, 16))
            assert np.allclose(sw, hw)

    def test_compression_ratio_algorithm_matches_hardware_traffic(self, trained_model):
        """Eq. 7's bits-per-weight equals what the weight loader streams."""
        cfg = LayerCompressionConfig(k=512, d=16, n_keep=4, m=16, max_kmeans_iterations=10)
        compressed = MVQCompressor(cfg).compress(trained_model)
        hw_cfg = standard_setting(HardwareSetting.EWS_CMS, array_size=64)
        state = next(iter(compressed))
        loader = AssignmentAwareWeightLoader(hw_cfg, state.codebook)
        num_weights = state.num_subvectors * 16
        traffic = loader.traffic(num_weights)
        algo_bits = state.config.spec().total_bits(state.num_subvectors, count_codebook=True)
        assert traffic.total_bits == pytest.approx(algo_bits, rel=0.01)

    def test_sparse_flops_match_hardware_effective_macs(self):
        """FLOPs reported by the algorithm equal 2x the MACs the sparse array executes."""
        layers = WORKLOADS["resnet18"]()
        cfg = standard_setting(HardwareSetting.EWS_CMS, 64)
        analysis = analyze_network(layers, cfg)
        conv_macs = sum(l.macs for l in layers)
        assert analysis.access.effective_macs == pytest.approx(conv_macs * 0.25, rel=1e-6)


class TestFullPipeline:
    def test_paper_pipeline_on_mini_resnet(self, classification_data, trained_model):
        """The complete Fig. 2 pipeline at a ~20x compression ratio keeps the
        synthetic-task accuracy within a few points of the dense baseline."""
        train, val = classification_data
        baseline = evaluate_accuracy(trained_model, val)
        cfg = LayerCompressionConfig(k=48, d=8, n_keep=2, m=8, max_kmeans_iterations=30)
        compressed = MVQCompressor(cfg).compress(trained_model)
        ratio = compressed.compression_ratio()

        finetuner = CodebookFinetuner(compressed, lr=3e-3)
        from repro.nn import Trainer
        trainer = Trainer(trained_model, CrossEntropyLoss(),
                          SGD(trained_model.parameters(), lr=0.02, momentum=0.9),
                          batch_size=32, hook=finetuner.step)
        trainer.fit(train, epochs=2)
        final = evaluate_accuracy(trained_model, val)

        assert ratio > 10
        assert final >= baseline - 0.12

    def test_efficiency_claim_chain(self):
        """The headline hardware claims hold together: ~2.3x energy efficiency and
        ~55% smaller array vs base EWS, and >1.5x vs the best prior accelerator."""
        from repro.accelerator.area import AreaModel
        from repro.accelerator.comparison import comparison_table

        layers = WORKLOADS["resnet18"]()
        pm = PerformanceModel()
        ews = standard_setting(HardwareSetting.EWS_BASE, 64)
        cms = standard_setting(HardwareSetting.EWS_CMS, 64)
        gain = pm.efficiency(layers, cms) / pm.efficiency(layers, ews)
        area_model = AreaModel()
        area_cut = 1 - (area_model.accelerator_area_mm2(cms) / area_model.accelerator_area_mm2(ews))
        rows = comparison_table()
        mvq64 = next(r for r in rows if r["name"] == "MVQ-64")["normalized_efficiency"]
        best_prior = max(r["normalized_efficiency"] for r in rows if not str(r["name"]).startswith("MVQ"))

        assert gain > 1.8
        assert 0.4 < area_cut < 0.7
        assert mvq64 / best_prior > 1.5
