"""Serialization <-> serving round trip: a model reloaded from an ``.npz``
archive swaps to compressed-domain modules and serves identically to a live
``export_compressed_model`` run (the serialization/serving gap fix)."""

import numpy as np
import pytest

from repro.core import LayerCompressionConfig, MVQCompressor
from repro.core.serialization import load_compressed_model, save_compressed_model
from repro.nn import Conv2d, Sequential
from repro.nn.compressed import CompressedConv2d, compressed_serving
from repro.nn.serve import predict_batched


def make_model(seed=0):
    rng = np.random.default_rng(seed)
    return Sequential(
        Conv2d(6, 16, 3, padding=1, rng=rng),
        Conv2d(16, 16, 3, padding=1, rng=rng),
    )


CFG = LayerCompressionConfig(k=10, max_kmeans_iterations=6)


@pytest.fixture()
def archive(tmp_path):
    model = make_model()
    compressed = MVQCompressor(CFG).compress(model)
    path = tmp_path / "model.npz"
    save_compressed_model(compressed, path)
    return path


class TestLoadedModelSwapsToCompressedDomain:
    def test_round_trip_serving_equivalence(self, archive, rng):
        """live export vs save -> load -> swap: identical serving outputs."""
        x = rng.normal(size=(4, 6, 7, 7))

        live = make_model()
        MVQCompressor(CFG).export_compressed_model(live)
        live_out = predict_batched(live, x, batch_size=2)

        reloaded = make_model()
        compressed = load_compressed_model(reloaded, archive)
        swapped = compressed.swap_into_model()
        assert all(isinstance(m, CompressedConv2d) for m in swapped.values())
        reload_out = predict_batched(reloaded, x, batch_size=2)

        np.testing.assert_allclose(reload_out, live_out, atol=1e-12)

    def test_swap_into_model_matches_dense_reconstruction(self, archive, rng):
        model = make_model()
        compressed = load_compressed_model(model, archive)
        reference = make_model()
        ref_compressed = load_compressed_model(reference, archive)
        ref_compressed.apply_to_model()

        compressed.swap_into_model()
        x = rng.normal(size=(3, 6, 5, 5))
        np.testing.assert_allclose(model.forward(x), reference.forward(x),
                                   atol=1e-9)

    def test_compressed_serving_context_restores_model(self, rng):
        model = make_model()
        compressed = MVQCompressor(CFG).compress(model)
        originals = {name: mod for name, mod in model.named_modules()
                     if name in compressed.layers}
        with compressed_serving(model, compressed) as swapped:
            assert all(isinstance(m, CompressedConv2d)
                       for m in swapped.values())
        after = dict(model.named_modules())
        for name, module in originals.items():
            assert after[name] is module

    def test_compressed_serving_restores_after_failed_swap(self):
        """A swap that fails partway through must not leave the model
        half-compressed."""
        model = make_model()
        compressed = MVQCompressor(CFG).compress(model)
        originals = dict(model.named_modules())
        # entering the context twice fails on the second swap (the modules
        # are already compressed), exercising the mid-swap failure path
        with compressed_serving(model, compressed):
            with pytest.raises(TypeError):
                with compressed_serving(model, compressed):
                    pass  # pragma: no cover
        after = dict(model.named_modules())
        for name in compressed.layers:
            assert after[name] is originals[name]
