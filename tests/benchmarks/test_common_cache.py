"""Regression test for the trained-model cache-key aliasing fix.

Calling ``trained_model`` with explicit ``epochs``/``lr`` equal to the
per-model defaults used to create a second ``lru_cache`` entry and retrain
the model from scratch; arguments are now normalised before the lookup.
"""

from functools import lru_cache

import pytest

_common = pytest.importorskip("benchmarks._common")


def test_resolve_training_args_fills_defaults():
    assert _common.resolve_training_args("alexnet") == (10, 0.01)
    assert _common.resolve_training_args("vgg16") == (8, 0.03)
    assert _common.resolve_training_args("resnet18") == (6, 0.05)
    # explicit values pass through untouched
    assert _common.resolve_training_args("resnet18", epochs=2, lr=0.1) == (2, 0.1)


def test_explicit_defaults_hit_the_same_cache_entry(monkeypatch):
    calls = []

    @lru_cache(maxsize=None)
    def fake_train(name, epochs, lr):
        calls.append((name, epochs, lr))
        return object(), 1.0

    monkeypatch.setattr(_common, "_train_model_cached", fake_train)

    first = _common.trained_model("alexnet")
    # explicit arguments equal to the defaults: must not retrain
    second = _common.trained_model("alexnet", epochs=10, lr=0.01)
    third = _common.trained_model("alexnet", epochs=10)
    assert len(calls) == 1
    assert first is second is third

    _common.trained_model("alexnet", epochs=3)  # genuinely different settings
    assert calls == [("alexnet", 10, 0.01), ("alexnet", 3, 0.01)]
