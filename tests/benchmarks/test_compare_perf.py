"""The perf-regression gate's comparison logic (pure functions, no timing)."""

import pytest

from benchmarks.perf.compare_perf import TRACKED, compare, tracked_metrics


def _report(mode: str, serving_speedup: float = 1.8,
            fp64: float = 4.0) -> dict:
    return {
        "mode": mode,
        "clustering": {"speedup_fp64_vs_legacy": fp64,
                       "speedup_fp32_vs_legacy": 10.0},
        "inference": {"speedup_compressed_vs_reconstruct": 2.5,
                      "systolic_stream": {"stream_speedup_vs_scalar": 80.0}},
        "serving": {"speedup_batched_vs_sequential": serving_speedup},
    }


class TestTrackedMetrics:
    def test_flattens_dotted_paths(self):
        flat = tracked_metrics(_report("full"))
        assert flat["inference.systolic_stream.stream_speedup_vs_scalar"] == 80.0
        assert flat["serving.speedup_batched_vs_sequential"] == 1.8

    def test_missing_sections_are_skipped(self):
        assert tracked_metrics({"mode": "full"}) == {}

    def test_every_tracked_path_resolves_in_the_committed_baseline(self):
        import json
        from pathlib import Path

        baseline = json.loads(
            (Path(__file__).resolve().parents[2] / "BENCH_perf.json").read_text())
        flat = tracked_metrics(baseline)
        expected = {f"{s}.{p}" for s, paths in TRACKED.items() for p in paths}
        assert set(flat) == expected
        # CI smoke runs gate against the embedded conservative floor
        assert set(baseline["tracked_smoke"]) == expected
        assert baseline["tracked"] == flat


class TestCompare:
    def test_same_mode_within_tolerance_passes(self, capsys):
        assert compare(_report("full"), _report("full")) == []
        assert "ok" in capsys.readouterr().out

    def test_regression_beyond_tolerance_fails(self):
        errors = compare(_report("full", serving_speedup=2.0),
                         _report("full", serving_speedup=1.5))
        assert len(errors) == 1
        assert "serving.speedup_batched_vs_sequential" in errors[0]

    def test_tolerance_is_configurable(self):
        baseline = _report("full", serving_speedup=2.0)
        current = _report("full", serving_speedup=1.5)
        assert compare(baseline, current, tolerance=0.3) == []

    def test_mode_mismatch_uses_embedded_smoke_floor(self):
        baseline = _report("full", serving_speedup=5.0)
        baseline["tracked_smoke"] = tracked_metrics(_report("smoke"))
        current = _report("smoke", serving_speedup=1.7)
        # vs the full-mode 5.0 this would fail; vs the smoke floor it passes
        assert compare(baseline, current) == []

    def test_mode_mismatch_without_smoke_floor_fails_closed(self):
        errors = compare(_report("full"), _report("smoke"))
        assert len(errors) == 1
        assert "tracked_smoke" in errors[0]

    def test_metric_missing_from_current_is_an_error(self):
        current = _report("full")
        del current["serving"]
        errors = compare(_report("full"), current)
        assert any("missing from the current report" in e for e in errors)

    def test_new_metric_without_baseline_is_informational(self, capsys):
        baseline = _report("full")
        del baseline["serving"]
        assert compare(baseline, _report("full")) == []
        assert "no baseline" in capsys.readouterr().out


class TestTrackedSmokeFloor:
    def test_min_floor_over_multiple_smoke_reports(self, tmp_path):
        import json

        from benchmarks.perf.run_perf import tracked_smoke_floor

        paths = []
        for i, speedup in enumerate((1.9, 1.6, 1.8)):
            path = tmp_path / f"s{i}.json"
            path.write_text(json.dumps(_report("smoke", serving_speedup=speedup,
                                               fp64=4.0 + i)))
            paths.append(str(path))
        floor = tracked_smoke_floor(paths)
        assert floor["serving.speedup_batched_vs_sequential"] == 1.6
        assert floor["clustering.speedup_fp64_vs_legacy"] == 4.0

    def test_non_smoke_report_rejected_up_front(self, tmp_path):
        import json

        from benchmarks.perf.run_perf import tracked_smoke_floor

        path = tmp_path / "full.json"
        path.write_text(json.dumps(_report("full")))
        with pytest.raises(ValueError, match="not a smoke-mode report"):
            tracked_smoke_floor([str(path)])

    def test_missing_file_raises_before_any_benchmark(self, tmp_path):
        from benchmarks.perf.run_perf import tracked_smoke_floor

        with pytest.raises(OSError):
            tracked_smoke_floor([str(tmp_path / "nope.json")])
