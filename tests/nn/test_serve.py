"""Batched serving: output equivalence, buffer reuse, partial batches."""

import numpy as np
import pytest

from repro.core import LayerCompressionConfig, MVQCompressor
from repro.nn import Conv2d, Sequential, predict_batched
from repro.nn.compressed import CompressedConv2d


def _compressed_stack():
    model = Sequential(
        Conv2d(4, 8, 3, padding=1, rng=np.random.default_rng(0)),
        Conv2d(8, 8, 3, padding=1, rng=np.random.default_rng(1)),
    )
    cfg = LayerCompressionConfig(k=8, d=8, max_kmeans_iterations=5)
    MVQCompressor(cfg).export_compressed_model(model)
    return model


class TestPredictBatched:
    def test_matches_single_forward(self, rng):
        model = _compressed_stack()
        x = rng.normal(size=(10, 4, 6, 6))
        model.eval()
        expected = model.forward(x)
        for batch_size in (3, 4, 10, 32):
            out = predict_batched(model, x, batch_size=batch_size)
            np.testing.assert_allclose(out, expected, atol=1e-12)

    def test_reuses_im2col_buffer_across_batches(self, rng):
        model = _compressed_stack()
        x = rng.normal(size=(12, 4, 6, 6))
        predict_batched(model, x, batch_size=4)
        first = model.layers[0]
        assert isinstance(first, CompressedConv2d)
        buffer_id = id(first._col_buffer)
        predict_batched(model, x, batch_size=4)
        assert id(first._col_buffer) == buffer_id

    def test_partial_batch_padding_keeps_buffer_shape(self, rng):
        model = _compressed_stack()
        x = rng.normal(size=(7, 4, 6, 6))
        model.eval()
        expected = model.forward(x)
        out = predict_batched(model, x, batch_size=4)  # 4 + 3-row tail
        np.testing.assert_allclose(out, expected, atol=1e-12)
        # padded tail ran at the full batch shape, so the buffer fits 4 rows
        rows = 4 * 6 * 6
        assert model.layers[0]._col_buffer.shape[0] == rows

    def test_no_padding_mode(self, rng):
        model = _compressed_stack()
        x = rng.normal(size=(5, 4, 6, 6))
        model.eval()
        expected = model.forward(x)
        out = predict_batched(model, x, batch_size=4, pad_partial=False)
        np.testing.assert_allclose(out, expected, atol=1e-12)

    def test_restores_training_mode(self, rng):
        model = _compressed_stack()
        model.train(True)
        predict_batched(model, rng.normal(size=(2, 4, 6, 6)), batch_size=2)
        assert model.training

    def test_invalid_inputs(self, rng):
        model = _compressed_stack()
        with pytest.raises(ValueError):
            predict_batched(model, rng.normal(size=(2, 4, 6, 6)), batch_size=0)
        with pytest.raises(ValueError):
            predict_batched(model, np.zeros((0, 4, 6, 6)), batch_size=2)
