"""Tests for the Module system, model zoo and training loop."""

import numpy as np
import pytest

from repro.nn import CrossEntropyLoss, SGD, Trainer, count_flops, count_parameters, evaluate_accuracy
from repro.nn.data import SyntheticClassification, SyntheticDetection, SyntheticSegmentation, train_val_split
from repro.nn.flops import count_sparse_flops, per_layer_flops
from repro.nn.layers import Conv2d, Linear, ReLU
from repro.nn.models import (
    alexnet_mini,
    deeplab_lite_mini,
    efficientnet_lite_mini,
    mobilenet_v1_mini,
    mobilenet_v2_mini,
    resnet18_mini,
    resnet50_mini,
    simple_detector_mini,
    vgg16_mini,
)
from repro.nn.models.deeplab import segmentation_miou, train_segmenter
from repro.nn.models.detection import box_iou, detection_ap, train_detector
from repro.nn.module import Module, Sequential

ALL_CLASSIFIERS = [
    resnet18_mini, resnet50_mini, mobilenet_v1_mini, mobilenet_v2_mini,
    efficientnet_lite_mini, vgg16_mini, alexnet_mini,
]


class TestModuleSystem:
    def test_named_parameters_unique(self):
        model = resnet18_mini(num_classes=3)
        names = [name for name, _ in model.named_parameters()]
        assert len(names) == len(set(names))

    def test_state_dict_roundtrip(self):
        model = resnet18_mini(num_classes=3, seed=0)
        other = resnet18_mini(num_classes=3, seed=7)
        other.load_state_dict(model.state_dict())
        x = np.random.default_rng(0).normal(size=(1, 3, 16, 16))
        model.eval(); other.eval()
        assert np.allclose(model.forward(x), other.forward(x))

    def test_state_dict_mismatch_raises(self):
        model = resnet18_mini(num_classes=3)
        with pytest.raises(KeyError):
            model.load_state_dict({"bogus": np.zeros(1)})

    def test_train_eval_propagates(self):
        model = resnet18_mini(num_classes=3)
        model.eval()
        assert all(not m.training for _, m in model.named_modules())
        model.train()
        assert all(m.training for _, m in model.named_modules())

    def test_zero_grad(self):
        model = resnet18_mini(num_classes=3)
        x = np.zeros((1, 3, 16, 16))
        out = model.forward(x)
        model.backward(np.ones_like(out))
        model.zero_grad()
        assert all(np.all(p.grad == 0) for p in model.parameters())

    def test_sequential_indexing(self):
        seq = Sequential(Linear(4, 4), ReLU(), Linear(4, 2))
        assert len(seq) == 3
        assert isinstance(seq[1], ReLU)
        assert [type(m) for m in seq] == [Linear, ReLU, Linear]


class TestModelZoo:
    @pytest.mark.parametrize("factory", ALL_CLASSIFIERS)
    def test_forward_backward_shapes(self, factory, rng):
        model = factory(num_classes=4)
        x = rng.normal(size=(2, 3, 16, 16))
        out = model.forward(x)
        assert out.shape == (2, 4)
        grad = model.backward(np.ones_like(out))
        assert grad.shape == x.shape
        assert np.all(np.isfinite(grad))

    @pytest.mark.parametrize("factory", ALL_CLASSIFIERS)
    def test_gradients_populated(self, factory, rng):
        model = factory(num_classes=4)
        x = rng.normal(size=(1, 3, 16, 16))
        out = model.forward(x)
        model.backward(np.ones_like(out))
        grads = [np.abs(p.grad).sum() for p in model.parameters()]
        assert sum(g > 0 for g in grads) > len(grads) * 0.8

    def test_bottleneck_expansion(self):
        model = resnet50_mini(num_classes=3, width=8)
        assert model.feature_channels == 8 * 2 * 4  # planes * 2 stages * expansion

    def test_parameter_count_positive(self):
        for factory in ALL_CLASSIFIERS:
            assert count_parameters(factory(num_classes=3)) > 1000


class TestFlopsCounting:
    def test_flops_scale_with_width(self):
        small = count_flops(resnet18_mini(num_classes=3, width=8), (3, 16, 16))
        large = count_flops(resnet18_mini(num_classes=3, width=16), (3, 16, 16))
        assert large > 2 * small

    def test_single_conv_exact(self, rng):
        class One(Module):
            def __init__(self):
                super().__init__()
                self.conv = Conv2d(3, 8, 3, padding=1, rng=rng)

            def forward(self, x):
                return self.conv.forward(x)

            def backward(self, g):
                return self.conv.backward(g)

        model = One()
        flops = count_flops(model, (3, 10, 10))
        assert flops == 2 * 3 * 9 * 100 * 8

    def test_sparse_flops_reduction(self):
        model = resnet18_mini(num_classes=3)
        dense = count_flops(model, (3, 16, 16))
        sparse = count_sparse_flops(model, (3, 16, 16), default_sparsity=0.75)
        assert sparse < dense * 0.3

    def test_per_layer_keys_are_module_paths(self):
        model = resnet18_mini(num_classes=3)
        flops = per_layer_flops(model, (3, 16, 16))
        modules = dict(model.named_modules())
        assert all(name in modules for name in flops)

    def test_invalid_sparsity_raises(self):
        with pytest.raises(ValueError):
            count_sparse_flops(resnet18_mini(num_classes=3), (3, 16, 16), default_sparsity=1.5)


class TestSyntheticData:
    def test_classification_deterministic(self):
        a = SyntheticClassification(50, 16, 5, seed=3)
        b = SyntheticClassification(50, 16, 5, seed=3)
        assert np.allclose(a.images, b.images)
        assert np.array_equal(a.labels, b.labels)

    def test_split_preserves_total(self):
        ds = SyntheticClassification(100, 16, 5, seed=0)
        train, val = train_val_split(ds, 0.2)
        assert len(train) + len(val) == 100

    def test_batches_cover_dataset(self):
        ds = SyntheticClassification(55, 8, 3, seed=0)
        seen = sum(len(b.targets) for b in ds.batches(16))
        assert seen == 55

    def test_detection_boxes_in_bounds(self):
        ds = SyntheticDetection(30, 16, 4, seed=1)
        assert ds.boxes.shape == (30, 4)
        assert (ds.boxes >= 0).all() and (ds.boxes <= 1).all()

    def test_segmentation_mask_labels(self):
        ds = SyntheticSegmentation(20, 16, 4, seed=1)
        assert ds.masks.max() < 4 and ds.masks.min() >= 0

    def test_invalid_params_raise(self):
        with pytest.raises(ValueError):
            SyntheticClassification(0, 16, 5)
        with pytest.raises(ValueError):
            train_val_split(SyntheticClassification(10, 8, 3), 1.5)


class TestTraining:
    def test_resnet_learns_synthetic_task(self, classification_data, trained_resnet18):
        _, val = classification_data
        assert evaluate_accuracy(trained_resnet18, val) > 0.9

    def test_trainer_records_history(self, classification_data):
        train, val = classification_data
        model = mobilenet_v1_mini(num_classes=5, seed=2)
        trainer = Trainer(model, CrossEntropyLoss(), SGD(model.parameters(), lr=0.05, momentum=0.9))
        trainer.fit(train, epochs=2, val_set=val)
        assert len(trainer.history.train_loss) == 2
        assert trainer.history.train_loss[1] < trainer.history.train_loss[0]

    def test_hook_called_every_step(self, classification_data):
        train, _ = classification_data
        calls = []
        model = resnet18_mini(num_classes=5, seed=3, width=8)
        trainer = Trainer(model, CrossEntropyLoss(), SGD(model.parameters(), lr=0.01),
                          batch_size=64, hook=lambda: calls.append(1))
        trainer.train_epoch(train)
        assert len(calls) == int(np.ceil(len(train) / 64))


class TestDetectionSegmentation:
    def test_box_iou_identity(self):
        box = np.array([[0.5, 0.5, 0.4, 0.4]])
        assert np.isclose(box_iou(box, box)[0], 1.0)

    def test_box_iou_disjoint(self):
        a = np.array([[0.2, 0.2, 0.2, 0.2]])
        b = np.array([[0.8, 0.8, 0.2, 0.2]])
        assert box_iou(a, b)[0] == 0.0

    def test_detector_trains_above_chance(self):
        dataset = SyntheticDetection(120, 16, 3, seed=0)
        detector = simple_detector_mini(num_classes=3, seed=0)
        untrained_ap = detection_ap(detector, dataset, iou_threshold=0.25)
        train_detector(detector, dataset, epochs=6, batch_size=24)
        ap = detection_ap(detector, dataset, iou_threshold=0.25)
        assert ap > max(untrained_ap, 0.25)

    def test_segmenter_trains_above_chance(self):
        dataset = SyntheticSegmentation(60, 16, 3, seed=0)
        model = deeplab_lite_mini(num_classes=3, seed=0)
        train_segmenter(model, dataset, epochs=3, batch_size=12)
        miou = segmentation_miou(model, dataset)
        assert miou > 0.3
