"""Layer-level forward/backward tests, including numeric gradient checks."""

import numpy as np
import pytest

from repro.nn.layers import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    Dropout,
    Flatten,
    GlobalAvgPool2d,
    Linear,
    MaxPool2d,
    ReLU,
    ReLU6,
    Upsample2d,
)


def numeric_param_grad(layer, param, x, upstream, eps=1e-6):
    grad = np.zeros_like(param.value)
    flat = param.value.reshape(-1)
    gflat = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        plus = float(np.sum(layer.forward(x) * upstream))
        flat[i] = orig - eps
        minus = float(np.sum(layer.forward(x) * upstream))
        flat[i] = orig
        gflat[i] = (plus - minus) / (2 * eps)
    return grad


class TestConv2dLayer:
    def test_forward_shape(self, rng):
        layer = Conv2d(3, 8, 3, stride=2, padding=1, rng=rng)
        out = layer.forward(rng.normal(size=(2, 3, 8, 8)))
        assert out.shape == (2, 8, 4, 4)

    def test_parameter_gradients(self, rng):
        layer = Conv2d(2, 3, 3, padding=1, rng=rng)
        x = rng.normal(size=(1, 2, 5, 5))
        upstream = rng.normal(size=(1, 3, 5, 5))
        layer.forward(x)
        layer.backward(upstream)
        num = numeric_param_grad(layer, layer.weight, x, upstream)
        assert np.allclose(layer.weight.grad, num, atol=1e-4)

    def test_depthwise_groups(self, rng):
        layer = Conv2d(4, 4, 3, padding=1, groups=4, rng=rng)
        assert layer.depthwise
        out = layer.forward(rng.normal(size=(1, 4, 6, 6)))
        assert out.shape == (1, 4, 6, 6)

    def test_invalid_groups_raises(self):
        with pytest.raises(ValueError):
            Conv2d(4, 8, 3, groups=2)
        with pytest.raises(ValueError):
            Conv2d(4, 8, 3, groups=4)

    def test_backward_before_forward_raises(self, rng):
        layer = Conv2d(2, 2, 3, rng=rng)
        with pytest.raises(RuntimeError):
            layer.backward(np.zeros((1, 2, 4, 4)))

    def test_gradient_accumulates(self, rng):
        layer = Conv2d(2, 2, 3, padding=1, rng=rng)
        x = rng.normal(size=(1, 2, 4, 4))
        up = rng.normal(size=(1, 2, 4, 4))
        layer.forward(x)
        layer.backward(up)
        first = layer.weight.grad.copy()
        layer.forward(x)
        layer.backward(up)
        assert np.allclose(layer.weight.grad, 2 * first)


class TestLinear:
    def test_forward_matches_matmul(self, rng):
        layer = Linear(6, 4, rng=rng)
        x = rng.normal(size=(3, 6))
        assert np.allclose(layer.forward(x), x @ layer.weight.value.T + layer.bias.value)

    def test_gradients(self, rng):
        layer = Linear(5, 3, rng=rng)
        x = rng.normal(size=(4, 5))
        upstream = rng.normal(size=(4, 3))
        layer.forward(x)
        grad_x = layer.backward(upstream)
        assert np.allclose(layer.weight.grad, upstream.T @ x)
        assert np.allclose(layer.bias.grad, upstream.sum(axis=0))
        assert np.allclose(grad_x, upstream @ layer.weight.value)


class TestBatchNorm2d:
    def test_normalises_in_training(self, rng):
        bn = BatchNorm2d(4)
        x = rng.normal(loc=3.0, scale=2.0, size=(8, 4, 5, 5))
        out = bn.forward(x)
        assert np.allclose(out.mean(axis=(0, 2, 3)), 0.0, atol=1e-6)
        assert np.allclose(out.std(axis=(0, 2, 3)), 1.0, atol=1e-3)

    def test_eval_uses_running_stats(self, rng):
        bn = BatchNorm2d(3)
        for _ in range(20):
            bn.forward(rng.normal(loc=1.0, size=(16, 3, 4, 4)))
        bn.eval()
        x = rng.normal(loc=1.0, size=(4, 3, 4, 4))
        out = bn.forward(x)
        assert abs(out.mean()) < 0.5

    def test_gamma_beta_gradients(self, rng):
        bn = BatchNorm2d(2)
        x = rng.normal(size=(4, 2, 3, 3))
        up = rng.normal(size=(4, 2, 3, 3))
        bn.forward(x)
        bn.backward(up)
        assert bn.gamma.grad.shape == (2,)
        assert np.allclose(bn.beta.grad, up.sum(axis=(0, 2, 3)))

    def test_input_gradient_numeric(self, rng):
        bn = BatchNorm2d(2)
        x = rng.normal(size=(3, 2, 2, 2))
        up = rng.normal(size=(3, 2, 2, 2))
        bn.forward(x)
        grad = bn.backward(up)

        eps = 1e-6
        num = np.zeros_like(x)
        for idx in np.ndindex(x.shape):
            x[idx] += eps
            plus = float(np.sum(bn.forward(x) * up))
            x[idx] -= 2 * eps
            minus = float(np.sum(bn.forward(x) * up))
            x[idx] += eps
            num[idx] = (plus - minus) / (2 * eps)
        assert np.allclose(grad, num, atol=1e-4)


class TestActivations:
    def test_relu_masks_negative(self, rng):
        relu = ReLU()
        x = rng.normal(size=(2, 3, 4, 4))
        out = relu.forward(x)
        assert (out >= 0).all()
        grad = relu.backward(np.ones_like(x))
        assert np.array_equal(grad, (x > 0).astype(float))

    def test_relu6_clips(self):
        relu6 = ReLU6()
        x = np.array([[-1.0, 3.0, 10.0]])
        assert np.allclose(relu6.forward(x), [[0.0, 3.0, 6.0]])
        grad = relu6.backward(np.ones_like(x))
        assert np.allclose(grad, [[0.0, 1.0, 0.0]])


class TestPooling:
    def test_maxpool_forward(self):
        pool = MaxPool2d(2)
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        out = pool.forward(x)
        assert np.allclose(out.reshape(-1), [5, 7, 13, 15])

    def test_maxpool_backward_routes_to_argmax(self):
        pool = MaxPool2d(2)
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        pool.forward(x)
        grad = pool.backward(np.ones((1, 1, 2, 2)))
        assert grad.sum() == 4
        assert grad[0, 0, 1, 1] == 1  # position of value 5

    def test_avgpool_gradient_uniform(self, rng):
        pool = AvgPool2d(2)
        x = rng.normal(size=(1, 2, 4, 4))
        pool.forward(x)
        grad = pool.backward(np.ones((1, 2, 2, 2)))
        assert np.allclose(grad, 0.25)

    def test_global_avgpool(self, rng):
        pool = GlobalAvgPool2d()
        x = rng.normal(size=(2, 3, 4, 4))
        out = pool.forward(x)
        assert out.shape == (2, 3)
        assert np.allclose(out, x.mean(axis=(2, 3)))
        grad = pool.backward(np.ones((2, 3)))
        assert np.allclose(grad, 1.0 / 16)


class TestShapeOps:
    def test_flatten_roundtrip(self, rng):
        flat = Flatten()
        x = rng.normal(size=(2, 3, 4, 4))
        out = flat.forward(x)
        assert out.shape == (2, 48)
        assert flat.backward(out).shape == x.shape

    def test_upsample_and_backward(self, rng):
        up = Upsample2d(2)
        x = rng.normal(size=(1, 2, 3, 3))
        out = up.forward(x)
        assert out.shape == (1, 2, 6, 6)
        grad = up.backward(np.ones_like(out))
        assert np.allclose(grad, 4.0)

    def test_dropout_eval_identity(self, rng):
        drop = Dropout(0.5, rng=rng)
        drop.eval()
        x = rng.normal(size=(4, 10))
        assert np.array_equal(drop.forward(x), x)

    def test_dropout_train_scales(self, rng):
        drop = Dropout(0.5, rng=rng)
        x = np.ones((1000,))
        out = drop.forward(x)
        # kept units are scaled by 1/(1-p)
        assert set(np.unique(out)).issubset({0.0, 2.0})

    def test_dropout_invalid_p(self):
        with pytest.raises(ValueError):
            Dropout(1.5)
