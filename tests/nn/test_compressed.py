"""Compressed-domain inference: equivalence with dense reconstruction across
grouping strategies, mask settings, dtype policies and execution modes."""

import numpy as np
import pytest

from repro.core import LayerCompressionConfig, MVQCompressor, precision
from repro.core.grouping import GroupingStrategy
from repro.core.reconstruct import effective_subvector_table, reconstruct_grouped
from repro.nn import Conv2d, Linear, Sequential, count_flops
from repro.nn.compressed import (
    CompressedConv2d,
    CompressedLinear,
    InferenceCostModel,
    compress_module,
    swap_to_compressed,
)
from repro.nn.models import resnet18_mini

#: (strategy, d, n_keep, m) combinations valid for a 16x32x3x3 convolution
STRATEGY_CONFIGS = [
    (GroupingStrategy.OUTPUT, 8, 2, 8),
    (GroupingStrategy.INPUT, 8, 2, 8),
    (GroupingStrategy.KERNEL, 9, 1, 3),
]


def _compressed_conv_pair(strategy, d, n_keep, m, store_mask, mode,
                          k=12, iterations=8):
    """One compressed conv module plus a dense conv holding its decoded weight."""
    model = Sequential(Conv2d(16, 32, 3, padding=1, rng=np.random.default_rng(1)))
    cfg = LayerCompressionConfig(
        k=k, d=d, n_keep=n_keep, m=m, strategy=strategy,
        max_kmeans_iterations=iterations, store_mask=store_mask,
        prune=store_mask, use_masked_kmeans=store_mask)
    state = next(iter(MVQCompressor(cfg).compress(model)))
    layer = model.layers[0]
    reference = Conv2d(16, 32, 3, padding=1)
    reference.weight.copy_(state.reconstruct_weight())
    reference.bias.copy_(layer.bias.value)
    return compress_module(layer, state, mode=mode), reference


class TestForwardBackwardEquivalence:
    @pytest.mark.parametrize("strategy,d,n_keep,m", STRATEGY_CONFIGS,
                             ids=[s.value for s, *_ in STRATEGY_CONFIGS])
    @pytest.mark.parametrize("store_mask", [True, False], ids=["masked", "unmasked"])
    @pytest.mark.parametrize("mode", ["dense", "centroid", "lut", "auto"])
    def test_conv_matches_dense_reconstruction(self, strategy, d, n_keep, m,
                                               store_mask, mode, rng):
        compressed, reference = _compressed_conv_pair(
            strategy, d, n_keep, m, store_mask, mode)
        x = rng.normal(size=(3, 16, 6, 6))
        out = compressed.forward(x)
        ref = reference.forward(x)
        np.testing.assert_allclose(out, ref, atol=1e-9)

        grad = rng.normal(size=out.shape)
        np.testing.assert_allclose(compressed.backward(grad),
                                   reference.backward(grad), atol=1e-9)

    @pytest.mark.parametrize("strategy", [GroupingStrategy.OUTPUT,
                                          GroupingStrategy.INPUT])
    @pytest.mark.parametrize("mode", ["dense", "centroid"])
    def test_linear_matches_dense_reconstruction(self, strategy, mode, rng):
        model = Sequential(Linear(32, 24, rng=np.random.default_rng(2)))
        cfg = LayerCompressionConfig(k=10, d=8, strategy=strategy,
                                     max_kmeans_iterations=8)
        state = next(iter(MVQCompressor(cfg, include_linear=True).compress(model)))
        layer = model.layers[0]
        reference = Linear(32, 24)
        reference.weight.copy_(state.reconstruct_weight())
        reference.bias.copy_(layer.bias.value)
        compressed = compress_module(layer, state, mode=mode)

        x = rng.normal(size=(5, 32))
        np.testing.assert_allclose(compressed.forward(x), reference.forward(x),
                                   atol=1e-9)
        grad = rng.normal(size=(5, 24))
        np.testing.assert_allclose(compressed.backward(grad),
                                   reference.backward(grad), atol=1e-9)

    @pytest.mark.parametrize("dtype,atol", [("float64", 1e-9), ("float32", 1e-4)])
    @pytest.mark.parametrize("mode", ["dense", "centroid"])
    def test_precision_policy(self, dtype, atol, mode, rng):
        """Both paths follow the global compute-dtype policy."""
        with precision.precision(dtype):
            compressed, reference = _compressed_conv_pair(
                GroupingStrategy.OUTPUT, 8, 2, 8, True, mode)
            x = rng.normal(size=(2, 16, 5, 5))
            out = compressed.forward(x)
            assert out.dtype == np.dtype(dtype)
            np.testing.assert_allclose(out, reference.forward(x), atol=atol)

    def test_linear_higher_rank_input(self, rng):
        model = Sequential(Linear(16, 8, rng=np.random.default_rng(3)))
        cfg = LayerCompressionConfig(k=6, d=8, max_kmeans_iterations=5)
        state = next(iter(MVQCompressor(cfg, include_linear=True).compress(model)))
        compressed = compress_module(model.layers[0], state, mode="centroid")
        x = rng.normal(size=(2, 3, 16))
        out = compressed.forward(x)
        assert out.shape == (2, 3, 8)
        grad = rng.normal(size=out.shape)
        assert compressed.backward(grad).shape == x.shape


class TestCostModelBoundary:
    """The k-vs-N_G fallback: auto mode must cross from centroid to dense
    as the table grows relative to the layer's reuse opportunity."""

    def _engine(self, mode="auto", cost_model=None, k=12):
        compressed, _ = _compressed_conv_pair(
            GroupingStrategy.INPUT, 8, 2, 8, True, mode)
        if cost_model is not None:
            compressed.engine.cost_model = cost_model
        return compressed.engine

    def test_auto_picks_centroid_when_routing_is_free(self):
        """Accelerator-style rates (cheap gathers, slow MACs): decode-free wins."""
        accel = InferenceCostModel(gemm_flops_per_s=1e8,
                                   skinny_gemm_flops_per_s=1e12,
                                   gather_elems_per_s=1e12,
                                   copy_elems_per_s=1e12)
        engine = self._engine(cost_model=accel)
        assert engine.choose_mode(batch=64, dtype=np.float64) == "centroid"

    def test_auto_falls_back_to_dense_when_table_large(self):
        """CPU-style rates and k comparable to N_G: cached dense wins."""
        cpu = InferenceCostModel()  # calibrated CPU defaults
        engine = self._engine(cost_model=cpu)
        # the table of this small layer is no smaller than its subvector
        # count, so the centroid path has no product reuse left to exploit
        assert engine.table_size > 0
        assert engine.choose_mode(batch=64, dtype=np.float64) == "dense"

    def test_boundary_crossing_in_table_size(self):
        """With fixed rates, the selection flips exactly where the cost
        estimates cross as U grows — the k-vs-N_G boundary."""
        model = InferenceCostModel(
            gemm_flops_per_s=1e9, skinny_gemm_flops_per_s=1e9,
            gather_elems_per_s=1e9, copy_elems_per_s=1e9)
        batch, n_in, n_out, d = 8, 512, 256, 8
        chosen = [model.select(batch, n_in, n_out, d, u, gather_form=True)
                  for u in (1, 2048)]
        assert chosen[0] == "centroid" and chosen[1] == "dense"
        # monotone: once dense is cheaper it stays cheaper for larger tables
        flips = [model.select(batch, n_in, n_out, d, u, gather_form=True)
                 for u in range(1, 2048, 64)]
        first_dense = flips.index("dense")
        assert all(c == "dense" for c in flips[first_dense:])

    def test_explicit_mode_overrides_cost_model(self):
        engine = self._engine(mode="centroid",
                              cost_model=InferenceCostModel())
        assert engine.choose_mode(batch=64, dtype=np.float64) == "centroid"

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            self._engine(mode="fastest")


class TestEffectiveTable:
    def test_table_reconstructs_grouped(self, rng):
        from repro.core.codebook import Codebook
        codebook = Codebook(rng.normal(size=(16, 8)))
        assignments = rng.integers(0, 16, size=200)
        mask = rng.random(size=(200, 8)) > 0.5
        table, index = effective_subvector_table(codebook, assignments, mask)
        np.testing.assert_array_equal(
            table[index], reconstruct_grouped(codebook, assignments, mask))
        assert table.shape[0] == len(np.unique(
            [f"{a}-{m.tobytes().hex()}" for a, m in zip(assignments, mask)]))

    def test_unmasked_table_is_codebook(self, rng):
        from repro.core.codebook import Codebook
        codebook = Codebook(rng.normal(size=(16, 8)))
        assignments = rng.integers(0, 16, size=50)
        table, index = effective_subvector_table(codebook, assignments, None)
        np.testing.assert_array_equal(table, codebook.effective_codewords())
        np.testing.assert_array_equal(index, assignments)

    def test_nm_mask_bounds_table_size(self, rng):
        """With N:M masks, U ≤ k x (number of distinct mask patterns)."""
        from repro.core.codebook import Codebook
        from repro.core.pruning import nm_prune_mask
        codebook = Codebook(rng.normal(size=(4, 8)))
        data = rng.normal(size=(500, 8))
        mask = nm_prune_mask(data, 2, 8)
        assignments = rng.integers(0, 4, size=500)
        table, _ = effective_subvector_table(codebook, assignments, mask)
        assert table.shape[0] <= 4 * 28  # C(8, 2) patterns per codeword


class TestExportCompressedModel:
    def test_export_swaps_and_matches_apply_to_model(self, trained_model, rng):
        cfg = LayerCompressionConfig(k=16, d=8, max_kmeans_iterations=10)
        reference = resnet18_mini(num_classes=5, seed=1)
        reference.load_state_dict(trained_model.state_dict())
        ref_compressed = MVQCompressor(cfg).compress(reference)
        ref_compressed.apply_to_model()

        compressed = MVQCompressor(cfg).export_compressed_model(trained_model)
        swapped = [m for _, m in trained_model.named_modules()
                   if isinstance(m, CompressedConv2d)]
        assert len(swapped) == len(compressed.layers)

        x = rng.normal(size=(4, 3, 16, 16))
        trained_model.eval()
        reference.eval()
        np.testing.assert_allclose(trained_model.forward(x),
                                   reference.forward(x), atol=1e-8)
        # compression accounting still works on the returned states
        assert compressed.compression_ratio() > 1.0

    def test_flops_counter_sees_compressed_modules(self, trained_model):
        cfg = LayerCompressionConfig(k=8, d=8, max_kmeans_iterations=5)
        dense_flops = count_flops(trained_model, (3, 16, 16))
        MVQCompressor(cfg).export_compressed_model(trained_model)
        assert count_flops(trained_model, (3, 16, 16)) == dense_flops

    def test_swap_replaces_list_entries(self):
        model = Sequential(Conv2d(16, 32, 3, padding=1,
                                  rng=np.random.default_rng(0)))
        cfg = LayerCompressionConfig(k=8, d=8, max_kmeans_iterations=5)
        compressed = MVQCompressor(cfg).compress(model)
        swapped = swap_to_compressed(model, compressed)
        assert isinstance(model.layers[0], CompressedConv2d)
        assert set(swapped) == set(compressed.layers)

    def test_depthwise_conv_rejected(self):
        layer = Conv2d(8, 8, 3, groups=8, rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            CompressedConv2d.from_layer(layer, state=None)

    def test_compress_module_type_check(self):
        from repro.nn.layers import ReLU
        with pytest.raises(TypeError):
            compress_module(ReLU(), state=None)


class TestCompressedLinearFromLayer:
    def test_from_layer_roundtrip(self, rng):
        model = Sequential(Linear(16, 8, rng=np.random.default_rng(5)))
        cfg = LayerCompressionConfig(k=6, d=8, max_kmeans_iterations=5)
        state = next(iter(MVQCompressor(cfg, include_linear=True).compress(model)))
        compressed = CompressedLinear.from_layer(model.layers[0], state)
        reference = Linear(16, 8)
        reference.weight.copy_(state.reconstruct_weight())
        reference.bias.copy_(model.layers[0].bias.value)
        x = rng.normal(size=(3, 16))
        np.testing.assert_allclose(compressed.forward(x),
                                   reference.forward(x), atol=1e-9)

    def test_backward_before_forward_raises(self, rng):
        model = Sequential(Linear(16, 8, rng=np.random.default_rng(5)))
        cfg = LayerCompressionConfig(k=6, d=8, max_kmeans_iterations=5)
        state = next(iter(MVQCompressor(cfg, include_linear=True).compress(model)))
        compressed = CompressedLinear.from_layer(model.layers[0], state)
        with pytest.raises(RuntimeError):
            compressed.backward(np.zeros((3, 8)))
