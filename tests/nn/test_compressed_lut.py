"""Integer/LUT fast path of the centroid-domain engine.

Exact-LUT mode must be *bit-identical* to the centroid path (same table
GEMM, same accumulation order — only the routing is precomputed), the
quantized-activation mode must stay inside a bounded relative error, the
cost model must offer (and price) the new mode, and the narrow-width
assignment state that feeds the tables must survive sharing/adoption.
"""

import numpy as np
import pytest

from repro.core import LayerCompressionConfig, MVQCompressor, precision
from repro.core.codebook import assignment_dtype
from repro.core.grouping import GroupingStrategy
from repro.nn import Conv2d, Sequential
from repro.nn.compressed import (
    DEFAULT_ACT_LEVELS,
    InferenceCostModel,
    compress_module,
)
from repro.nn.models import resnet18_mini

#: (strategy, d, n_keep, m) combinations valid for a 16x32x3x3 convolution
STRATEGY_CONFIGS = [
    (GroupingStrategy.OUTPUT, 8, 2, 8),
    (GroupingStrategy.INPUT, 8, 2, 8),
    (GroupingStrategy.KERNEL, 9, 1, 3),
]


def _compressed_conv(strategy, d, n_keep, m, store_mask, mode="centroid",
                     k=12):
    model = Sequential(Conv2d(16, 32, 3, padding=1,
                              rng=np.random.default_rng(1)))
    cfg = LayerCompressionConfig(
        k=k, d=d, n_keep=n_keep, m=m, strategy=strategy,
        max_kmeans_iterations=8, store_mask=store_mask,
        prune=store_mask, use_masked_kmeans=store_mask)
    state = next(iter(MVQCompressor(cfg).compress(model)))
    return compress_module(model.layers[0], state, mode=mode)


def _rel_err(out, ref):
    return (float(np.linalg.norm(out - ref))
            / max(float(np.linalg.norm(ref)), 1e-12))


class TestLutBitExactness:
    """Exact LUT vs centroid: same bits, every strategy, both directions."""

    @pytest.mark.parametrize("strategy,d,n_keep,m", STRATEGY_CONFIGS,
                             ids=[s.value for s, *_ in STRATEGY_CONFIGS])
    @pytest.mark.parametrize("store_mask", [True, False],
                             ids=["masked", "unmasked"])
    @pytest.mark.parametrize("dtype", ["float64", "float32"])
    def test_forward_backward_bit_identical(self, strategy, d, n_keep, m,
                                            store_mask, dtype, rng):
        with precision.precision(dtype):
            module = _compressed_conv(strategy, d, n_keep, m, store_mask)
            x = rng.normal(size=(2, 16, 6, 6))
            module.engine.mode = "centroid"
            ref_out = module.forward(x)
            grad = rng.normal(size=ref_out.shape)
            ref_grad = module.backward(grad)

            module.engine.mode = "lut"
            out = module.forward(x)
            np.testing.assert_array_equal(out, ref_out)
            np.testing.assert_array_equal(module.backward(grad), ref_grad)
            assert module.engine.last_mode == "lut"

    def test_lut_builds_routing_tables_once(self, rng):
        module = _compressed_conv(GroupingStrategy.OUTPUT, 8, 2, 8, True,
                                  mode="lut")
        x = rng.normal(size=(2, 16, 5, 5))
        module.forward(x)
        assert module.engine.lut_table_bytes() > 0
        flat = module.engine._lut["flat"]
        module.forward(x)
        assert module.engine._lut["flat"] is flat  # cached, not rebuilt


class TestQuantMode:
    def test_rel_err_bounded_on_model_zoo(self, rng):
        model = resnet18_mini(num_classes=5, seed=3)
        cfg = LayerCompressionConfig(k=16, d=8, max_kmeans_iterations=6)
        MVQCompressor(cfg).export_compressed_model(model)
        model.eval()
        engines = [m.engine for _, m in model.named_modules()
                   if getattr(m, "engine", None) is not None]
        assert engines
        x = rng.normal(size=(4, 3, 16, 16))
        for engine in engines:
            engine.mode = "centroid"
        ref = model.forward(x)
        for engine in engines:
            engine.mode = "lut_quant"
        out = model.forward(x)
        assert 0.0 < _rel_err(out, ref) < 0.05
        assert all(engine.last_mode == "lut_quant" for engine in engines)

    def test_finer_alphabet_shrinks_error(self, rng):
        module = _compressed_conv(GroupingStrategy.OUTPUT, 8, 2, 8, True)
        x = rng.normal(size=(2, 16, 6, 6))
        module.engine.mode = "centroid"
        ref = module.forward(x)
        module.engine.mode = "lut_quant"
        errors = []
        for levels in (15, DEFAULT_ACT_LEVELS, 4095):
            module.engine.act_levels = levels
            errors.append(_rel_err(module.forward(x), ref))
        assert errors[0] > errors[1] > errors[2]

    def test_quant_backward_runs(self, rng):
        module = _compressed_conv(GroupingStrategy.INPUT, 8, 2, 8, True,
                                  mode="lut_quant")
        x = rng.normal(size=(2, 16, 6, 6))
        out = module.forward(x)
        grad_in = module.backward(rng.normal(size=out.shape))
        assert grad_in.shape == x.shape
        assert np.all(np.isfinite(grad_in))


class TestCostModelLut:
    def test_fast_lut_rates_select_lut(self):
        # small table (high reuse) + fast routing: lut beats both the
        # dense GEMM and the centroid path's fancy-index gather
        fast = InferenceCostModel(lut_gather_elems_per_s=1e15,
                                  lut_scatter_elems_per_s=1e15)
        assert fast.select(1, 512, 512, 8, 8, gather_form=True) == "lut"

    def test_slow_lut_rates_never_select_lut(self):
        slow = InferenceCostModel(lut_gather_elems_per_s=1.0,
                                  lut_scatter_elems_per_s=1.0)
        for u in (1, 64, 2048):
            assert slow.select(8, 512, 256, 8, u,
                               gather_form=True) in ("centroid", "dense")

    def test_auto_resolves_to_concrete_mode(self):
        engine = _compressed_conv(GroupingStrategy.INPUT, 8, 2, 8, True,
                                  mode="auto").engine
        # free table GEMM + free LUT routing: only the centroid path's
        # fancy-index gather (default rate) still costs anything
        engine.cost_model = InferenceCostModel(skinny_gemm_flops_per_s=1e15,
                                               copy_elems_per_s=1e15,
                                               lut_gather_elems_per_s=1e15,
                                               lut_scatter_elems_per_s=1e15)
        assert engine.choose_mode(batch=64, dtype=np.float64) == "lut"
        # auto never resolves to the approximate mode — that is opt-in only
        assert engine.choose_mode(batch=64, dtype=np.float64) != "lut_quant"

    def test_lut_seconds_prices_both_forms(self):
        model = InferenceCostModel()
        gather = model.lut_seconds(8, 512, 256, 8, 64, gather_form=True)
        scatter = model.lut_seconds(8, 512, 256, 8, 64, gather_form=False)
        assert gather > 0.0 and scatter > 0.0


class TestNarrowAssignments:
    def test_assignment_dtype_boundaries(self):
        assert assignment_dtype(2) == np.uint8
        assert assignment_dtype(256) == np.uint8
        assert assignment_dtype(257) == np.uint16
        assert assignment_dtype(2 ** 16) == np.uint16
        assert assignment_dtype(2 ** 16 + 1) == np.int64

    def test_engine_downcasts_assignments(self):
        engine = _compressed_conv(GroupingStrategy.OUTPUT, 8, 2, 8, True,
                                  k=12).engine
        assert engine.assignments.dtype == np.uint8

    def test_caches_keyed_by_assignment_width(self, rng):
        module = _compressed_conv(GroupingStrategy.OUTPUT, 8, 2, 8, True,
                                  mode="dense")
        module.forward(rng.normal(size=(1, 16, 5, 5)))
        assert all(key.endswith("/uint8")
                   for key in module.engine._dense_cache)

    def test_serving_stats_surface_lut_state(self, rng):
        module = _compressed_conv(GroupingStrategy.OUTPUT, 8, 2, 8, True,
                                  mode="lut")
        module.forward(rng.normal(size=(1, 16, 5, 5)))
        stats = module.engine.serving_stats()
        assert stats["last_mode"] == "lut"
        assert stats["assignments_dtype"] == "uint8"
        assert stats["act_levels"] == DEFAULT_ACT_LEVELS
        assert stats["lut_table_bytes"] > 0


class TestSharingAndAdoption:
    def test_share_tables_shares_assignments_and_lut(self, rng):
        a = _compressed_conv(GroupingStrategy.INPUT, 8, 2, 8, True,
                             mode="lut")
        b = _compressed_conv(GroupingStrategy.INPUT, 8, 2, 8, True,
                             mode="lut")
        x = rng.normal(size=(2, 16, 6, 6))
        ref = a.forward(x)
        b.engine.share_tables_with(a.engine)
        assert b.engine.assignments is a.engine.assignments
        assert b.engine._lut is a.engine._lut
        np.testing.assert_array_equal(b.forward(x), ref)

    def test_adopt_derived_roundtrip(self, rng):
        a = _compressed_conv(GroupingStrategy.OUTPUT, 8, 2, 8, True,
                             mode="lut")
        x = rng.normal(size=(2, 16, 6, 6))
        ref = a.forward(x)  # warms LUT + caches
        b = _compressed_conv(GroupingStrategy.OUTPUT, 8, 2, 8, True,
                             mode="lut")
        b.engine.adopt_derived(a.engine.derived_arrays())
        assert b.engine._lut["flat"] is a.engine._lut["flat"]
        np.testing.assert_array_equal(b.forward(x), ref)
